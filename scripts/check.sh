#!/usr/bin/env bash
# Full local verification: repo lint, a sanitized build, and the test
# suite. Run from the repo root. Pass `tsan` to use the ThreadSanitizer
# preset instead of asan-ubsan (they cannot be combined in one binary).
#
#   scripts/check.sh          # lint + asan-ubsan build + ctest
#   scripts/check.sh tsan     # lint + tsan build + ctest

set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-asan-ubsan}"
case "$preset" in
  asan-ubsan|tsan|default) ;;
  *) echo "usage: $0 [asan-ubsan|tsan|default]" >&2; exit 2 ;;
esac

echo "== repo lint =="
python3 tools/lint.py .

echo "== layering check =="
python3 tools/layering_check.py .

echo "== status audit =="
# Machine-readable findings/suppression summary lands next to the build.
mkdir -p build
python3 tools/status_audit.py . --json build/status_audit.json

echo "== critical-section audit =="
python3 tools/critical_section_audit.py . --json build/critical_section_audit.json

# clang_tidy also runs as a ctest below (zero-findings gate over
# compile_commands.json); it self-skips when no clang-tidy binary exists.

echo "== configure ($preset preset) =="
cmake --preset "$preset"

echo "== build =="
cmake --build --preset "$preset" -j "$(nproc)"

echo "== test =="
ctest --preset "$preset" -j "$(nproc)"

# The sanitizer presets compile HERMES_FAILPOINTS in; re-run the
# crash-recovery torture sweep on its own so a failing seed is reported
# with full output even when the main ctest pass above was terse. Under
# the default preset the suite SKIPs (failpoints compiled out).
if [ "$preset" != "default" ]; then
  echo "== crash-recovery torture sweep ($preset) =="
  ctest --preset "$preset" -R 'CrashTorture' --output-on-failure
fi

# The sanitizer presets build without the benches, so the BENCH_*.json
# smoke test needs the default preset's fig7_edgecut. The default preset
# already ran it as part of ctest above.
if [ "$preset" != "default" ]; then
  echo "== bench smoke (default preset) =="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)" \
    --target fig7_edgecut --target concurrent_reads \
    --target write_throughput --target message_rtt
  ctest --test-dir build -R bench_smoke --output-on-failure
fi

echo "OK: lint + layering + status audit + critical-section audit + $preset build + tests + bench smoke all green"
