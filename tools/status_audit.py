#!/usr/bin/env python3
"""Error-propagation and annotation-coverage audit; the `status_audit` ctest.

Hermes never throws: every fallible operation returns Status or Result<T>
(src/common/status.h). PR 5's retryable-Unavailable contract — and the
message-passing cluster runtime behind it — only works if every one of
those returns is actually consumed and propagated. The compile-time gates
added so far (-Wthread-safety, lock-order ranks, the layering DAG) are
opt-in: a swallowed Status or an unannotated shared field simply compiles.
This tool closes the coverage gap with two whole-repo passes, in the same
pure-Python-over-the-tree style as lint.py / layering_check.py (no LLVM
needed, never skips).

Pass A — status discipline:
  * indexes every function returning Status / Result<T> across src/
    (declarations and file-local definitions),
  * requires [[nodiscard]] on each declaration that introduces such a
    function (out-of-line member definitions inherit it from the header
    and are exempt),
  * flags call sites — across src/, tests/, bench/, and examples/ —
    where the returned status is
      - discarded at statement level:       store.Flush();
      - swallowed: assigned but never branched on, propagated, or passed
        on (uses that only format it, .ToString()/.message(), do not
        count — that is the logged-and-ignored pattern),
      - suppressed with a bare cast:        (void)store.Flush();

Pass B — annotation coverage (src/ only): for every class owning an
annotated Mutex/SharedMutex (common/thread_annotations.h),
  * every mutable data member must carry GUARDED_BY / PT_GUARDED_BY
    (const members, the lock members themselves, CondVar, and pointers to
    the self-synchronized metrics types are exempt), and
  * every public non-static method must carry a lock annotation
    (EXCLUDES / REQUIRES / ACQUIRE / ... / NO_THREAD_SAFETY_ANALYSIS),
so -Wthread-safety can no longer be dodged by omission.

Suppression is explicit and audited: a finding is allowed only by a
marker comment on the offending line (or the line above)

    // audit:allow(status, <reason>)   for Pass A findings
    // audit:allow(guard, <reason>)    for Pass B findings

The reason is mandatory (an empty reason is itself a finding); the tool
counts markers and reports them in the summary so the suppression count
can be ratcheted down over time.

Usage: tools/status_audit.py [repo_root] [--json PATH]
       (exit 0 = zero unsuppressed findings, 1 = findings, 2 = bad tree)
"""

import json
import re
import sys
from pathlib import Path

# Directories whose call sites are held to the discipline. The function
# index itself is built from src/ only (the shipped library).
CALLSITE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = (".h", ".cc", ".cpp")

MARKER_RE = re.compile(r"audit:allow\(\s*(status|guard)\s*,?\s*([^)]*)\)")

# Function introducers returning Status / Result<T>. The return type and
# the name may be split across lines; template arguments may nest but
# never contain parens/braces in this codebase.
FN_RE = re.compile(
    r"(?:^|\n)[ \t]*"
    r"(?P<pre>(?:(?:\[\[nodiscard\]\]|virtual|static|inline|constexpr|"
    r"explicit|friend)[ \t\n]+)*)"
    r"(?P<ret>(?:::)?(?:hermes[ \t]*::[ \t]*)?"
    r"(?:Status|Result[ \t]*<[^;{}()]*>))[ \t\n]+"
    r"(?P<qual>(?:\w+[ \t]*::[ \t]*)*)(?P<name>\w+)[ \t]*\(")

# Any other return type in front of the same name makes the name
# ambiguous for receiver-less textual matching; such names are dropped
# from call-site checking (conservative: the gate must not cry wolf).
OTHER_FN_RE = re.compile(
    r"(?:^|\n)[ \t]*"
    r"(?:(?:\[\[nodiscard\]\]|virtual|static|inline|constexpr|explicit|"
    r"friend)[ \t\n]+)*"
    r"(?P<ret>(?:void|bool|int|float|double|auto|std::\w+|[A-Z]\w*)"
    r"(?:[ \t]*<[^;{}()]*>)?(?:[ \t]*[*&])*)[ \t\n]+"
    r"(?P<name>\w+)[ \t]*\(")

STATUS_RET_RE = re.compile(r"^(?:::)?(?:hermes\s*::\s*)?(?:Status|Result\b)")

# Keywords that disqualify a statement prefix from being a plain
# discarded call expression.
PREFIX_KEYWORDS_RE = re.compile(
    r"\b(return|co_return|co_await|if|while|for|switch|case|throw|goto|"
    r"delete|new|else|do|sizeof|using|typedef|static_assert|operator)\b")

DECL_STMT_RE = re.compile(
    r"^(?:const[ \t]+)?"
    r"(?P<type>auto|(?:::)?(?:hermes\s*::\s*)?(?:Status|Result\s*<.*>))"
    r"\s*&{0,2}\s+(?P<name>\w+)\s*(?:=\s*(?P<rhs>.*))?$",
    re.DOTALL)

TYPE_OPEN_RE = re.compile(
    r"^(?:template\s*<[^{]*>\s*)?(class|struct|union|enum)\b")
NAMESPACE_OPEN_RE = re.compile(r"^(?:inline\s+)?namespace\b")

LOCK_ANNOTATIONS_RE = re.compile(
    r"\b(EXCLUDES|REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE|"
    r"RELEASE_SHARED|TRY_ACQUIRE|ASSERT_CAPABILITY|RETURN_CAPABILITY|"
    r"NO_THREAD_SAFETY_ANALYSIS)\b")
GUARD_ANNOTATION_RE = re.compile(r"\b(GUARDED_BY|PT_GUARDED_BY)\s*\(")
MUTEX_MEMBER_RE = re.compile(
    r"^(?:mutable\s+)?(?:hermes::)?(Mutex|SharedMutex)\s+(\w+)\b")

# Types that synchronize internally; a pointer to one needs no
# PT_GUARDED_BY (the pointer itself must still be effectively const —
# set during construction/Open, before the object is shared).
SELF_SYNC_TYPES = {
    "Counter", "Gauge", "MetricsRegistry", "TraceLog", "CondVar",
    "Mutex", "SharedMutex", "ThreadPool", "FailpointRegistry",
    "TransactionManager",  # atomic id counter + internally-locked table
}

MEMBER_SKIP_RE = re.compile(
    r"^(using|typedef|friend|static|constexpr|static_assert|enum|class|"
    r"struct|union|template|public|private|protected|operator)\b")


def strip_code(text):
    """Blanks comments, string/char literals, and preprocessor lines,
    preserving length and line structure so offsets keep their line
    numbers. Attributes like [[nodiscard]] survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | pp
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            if c == "#" and (i == 0 or text[i - 1] == "\n" or
                             text[:i].rsplit("\n", 1)[-1].strip() == ""):
                state = "pp"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
            i += 1
        elif state == "pp":
            if c == "\n":
                # Continuation lines stay part of the directive.
                prev = text[i - 1] if i > 0 else ""
                if prev != "\\":
                    state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
    return "".join(out)


class Stmt:
    __slots__ = ("line", "text", "terminator", "scope_path")

    def __init__(self, line, text, terminator, scope_path):
        self.line = line
        self.text = text
        self.terminator = terminator  # ';' '{' or '}'
        self.scope_path = scope_path  # tuple of scope kinds, innermost last


BLOCK_TAIL_KEYWORDS = ("else", "do", "try", "const", "noexcept", "override",
                       "final")


def split_statements(code):
    """Splits comment-stripped code into statements with scope tracking.

    Scopes are classified as 'namespace', 'type' (class/struct/enum), or
    'block' (function bodies and control-flow blocks). Brace initializers
    (`Mutex mu_{...}`) are folded into their statement rather than opening
    a scope: a '{' only opens a block when the pending text is empty,
    ends with ')'/']', ends with a block-tail keyword, or introduces a
    type/namespace."""
    stmts = []
    scope_stack = []  # list of kinds
    cur = []
    start_line = None
    line = 1
    paren = 0
    init_brace = 0
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
            cur.append(c)
            i += 1
            continue
        if start_line is None and not c.isspace():
            start_line = line
        if c == "(":
            paren += 1
        elif c == ")":
            paren = max(0, paren - 1)
        if paren > 0 or init_brace > 0:
            if c == "{":
                init_brace += 1
            elif c == "}":
                init_brace = max(0, init_brace - 1)
            cur.append(c)
            i += 1
            continue
        if c == ";":
            text = "".join(cur).strip()
            if text:
                stmts.append(Stmt(start_line or line, text, ";",
                                  tuple(scope_stack)))
            cur = []
            start_line = None
        elif c == "{":
            text = "".join(cur).strip()
            kind = classify_opener(text)
            if kind is None:
                init_brace += 1
                cur.append(c)
                i += 1
                continue
            stmts.append(Stmt(start_line or line, text, "{",
                              tuple(scope_stack)))
            scope_stack.append(kind)
            cur = []
            start_line = None
        elif c == "}":
            text = "".join(cur).strip()
            if text:
                stmts.append(Stmt(start_line or line, text, ";",
                                  tuple(scope_stack)))
            if scope_stack:
                scope_stack.pop()
            stmts.append(Stmt(line, "", "}", tuple(scope_stack)))
            cur = []
            start_line = None
        else:
            cur.append(c)
        i += 1
    return stmts


def classify_opener(text):
    """Returns the scope kind a '{' opens after `text`, or None when the
    brace is an initializer that belongs to the pending statement."""
    if NAMESPACE_OPEN_RE.match(text):
        return "namespace"
    if TYPE_OPEN_RE.match(text) and "=" not in text:
        return "type"
    if text == "" or text.endswith(")") or text.endswith("]"):
        return "block"
    if text.endswith(":") and not text.endswith("::"):
        return "block"  # case/default/goto label or access specifier
    last_word = re.search(r"(\w+)\s*$", text)
    if last_word and last_word.group(1) in BLOCK_TAIL_KEYWORDS:
        return "block"
    if text.endswith("->") or text.endswith(">"):  # trailing return type
        return "block"
    return None


def line_has_marker(raw_lines, line_no, kind):
    """True when `line_no` (1-based) or the line above carries an
    audit:allow marker of `kind`."""
    for ln in (line_no, line_no - 1):
        if 1 <= ln <= len(raw_lines):
            m = MARKER_RE.search(raw_lines[ln - 1])
            if m and m.group(1) == kind:
                return True
    return False


def collect_markers(raw_lines, findings, rel):
    """Counts markers and flags reason-less ones."""
    counts = {"status": 0, "guard": 0}
    for i, ln in enumerate(raw_lines, 1):
        for m in MARKER_RE.finditer(ln):
            kind, reason = m.group(1), m.group(2).strip()
            counts[kind] += 1
            if not reason:
                findings.append(
                    (rel, i, "marker",
                     f"audit:allow({kind}) without a reason — say why the "
                     "suppression is sound"))
    return counts


# --------------------------------------------------------------------------
# Pass A: status discipline
# --------------------------------------------------------------------------

def index_status_functions(root, findings):
    """Indexes Status/Result-returning functions across src/ and enforces
    [[nodiscard]] on every introducing declaration. Returns the set of
    names usable for call-site checks (ambiguous names removed)."""
    status_names = set()
    other_names = set()
    indexed = 0
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root)
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code = strip_code(raw)
        for m in FN_RE.finditer(code):
            name = m.group("name")
            line_no = code.count("\n", 0, m.start()) + 1
            # The match may begin at the newline before the declaration.
            decl_line = line_no + (1 if code[m.start()] == "\n" else 0)
            status_names.add(name)
            indexed += 1
            if "[[nodiscard]]" in m.group("pre"):
                continue
            if m.group("qual"):
                continue  # out-of-line member def; header decl carries it
            if line_has_marker(raw_lines, decl_line, "status"):
                continue
            findings.append(
                (rel, decl_line, "nodiscard",
                 f"{name}() returns {m.group('ret').split('<')[0].strip()} "
                 "but is not [[nodiscard]] — errors must not be silently "
                 "droppable"))
        for m in OTHER_FN_RE.finditer(code):
            if not STATUS_RET_RE.match(m.group("ret")):
                other_names.add(m.group("name"))
    ambiguous = status_names & other_names
    return status_names - ambiguous, indexed, sorted(ambiguous)


def outermost_call(stmt_text):
    """If `stmt_text` ends with a call, returns (callee, prefix) where
    prefix is everything before the callee identifier; else None."""
    s = stmt_text.rstrip()
    if not s.endswith(")"):
        return None
    depth = 0
    i = len(s) - 1
    while i >= 0:
        if s[i] == ")":
            depth += 1
        elif s[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i <= 0:
        return None
    j = i - 1
    while j >= 0 and s[j].isspace():
        j -= 1
    k = j
    while k >= 0 and (s[k].isalnum() or s[k] == "_"):
        k -= 1
    name = s[k + 1:j + 1]
    if not name or name[0].isdigit():
        return None
    return name, s[:k + 1]


def prefix_is_object_expr(prefix):
    """True when `prefix` looks like a receiver expression (obj., ptr->,
    Class::, chained calls) rather than a construct that consumes the
    call's value or a declaration (`Status Foo(...)`). A receiver prefix
    is empty or ends with '.', '->', or '::'."""
    p = prefix.strip()
    if p and not (p.endswith(".") or p.endswith("->") or p.endswith("::")):
        return False
    if PREFIX_KEYWORDS_RE.search(prefix):
        return False
    flat = prefix.replace("->", "")
    if any(c in flat for c in "<>=?!+|~^%"):
        return False
    return re.fullmatch(r"[\w\s.:()\[\]*&,]*", flat) is not None


CONSUMING_SUFFIX_RE = re.compile(
    r"^\s*\.\s*(ToString|message)\s*\(")


class TrackedVar:
    __slots__ = ("name", "line", "depth", "consumed", "logged", "rel")

    def __init__(self, name, line, depth, rel):
        self.name = name
        self.line = line
        self.depth = depth
        self.consumed = False
        self.logged = False
        self.rel = rel


def check_call_sites(root, status_names, findings, counters):
    """Scans every statement in CALLSITE_DIRS for discarded, swallowed,
    and (void)-cast status returns."""
    for top in CALLSITE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(root)
            raw = path.read_text(encoding="utf-8")
            raw_lines = raw.splitlines()
            code = strip_code(raw)
            stmts = split_statements(code)
            audit_file_statements(rel, raw_lines, stmts, status_names,
                                  findings, counters)


def audit_file_statements(rel, raw_lines, stmts, status_names, findings,
                          counters):
    tracked = []  # active TrackedVar, innermost-last
    depth = 0
    for st in stmts:
        if st.terminator == "}":
            depth = len(st.scope_path)
            still = []
            for v in tracked:
                if v.depth > depth:
                    finalize_var(v, findings, counters, raw_lines)
                else:
                    still.append(v)
            tracked = still
            continue
        depth = len(st.scope_path)
        text = re.sub(r"^(?:public|private|protected)\s*:\s*", "", st.text)
        in_function = bool(st.scope_path) and st.scope_path[-1] == "block"

        # Occurrences of tracked variables (any statement kind).
        for v in tracked:
            classify_occurrences(v, text)

        if st.terminator != ";":
            continue

        # (void) / static_cast<void> suppressions — either as the whole
        # statement or embedded after a control header:
        #   if (cond) (void)store.AddEdge(...);
        void_m = re.search(r"(?:\(\s*void\s*\)|static_cast\s*<\s*void\s*>"
                           r"\s*\()\s*(.*)$", text, re.DOTALL)
        if void_m:
            body = void_m.group(1).strip()
            names_called = set(re.findall(r"(\w+)\s*\(", body))
            is_status_var = any(v.name == body.rstrip(")")
                                for v in tracked)
            if names_called & status_names or is_status_var:
                if line_has_marker(raw_lines, st.line, "status"):
                    counters["suppressed_status"] += 1
                else:
                    findings.append(
                        (rel, st.line, "void-cast",
                         "status suppressed with a bare (void) cast — "
                         "propagate it, or annotate the line with "
                         "// audit:allow(status, <reason>)"))
            continue

        # New status-variable declarations (function scope only).
        if in_function:
            dm = DECL_STMT_RE.match(text)
            if dm:
                is_status_type = dm.group("type") != "auto"
                rhs = dm.group("rhs") or ""
                rhs_calls = set(re.findall(r"(\w+)\s*\(", rhs))
                if is_status_type or (rhs_calls & status_names):
                    if is_status_type or not STATUS_RET_RE.match(rhs):
                        v = TrackedVar(dm.group("name"), st.line, depth, rel)
                        tracked.append(v)
                        continue

        # Statement-level discard of an indexed call.
        oc = outermost_call(text)
        if oc:
            name, prefix = oc
            if name in status_names and prefix_is_object_expr(prefix):
                if line_has_marker(raw_lines, st.line, "status"):
                    counters["suppressed_status"] += 1
                else:
                    findings.append(
                        (rel, st.line, "discard",
                         f"return of {name}() (Status/Result) discarded at "
                         "statement level — check it, propagate it, or "
                         "annotate with // audit:allow(status, <reason>)"))

    for v in tracked:
        finalize_var(v, findings, counters, raw_lines)


def classify_occurrences(v, text):
    for m in re.finditer(rf"\b{re.escape(v.name)}\b", text):
        after = text[m.end():]
        before = text[:m.start()]
        if CONSUMING_SUFFIX_RE.match(after):
            v.logged = True  # formatting only: logged-and-ignored
            continue
        if re.match(r"^\s*=[^=]", after) and before.strip() in ("", "(void)"):
            continue  # overwrite; still unconsumed
        if re.search(r"\(\s*void\s*\)\s*$", before):
            continue  # (void)var — the void-cast check owns this
        v.consumed = True


def finalize_var(v, findings, counters, raw_lines):
    if v.consumed:
        return
    if line_has_marker(raw_lines, v.line, "status"):
        counters["suppressed_status"] += 1
        return
    how = ("only formatted (.ToString()/.message()) — logged and ignored"
           if v.logged else "never read again")
    findings.append(
        (v.rel, v.line, "swallow",
         f"status assigned to '{v.name}' but {how}: branch on it, "
         "propagate it, or annotate with // audit:allow(status, <reason>)"))


# --------------------------------------------------------------------------
# Pass B: annotation coverage
# --------------------------------------------------------------------------

class ClassInfo:
    __slots__ = ("name", "line", "rel", "mutexes", "fields", "methods")

    def __init__(self, name, line, rel):
        self.name = name
        self.line = line
        self.rel = rel
        self.mutexes = []
        self.fields = []   # (line, name, text)
        self.methods = []  # (line, name, text, access)


def parse_classes(rel, stmts):
    """Walks the statement list, collecting member declarations for each
    class/struct scope."""
    classes = []
    stack = []  # (ClassInfo or None, access)
    for st in stmts:
        if st.terminator == "{":
            kind = None
            m = TYPE_OPEN_RE.match(st.text)
            if m and m.group(1) in ("class", "struct"):
                name_m = re.search(
                    r"\b(?:class|struct)\s+(?:\[\[\w+\]\]\s*)?(\w+)", st.text)
                if name_m:
                    info = ClassInfo(name_m.group(1), st.line, rel)
                    classes.append(info)
                    default_access = ("private" if m.group(1) == "class"
                                      else "public")
                    stack.append((info, [default_access]))
                    continue
                kind = "anon-type"
            stack.append((None, ["public"]) if kind else (None, ["public"]))
            # Non-type scopes (functions, namespaces) get a None entry so
            # depth bookkeeping stays aligned.
            if len(stack) != len(st.scope_path) + 1:
                # classify_opener and this walk can disagree transiently;
                # re-sync to the splitter's scope depth.
                while len(stack) > len(st.scope_path) + 1:
                    stack.pop()
            continue
        if st.terminator == "}":
            while len(stack) > len(st.scope_path):
                stack.pop()
            continue
        if not stack:
            continue
        owner, access_box = stack[-1]
        text = st.text
        am = re.match(r"^(public|private|protected)\s*:\s*(.*)$", text,
                      re.DOTALL)
        if am:
            access_box[0] = am.group(1)
            text = am.group(2).strip()
            if not text:
                continue
        if owner is None or not text:
            continue
        record_member(owner, st.line, text, access_box[0])
    return classes


def record_member(owner, line, text, access):
    mm = MUTEX_MEMBER_RE.match(text)
    if mm:
        owner.mutexes.append((line, mm.group(2)))
        return
    if MEMBER_SKIP_RE.match(text) or text.startswith("~"):
        return
    if re.search(r"\boperator\b", text):
        return  # operator overloads (assignment, comparison, ...)
    if "= delete" in text or "= default" in text:
        return
    probe = re.sub(r"\b(?:GUARDED_BY|PT_GUARDED_BY|ACQUIRED_BEFORE|"
                   r"ACQUIRED_AFTER)\s*\([^)]*\)", "", text)
    probe = re.sub(r"\{[^{}]*\}", "", probe)       # brace initializers
    probe = re.sub(r"=\s*[^;]*$", "", probe).strip()  # assignments/init
    call_m = re.search(r"(\w+)\s*\(", probe)
    if call_m:
        owner.methods.append((line, call_m.group(1), text, access))
        return
    name_m = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*$", probe)
    if name_m:
        owner.fields.append((line, name_m.group(1), text))


def field_is_exempt(text):
    """Immutable members and self-synchronized types need no guard."""
    flat = " ".join(text.split())
    if MUTEX_MEMBER_RE.match(flat):
        return True
    # A const value member is immutable. A const *pointer* only freezes
    # the pointer, so it is exempt only when the pointee synchronizes
    # itself (metrics) — otherwise PT_GUARDED_BY is required.
    is_pointer = "*" in flat
    is_const = bool(re.match(r"^(?:mutable\s+)?const\b", flat)) or \
        bool(re.search(r"\*\s*const\b", flat)) or \
        (not is_pointer and re.search(r"\bconst\b", flat))
    pointee = re.match(r"^(?:mutable\s+)?(?:const\s+)?(?:hermes::)?(\w+)",
                       flat)
    if pointee and pointee.group(1) in SELF_SYNC_TYPES:
        return True
    if is_const and not is_pointer:
        return True
    if is_pointer and is_const:
        m = re.match(r"^(?:mutable\s+)?(?:const\s+)?(?:hermes::)?(\w+)", flat)
        if m and m.group(1) in SELF_SYNC_TYPES:
            return True
    return False


def check_annotation_coverage(root, findings, counters):
    classes_seen = 0
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root)
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code = strip_code(raw)
        for info in parse_classes(rel, split_statements(code)):
            if not info.mutexes:
                continue
            classes_seen += 1
            for line, name, text in info.fields:
                if GUARD_ANNOTATION_RE.search(text):
                    continue
                if field_is_exempt(text):
                    continue
                if line_has_marker(raw_lines, line, "guard"):
                    counters["suppressed_guard"] += 1
                    continue
                findings.append(
                    (rel, line, "unguarded-field",
                     f"{info.name}::{name} is a mutable member of a "
                     "Mutex-owning class without GUARDED_BY/PT_GUARDED_BY "
                     "— annotate it, or mark "
                     "// audit:allow(guard, <reason>)"))
            for line, name, text, access in info.methods:
                if access != "public":
                    continue
                if name == info.name:  # constructor
                    continue
                if re.match(r"^(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+)?"
                            r"static\b", text):
                    continue
                if LOCK_ANNOTATIONS_RE.search(text):
                    continue
                if line_has_marker(raw_lines, line, "guard"):
                    counters["suppressed_guard"] += 1
                    continue
                findings.append(
                    (rel, line, "unannotated-method",
                     f"{info.name}::{name}() is public in a Mutex-owning "
                     "class but carries no lock annotation (EXCLUDES/"
                     "REQUIRES/...) — annotate it, or mark "
                     "// audit:allow(guard, <reason>)"))
    return classes_seen


# --------------------------------------------------------------------------

def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    json_path = None
    for i, a in enumerate(argv):
        if a == "--json" and i + 1 < len(argv):
            json_path = Path(argv[i + 1])
        elif a.startswith("--json="):
            json_path = Path(a.split("=", 1)[1])
    json_arg = {str(json_path)} if json_path else set()
    args = [a for a in args if a not in json_arg]
    root = Path(args[0]).resolve() if args else Path.cwd()
    if not (root / "src").is_dir():
        print(f"status_audit.py: no src/ directory under {root}",
              file=sys.stderr)
        return 2

    findings = []
    counters = {"suppressed_status": 0, "suppressed_guard": 0}

    status_names, indexed, ambiguous = index_status_functions(root, findings)
    check_call_sites(root, status_names, findings, counters)
    classes_seen = check_annotation_coverage(root, findings, counters)

    marker_counts = {"status": 0, "guard": 0}
    for top in CALLSITE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            rel = path.relative_to(root)
            c = collect_markers(path.read_text(encoding="utf-8").splitlines(),
                                findings, rel)
            marker_counts["status"] += c["status"]
            marker_counts["guard"] += c["guard"]

    by_kind = {}
    for _, _, kind, _ in findings:
        by_kind[kind] = by_kind.get(kind, 0) + 1

    summary = {
        "schema": 1,
        "functions_indexed": indexed,
        "callsite_names": len(status_names),
        "ambiguous_names_skipped": ambiguous,
        "mutex_owning_classes": classes_seen,
        "findings_total": len(findings),
        "findings_by_kind": by_kind,
        "suppressions": marker_counts,
        "findings": [
            {"file": str(rel), "line": line, "kind": kind, "message": msg}
            for rel, line, kind, msg in sorted(findings)
        ],
    }
    if json_path:
        json_path.write_text(json.dumps(summary, indent=2) + "\n",
                             encoding="utf-8")

    if findings:
        print(f"status_audit.py: {len(findings)} finding(s):")
        for rel, line, kind, msg in sorted(findings):
            print(f"  {rel}:{line}: [{kind}] {msg}")
        print(f"summary: {json.dumps(summary['findings_by_kind'])} "
              f"suppressions={json.dumps(marker_counts)}")
        return 1
    print(f"status_audit.py: clean — {indexed} status-returning functions, "
          f"{classes_seen} mutex-owning classes, "
          f"suppressions: status={marker_counts['status']} "
          f"guard={marker_counts['guard']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
