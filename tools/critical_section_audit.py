#!/usr/bin/env python3
"""Blocking-call-under-lock audit; the `critical_section_audit` ctest.

PR 7 made the durable hot path fast precisely by moving every write/fsync
outside `wal.mu` and every page I/O outside the sharded cache locks.
Nothing enforced that invariant: one contributor re-introducing an
fsync-under-mutex silently erases the group-commit win. This tool makes
the no-blocking-under-lock contract machine-checked, in the same
pure-Python-over-the-tree style as status_audit.py (no LLVM, never
skips). The runtime half of the contract is the lock profiler
(common/lock_order.h, HERMES_LOCK_PROFILING): hold-time histograms in the
bench reports confirm what this tool proves statically.

Pass A — blocking calls under a lock (src/ only):
  * reconstructs critical sections per translation unit: RAII guards
    (MutexLock / ReaderMutexLock / WriterMutexLock / std::lock_guard /
    std::unique_lock / std::scoped_lock / std::shared_lock) held to the
    end of their enclosing block, explicit X.Lock()/X.LockShared() until
    the matching X.Unlock()/X.UnlockShared(), and REQUIRES /
    REQUIRES_SHARED function contracts held for the whole body;
  * flags, inside any critical section:
      - raw syscalls       ::write ::pread ::pwrite ::fsync ::fdatasync
                           ::open ::close ::ftruncate
      - stream I/O         std::cout/cerr/clog, std::{i,o,}fstream
      - std::filesystem::  operations
      - sleeps             sleep_for / sleep_until / usleep / nanosleep
      - blocking methods   declared in tools/blocking_calls.json, matched
                           by receiver type (variable declarations in the
                           file and its same-stem header), by explicit
                           Class::Method() qualification, by bare calls
                           inside the class's own methods, and — only
                           when the name is repo-wide unambiguous — by
                           untyped receivers
      - condvar waits      X.Wait(&m) / X.WaitUntil(&m, ...) / cv.wait(l)
                           are legal for the mutex they release but a
                           finding for every *other* held lock
                           (foreign-condvar: a wait parks the thread
                           while the foreign lock stays held).

Pass B — contract drift (src/ only): every function whose body directly
contains a blocking primitive, a condvar wait, or a call to a declared
blocking method/free function must itself be declared in
tools/blocking_calls.json ('blocking' or 'conditional'), so the call
list stays curated rather than regex-drifting. Constructors,
destructors, operators, and main() are exempt.

Suppression is explicit and audited: a Pass A finding is allowed only by
a marker on the offending line (or the line above)

    // audit:allow(blocking, <reason>)

The reason is mandatory (an empty reason is itself a finding); marked
lines also do not count as Pass B evidence (a reasoned suppression says
the blocking is deliberate and contained). The tool counts markers in
the --json summary so suppressions can be ratcheted down over time.

Usage: tools/critical_section_audit.py [repo_root] [--json PATH]
       (exit 0 = zero unsuppressed findings, 1 = findings, 2 = bad tree
        or unreadable contract file)
"""

import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from status_audit import split_statements, strip_code  # noqa: E402

SOURCE_SUFFIXES = (".h", ".cc", ".cpp")
CONTRACT_REL = Path("tools") / "blocking_calls.json"

MARKER_RE = re.compile(r"audit:allow\(\s*(\w+)\s*,?\s*([^)]*)\)")
MARKER_START_RE = re.compile(r"audit:allow\(\s*(\w+)\s*,?")

RAW_SYSCALL_RE = re.compile(
    r"(?<![\w:])::(write|pread|pwrite|fsync|fdatasync|open|close|"
    r"ftruncate)\s*\(")
STREAM_IO_RE = re.compile(r"\bstd::(cout|cerr|clog|ifstream|ofstream|fstream)\b")
FILESYSTEM_RE = re.compile(r"\bstd::filesystem::\w+")
SLEEP_RE = re.compile(r"\b(sleep_for|sleep_until|usleep|nanosleep)\s*\(")

RAII_LOCK_RE = re.compile(
    r"^(?:hermes::)?"
    r"(?P<guard>MutexLock|ReaderMutexLock|WriterMutexLock|"
    r"std::lock_guard\s*<[^>]*>|std::scoped_lock(?:\s*<[^>]*>)?|"
    r"std::unique_lock\s*<[^>]*>|std::shared_lock\s*<[^>]*>)\s+"
    r"(?P<var>\w+)\s*\(\s*(?P<args>.*)\s*\)$",
    re.DOTALL)
EXPLICIT_LOCK_RE = re.compile(
    r"^(?P<expr>[\w.>\-\[\]]+?)(?:\.|->)(?P<m>Lock|LockShared|lock)\s*\(\s*\)$")
EXPLICIT_UNLOCK_RE = re.compile(
    r"^(?P<expr>[\w.>\-\[\]]+?)(?:\.|->)"
    r"(?P<m>Unlock|UnlockShared|unlock)\s*\(\s*\)$")
REQUIRES_RE = re.compile(r"\b(?:REQUIRES|REQUIRES_SHARED)\s*\(([^)]*)\)")

CALL_RE = re.compile(r"(?P<prefix>(?:\w+\s*(?:\.|->|::)\s*)*)(?P<name>[\w~]+)\s*\(")
CPP_KEYWORDS = frozenset(
    "if while for switch return sizeof catch new delete throw "
    "static_assert alignof decltype typeid co_await co_return co_yield "
    "static_cast dynamic_cast reinterpret_cast const_cast assert "
    "defined".split())
WAIT_METHODS = frozenset(
    ("Wait", "WaitUntil", "WaitFor", "wait", "wait_until", "wait_for"))

TYPE_OPEN_RE = re.compile(r"^(?:template\s*<[^{]*>\s*)?(class|struct|union|enum)\b")


def norm_lock_expr(expr):
    """Normalizes a mutex expression for matching: strips &/*/whitespace/
    this->, unifies -> to '.'."""
    e = re.sub(r"\s+", "", expr)
    e = e.lstrip("&*")
    e = e.replace("->", ".")
    if e.startswith("this."):
        e = e[len("this."):]
    return e


def marker_reason(raw_lines, start_ln):
    """Extracts the reason of the audit:allow(blocking, ...) marker that
    *starts* on 1-based `start_ln`, joining adjacent `//` continuation
    lines until the closing paren. Returns None for an unterminated
    marker (treated the same as a missing reason)."""
    m = MARKER_START_RE.search(raw_lines[start_ln - 1])
    rest = raw_lines[start_ln - 1][m.end():]
    parts = []
    ln = start_ln
    while True:
        if ")" in rest:
            parts.append(rest[: rest.index(")")])
            return " ".join(" ".join(parts).split())
        parts.append(rest)
        ln += 1
        if ln > len(raw_lines):
            return None
        nxt = raw_lines[ln - 1].strip()
        if not nxt.startswith("//"):
            return None
        rest = nxt[2:]


def marker_on(raw_lines, line_no):
    """Returns the reason string of an audit:allow(blocking, ...) marker
    covering `line_no` — inline on the line itself, or in the comment
    block immediately above it (the reason may wrap across `//` lines) —
    else None."""
    if 1 <= line_no <= len(raw_lines):
        m = MARKER_START_RE.search(raw_lines[line_no - 1])
        if m and m.group(1) == "blocking":
            return marker_reason(raw_lines, line_no) or ""
    ln = line_no - 1
    while ln >= 1:
        stripped = raw_lines[ln - 1].strip()
        if not stripped.startswith("//"):
            break
        m = MARKER_START_RE.search(stripped)
        if m and m.group(1) == "blocking":
            return marker_reason(raw_lines, ln) or ""
        ln -= 1
    return None


def collect_markers(raw_lines, findings, rel):
    """Counts blocking markers and flags reason-less ones. Markers of
    other kinds (status/guard) belong to status_audit.py and are ignored."""
    count = 0
    for i, ln in enumerate(raw_lines, 1):
        for m in MARKER_START_RE.finditer(ln):
            if m.group(1) != "blocking":
                continue
            count += 1
            if not marker_reason(raw_lines, i):
                findings.append(
                    (rel, i, "marker",
                     "audit:allow(blocking) without a reason — say why "
                     "holding the lock across this call is sound"))
    return count


def load_contract(root, findings):
    """Loads and validates tools/blocking_calls.json. Returns None on a
    hard error (missing/unparseable → exit 2)."""
    path = root / CONTRACT_REL
    if not path.is_file():
        print(f"critical_section_audit.py: missing contract file "
              f"{CONTRACT_REL}", file=sys.stderr)
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"critical_section_audit.py: cannot parse {CONTRACT_REL}: "
              f"{exc}", file=sys.stderr)
        return None
    contract = {
        "blocking": {}, "conditional": {}, "free_functions": set(),
        "exempt_files": set(),
    }
    for section in ("blocking", "conditional"):
        table = data.get(section, {})
        if not isinstance(table, dict):
            findings.append((CONTRACT_REL, 1, "contract",
                             f"'{section}' must be an object of "
                             "Class -> [methods]"))
            continue
        for cls, methods in table.items():
            if (not isinstance(methods, list)
                    or not all(isinstance(m, str) for m in methods)):
                findings.append((CONTRACT_REL, 1, "contract",
                                 f"'{section}.{cls}' must be a list of "
                                 "method names"))
                continue
            contract[section][cls] = set(methods)
    free = data.get("free_functions", [])
    if (not isinstance(free, list)
            or not all(isinstance(f, str) for f in free)):
        findings.append((CONTRACT_REL, 1, "contract",
                         "'free_functions' must be a list of names"))
    else:
        contract["free_functions"] = set(free)
    exempt = data.get("exempt_files", [])
    if (not isinstance(exempt, list)
            or not all(isinstance(f, str) for f in exempt)):
        findings.append((CONTRACT_REL, 1, "contract",
                         "'exempt_files' must be a list of paths"))
    else:
        contract["exempt_files"] = set(exempt)
    contract["classes"] = set(contract["blocking"]) | set(contract["conditional"])
    return contract


def type_scope_name(text):
    """Extracts the type name from a class/struct opener, skipping
    attribute macros (CAPABILITY(...), SCOPED_CAPABILITY, final)."""
    head = text
    for i, c in enumerate(text):
        if c == ":" and not (i + 1 < len(text) and text[i + 1] == ":") \
                and not (i > 0 and text[i - 1] == ":"):
            head = text[:i]
            break
    idents = re.findall(r"[A-Za-z_]\w*", head)
    skip = {"template", "typename", "class", "struct", "union", "enum",
            "final", "alignas", "CAPABILITY", "SCOPED_CAPABILITY", "mutex",
            "shared_mutex"}
    names = [w for w in idents if w not in skip]
    return names[-1] if names else None


def opener_function(text):
    """If a '{' opener introduces a function body, returns
    (qualifier_class_or_None, name); else None. Control-flow and lambda
    openers return None."""
    if "=" in text.split("(")[0]:
        return None  # `auto fn = [&]` and other initializers
    m = re.search(r"((?:\w+\s*::\s*)*)([\w~]+)\s*\(", text)
    if not m:
        return None
    name = m.group(2)
    if name in CPP_KEYWORDS or name in ("lambda",):
        return None
    quals = [q for q in re.findall(r"\w+", m.group(1))]
    cls = quals[-1] if quals else None
    return cls, name


def build_var_types(code, classes):
    """Maps variable names to contract class names from declarations in
    comment-stripped code: `FdAppender file_`, `WriteAheadLog* wal`,
    `std::unique_ptr<ThreadPool> pool_`, `Result<WriteAheadLog> wal`."""
    types = {}
    for cls in classes:
        pat = re.compile(
            r"\b" + re.escape(cls) +
            r"\b(?!\s*::)(?:\s*<[^<>]*>)?\s*(?:[*&>]\s*)*"
            r"\b(?!const\b|operator\b)(\w+)\b(?!\s*\()")
        for m in pat.finditer(code):
            types[m.group(1)] = cls
    return types


def balanced_args(text, open_idx):
    """Returns the argument substring for the '(' at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:i]
    return text[open_idx + 1:]


def first_arg(args):
    """First top-level argument of a call, or ''. """
    depth = 0
    for i, c in enumerate(args):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            return args[:i].strip()
    return args.strip()


class LockEntry:
    __slots__ = ("norm", "display", "var", "frame")

    def __init__(self, norm, display, var, frame):
        self.norm = norm
        self.display = display
        self.var = var      # RAII guard variable (unique_lock handoff)
        self.frame = frame  # frame index the hold belongs to


def held_display(held):
    return ", ".join(h.display for h in held)


class Auditor:
    def __init__(self, root, contract):
        self.root = root
        self.contract = contract
        self.findings = []
        self.suppressed = 0
        self.files_scanned = 0
        # (class_or_None, fn) -> list of (rel, line, what): Pass B input.
        self.evidence = {}
        # method name -> set of classes declaring it (repo-wide prescan).
        self.method_classes = {}
        # (class, method) -> REQUIRES expressions from the in-class
        # declaration, applied to out-of-line definitions whose opener
        # does not repeat the annotation.
        self.requires_map = {}
        self._cache = {}  # rel -> (raw_lines, code, stmts)

    # -- shared parsing ----------------------------------------------------

    def parsed(self, path):
        rel = path.relative_to(self.root)
        if rel not in self._cache:
            raw = path.read_text(encoding="utf-8")
            code = strip_code(raw)
            self._cache[rel] = (raw.splitlines(), code,
                               split_statements(code))
        return self._cache[rel]

    def src_files(self):
        for path in sorted((self.root / "src").rglob("*")):
            if path.suffix in SOURCE_SUFFIXES:
                yield path

    # -- prescan: which classes declare each method name -------------------

    def prescan(self):
        for path in self.src_files():
            _, _, stmts = self.parsed(path)
            type_stack = []
            for st in stmts:
                if st.terminator == "{":
                    kind = self._opener_kind(st)
                    if kind == "type":
                        type_stack.append(type_scope_name(st.text))
                    else:
                        type_stack.append(None)
                    fn = opener_function(st.text)
                    if fn and fn[0]:
                        self.method_classes.setdefault(
                            fn[1], set()).add(fn[0])
                elif st.terminator == "}":
                    if type_stack:
                        type_stack.pop()
                elif st.terminator == ";":
                    cls = next((t for t in reversed(type_stack) if t), None)
                    if cls is None:
                        continue
                    m = re.search(r"([\w~]+)\s*\(", st.text)
                    if m and m.group(1) not in CPP_KEYWORDS:
                        self.method_classes.setdefault(
                            m.group(1), set()).add(cls)
                        reqs = REQUIRES_RE.findall(st.text)
                        if reqs:
                            self.requires_map.setdefault(
                                (cls, m.group(1)), []).extend(reqs)

    def _opener_kind(self, st):
        # classify_opener already ran inside split_statements; recompute
        # only the type/other distinction cheaply.
        return "type" if TYPE_OPEN_RE.match(st.text) else "other"

    def unambiguous_blocking(self, method):
        """True when every class known to declare `method` lists it as
        blocking in the contract — safe to flag on an untyped receiver."""
        declarers = self.method_classes.get(method, set())
        blocking = self.contract["blocking"]
        conditional = self.contract["conditional"]
        listed = {c for c in blocking if method in blocking[c]}
        if not listed:
            return False
        for c in declarers:
            if method in conditional.get(c, set()):
                return False  # conditional somewhere: receiver type matters
            if c not in listed:
                return False
        return True

    # -- Pass A + evidence walk --------------------------------------------

    def audit_file(self, path):
        rel = path.relative_to(self.root)
        if str(rel) in self.contract["exempt_files"]:
            return
        self.files_scanned += 1
        raw_lines, code, stmts = self.parsed(path)
        var_types = build_var_types(code, self.contract["classes"])
        header = path.with_suffix(".h")
        if path.suffix != ".h" and header.is_file():
            _, hcode, _ = self.parsed(header)
            for var, cls in build_var_types(
                    hcode, self.contract["classes"]).items():
                var_types.setdefault(var, cls)

        frames = []  # parallel to open scopes
        held = []    # LockEntry list

        for st in stmts:
            if st.terminator == "{":
                self.analyze(rel, raw_lines, st, held, frames, var_types)
                kind = self._opener_kind(st)
                frame = {"kind": kind, "type": None, "fn": None}
                if kind == "type":
                    frame["type"] = type_scope_name(st.text)
                else:
                    fn = opener_function(st.text)
                    if fn:
                        cls = fn[0] or self._enclosing_type(frames)
                        frame["fn"] = (cls, fn[1])
                frames.append(frame)
                requires = REQUIRES_RE.findall(st.text)
                if not requires and frame["fn"] and frame["fn"][0]:
                    requires = self.requires_map.get(frame["fn"], [])
                for exprs in requires:
                    for expr in exprs.split(","):
                        expr = expr.strip()
                        if expr:
                            held.append(LockEntry(
                                norm_lock_expr(expr), expr + " [REQUIRES]",
                                None, len(frames) - 1))
            elif st.terminator == "}":
                depth = len(frames) - 1
                held = [h for h in held if h.frame < depth]
                if frames:
                    frames.pop()
            else:
                text = st.text.strip()
                m = RAII_LOCK_RE.match(text)
                if m:
                    shared = "Reader" in m.group("guard") or \
                        "shared_lock" in m.group("guard")
                    for arg in self._split_args(m.group("args")):
                        expr = norm_lock_expr(arg)
                        if not expr:
                            continue
                        label = arg.strip() + (" [shared]" if shared else "")
                        held.append(LockEntry(expr, label, m.group("var"),
                                              len(frames) - 1))
                    continue
                m = EXPLICIT_LOCK_RE.match(text)
                if m:
                    expr = m.group("expr")
                    held.append(LockEntry(
                        norm_lock_expr(expr),
                        expr + ("" if m.group("m") != "LockShared"
                                else " [shared]"),
                        None, len(frames) - 1))
                    continue
                m = EXPLICIT_UNLOCK_RE.match(text)
                if m:
                    expr = norm_lock_expr(m.group("expr"))
                    for i in range(len(held) - 1, -1, -1):
                        if held[i].norm == expr:
                            del held[i]
                            break
                    continue
                self.analyze(rel, raw_lines, st, held, frames, var_types)

    def _enclosing_type(self, frames):
        for f in reversed(frames):
            if f["type"]:
                return f["type"]
        return None

    def _enclosing_fn(self, frames):
        for f in reversed(frames):
            if f["fn"]:
                return f["fn"]
        return None

    @staticmethod
    def _split_args(args):
        out, depth, cur = [], 0, []
        for c in args:
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth = max(0, depth - 1)
            if c == "," and depth == 0:
                out.append("".join(cur))
                cur = []
            else:
                cur.append(c)
        if cur:
            out.append("".join(cur))
        return out

    def report(self, rel, raw_lines, line, kind, message, alt_line=None):
        # A marker covers the finding line itself or — for a call on a
        # continuation line of a wrapped statement — the statement's first
        # line (`alt_line`), so the comment block above the statement
        # suppresses everything the statement does.
        reason = marker_on(raw_lines, line)
        if reason is None and alt_line is not None and alt_line != line:
            reason = marker_on(raw_lines, alt_line)
        if reason is not None:
            self.suppressed += 1
            return False
        self.findings.append((rel, line, kind, message))
        return True

    def note_evidence(self, frames, rel, line, what):
        fn = self._enclosing_fn(frames)
        if fn is None:
            return
        cls, name = fn
        if (name.startswith("~") or name.startswith("operator")
                or name == "main" or (cls is not None and name == cls)):
            return
        self.evidence.setdefault((cls, name), []).append((rel, line, what))

    def analyze(self, rel, raw_lines, st, held, frames, var_types):
        text = st.text
        if not text:
            return

        def line_of(pos):
            return st.line + text[:pos].count("\n")

        # Blocking primitives.
        for pat, label in ((RAW_SYSCALL_RE, "raw syscall"),
                           (STREAM_IO_RE, "stream I/O"),
                           (FILESYSTEM_RE, "std::filesystem operation"),
                           (SLEEP_RE, "sleep")):
            for m in pat.finditer(text):
                line = line_of(m.start())
                marked = (marker_on(raw_lines, line) is not None
                          or marker_on(raw_lines, st.line) is not None)
                if held:
                    self.report(
                        rel, raw_lines, line, "blocking-under-lock",
                        f"{label} `{m.group(0).strip().rstrip(chr(40)).strip()}` while holding "
                        f"{held_display(held)} — move the I/O outside the "
                        "critical section or mark "
                        "// audit:allow(blocking, <reason>)",
                        alt_line=st.line)
                if not marked:
                    self.note_evidence(frames, rel, line,
                                       f"{label} {m.group(0).strip().rstrip(chr(40)).strip()}")

        # Calls: condvar waits, contract methods, free functions.
        for m in CALL_RE.finditer(text):
            name = m.group("name")
            if name in CPP_KEYWORDS:
                continue
            prefix = re.sub(r"\s+", "", m.group("prefix"))
            line = line_of(m.start())
            marked = (marker_on(raw_lines, line) is not None
                      or marker_on(raw_lines, st.line) is not None)
            args = balanced_args(text, m.end() - 1)

            if name in WAIT_METHODS and prefix.endswith((".", "->")):
                arg = first_arg(args)
                if arg:
                    # Condvar wait: releases the mutex it names.
                    released = norm_lock_expr(arg)
                    foreign = [h for h in held
                               if h.norm != released and h.var != arg]
                    own = [h for h in held
                           if h.norm == released or h.var == arg]
                    if foreign and own:
                        self.report(
                            rel, raw_lines, line, "foreign-condvar",
                            f"condvar wait releases `{arg}` but the thread "
                            f"also holds {held_display(foreign)} — those "
                            "locks stay held while this thread sleeps",
                            alt_line=st.line)
                    if not marked:
                        self.note_evidence(frames, rel, line,
                                           f"condvar wait ({name})")
                    continue
                # Fall through: no-arg Wait() is a submit-and-wait style
                # blocking method (ThreadPool::Wait), matched below.

            if name == "Lock" or name == "Unlock" or name == "lock" \
                    or name == "unlock":
                continue  # lock operations are tracked, not "blocking calls"

            matched = None  # "Class::method" or "free fn"
            if prefix.endswith("::"):
                cls = re.findall(r"\w+", prefix)[-1]
                if name in self.contract["blocking"].get(cls, set()):
                    matched = f"{cls}::{name}"
                elif name in self.contract["conditional"].get(cls, set()):
                    matched = "conditional"
            elif prefix.endswith((".", "->")):
                recv = re.findall(r"\w+", prefix)
                cls = var_types.get(recv[-1]) if recv else None
                if cls is not None:
                    if name in self.contract["blocking"].get(cls, set()):
                        matched = f"{cls}::{name}"
                    elif name in self.contract["conditional"].get(cls, set()):
                        matched = "conditional"
                elif self.unambiguous_blocking(name):
                    listed = sorted(
                        c for c in self.contract["blocking"]
                        if name in self.contract["blocking"][c])
                    matched = f"{listed[0]}::{name}"
            else:
                # Bare call: this class's own methods, then free functions.
                cur = self._enclosing_fn(frames)
                cls = cur[0] if cur else None
                if cls is not None and \
                        name in self.contract["blocking"].get(cls, set()):
                    matched = f"{cls}::{name}"
                elif cls is not None and \
                        name in self.contract["conditional"].get(cls, set()):
                    matched = "conditional"
                elif name in self.contract["free_functions"]:
                    matched = f"{name} (free function)"

            if matched is None or matched == "conditional":
                continue
            if held:
                self.report(
                    rel, raw_lines, line, "blocking-under-lock",
                    f"blocking call {matched} while holding "
                    f"{held_display(held)} — move it outside the critical "
                    "section or mark // audit:allow(blocking, <reason>)",
                    alt_line=st.line)
            if not marked:
                self.note_evidence(frames, rel, line, f"call to {matched}")

    # -- Pass B: contract drift --------------------------------------------

    def check_drift(self):
        blocking = self.contract["blocking"]
        conditional = self.contract["conditional"]
        free = self.contract["free_functions"]
        for (cls, name), sites in sorted(
                self.evidence.items(), key=lambda kv: str(kv[0])):
            if cls is None:
                if name in free:
                    continue
            else:
                if name in blocking.get(cls, set()) or \
                        name in conditional.get(cls, set()):
                    continue
            rel, line, what = sites[0]
            label = f"{cls}::{name}" if cls else f"{name} (free function)"
            self.findings.append(
                (rel, line, "contract-drift",
                 f"{label} performs blocking work ({what}) but is not "
                 f"declared in {CONTRACT_REL} — add it to the contract "
                 "(or to 'conditional' if it blocks only in an opt-in "
                 "mode)"))


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    json_path = None
    for i, a in enumerate(argv):
        if a == "--json" and i + 1 < len(argv):
            json_path = Path(argv[i + 1])
        elif a.startswith("--json="):
            json_path = Path(a.split("=", 1)[1])
    json_arg = {str(json_path)} if json_path else set()
    args = [a for a in args if a not in json_arg]
    root = Path(args[0]).resolve() if args else Path.cwd()
    if not (root / "src").is_dir():
        print(f"critical_section_audit.py: no src/ directory under {root}",
              file=sys.stderr)
        return 2

    findings = []
    contract = load_contract(root, findings)
    if contract is None:
        return 2

    auditor = Auditor(root, contract)
    auditor.findings = findings
    auditor.prescan()
    for path in auditor.src_files():
        auditor.audit_file(path)
    auditor.check_drift()

    marker_count = 0
    for path in auditor.src_files():
        rel = path.relative_to(root)
        raw_lines, _, _ = auditor.parsed(path)
        marker_count += collect_markers(raw_lines, findings, rel)

    by_kind = {}
    for _, _, kind, _ in findings:
        by_kind[kind] = by_kind.get(kind, 0) + 1

    summary = {
        "schema": 1,
        "files_scanned": auditor.files_scanned,
        "contract": {
            "classes": sorted(contract["classes"]),
            "blocking_methods": sum(
                len(v) for v in contract["blocking"].values()),
            "conditional_methods": sum(
                len(v) for v in contract["conditional"].values()),
            "free_functions": sorted(contract["free_functions"]),
        },
        "findings_total": len(findings),
        "findings_by_kind": by_kind,
        "suppressions": {"blocking": marker_count,
                         "applied": auditor.suppressed},
        "findings": [
            {"file": str(rel), "line": line, "kind": kind, "message": msg}
            for rel, line, kind, msg in sorted(findings)
        ],
    }
    if json_path:
        json_path.write_text(json.dumps(summary, indent=2) + "\n",
                             encoding="utf-8")

    if findings:
        print(f"critical_section_audit.py: {len(findings)} finding(s):")
        for rel, line, kind, msg in sorted(findings):
            print(f"  {rel}:{line}: [{kind}] {msg}")
        print(f"summary: {json.dumps(by_kind)} "
              f"suppressions={marker_count}")
        return 1
    print(f"critical_section_audit.py: clean — {auditor.files_scanned} "
          f"files, {len(contract['classes'])} contract classes, "
          f"suppressions: blocking={marker_count} "
          f"(applied={auditor.suppressed})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
