#!/usr/bin/env python3
"""Zero-findings clang-tidy gate; runs as the `clang_tidy` ctest.

Runs clang-tidy (check profile: the repo's .clang-tidy) over every ``.cc``
under ``src/`` using the ``compile_commands.json`` that CMake exports into
the build directory. Any warning or error is a failure — the tree must be
clean under the curated check list, so new findings fail CI instead of
accumulating.

The CI container ships only gcc; when no clang-tidy binary is available
the script exits 77, which the ctest registration maps to SKIPPED
(SKIP_RETURN_CODE). Point CLANG_TIDY at a specific binary to override
discovery.

Usage: tools/run_clang_tidy.py <repo_root> <build_dir>
"""

import concurrent.futures
import os
import shutil
import subprocess
import sys
from pathlib import Path

SKIP_EXIT = 77


def find_clang_tidy():
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(21, 13, -1)]
    for name in candidates:
        if shutil.which(name):
            return name
    return None


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1]).resolve()
    build_dir = Path(argv[2]).resolve()

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy.py: no clang-tidy binary found (set CLANG_TIDY "
              "or install an LLVM toolchain) — skipping")
        return SKIP_EXIT
    if not (build_dir / "compile_commands.json").exists():
        print(f"run_clang_tidy.py: {build_dir}/compile_commands.json missing "
              "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    sources = sorted(str(p) for p in (root / "src").rglob("*.cc"))
    if not sources:
        print("run_clang_tidy.py: no sources under src/", file=sys.stderr)
        return 2

    def run_one(source):
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", source],
            capture_output=True, text=True)
        findings = [
            line for line in proc.stdout.splitlines()
            if " warning: " in line or " error: " in line
        ]
        return source, findings, proc.returncode

    total_findings = []
    workers = min(8, os.cpu_count() or 1)
    with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
        for source, findings, _ in pool.map(run_one, sources):
            if findings:
                total_findings.extend(findings)
                print(f"-- {os.path.relpath(source, root)}: "
                      f"{len(findings)} finding(s)")

    if total_findings:
        print(f"run_clang_tidy.py: {len(total_findings)} finding(s):")
        for line in total_findings:
            print(f"  {line}")
        return 1
    print(f"run_clang_tidy.py: clean ({len(sources)} files, {tidy})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
