#!/usr/bin/env python3
"""Repo lint for the hermes codebase; runs as the `repo_lint` ctest.

Checks (all over `src/`, the shipped library code):

  1. include guards: every header uses the canonical
     HERMES_<PATH>_H_ guard (``#ifndef`` / ``#define`` as the first
     preprocessor conditional).
  2. header hygiene: no ``#pragma once`` and no ``using namespace std``
     in headers.
  3. locking discipline: no raw ``std::mutex`` / ``std::condition_variable``
     (or the ``std::*lock*`` RAII helpers) outside
     src/common/thread_annotations.h — shared state must use the annotated
     Mutex/MutexLock/CondVar wrappers so clang -Wthread-safety sees it.
  4. build completeness: every ``.cc`` under src/ is listed in a
     CMakeLists.txt **by its src-relative path** (basename matches are
     not accepted: a file in the wrong directory, or a stale same-named
     entry, must not satisfy the check), so nothing silently drops out
     of the library.
  5. metrics discipline: no ad-hoc ``std::atomic`` members outside the
     metrics registry (src/common/metrics.h) and the few pre-existing
     ID/log-level atomics — counters belong in MetricsRegistry so they
     show up in MetricsSnapshot() and the BENCH_*.json reports.
  6. determinism (src/sim and src/partition only): the paper's
     evaluation is reproducible because the simulator and the
     repartitioners are deterministic, so inside those modules the lint
     bans nondeterminism sources outright — ``std::random_device``,
     ``rand()``/``srand()``, wall/steady clocks
     (``system_clock``/``steady_clock``/``high_resolution_clock``,
     ``time(nullptr)``), any ``std::unordered_*`` container (iteration
     order is implementation-defined and has already leaked into
     tie-breaks once; use sorted containers or sort before iterating),
     and pointer-keyed ``map``/``set`` (iteration order = allocation
     order). A line may carry ``// lint:allow(determinism)`` after an
     audited review to suppress, stating why.
  7. failpoint containment: ``HERMES_FAILPOINT*`` macros may appear only
     in the storage stack (src/storage/, src/graphdb/), the message
     layer's delivery boundary (src/net/), and in the registry itself
     (src/common/failpoint.{h,cc}) — fault injection is a
     storage-recovery and message-delivery tool, not a general
     control-flow mechanism.
  8. failpoints stay out of release builds: the ``HERMES_FAILPOINTS``
     CMake option must default OFF, and only sanitizer presets
     (name contains "san") may turn it ON in CMakePresets.json.
  9. durable writes go through the fd appender (src/storage/ only):
     ``std::ofstream`` / ``std::fstream`` are banned there because
     ostream flushes reach the OS page cache, not the disk — a
     "durable" path built on them silently cannot fsync. Writes go
     through storage/fd_appender.h (or raw pwrite as in PagedFile);
     read-only ``std::ifstream`` (e.g. the WAL scanner) stays allowed.
  10. idempotency-token discipline: outside src/net/, no code may mint
     or increment a ``request_id`` — the id is the mutation's
     idempotency token and a caller-side retry loop with fresh ids
     silently reintroduces double-apply. Echoing (``reply.request_id =
     env->request_id``) and configuring ``first_request_id`` stay
     allowed; everything else routes through MessageBus::Call.

Usage: tools/lint.py [repo_root]   (exit 0 = clean, 1 = findings)
"""

import json
import re
import sys
from pathlib import Path

# Raw-synchronization tokens banned outside the annotated wrapper. The
# lock-RAII types are included: locking an annotated Mutex through
# std::unique_lock would hide the acquisition from thread-safety analysis.
RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
USING_NAMESPACE_STD_RE = re.compile(r"^\s*using\s+namespace\s+std\s*;")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")
PREPROC_COND_RE = re.compile(r"^\s*#\s*(if|ifdef|ifndef)\b")

ALLOWED_RAW_SYNC = {
    Path("src/common/thread_annotations.h"),
    # The lock-order validator cannot use the annotated Mutex it
    # instruments (it would recurse into its own hooks).
    Path("src/common/lock_order.cc"),
}

# Ad-hoc atomics hide state from the observability layer; new counters and
# gauges go through MetricsRegistry (src/common/metrics.h). The allowlist
# covers the registry itself plus the pre-existing non-metric atomics
# (ID generation, the log-level flag).
ATOMIC_RE = re.compile(r"std::atomic\b")
ALLOWED_ATOMIC = {
    Path("src/common/metrics.h"),
    Path("src/common/logging.cc"),
    Path("src/storage/id_generator.h"),
    Path("src/txn/transaction.h"),
    # The lock profiler is the observability layer's own plumbing: it
    # instruments the Mutex itself, so it cannot report through the
    # registry's mutex-guarded histograms without recursing. Its stats
    # are merged into MetricsRegistry::Snapshot() instead.
    Path("src/common/lock_order.h"),
    Path("src/common/lock_order.cc"),
    Path("src/common/thread_annotations.h"),
}


def strip_comments(text):
    """Removes // and /* */ comments (string literals are rare enough in
    this codebase that we accept the imprecision)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def expected_guard(rel):
    return "HERMES_" + re.sub(r"[^A-Za-z0-9]", "_", str(rel.relative_to("src"))).upper() + "_"


def check_include_guard(rel, lines, findings):
    guard = expected_guard(rel)
    ifndef = None
    for line in lines:
        m = PREPROC_COND_RE.match(line)
        if m:
            ifndef = IFNDEF_RE.match(line)
            break
    if not ifndef:
        findings.append(f"{rel}: missing include guard (expected {guard})")
        return
    if ifndef.group(1) != guard:
        findings.append(
            f"{rel}: include guard {ifndef.group(1)} should be {guard}")
        return
    for line in lines:
        m = DEFINE_RE.match(line)
        if m:
            if m.group(1) != guard:
                findings.append(
                    f"{rel}: #define {m.group(1)} does not match guard {guard}")
            return
    findings.append(f"{rel}: include guard {guard} is never #defined")


def check_header_hygiene(rel, lines, findings):
    for i, line in enumerate(lines, 1):
        if PRAGMA_ONCE_RE.match(line):
            findings.append(f"{rel}:{i}: #pragma once (use HERMES_*_H_ guards)")
        if USING_NAMESPACE_STD_RE.match(line):
            findings.append(f"{rel}:{i}: 'using namespace std' in a header")


def check_raw_sync(rel, text, findings):
    if rel in ALLOWED_RAW_SYNC:
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = RAW_SYNC_RE.search(line)
        if m:
            findings.append(
                f"{rel}:{i}: raw std::{m.group(1)} — use the annotated "
                "Mutex/MutexLock/CondVar from common/thread_annotations.h")


# Real sleeps stall the single simulated "network" thread pool and make
# tests wall-clock-dependent. The only legitimate in-tree sleep is the
# cluster's opt-in remote-hop latency model (Options::read_hop_latency_us),
# which defaults to off and exists so the concurrency benches are
# latency-bound rather than CPU-bound.
SLEEP_RE = re.compile(r"\bsleep_(for|until)\b")
ALLOWED_SLEEP = {
    Path("src/cluster/hermes_cluster.cc"),
}


def check_real_sleeps(rel, text, findings):
    if rel in ALLOWED_SLEEP:
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = SLEEP_RE.search(line)
        if m:
            findings.append(
                f"{rel}:{i}: real sleep_{m.group(1)} in src/ — sleeps belong "
                "behind an Options knob (see Options::read_hop_latency_us); "
                "use the simulator clock for timing logic")


def check_adhoc_atomics(rel, text, findings):
    if rel in ALLOWED_ATOMIC:
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        if ATOMIC_RE.search(line):
            findings.append(
                f"{rel}:{i}: ad-hoc std::atomic — counters/gauges belong in "
                "MetricsRegistry (common/metrics.h) so they appear in "
                "MetricsSnapshot() and BENCH_*.json")


def check_cmake_lists_all_sources(root, findings):
    cmake_text = ""
    for cmake in (root / "src").rglob("CMakeLists.txt"):
        cmake_text += cmake.read_text(encoding="utf-8")
    listed = set(re.findall(r"[\w./-]+\.cc\b", cmake_text))
    for cc in sorted((root / "src").rglob("*.cc")):
        # Match on the src-relative path only. A bare-name fallback would
        # let a file in the wrong directory (or a stale same-named entry
        # in another module's list) pass — tests/lint_selftest.py keeps a
        # regression fixture for exactly that.
        rel_to_src = cc.relative_to(root / "src").as_posix()
        if rel_to_src not in listed:
            findings.append(
                f"src/{rel_to_src}: not listed in any src/ CMakeLists.txt "
                "(sources must be listed by src-relative path)")


# --- determinism rules (src/sim, src/partition) ---------------------------
# DESIGN.md's evaluation claims depend on the simulator and repartitioners
# being bit-reproducible; these modules may draw randomness only through
# the seeded common/rng.h generators and may never observe real time.
DETERMINISM_DIRS = ("src/sim", "src/partition")
ALLOW_DETERMINISM_MARKER = "lint:allow(determinism)"
NONDET_TOKEN_RES = [
    (re.compile(r"std::random_device\b"),
     "std::random_device — seed from options/Rng, never from entropy"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() — use the seeded common/rng.h generators"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall/steady clock — simulated components must use SimTime"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time() — simulated components must use SimTime"),
    (re.compile(r"std::unordered_(map|set|multimap|multiset)\b"),
     "std::unordered_* — iteration order is implementation-defined and "
     "leaks into tie-breaks; use a sorted container or sort before "
     "iterating"),
    (re.compile(r"\b(map|set)\s*<[^<>,]*\*\s*[,>]"),
     "pointer-keyed map/set — iteration order follows allocation "
     "addresses; key by a stable id instead"),
]


# --- failpoint containment -------------------------------------------------
# Fault-injection sites belong at the storage stack's I/O boundaries;
# sprinkling HERMES_FAILPOINT into partitioners, the simulator, or the
# cluster layer would turn a recovery-testing tool into hidden control
# flow. The registry itself is the only file outside those layers that
# may name the macros.
FAILPOINT_TOKEN_RE = re.compile(r"\bHERMES_FAILPOINT\w*")
FAILPOINT_ALLOWED_DIRS = ("src/storage", "src/graphdb", "src/net")
FAILPOINT_ALLOWED_FILES = {
    Path("src/common/failpoint.h"),
    Path("src/common/failpoint.cc"),
}


def check_failpoint_containment(rel, text, findings):
    if rel in FAILPOINT_ALLOWED_FILES:
        return
    rel_posix = rel.as_posix()
    if any(rel_posix.startswith(d + "/") for d in FAILPOINT_ALLOWED_DIRS):
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = FAILPOINT_TOKEN_RE.search(line)
        if m:
            findings.append(
                f"{rel}:{i}: {m.group(0)} outside the storage stack — "
                "failpoints live in src/storage/, src/graphdb/ and "
                "src/net/ only (registry: src/common/failpoint.{h,cc})")


def check_failpoints_off_in_release(root, findings):
    """Failpoints are a sanitizer-preset-only feature: the CMake option
    must default OFF and only *san presets may flip it ON. Skips
    silently when the build files are absent (lint_selftest fixtures)."""
    cmake = root / "CMakeLists.txt"
    if cmake.is_file():
        m = re.search(r"option\s*\(\s*HERMES_FAILPOINTS\b[^)]*\)",
                      cmake.read_text(encoding="utf-8"))
        if m and not re.search(r"\bOFF\s*\)$", m.group(0)):
            findings.append(
                "CMakeLists.txt: option(HERMES_FAILPOINTS) must default "
                "OFF — failpoints never ship in default/release builds")
    presets = root / "CMakePresets.json"
    if presets.is_file():
        try:
            data = json.loads(presets.read_text(encoding="utf-8"))
        except ValueError as err:
            findings.append(f"CMakePresets.json: unparseable: {err}")
            return
        for preset in data.get("configurePresets", []):
            name = preset.get("name", "")
            value = str(preset.get("cacheVariables", {})
                        .get("HERMES_FAILPOINTS", "OFF")).upper()
            if value in ("ON", "TRUE", "1") and "san" not in name:
                findings.append(
                    f"CMakePresets.json: preset '{name}' sets "
                    "HERMES_FAILPOINTS=ON — only sanitizer presets may "
                    "compile failpoints in")


# --- storage write-path streams -------------------------------------------
# PR "the WAL never fsyncs" root cause: std::ofstream's flush() only hands
# bytes to the OS, so no ostream-based write path can implement a
# durability contract. Inside src/storage/ every write path must use the
# fd-backed appender (storage/fd_appender.h) or raw pwrite; ofstream (and
# the read/write fstream) are banned outright. std::ifstream is read-only
# and stays allowed (the WAL scanner uses it).
STORAGE_STREAM_RE = re.compile(r"std::o?fstream\b")
STORAGE_STREAM_DIR = "src/storage"


def check_storage_write_streams(rel, text, findings):
    if not rel.as_posix().startswith(STORAGE_STREAM_DIR + "/"):
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = STORAGE_STREAM_RE.search(line)
        if m:
            findings.append(
                f"{rel}:{i}: {m.group(0)} in src/storage/ — ostream flushes "
                "never fsync; write through storage/fd_appender.h "
                "(std::ifstream is fine for read-only scans)")


# --- idempotency-token discipline (everything outside src/net) ------------
# The exactly-once contract (DESIGN.md §12) hinges on a retry reusing the
# SAME request id: the id IS the mutation's idempotency token, and a retry
# loop that mints a fresh id per attempt silently reintroduces double-apply
# (the server dedups by (src, request_id), so a new id looks like a new
# mutation). MessageBus::Call owns minting and the retry loop. Outside
# src/net/ a request id may only be *echoed* (reply.request_id =
# env->request_id in the server) or *configured* (Options::first_request_id
# after recovery); any other assignment or increment is a finding.
REQUEST_ID_WRITE_RE = re.compile(r"(?<!first_)\brequest_id\s*=(?!=)\s*(.*)")
REQUEST_ID_BUMP_RE = re.compile(
    r"\w*request_id\w*\s*(\+\+|--|\+=|-=)|(\+\+|--)\s*\w*request_id")
REQUEST_ID_ALLOWED_DIR = "src/net"


def check_request_id_minting(rel, text, findings):
    if rel.as_posix().startswith(REQUEST_ID_ALLOWED_DIR + "/"):
        return
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        m = REQUEST_ID_WRITE_RE.search(line)
        if m and "request_id" not in m.group(1):
            findings.append(
                f"{rel}:{i}: mints a fresh request id outside src/net/ — "
                "the request id is the mutation's idempotency token and "
                "retries must reuse it; route calls through "
                "MessageBus::Call, which owns the retry loop")
            continue
        if REQUEST_ID_BUMP_RE.search(line):
            findings.append(
                f"{rel}:{i}: increments a request-id counter outside "
                "src/net/ — only MessageBus::Call mints idempotency "
                "tokens (see DESIGN.md §12)")


def check_determinism(rel, text, findings):
    rel_posix = rel.as_posix()
    if not any(rel_posix.startswith(d + "/") for d in DETERMINISM_DIRS):
        return
    raw_lines = text.splitlines()
    for i, line in enumerate(strip_comments(text).splitlines(), 1):
        if i <= len(raw_lines) and ALLOW_DETERMINISM_MARKER in raw_lines[i - 1]:
            continue
        for token_re, why in NONDET_TOKEN_RES:
            if token_re.search(line):
                findings.append(f"{rel}:{i}: nondeterminism: {why}")


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    src = root / "src"
    if not src.is_dir():
        print(f"lint.py: no src/ directory under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root)
        text = path.read_text(encoding="utf-8")
        lines = text.splitlines()
        if path.suffix == ".h":
            check_include_guard(rel, lines, findings)
            check_header_hygiene(rel, lines, findings)
        check_raw_sync(rel, text, findings)
        check_adhoc_atomics(rel, text, findings)
        check_real_sleeps(rel, text, findings)
        check_determinism(rel, text, findings)
        check_request_id_minting(rel, text, findings)
        check_failpoint_containment(rel, text, findings)
        check_storage_write_streams(rel, text, findings)
    check_cmake_lists_all_sources(root, findings)
    check_failpoints_off_in_release(root, findings)

    if findings:
        print(f"lint.py: {len(findings)} finding(s):")
        for f in findings:
            print(f"  {f}")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
