#!/usr/bin/env python3
"""Include-graph layering checker; runs as the `layering_check` ctest.

Hermes's module table (DESIGN.md §3) implies a strict layer DAG:

    common -> graph/storage/net -> gen/txn/sim -> graphdb/partition
           -> server -> cluster -> workload

`tools/layers.json` declares that DAG as ranked layers. This script
parses every ``#include "..."`` edge over ``src/`` and rejects:

  * **upward or sideways edges** — a file in module M may include only
    headers from M itself or from a module in a strictly lower layer;
  * **unknown modules** — every first-level directory under src/ must be
    declared in the manifest (so new modules get placed deliberately);
  * **forbidden includes** — manifest ``forbidden_includes`` entries ban
    specific direct includes even when the ranks would allow them (the
    cluster-never-sees-a-store-header contract, DESIGN.md §12);
  * **include cycles** — any cycle in the file-level include graph is
    reported with the full offending chain, even when the modules
    involved would be rank-legal.

For each violation the offending include chain is printed: the
``file:line`` of the bad edge plus, when the edge is only reachable
through other headers, a shortest ``a.cc -> b.h -> c.h`` chain from a
translation unit so the fix site is obvious.

Usage: tools/layering_check.py [repo_root]   (exit 0 = clean, 1 = findings)
"""

import fnmatch
import json
import re
import sys
from collections import deque
from pathlib import Path

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def load_manifest(root):
    manifest = json.loads((root / "tools" / "layers.json").read_text())
    rank_of = {}
    for layer in manifest["layers"]:
        for module in layer["modules"]:
            rank_of[module] = layer["rank"]
    return rank_of, manifest.get("forbidden_includes", [])


def module_of(rel_to_src):
    return rel_to_src.split("/", 1)[0] if "/" in rel_to_src else None


def parse_includes(root):
    """Returns {src-relative path: [(line_no, included src-relative path)]}."""
    src = root / "src"
    edges = {}
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(src).as_posix()
        out = []
        for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            m = INCLUDE_RE.match(line)
            if m and (src / m.group(1)).exists():
                out.append((i, m.group(1)))
        edges[rel] = out
    return edges


def shortest_chain(edges, target):
    """Shortest include chain from any .cc translation unit to `target`
    (so a violation inside a header is traced back to code that compiles
    it). Returns a list of files, or None when the target IS a TU."""
    if target.endswith(".cc"):
        return None
    best = None
    for start in edges:
        if not start.endswith(".cc"):
            continue
        prev = {start: None}
        queue = deque([start])
        while queue:
            cur = queue.popleft()
            if cur == target:
                chain = []
                while cur is not None:
                    chain.append(cur)
                    cur = prev[cur]
                chain.reverse()
                if best is None or len(chain) < len(best):
                    best = chain
                break
            for _, inc in edges.get(cur, []):
                if inc not in prev:
                    prev[inc] = cur
                    queue.append(inc)
    return best


def check_layering(edges, rank_of, findings):
    for rel in sorted(edges):
        mod = module_of(rel)
        if mod is None:
            continue
        if mod not in rank_of:
            findings.append(
                f"src/{rel}: module '{mod}' is not declared in tools/layers.json")
            continue
        for line_no, inc in edges[rel]:
            imod = module_of(inc)
            if imod is None or imod == mod:
                continue
            if imod not in rank_of:
                findings.append(
                    f"src/{rel}:{line_no}: includes \"{inc}\" from module "
                    f"'{imod}' which is not declared in tools/layers.json")
                continue
            if rank_of[imod] >= rank_of[mod]:
                kind = ("upward" if rank_of[imod] > rank_of[mod]
                        else "sideways (same layer)")
                msg = (f"src/{rel}:{line_no}: {kind} include of \"{inc}\" — "
                       f"module '{mod}' (layer {rank_of[mod]}) may not depend "
                       f"on '{imod}' (layer {rank_of[imod]})")
                chain = shortest_chain(edges, rel)
                if chain and len(chain) > 1:
                    msg += "\n      via " + " -> ".join(
                        f"src/{f}" for f in chain)
                findings.append(msg)


def check_forbidden(edges, forbidden, findings):
    """Bans specific direct includes even when the layer ranks allow them.

    Each manifest entry is {files: glob, includes: [globs], reason}; both
    globs match src-relative posix paths (fnmatch). This is how boundary
    contracts stronger than the layer DAG are enforced — e.g. the cluster
    module must reach stores only through the message bus, never by
    including a store header."""
    for entry in forbidden:
        file_glob = entry["files"]
        include_globs = entry["includes"]
        reason = entry.get("reason", "")
        for rel in sorted(edges):
            if not fnmatch.fnmatch(rel, file_glob):
                continue
            for line_no, inc in edges[rel]:
                if any(fnmatch.fnmatch(inc, g) for g in include_globs):
                    msg = (f"src/{rel}:{line_no}: forbidden include of "
                           f"\"{inc}\" (files matching '{file_glob}' may not "
                           f"include it)")
                    if reason:
                        msg += f"\n      reason: {reason}"
                    findings.append(msg)


def check_cycles(edges, findings):
    # Iterative DFS with colour marking; reports each back-edge's cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {f: WHITE for f in edges}
    seen_cycles = set()

    def dfs(start):
        stack = [(start, iter(edges.get(start, [])))]
        colour[start] = GREY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for _, inc in it:
                if colour.get(inc, BLACK) == GREY:
                    cycle = tuple(path[path.index(inc):] + [inc])
                    if frozenset(cycle) not in seen_cycles:
                        seen_cycles.add(frozenset(cycle))
                        findings.append(
                            "include cycle: " +
                            " -> ".join(f"src/{f}" for f in cycle))
                elif colour.get(inc, BLACK) == WHITE:
                    colour[inc] = GREY
                    stack.append((inc, iter(edges.get(inc, []))))
                    path.append(inc)
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
                path.pop()

    for f in sorted(edges):
        if colour[f] == WHITE:
            dfs(f)


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"layering_check.py: no src/ directory under {root}",
              file=sys.stderr)
        return 2

    rank_of, forbidden = load_manifest(root)
    edges = parse_includes(root)
    findings = []
    check_layering(edges, rank_of, findings)
    check_forbidden(edges, forbidden, findings)
    check_cycles(edges, findings)

    if findings:
        print(f"layering_check.py: {len(findings)} finding(s):")
        for f in findings:
            print(f"  {f}")
        return 1
    n_edges = sum(len(v) for v in edges.values())
    print(f"layering_check.py: clean ({len(edges)} files, {n_edges} include "
          f"edges, {len(rank_of)} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
