#!/usr/bin/env python3
"""Smoke test for the BENCH_*.json reporter; runs as the `bench_smoke` ctest.

Runs one bench binary in a scratch directory and validates the
machine-readable report it writes (bench/bench_common.h, BenchReport):

  * the file BENCH_<binary-name>.json exists and parses as JSON,
  * schema_version is 1 and the top-level keys are present and typed,
  * results is a non-empty list of {label, value, unit} rows,
  * metrics.counters is a non-empty dict of integers (the binary must
    actually exercise instrumented code paths),
  * with --require-lock-metrics, at least one lock profiler histogram
    lock.<name>.hold_us is present (full summary key set) together with
    its sibling lock.<name>.acquisitions / lock.<name>.contention
    counters — the runtime evidence half of the critical-section
    discipline (DESIGN.md); pass it for benches built with
    HERMES_LOCK_PROFILING (the default preset).

Usage: tools/bench_smoke.py [--require-lock-metrics] <bench-binary>
       [bench args...]
"""

import json
import os
import subprocess
import sys
import tempfile

REQUIRED_KEYS = {
    "name": str,
    "schema_version": int,
    "wall_time_us": int,
    "params": dict,
    "results": list,
    "metrics": dict,
}


def fail(msg):
    print(f"bench_smoke: FAIL: {msg}", file=sys.stderr)
    return 1


def validate_lock_metrics(metrics):
    """Returns an error string unless >= 1 lock.<name>.hold_us histogram
    exists with its sibling acquisition/contention counters."""
    names = [key[len("lock."):-len(".hold_us")]
             for key in metrics["histograms"]
             if key.startswith("lock.") and key.endswith(".hold_us")]
    if not names:
        return "no lock.<name>.hold_us histogram (lock profiler silent " \
               "— was the bench built with HERMES_LOCK_PROFILING?)"
    for name in names:
        for sibling in (f"lock.{name}.acquisitions", f"lock.{name}.contention"):
            if sibling not in metrics["counters"]:
                return f"lock.{name}.hold_us has no sibling counter {sibling!r}"
    return None


def validate(report, name):
    for key, typ in REQUIRED_KEYS.items():
        if key not in report:
            return f"missing top-level key {key!r}"
        if not isinstance(report[key], typ):
            return f"key {key!r} has type {type(report[key]).__name__}, " \
                   f"expected {typ.__name__}"
    if "sim_time_us" not in report:
        return "missing top-level key 'sim_time_us'"
    if not isinstance(report["sim_time_us"], (int, float, type(None))):
        return "sim_time_us is not a number or null"
    if report["name"] != name:
        return f"name is {report['name']!r}, expected {name!r}"
    if report["schema_version"] != 1:
        return f"schema_version is {report['schema_version']}, expected 1"
    if report["wall_time_us"] < 0:
        return "wall_time_us is negative"
    if not report["results"]:
        return "results is empty"
    for row in report["results"]:
        if not isinstance(row, dict):
            return f"result row is not an object: {row!r}"
        if set(row) != {"label", "value", "unit"}:
            return f"result row keys are {sorted(row)}, " \
                   "expected [label, unit, value]"
        if not isinstance(row["label"], str) or not isinstance(row["unit"], str):
            return f"result row {row['label']!r}: label/unit must be strings"
        if not isinstance(row["value"], (int, float, type(None))):
            return f"result row {row['label']!r}: value must be a number"
    metrics = report["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            return f"metrics.{section} missing or not an object"
    if not metrics["counters"]:
        return "metrics.counters is empty (no instrumented code path ran)"
    for key, value in metrics["counters"].items():
        if not isinstance(value, int) or value < 0:
            return f"counter {key!r} is not a non-negative integer"
    for key, hist in metrics["histograms"].items():
        expected = {"count", "mean", "min", "max", "p50", "p99"}
        if set(hist) != expected:
            return f"histogram {key!r} keys are {sorted(hist)}"
    return None


def main(argv):
    require_lock_metrics = "--require-lock-metrics" in argv
    argv = [a for a in argv if a != "--require-lock-metrics"]
    if len(argv) < 2:
        return fail("usage: bench_smoke.py [--require-lock-metrics] "
                    "<bench-binary> [bench args...]")
    binary = os.path.abspath(argv[1])
    name = os.path.basename(binary)
    with tempfile.TemporaryDirectory(prefix="bench_smoke_") as scratch:
        proc = subprocess.run([binary] + argv[2:], cwd=scratch,
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                              text=True, timeout=600)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            return fail(f"{name} exited with {proc.returncode}")
        path = os.path.join(scratch, f"BENCH_{name}.json")
        if not os.path.exists(path):
            return fail(f"{name} did not write BENCH_{name}.json")
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except json.JSONDecodeError as e:
            return fail(f"BENCH_{name}.json is not valid JSON: {e}")
        error = validate(report, name)
        if error is None and require_lock_metrics:
            error = validate_lock_metrics(report["metrics"])
        if error:
            return fail(f"BENCH_{name}.json: {error}")
    print(f"bench_smoke: OK ({name}: {len(report['results'])} results, "
          f"{len(report['metrics']['counters'])} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
