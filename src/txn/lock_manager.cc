#include "txn/lock_manager.h"

namespace hermes {

Status LockManager::AcquireShared(TxnId txn, LockKey key) {
  MutexLock lock(&mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    LockState& state = table_[key];
    if (!state.has_exclusive || state.exclusive == txn) {
      state.shared.insert(txn);
      m_shared_->Increment();
      return Status::OK();
    }
    if (released_.WaitUntil(&mu_, deadline) == std::cv_status::timeout) {
      m_timeouts_->Increment();
      return Status::TimedOut("shared lock wait timed out (possible deadlock)");
    }
  }
}

Status LockManager::AcquireExclusive(TxnId txn, LockKey key) {
  MutexLock lock(&mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  for (;;) {
    LockState& state = table_[key];
    if (state.has_exclusive && state.exclusive == txn) {
      return Status::OK();  // re-entrant
    }
    const bool only_reader_is_us =
        state.shared.empty() ||
        (state.shared.size() == 1 && state.shared.count(txn) == 1);
    if (!state.has_exclusive && only_reader_is_us) {
      state.has_exclusive = true;
      state.exclusive = txn;
      m_exclusive_->Increment();
      return Status::OK();
    }
    if (released_.WaitUntil(&mu_, deadline) == std::cv_status::timeout) {
      m_timeouts_->Increment();
      return Status::TimedOut(
          "exclusive lock wait timed out (possible deadlock)");
    }
  }
}

void LockManager::Release(TxnId txn, LockKey key) {
  MutexLock lock(&mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  LockState& state = it->second;
  state.shared.erase(txn);
  if (state.has_exclusive && state.exclusive == txn) {
    state.has_exclusive = false;
    state.exclusive = 0;
  }
  if (state.shared.empty() && !state.has_exclusive) {
    table_.erase(it);
  }
  released_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, LockKey key) const {
  MutexLock lock(&mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return false;
  const LockState& state = it->second;
  return state.shared.count(txn) == 1 ||
         (state.has_exclusive && state.exclusive == txn);
}

std::size_t LockManager::NumLockedKeys() const {
  MutexLock lock(&mu_);
  return table_.size();
}

}  // namespace hermes
