#ifndef HERMES_TXN_TRANSACTION_H_
#define HERMES_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "txn/lock_manager.h"

namespace hermes {

/// A transaction context: tracks acquired locks and releases them all on
/// commit or abort (strict two-phase locking). Queries on unavailable
/// (mid-migration) records never reach the lock table — the store rejects
/// them first — which is what lets the remove step proceed without lock
/// contention (Section 3.2).
///
/// Position in the cluster's sharded lock scheme (DESIGN.md §6): record
/// locks are acquired while holding the cluster's directory lock shared
/// and BEFORE any partition shard mutex, and they are the only cluster
/// wait that can block on another transaction — which resolves by the
/// LockManager timeout (kTimedOut), never deadlock, because every ranked
/// mutex below them is acquired in rank order and released without
/// waiting on records.
class Transaction {
 public:
  Transaction(std::uint64_t id, LockManager* locks)
      : id_(id), locks_(locks) {}

  ~Transaction() {
    if (!finished_) Abort();
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&& other) noexcept
      : id_(other.id_), locks_(other.locks_),
        held_(std::move(other.held_)), finished_(other.finished_) {
    other.finished_ = true;
  }

  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

  /// Read lock on a record key; kTimedOut signals deadlock resolution and
  /// the caller must Abort().
  [[nodiscard]] Status LockShared(LockManager::LockKey key) {
    HERMES_RETURN_NOT_OK(locks_->AcquireShared(id_, key));
    held_.push_back(key);
    return Status::OK();
  }

  [[nodiscard]] Status LockExclusive(LockManager::LockKey key) {
    HERMES_RETURN_NOT_OK(locks_->AcquireExclusive(id_, key));
    held_.push_back(key);
    return Status::OK();
  }

  void Commit() { Finish(); }
  void Abort() { Finish(); }

 private:
  void Finish() {
    if (finished_) return;
    for (LockManager::LockKey key : held_) locks_->Release(id_, key);
    held_.clear();
    finished_ = true;
  }

  std::uint64_t id_;
  LockManager* locks_;
  std::vector<LockManager::LockKey> held_;
  bool finished_ = false;
};

/// Issues transaction ids and owns the lock table.
class TransactionManager {
 public:
  explicit TransactionManager(
      std::chrono::milliseconds lock_timeout = std::chrono::milliseconds(100))
      : locks_(lock_timeout) {}

  Transaction Begin() {
    return Transaction(next_id_.fetch_add(1, std::memory_order_relaxed),
                       &locks_);
  }

  LockManager* lock_manager() { return &locks_; }

 private:
  std::atomic<std::uint64_t> next_id_{1};
  LockManager locks_;
};

}  // namespace hermes

#endif  // HERMES_TXN_TRANSACTION_H_
