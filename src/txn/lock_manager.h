#ifndef HERMES_TXN_LOCK_MANAGER_H_
#define HERMES_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hermes {

/// Per-record shared/exclusive lock table with timeout-based deadlock
/// resolution.
///
/// Neo4j's centralized wait-for-graph loop detection does not scale to a
/// distributed deployment, so Hermes replaces it with the classic
/// timeout-based scheme (Section 4, citing Bernstein & Newcomer): a waiter
/// that cannot acquire a lock within the timeout aborts with kTimedOut and
/// the caller rolls its transaction back. False positives are possible,
/// deadlocks are not.
///
/// Thread-safe: all methods may be called concurrently; `mu_` is a leaf in
/// the repo lock order (no other mutex is acquired while it is held).
class LockManager {
 public:
  using TxnId = std::uint64_t;
  using LockKey = std::uint64_t;

  explicit LockManager(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(100))
      : timeout_(timeout),
        m_shared_(MetricsRegistry::Global().GetCounter(
            "lock_manager.acquired_shared")),
        m_exclusive_(MetricsRegistry::Global().GetCounter(
            "lock_manager.acquired_exclusive")),
        m_timeouts_(
            MetricsRegistry::Global().GetCounter("lock_manager.timeouts")) {}

  /// Shared (read) lock. Re-entrant; a transaction holding the exclusive
  /// lock implicitly holds the shared one.
  [[nodiscard]] Status AcquireShared(TxnId txn, LockKey key) EXCLUDES(mu_);

  /// Exclusive (write) lock. Re-entrant; upgrades from shared succeed when
  /// the requester is the only reader.
  [[nodiscard]] Status AcquireExclusive(TxnId txn, LockKey key) EXCLUDES(mu_);

  /// Releases whatever `txn` holds on `key` (no-op when it holds nothing).
  void Release(TxnId txn, LockKey key) EXCLUDES(mu_);

  /// True when `txn` holds any mode of lock on `key` (test helper).
  bool Holds(TxnId txn, LockKey key) const EXCLUDES(mu_);

  std::size_t NumLockedKeys() const EXCLUDES(mu_);

  std::chrono::milliseconds timeout() const { return timeout_; }

 private:
  struct LockState {
    std::set<TxnId> shared;
    TxnId exclusive = 0;
    bool has_exclusive = false;
  };

  mutable Mutex mu_{"lock_manager.mu", lock_order::kRankLockManager};
  CondVar released_;
  std::unordered_map<LockKey, LockState> table_ GUARDED_BY(mu_);
  const std::chrono::milliseconds timeout_;

  // Observability (DESIGN.md §7 naming scheme).
  Counter* const m_shared_;
  Counter* const m_exclusive_;
  Counter* const m_timeouts_;
};

}  // namespace hermes

#endif  // HERMES_TXN_LOCK_MANAGER_H_
