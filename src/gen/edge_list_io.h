#ifndef HERMES_GEN_EDGE_LIST_IO_H_
#define HERMES_GEN_EDGE_LIST_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace hermes {

/// Loads an undirected graph from a whitespace-separated edge-list file
/// ("u v" per line; '#' comments allowed) — the common SNAP format, so the
/// real Twitter/Orkut/DBLP crawls can be dropped in when available.
/// Vertices are renumbered densely; duplicate edges and self-loops are
/// skipped.
[[nodiscard]] Result<Graph> LoadEdgeList(const std::string& path);

/// Writes a graph back out in the same format.
[[nodiscard]] Status SaveEdgeList(const Graph& g, const std::string& path);

}  // namespace hermes

#endif  // HERMES_GEN_EDGE_LIST_IO_H_
