#ifndef HERMES_GEN_SOCIAL_GRAPH_H_
#define HERMES_GEN_SOCIAL_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hermes {

/// Parameters for the synthetic social-network generator. The generator is
/// LFR-flavoured: power-law degrees, power-law community sizes, a mixing
/// parameter controlling the fraction of inter-community endpoints, and an
/// optional triangle-closure pass that raises the clustering coefficient
/// (wedges are closed, mimicking triadic closure in real social networks).
struct SocialGraphOptions {
  std::size_t num_vertices = 10000;

  /// Degree-distribution exponent (> 1). Table 1 reports 2.276 for
  /// Twitter, 1.18 for Orkut, 3.64 for DBLP.
  double power_law_exponent = 2.3;

  std::size_t min_degree = 2;

  /// Hard cap on sampled degrees (0 derives num_vertices / 20).
  std::size_t max_degree = 0;

  /// Fraction of edge endpoints that leave the community (LFR's mu).
  /// Lower values give stronger communities and lower optimal edge-cut.
  double community_mixing = 0.2;

  /// Community sizes follow a power law with this exponent.
  double community_size_exponent = 2.0;

  std::size_t min_community_size = 20;
  std::size_t max_community_size = 0;  // 0 derives num_vertices / 10

  /// Extra wedge-closing edges, as a fraction of the base edge count.
  /// Raises the clustering coefficient (DBLP needs a high value).
  double triangle_closure = 0.0;

  std::uint64_t seed = 1;
};

/// Generates a connected-ish social graph. When `community_of` is non-null
/// it receives each vertex's ground-truth community id (useful for
/// verifying that partitioners keep communities intact).
Graph GenerateSocialGraph(const SocialGraphOptions& options,
                          std::vector<std::uint32_t>* community_of = nullptr);

}  // namespace hermes

#endif  // HERMES_GEN_SOCIAL_GRAPH_H_
