#include "gen/social_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes {

namespace {

/// Draws community sizes from a bounded power law until they cover n
/// vertices; the last community absorbs the remainder.
std::vector<std::size_t> DrawCommunitySizes(const SocialGraphOptions& opt,
                                            Rng* rng) {
  const std::size_t n = opt.num_vertices;
  const std::size_t max_size =
      opt.max_community_size > 0
          ? opt.max_community_size
          : std::max<std::size_t>(opt.min_community_size + 1, n / 10);
  std::vector<std::size_t> sizes;
  std::size_t covered = 0;
  while (covered < n) {
    auto size = static_cast<std::size_t>(
        rng->PowerLaw(opt.community_size_exponent,
                      static_cast<double>(opt.min_community_size)));
    size = std::clamp(size, opt.min_community_size, max_size);
    size = std::min(size, n - covered);
    sizes.push_back(size);
    covered += size;
  }
  return sizes;
}

}  // namespace

Graph GenerateSocialGraph(const SocialGraphOptions& opt,
                          std::vector<std::uint32_t>* community_of) {
  HERMES_CHECK(opt.power_law_exponent > 1.0);
  HERMES_CHECK(opt.num_vertices > 1);
  Rng rng(opt.seed);
  const std::size_t n = opt.num_vertices;
  const std::size_t max_degree =
      opt.max_degree > 0 ? opt.max_degree
                         : std::max<std::size_t>(opt.min_degree + 1, n / 20);

  // 1. Community layout: contiguous vertex ranges per community.
  const std::vector<std::size_t> sizes = DrawCommunitySizes(opt, &rng);
  std::vector<std::uint32_t> community(n);
  std::vector<std::size_t> community_start(sizes.size());
  {
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
      community_start[c] = cursor;
      for (std::size_t i = 0; i < sizes[c]; ++i) {
        community[cursor + i] = static_cast<std::uint32_t>(c);
      }
      cursor += sizes[c];
    }
  }

  // 2. Power-law target degrees.
  std::vector<std::size_t> degree(n);
  std::size_t degree_sum = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto d = static_cast<std::size_t>(rng.PowerLaw(
        opt.power_law_exponent, static_cast<double>(opt.min_degree)));
    d = std::clamp(d, opt.min_degree, max_degree);
    degree[v] = d;
    degree_sum += d;
  }

  // 3. Degree-weighted cumulative samplers: one global, one per community.
  std::vector<double> global_cum(n);
  {
    double acc = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      acc += static_cast<double>(degree[v]);
      global_cum[v] = acc;
    }
  }
  std::vector<std::vector<double>> comm_cum(sizes.size());
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    comm_cum[c].resize(sizes[c]);
    double acc = 0.0;
    for (std::size_t i = 0; i < sizes[c]; ++i) {
      acc += static_cast<double>(degree[community_start[c] + i]);
      comm_cum[c][i] = acc;
    }
  }

  // 4. Edge placement (Chung-Lu flavoured): each endpoint is drawn
  // degree-weighted; the second endpoint stays inside the community with
  // probability 1 - mixing.
  Graph g(n);
  const std::size_t target_edges = degree_sum / 2;
  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 12 + 64;
  while (placed < target_edges && attempts < max_attempts) {
    ++attempts;
    const auto u =
        static_cast<VertexId>(SampleFromCumulative(global_cum, &rng));
    VertexId v;
    if (!rng.Bernoulli(opt.community_mixing)) {
      const std::uint32_t c = community[u];
      v = static_cast<VertexId>(community_start[c] +
                                SampleFromCumulative(comm_cum[c], &rng));
    } else {
      v = static_cast<VertexId>(SampleFromCumulative(global_cum, &rng));
    }
    if (g.AddEdge(u, v).ok()) ++placed;
  }

  // 5. Triangle closure: close random wedges to raise clustering.
  if (opt.triangle_closure > 0.0) {
    const auto extra = static_cast<std::size_t>(
        opt.triangle_closure * static_cast<double>(g.NumEdges()));
    std::size_t closed = 0;
    attempts = 0;
    const std::size_t closure_attempts = extra * 12 + 64;
    while (closed < extra && attempts < closure_attempts) {
      ++attempts;
      const VertexId w = rng.Uniform(n);
      const auto neigh = g.Neighbors(w);
      if (neigh.size() < 2) continue;
      const VertexId a = neigh[rng.Uniform(neigh.size())];
      const VertexId b = neigh[rng.Uniform(neigh.size())];
      if (a != b && g.AddEdge(a, b).ok()) ++closed;
    }
  }

  // 6. Stitch isolated vertices into their community so traversals and BFS
  // statistics see one big component.
  for (VertexId v = 0; v < n; ++v) {
    if (g.Degree(v) == 0) {
      const std::uint32_t c = community[v];
      const VertexId peer = static_cast<VertexId>(
          community_start[c] + SampleFromCumulative(comm_cum[c], &rng));
      // v is isolated, so the chosen edge cannot be a duplicate; only the
      // degenerate single-vertex graph has nothing to attach to.
      if (peer != v) {
        HERMES_CHECK_OK(g.AddEdge(v, peer));
      } else if (n > 1) {
        HERMES_CHECK_OK(g.AddEdge(v, (v + 1) % n));
      }
    }
  }

  if (community_of != nullptr) *community_of = std::move(community);
  return g;
}

}  // namespace hermes
