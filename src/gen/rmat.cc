#include "gen/rmat.h"

#include <cstddef>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes {

Graph GenerateRmat(const RmatOptions& opt) {
  HERMES_CHECK(opt.scale > 0 && opt.scale < 32);
  const std::size_t n = static_cast<std::size_t>(1) << opt.scale;
  const auto target_edges =
      static_cast<std::size_t>(opt.edge_factor * static_cast<double>(n));
  Rng rng(opt.seed);
  Graph g(n);

  std::size_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 12 + 64;
  const double ab = opt.a + opt.b;
  const double abc = opt.a + opt.b + opt.c;
  while (placed < target_edges && attempts < max_attempts) {
    ++attempts;
    std::size_t u = 0;
    std::size_t v = 0;
    for (std::size_t bit = 0; bit < opt.scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < opt.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (g.AddEdge(u, v).ok()) ++placed;
  }

  // Attach isolated vertices so the graph is a single usable component.
  for (VertexId v = 0; v < n; ++v) {
    if (g.Degree(v) == 0) {
      const VertexId peer = rng.Uniform(n);
      // v is isolated, so the chosen edge cannot be a duplicate; only the
      // degenerate single-vertex graph has nothing to attach to.
      if (peer != v) {
        HERMES_CHECK_OK(g.AddEdge(v, peer));
      } else if (n > 1) {
        HERMES_CHECK_OK(g.AddEdge(v, (v + 1) % n));
      }
    }
  }
  return g;
}

}  // namespace hermes
