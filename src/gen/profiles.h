#ifndef HERMES_GEN_PROFILES_H_
#define HERMES_GEN_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "gen/social_graph.h"
#include "graph/graph.h"

namespace hermes {

/// A dataset profile reproduces one row of Table 1 at laptop scale. The
/// real Twitter/Orkut/DBLP crawls are not redistributable; the generator
/// parameters below are tuned so that the *structural properties the
/// repartitioner is sensitive to* (degree skew, community strength,
/// clustering) match the published characterization.
struct DatasetProfile {
  std::string name;

  /// Generator parameters (scaled; num_vertices defaults below).
  SocialGraphOptions gen;

  // --- Published values from Table 1, recorded for comparison ------------
  double paper_num_nodes = 0;       // in the original dataset
  double paper_num_edges = 0;
  double paper_symmetric_links = 0;  // fraction
  double paper_avg_path_length = 0;
  double paper_clustering = 0;       // < 0 when unpublished
  double paper_power_law = 0;
};

/// Profiles for the paper's three datasets. `scale` multiplies the default
/// vertex count (1.0 ≈ tens of thousands of vertices; keep benches fast).
DatasetProfile TwitterProfile(double scale = 1.0, std::uint64_t seed = 11);
DatasetProfile OrkutProfile(double scale = 1.0, std::uint64_t seed = 12);
DatasetProfile DblpProfile(double scale = 1.0, std::uint64_t seed = 13);

/// All three, in the order the paper's figures list them.
std::vector<DatasetProfile> AllProfiles(double scale = 1.0);

/// Looks a profile up by (case-insensitive) name.
[[nodiscard]] Result<DatasetProfile> ProfileByName(const std::string& name, double scale);

/// Generates the graph for a profile.
Graph GenerateDataset(const DatasetProfile& profile);

}  // namespace hermes

#endif  // HERMES_GEN_PROFILES_H_
