#include "gen/profiles.h"

#include <algorithm>
#include <cctype>

namespace hermes {

namespace {
std::size_t Scaled(double scale, std::size_t base) {
  return std::max<std::size_t>(1000, static_cast<std::size_t>(
                                         scale * static_cast<double>(base)));
}
}  // namespace

DatasetProfile TwitterProfile(double scale, std::uint64_t seed) {
  DatasetProfile p;
  p.name = "twitter";
  p.gen.num_vertices = Scaled(scale, 60000);
  // Twitter: strong hubs (celebrities), weak communities, low clustering.
  p.gen.power_law_exponent = 2.276;
  p.gen.min_degree = 3;
  p.gen.max_degree = p.gen.num_vertices / 12;
  p.gen.community_mixing = 0.22;
  p.gen.community_size_exponent = 2.0;
  p.gen.min_community_size = 30;
  p.gen.triangle_closure = 0.02;
  p.gen.seed = seed;
  p.paper_num_nodes = 11.3e6;
  p.paper_num_edges = 85.3e6;
  p.paper_symmetric_links = 0.221;
  p.paper_avg_path_length = 4.12;
  p.paper_clustering = -1.0;  // unpublished in Table 1
  p.paper_power_law = 2.276;
  return p;
}

DatasetProfile OrkutProfile(double scale, std::uint64_t seed) {
  DatasetProfile p;
  p.name = "orkut";
  p.gen.num_vertices = Scaled(scale, 40000);
  // Orkut: very heavy tail (exponent 1.18), dense, moderate clustering.
  // Exponents this close to 1 need a tight degree cap to keep the mean
  // finite at simulation scale.
  p.gen.power_law_exponent = 1.5;
  p.gen.min_degree = 5;
  p.gen.max_degree = p.gen.num_vertices / 40;
  p.gen.community_mixing = 0.15;
  p.gen.community_size_exponent = 1.8;
  p.gen.min_community_size = 40;
  p.gen.triangle_closure = 0.10;
  p.gen.seed = seed;
  p.paper_num_nodes = 3e6;
  p.paper_num_edges = 223.5e6;
  p.paper_symmetric_links = 1.0;
  p.paper_avg_path_length = 4.25;
  p.paper_clustering = 0.167;
  p.paper_power_law = 1.18;
  return p;
}

DatasetProfile DblpProfile(double scale, std::uint64_t seed) {
  DatasetProfile p;
  p.name = "dblp";
  p.gen.num_vertices = Scaled(scale, 32000);
  // DBLP: co-authorship — small tight communities, very high clustering,
  // steep degree distribution.
  p.gen.power_law_exponent = 3.2;
  p.gen.min_degree = 2;
  p.gen.max_degree = 400;
  p.gen.community_mixing = 0.06;
  p.gen.community_size_exponent = 2.2;
  p.gen.min_community_size = 8;
  p.gen.max_community_size = 120;
  p.gen.triangle_closure = 0.55;
  p.gen.seed = seed;
  p.paper_num_nodes = 317e3;
  p.paper_num_edges = 1e6;
  p.paper_symmetric_links = 1.0;
  p.paper_avg_path_length = 9.2;
  p.paper_clustering = 0.6324;
  p.paper_power_law = 3.64;
  return p;
}

std::vector<DatasetProfile> AllProfiles(double scale) {
  return {OrkutProfile(scale), TwitterProfile(scale), DblpProfile(scale)};
}

[[nodiscard]] Result<DatasetProfile> ProfileByName(const std::string& name, double scale) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "twitter") return TwitterProfile(scale);
  if (lower == "orkut") return OrkutProfile(scale);
  if (lower == "dblp") return DblpProfile(scale);
  return Status::NotFound("unknown dataset profile: " + name);
}

Graph GenerateDataset(const DatasetProfile& profile) {
  return GenerateSocialGraph(profile.gen);
}

}  // namespace hermes
