#include "gen/edge_list_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace hermes {

[[nodiscard]] Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::unordered_map<std::uint64_t, VertexId> remap;
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::string line;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!(ls >> a >> b)) {
      return Status::IOError("malformed edge-list line: " + line);
    }
    edges.emplace_back(intern(a), intern(b));
  }
  return GraphFromEdges(remap.size(), edges);
}

[[nodiscard]] Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "# hermes edge list: " << g.NumVertices() << " vertices, "
      << g.NumEdges() << " edges\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (w > v) out << v << " " << w << "\n";
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace hermes
