#ifndef HERMES_GEN_RMAT_H_
#define HERMES_GEN_RMAT_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"

namespace hermes {

/// Recursive-matrix (R-MAT / Kronecker) generator: the standard model for
/// heavy-tailed web/social graphs with weak community structure (used for
/// the Twitter-like profile, which has low clustering and strong hubs).
struct RmatOptions {
  /// log2 of the number of vertices.
  std::size_t scale = 14;

  /// Target undirected edges per vertex.
  double edge_factor = 8.0;

  /// Quadrant probabilities; must sum to ~1. Defaults are Graph500's.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;

  std::uint64_t seed = 1;
};

Graph GenerateRmat(const RmatOptions& options);

}  // namespace hermes

#endif  // HERMES_GEN_RMAT_H_
