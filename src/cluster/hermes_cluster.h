#ifndef HERMES_CLUSTER_HERMES_CLUSTER_H_
#define HERMES_CLUSTER_HERMES_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graphdb/durable_store.h"
#include "graphdb/graph_store.h"
#include "graphdb/traversal.h"
#include "partition/assignment.h"
#include "partition/aux_data.h"
#include "partition/lightweight.h"
#include "sim/network.h"
#include "txn/transaction.h"

namespace hermes {

/// Statistics of one physical migration epoch (copy step -> barrier ->
/// remove step, Section 3.2).
struct MigrationStats {
  std::size_t vertices_moved = 0;
  std::size_t relationships_touched = 0;
  std::size_t bytes_copied = 0;
  SimTime copy_time_us = 0.0;
  SimTime total_time_us = 0.0;
  // Filled when the move list came from the lightweight repartitioner.
  std::size_t repartitioner_iterations = 0;
  bool repartitioner_converged = false;
  std::size_t aux_bytes_exchanged = 0;  // phase-one control traffic
  double edge_cut_fraction_before = 0.0;
  double edge_cut_fraction_after = 0.0;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
};

/// The distributed Hermes deployment: `alpha` peer servers, each hosting a
/// GraphStore shard of the social graph, plus the shared directory
/// (PartitionAssignment), per-server auxiliary data, and transaction
/// management (Figure 5/6). Clients connect to any server; traversals are
/// forwarded along partition boundaries as remote hops.
///
/// The cluster also keeps the algorithmic `Graph` view in sync with the
/// stores: the repartitioner runs against the auxiliary data exactly as in
/// the paper, and physical migration runs against the stores.
///
/// Concurrency model (phase 1, coarse): one cluster-level mutex `mu_`
/// serializes every operation that touches shared state — reads, writes,
/// repartitioning, and migration — because GraphStore, Graph, and
/// AuxiliaryData are not internally synchronized. Record-level locks from
/// the TransactionManager are acquired UNDER mu_ (lock order: mu_ ->
/// DurableGraphStore::mu_ -> WriteAheadLog::mu_; LockManager::mu_ is a
/// leaf). A writer stalled on a record lock held by an external
/// transaction resolves by timeout, never deadlock. The const accessors
/// (graph(), aux(), store(), ...) hand out unsynchronized references and
/// are only safe on a quiesced cluster — see DESIGN.md "Concurrency
/// invariants".
class HermesCluster {
 public:
  struct Options {
    NetworkParams net;
    RepartitionerOptions repartitioner;
    /// Bump the start vertex's popularity weight on every read (the
    /// paper's vertex weight = read-request count).
    bool count_reads_in_weights = true;
    /// When non-empty, every server's store is durable: mutations are
    /// WAL-logged under `<durability_dir>/p<i>/` and Checkpoint() /
    /// Recover() provide crash safety for the whole cluster.
    std::string durability_dir;
  };

  /// Builds the cluster, loading every store with its shard (ghost
  /// relationships created for cross-partition edges).
  HermesCluster(Graph graph, PartitionAssignment assignment,
                Options options);
  HermesCluster(Graph graph, PartitionAssignment assignment);

  /// Reopens a durable cluster from `options.durability_dir` after a
  /// crash or shutdown: recovers every server's store (snapshot + WAL
  /// tail), then rebuilds the directory, graph view, and auxiliary data
  /// from the recovered records.
  static Result<std::unique_ptr<HermesCluster>> Recover(
      PartitionId num_partitions, Options options);

  /// Snapshots every durable server and truncates its log. Errors when
  /// durability is off.
  Status Checkpoint() EXCLUDES(mu_);

  bool durable() const { return !options_.durability_dir.empty(); }

  PartitionId num_servers() const { return assignment_.num_partitions(); }
  const Graph& graph() const { return graph_; }
  const PartitionAssignment& assignment() const { return assignment_; }
  const AuxiliaryData& aux() const { return aux_; }
  GraphStore* store(PartitionId p) { return store_ptrs_[p]; }
  const GraphStore* store(PartitionId p) const { return store_ptrs_[p]; }
  TransactionManager* txn_manager() { return &txns_; }
  const Options& options() const { return options_; }

  // --- Queries ---------------------------------------------------------------

  /// One executed traversal, decomposed into per-server work segments for
  /// the timing model.
  struct TraversalRun {
    /// (server, vertices visited there) in execution order; consecutive
    /// entries on different servers are remote hops.
    std::vector<std::pair<PartitionId, std::uint32_t>> segments;
    std::uint64_t vertices_processed = 0;
    std::uint64_t unique_vertices = 0;  // the query response size
    std::uint64_t remote_hops = 0;
  };

  /// Executes a `hops`-hop traversal from `start` against the stores
  /// (walking real relationship chains) and records per-server segments.
  /// Reads bump the start vertex's weight when configured.
  Result<TraversalRun> ExecuteRead(VertexId start, int hops) EXCLUDES(mu_);

  /// Adapter for the declarative traversal API (graphdb/traversal.h):
  /// routes each adjacency fetch to the owning server's store, i.e. a
  /// cluster-wide remote-traversal-capable NeighborProvider.
  NeighborProvider MakeNeighborProvider() const;

  // --- Writes ----------------------------------------------------------------

  /// Creates a new vertex; placement by hash (new users have no history).
  Result<VertexId> InsertVertex(double weight = 1.0) EXCLUDES(mu_);

  /// Creates edge {u, v}, updating stores (with ghosts), the graph view,
  /// and the auxiliary data. Takes exclusive locks on both endpoints; a
  /// lock timeout aborts with kTimedOut (deadlock resolution).
  Status InsertEdge(VertexId u, VertexId v, std::uint32_t type = 0)
      EXCLUDES(mu_);

  // --- Repartitioning -----------------------------------------------------------

  /// Phase 1 + 2 of the paper's algorithm: runs the lightweight
  /// repartitioner on the auxiliary data (logical moves), then physically
  /// migrates the net-moved vertices between stores.
  Result<MigrationStats> RunLightweightRepartition() EXCLUDES(mu_);

  /// Physically migrates stores to match `target` (used to apply an
  /// offline Metis partitioning for comparison). Labels should already be
  /// matched to the current assignment.
  Result<MigrationStats> MigrateToAssignment(const PartitionAssignment& target)
      EXCLUDES(mu_);

  /// Cross-checks stores against the graph view and directory on a sample
  /// of `sample` vertices (0 = all). Returns false on any inconsistency.
  bool Validate(std::size_t sample = 0, std::uint64_t seed = 1) const
      EXCLUDES(mu_);

  /// Total bytes across all store shards.
  std::size_t TotalStoreBytes() const EXCLUDES(mu_);

  /// Refreshes the cluster gauges (store bytes, vertex count) under `mu_`
  /// and returns a consistent copy of the process-wide metrics. Safe to
  /// call concurrently with any other cluster operation: it takes mu_
  /// first and MetricsRegistry's leaf mutex second (DESIGN.md §7).
  hermes::MetricsSnapshot MetricsSnapshot() const EXCLUDES(mu_);

 private:
  /// Builds without loading stores (used by Recover()).
  struct RecoveredTag {};
  HermesCluster(RecoveredTag, Graph graph, PartitionAssignment assignment,
                Options options,
                std::vector<std::unique_ptr<DurableGraphStore>> durable);

  Status InitStores() EXCLUDES(mu_);
  Status LoadStores() EXCLUDES(mu_);
  Result<MigrationStats> MigrateDiff(const PartitionAssignment& before,
                                     const PartitionAssignment& after)
      REQUIRES(mu_);

  // Mutation helpers: route through the WAL when durability is on.
  Status DoCreateNode(PartitionId p, VertexId id, double weight)
      REQUIRES(mu_);
  Status DoRemoveNode(PartitionId p, VertexId v) REQUIRES(mu_);
  Status DoSetNodeState(PartitionId p, VertexId v, NodeState state)
      REQUIRES(mu_);
  Status DoAddNodeWeight(PartitionId p, VertexId v, double delta)
      REQUIRES(mu_);
  Result<RecordId> DoAddEdge(PartitionId p, VertexId v, VertexId other,
                             std::uint32_t type, bool other_is_local)
      REQUIRES(mu_);
  Status DoSetNodeProperty(PartitionId p, VertexId v, std::uint32_t key,
                           const std::string& value) REQUIRES(mu_);
  Status DoSetEdgeProperty(PartitionId p, VertexId v, VertexId other,
                           std::uint32_t key, const std::string& value)
      REQUIRES(mu_);

  /// Serializes all cluster operations (see class comment for the model
  /// and the lock order). graph_/assignment_/aux_/store_ptrs_/txns_ are
  /// guarded by mu_ by convention; they stay unannotated only because the
  /// const accessors expose quiesced-read references.
  mutable Mutex mu_{"cluster.mu", lock_order::kRankCluster};
  Graph graph_;
  PartitionAssignment assignment_;
  AuxiliaryData aux_;
  Options options_;
  std::vector<std::unique_ptr<GraphStore>> stores_
      GUARDED_BY(mu_);  // in-memory mode
  std::vector<std::unique_ptr<DurableGraphStore>> durable_
      GUARDED_BY(mu_);  // durable mode
  std::vector<GraphStore*> store_ptrs_;  // uniform read access
  TransactionManager txns_;
  Rng rng_ GUARDED_BY(mu_){0xbead5ULL};

  // Observability (process-wide counters, DESIGN.md §7). Initialized here
  // so every constructor path shares them.
  Counter* const m_reads_ =
      MetricsRegistry::Global().GetCounter("cluster.reads");
  Counter* const m_read_remote_hops_ =
      MetricsRegistry::Global().GetCounter("cluster.read_remote_hops");
  Counter* const m_writes_ =
      MetricsRegistry::Global().GetCounter("cluster.writes");
  Counter* const m_migrations_ =
      MetricsRegistry::Global().GetCounter("cluster.migrations");
  Counter* const m_vertices_migrated_ =
      MetricsRegistry::Global().GetCounter("cluster.vertices_migrated");
  Counter* const m_migration_bytes_ =
      MetricsRegistry::Global().GetCounter("cluster.migration_bytes_copied");
};

}  // namespace hermes

#endif  // HERMES_CLUSTER_HERMES_CLUSTER_H_
