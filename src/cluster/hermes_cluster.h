#ifndef HERMES_CLUSTER_HERMES_CLUSTER_H_
#define HERMES_CLUSTER_HERMES_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graphdb/traversal.h"
#include "net/bus.h"
#include "net/inproc_transport.h"
#include "net/message.h"
#include "partition/assignment.h"
#include "partition/aux_data.h"
#include "partition/lightweight.h"
#include "server/partition_server.h"
#include "sim/network.h"
#include "txn/transaction.h"

namespace hermes {

/// Statistics of one physical migration epoch (copy step -> barrier ->
/// remove step, Section 3.2).
struct MigrationStats {
  std::size_t vertices_moved = 0;
  std::size_t relationships_touched = 0;
  std::size_t bytes_copied = 0;
  /// Number of chunks the move list was split into (each chunk is an
  /// independent copy -> barrier -> remove mini-epoch).
  std::size_t chunks = 0;
  SimTime copy_time_us = 0.0;
  SimTime total_time_us = 0.0;
  // Filled when the move list came from the lightweight repartitioner.
  std::size_t repartitioner_iterations = 0;
  bool repartitioner_converged = false;
  std::size_t aux_bytes_exchanged = 0;  // phase-one control traffic
  double edge_cut_fraction_before = 0.0;
  double edge_cut_fraction_after = 0.0;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
};

/// The distributed Hermes deployment: `alpha` peer partition servers,
/// each hosting a GraphStore shard of the social graph, plus the shared
/// directory (PartitionAssignment), per-server auxiliary data, and
/// transaction management (Figure 5/6). Clients connect to any server;
/// traversals are forwarded along partition boundaries as remote hops.
///
/// Every cross-server operation — adjacency fetches, record mutations,
/// migration chunk copy/remove traffic, weight exchange, health,
/// checkpoint, recovery dumps — travels as a typed message through the
/// MessageBus over a Transport (DESIGN.md §12). The cluster object holds
/// no store pointers at all: the partition-server boundary is the wire
/// protocol, and tools/layers.json forbids this module from including
/// the store headers, so "no direct cross-server access" is checked at
/// build time. The first transport is in-process queues; a socket
/// `hermesd` slots in behind the same interface.
///
/// The cluster also keeps the algorithmic `Graph` view in sync with the
/// stores: the repartitioner runs against the auxiliary data exactly as
/// in the paper, and physical migration runs against the stores.
///
/// Concurrency model (phase 3, message-passing — DESIGN.md §6/§12).
/// Client-side capabilities:
///
///   migration_mu_ (rank 5)   one migration epoch at a time; held across
///                            all chunks of a physical migration and
///                            across Checkpoint() so a snapshot never
///                            captures a half-migrated chunk.
///   dir_mu_       (rank 10)  reader/writer lock over the directory:
///                            assignment_, tombstoned_, and the vertex-id
///                            space (graph_/assignment_ sizes). Queries
///                            and single-edge writes hold it SHARED;
///                            InsertVertex, Validate, and each migration
///                            chunk hold it EXCLUSIVE. Writer-preferring,
///                            so migration cannot be starved by reads.
///   topo_mu_      (rank 20)  serializes mutations/reads of the graph_
///                            adjacency+weights and aux_ counters (both
///                            are not internally synchronized). Always
///                            taken under dir_mu_ (shared or exclusive).
///
/// Per-partition store serialization lives inside each PartitionServer
/// (rank 100+p), on the transport's dispatch threads. Issuing a bus call
/// while holding dir_mu_/topo_mu_ is deadlock-free by construction: the
/// bus/transport/inbox mutexes rank strictly between topo_mu_ and the
/// servers, dispatch threads acquire only their own server mutex (never
/// a cluster lock), and replies are sent with no locks held — so the
/// client-side hold can always be serviced. Record-level transaction
/// locks are acquired under dir_mu_ shared; a writer stalled on a record
/// lock held by an external transaction resolves by timeout, never
/// deadlock. The const accessors (graph(), aux(), store(), ...) hand out
/// unsynchronized references and are only safe on a quiesced cluster —
/// the runtime lock-order validator and the tsan preset are the
/// enforcement mechanism. See DESIGN.md "Concurrency invariants".
class HermesCluster {
 public:
  struct Options {
    NetworkParams net;
    RepartitionerOptions repartitioner;
    /// Bump the start vertex's popularity weight on every read (the
    /// paper's vertex weight = read-request count).
    bool count_reads_in_weights = true;
    /// When non-empty, every server's store is durable: mutations are
    /// WAL-logged under `<durability_dir>/p<i>/` and Checkpoint() /
    /// Recover() provide crash safety for the whole cluster.
    std::string durability_dir;
    /// Vertices physically migrated per chunk. Between chunks every lock
    /// is released, so reads and writes interleave with a live migration
    /// and observe the paper's unavailable-record semantics.
    std::size_t migration_chunk = 64;
    /// When > 0, ExecuteRead sleeps this long (wall clock) per remote
    /// hop while holding only the shared directory lock — models the
    /// network round-trip so real-thread benchmarks measure concurrency,
    /// not just in-memory pointer chasing.
    double read_hop_latency_us = 0.0;
    /// Test hook: called between the copy and remove steps of every
    /// migration chunk with the chunk's vertex list, with no cluster
    /// locks held (reads from the hook are legal and see the barrier
    /// window: chunk vertices unavailable at the source, directory not
    /// yet flipped).
    std::function<void(const std::vector<VertexId>&)> migration_barrier_hook;
    /// In-process transport tuning: inbox capacity (backpressure bound)
    /// and the seeded duplicate/reorder fault cadences.
    InProcTransport::Options transport;
    /// Per-call reply timeout. A lost frame surfaces as kUnavailable
    /// (retryable) after this long instead of hanging.
    MessageBus::Options bus;
  };

  /// Builds the cluster, loading every server with its shard (ghost
  /// relationships created for cross-partition edges).
  HermesCluster(Graph graph, PartitionAssignment assignment,
                Options options);
  HermesCluster(Graph graph, PartitionAssignment assignment);

  /// Joins the transport dispatch threads before tearing anything down.
  ~HermesCluster();

  /// Reopens a durable cluster from `options.durability_dir` after a
  /// crash or shutdown: recovers every server's store (snapshot + WAL
  /// tail), then rebuilds the directory, graph view, and auxiliary data
  /// from per-server Dump messages. Vertex ids below the recovered max
  /// that have no node record in any store (removed and never
  /// re-created) are tombstoned: they keep weight 0, are rejected by
  /// reads and writes, and are never migrated.
  [[nodiscard]] static Result<std::unique_ptr<HermesCluster>> Recover(
      PartitionId num_partitions, Options options);

  /// Snapshots every durable server and truncates its log. Serialized
  /// against whole migrations (never snapshots a half-migrated chunk).
  /// Errors when durability is off.
  [[nodiscard]] Status Checkpoint() EXCLUDES(migration_mu_, dir_mu_);

  bool durable() const { return !options_.durability_dir.empty(); }

  PartitionId num_servers() const { return assignment_.num_partitions(); }
  const Graph& graph() const { return graph_; }
  const PartitionAssignment& assignment() const { return assignment_; }
  const AuxiliaryData& aux() const { return aux_; }
  /// Quiesced TEST access to a server's store, bypassing the message
  /// protocol. Production paths must use the bus.
  GraphStore* store(PartitionId p) { return servers_[p]->store_for_test(); }
  const GraphStore* store(PartitionId p) const {
    return servers_[p]->store_for_test();
  }
  TransactionManager* txn_manager() { return &txns_; }
  const Options& options() const { return options_; }

  /// True when vertex id `v` was tombstoned by Recover(). Quiesced-read
  /// accessor, like graph()/assignment().
  bool IsTombstoned(VertexId v) const {
    return v < tombstoned_.size() && tombstoned_[v] != 0;
  }

  // --- Queries ---------------------------------------------------------------

  /// One executed traversal, decomposed into per-server work segments for
  /// the timing model.
  struct TraversalRun {
    /// (server, vertices visited there) in execution order; consecutive
    /// entries on different servers are remote hops.
    std::vector<std::pair<PartitionId, std::uint32_t>> segments;
    std::uint64_t vertices_processed = 0;
    std::uint64_t unique_vertices = 0;  // the query response size
    std::uint64_t remote_hops = 0;
  };

  /// Executes a `hops`-hop traversal from `start` against the stores
  /// (walking real relationship chains) and records per-server segments.
  /// Holds dir_mu_ shared for the whole traversal (placement is stable
  /// for one query); each level's adjacency fetches are batched into one
  /// NeighborsRequest per touched server (scatter-gather), so traversals
  /// run concurrently with each other and with writes. Reads bump the
  /// start vertex's weight when configured.
  [[nodiscard]] Result<TraversalRun> ExecuteRead(VertexId start, int hops)
      EXCLUDES(dir_mu_);

  /// Adapter for the declarative traversal API (graphdb/traversal.h):
  /// routes each adjacency fetch to the owning server over the bus, i.e.
  /// a cluster-wide remote-traversal-capable NeighborProvider.
  // audit:allow(guard, lock-free; the provider locks per invocation)
  NeighborProvider MakeNeighborProvider() const;

  // --- Writes ----------------------------------------------------------------

  /// Creates a new vertex; placement by hash (new users have no history).
  /// Takes the directory exclusively (the vertex-id space grows).
  [[nodiscard]] Result<VertexId> InsertVertex(double weight = 1.0) EXCLUDES(dir_mu_);

  /// Creates edge {u, v}, updating stores (with ghosts), the graph view,
  /// and the auxiliary data. Takes exclusive record locks on both
  /// endpoints (a lock timeout aborts with kTimedOut — deadlock
  /// resolution), then writes each endpoint's half record through the
  /// bus; each server serializes its own store. If a store rejects its
  /// half of the edge after the graph view accepted it, the graph edge
  /// is rolled back and the transaction aborted, so graph_ and the
  /// stores never diverge.
  [[nodiscard]] Status InsertEdge(VertexId u, VertexId v, std::uint32_t type = 0)
      EXCLUDES(dir_mu_);

  // --- Repartitioning -----------------------------------------------------------

  /// Phase 1 + 2 of the paper's algorithm: runs the lightweight
  /// repartitioner on copies of the directory and auxiliary data (logical
  /// moves), then physically migrates the net-moved vertices between
  /// stores in chunks, releasing all locks between chunks.
  [[nodiscard]] Result<MigrationStats> RunLightweightRepartition()
      EXCLUDES(migration_mu_, dir_mu_);

  /// Physically migrates stores to match `target` (used to apply an
  /// offline Metis partitioning for comparison). Labels should already be
  /// matched to the current assignment.
  [[nodiscard]] Result<MigrationStats> MigrateToAssignment(const PartitionAssignment& target)
      EXCLUDES(migration_mu_, dir_mu_);

  /// Cross-checks stores against the graph view and directory on a sample
  /// of `sample` vertices (0 = all), probing every store through the bus.
  /// Returns false on any inconsistency. Takes the directory exclusively,
  /// so it is a quiesce point: it never observes the inside of a
  /// migration chunk.
  bool Validate(std::size_t sample = 0, std::uint64_t seed = 1) const
      EXCLUDES(dir_mu_);

  /// Total bytes across all store shards (per-server Health messages).
  std::size_t TotalStoreBytes() const EXCLUDES(dir_mu_);

  /// Refreshes the cluster gauges (store bytes, vertex count) under the
  /// directory lock and returns a consistent copy of the process-wide
  /// metrics. Safe to call concurrently with any other cluster operation
  /// (MetricsRegistry's mutex is a leaf in the lock order, DESIGN.md §7).
  hermes::MetricsSnapshot MetricsSnapshot() const EXCLUDES(dir_mu_);

 private:
  /// Builds without loading stores (used by Recover()).
  struct RecoveredTag {};
  HermesCluster(RecoveredTag, Graph graph, PartitionAssignment assignment,
                Options options,
                std::unique_ptr<InProcTransport> transport,
                std::vector<std::unique_ptr<PartitionServer>> servers,
                std::unique_ptr<MessageBus> bus,
                std::vector<char> tombstoned);

  /// Brings up the transport, one PartitionServer per partition
  /// (endpoints 0..alpha-1), and the client bus (endpoint alpha).
  [[nodiscard]] Status InitServers();
  /// Seeds every server's store from graph_/assignment_ with chunked
  /// InstallChunk messages.
  [[nodiscard]] Status LoadServers();

  /// Physically migrates every vertex whose live placement differs from
  /// `target`, in chunks of options_.migration_chunk. Each chunk runs the
  /// classic copy -> barrier -> remove epoch against the live directory:
  /// extract + install + mark-unavailable (all bus traffic) under dir_mu_
  /// exclusive, then all locks released (the observable barrier window),
  /// then directory flip + source removal under dir_mu_ exclusive again.
  [[nodiscard]] Result<MigrationStats> MigrateDiffChunked(const PartitionAssignment& target)
      REQUIRES(migration_mu_) EXCLUDES(dir_mu_);

  // --- Message-bus round-trips ----------------------------------------------
  // All cross-server traffic funnels through BusCall; the typed wrappers
  // unwrap the expected reply payload. Every one of these blocks on the
  // reply (bounded by options_.bus.call_timeout_us). Locking contract:
  // issuing a call while holding dir_mu_/topo_mu_ is legal (see the
  // class comment); dispatch threads never take cluster locks.
  [[nodiscard]] Result<Envelope> BusCall(PartitionId p, MessagePayload payload) const;
  [[nodiscard]] Result<NeighborsReply> CallNeighbors(PartitionId p, NeighborsRequest req) const;
  [[nodiscard]] Result<ProbeReply> CallProbe(PartitionId p, ProbeRequest req) const;
  [[nodiscard]] Result<MutateReply> CallMutate(PartitionId p, MutateRequest req) const;
  [[nodiscard]] Result<InstallChunkReply> CallInstallChunk(PartitionId p,
                                                           InstallChunkRequest req) const;
  [[nodiscard]] Result<ExtractReply> CallExtract(PartitionId p, VertexId v) const;
  [[nodiscard]] Result<AuxExchangeReply> CallAuxExchange(PartitionId p,
                                                         AuxExchangeRequest req) const;
  [[nodiscard]] Result<HealthReply> CallHealth(PartitionId p) const;
  [[nodiscard]] Result<CheckpointReply> CallCheckpoint(PartitionId p) const;

  // Mutation helpers over CallMutate, mirroring the store API. The
  // owning server serializes execution; callers typically hold dir_mu_
  // (shared for single-record ops, exclusive for migration epochs).
  [[nodiscard]] Status DoCreateNode(PartitionId p, VertexId id, double weight);
  [[nodiscard]] Status DoRemoveNode(PartitionId p, VertexId v);
  [[nodiscard]] Status DoSetNodeState(PartitionId p, VertexId v, WireNodeState state);
  [[nodiscard]] Status DoAddNodeWeight(PartitionId p, VertexId v, double delta);
  [[nodiscard]] Result<RecordId> DoAddEdge(PartitionId p, VertexId v, VertexId other,
                             std::uint32_t type, bool other_is_local);
  [[nodiscard]] Status DoRemoveEdge(PartitionId p, VertexId v, VertexId other);
  [[nodiscard]] Status DoSetNodeProperty(PartitionId p, VertexId v, std::uint32_t key,
                           const std::string& value);
  [[nodiscard]] Status DoSetEdgeProperty(PartitionId p, VertexId v, VertexId other,
                           std::uint32_t key, const std::string& value);

  /// Capabilities — see the class comment for the full scheme. The
  /// guarded data members stay unannotated (the "shared-or-exclusive"
  /// directory discipline is not expressible to the static analysis);
  /// the runtime lock-order validator enforces the acquisition order
  /// instead.
  mutable Mutex migration_mu_{"cluster.migration_mu",
                              lock_order::kRankMigration};
  mutable SharedMutex dir_mu_{"cluster.dir", lock_order::kRankCluster};
  mutable Mutex topo_mu_{"cluster.topo", lock_order::kRankClusterTopology};
  // audit:allow(guard, topo_mu_ under a dir_mu_ hold; quiesced const access)
  Graph graph_;
  // audit:allow(guard, dir_mu_ shared to read and exclusive to mutate)
  PartitionAssignment assignment_;
  // audit:allow(guard, topo_mu_ under a dir_mu_ hold; quiesced const access)
  AuxiliaryData aux_;
  const Options options_;
  /// tombstoned_[v] != 0 marks an id recovered without a node record
  /// (guarded like assignment_: dir_mu_ shared to read, exclusive to
  /// mutate). Always sized assignment_.size().
  // audit:allow(guard, dir_mu_ shared to read and exclusive to mutate)
  std::vector<char> tombstoned_;
  /// Message runtime. Declaration order matters for teardown: the
  /// destructor shuts the bus and transport down first (joining every
  /// dispatch thread), then members destruct bus -> servers -> transport
  /// so no dispatcher can touch a dead server.
  // audit:allow(guard, internally synchronized; see InProcTransport)
  std::unique_ptr<InProcTransport> transport_;
  // audit:allow(guard, fixed at construction; each server self-serializes)
  std::vector<std::unique_ptr<PartitionServer>> servers_;
  // audit:allow(guard, internally synchronized; see MessageBus)
  std::unique_ptr<MessageBus> bus_;
  TransactionManager txns_;

  // Observability (process-wide counters, DESIGN.md §7). Initialized here
  // so every constructor path shares them.
  Counter* const m_reads_ =
      MetricsRegistry::Global().GetCounter("cluster.reads");
  Counter* const m_read_remote_hops_ =
      MetricsRegistry::Global().GetCounter("cluster.read_remote_hops");
  Counter* const m_writes_ =
      MetricsRegistry::Global().GetCounter("cluster.writes");
  Counter* const m_migrations_ =
      MetricsRegistry::Global().GetCounter("cluster.migrations");
  Counter* const m_vertices_migrated_ =
      MetricsRegistry::Global().GetCounter("cluster.vertices_migrated");
  Counter* const m_migration_bytes_ =
      MetricsRegistry::Global().GetCounter("cluster.migration_bytes_copied");
};

}  // namespace hermes

#endif  // HERMES_CLUSTER_HERMES_CLUSTER_H_
