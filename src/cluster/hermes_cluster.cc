#include "cluster/hermes_cluster.h"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <map>
#include <unordered_set>

#include "common/logging.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"

namespace hermes {

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment,
                             Options options)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)) {
  HERMES_CHECK(assignment_.size() == graph_.NumVertices());
  Status st = InitStores();
  HERMES_CHECK(st.ok());
  st = LoadStores();
  HERMES_CHECK(st.ok());
}

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment)
    : HermesCluster(std::move(graph), std::move(assignment), Options{}) {}

HermesCluster::HermesCluster(
    RecoveredTag, Graph graph, PartitionAssignment assignment,
    Options options, std::vector<std::unique_ptr<DurableGraphStore>> durable)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)),
      durable_(std::move(durable)) {
  store_ptrs_.reserve(durable_.size());
  for (auto& d : durable_) store_ptrs_.push_back(d->mutable_store());
}

Status HermesCluster::InitStores() {
  MutexLock lock(&mu_);
  const PartitionId alpha = assignment_.num_partitions();
  store_ptrs_.clear();
  if (durable()) {
    for (PartitionId p = 0; p < alpha; ++p) {
      const std::string dir =
          options_.durability_dir + "/p" + std::to_string(p);
      std::filesystem::create_directories(dir);
      HERMES_ASSIGN_OR_RETURN(auto store, DurableGraphStore::Open(p, dir));
      store_ptrs_.push_back(store->mutable_store());
      durable_.push_back(std::move(store));
    }
  } else {
    for (PartitionId p = 0; p < alpha; ++p) {
      stores_.push_back(std::make_unique<GraphStore>(p));
      store_ptrs_.push_back(stores_.back().get());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<HermesCluster>> HermesCluster::Recover(
    PartitionId num_partitions, Options options) {
  if (options.durability_dir.empty()) {
    return Status::InvalidArgument("Recover() needs a durability_dir");
  }
  std::vector<std::unique_ptr<DurableGraphStore>> durable;
  VertexId max_id = 0;
  bool any_node = false;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    const std::string dir =
        options.durability_dir + "/p" + std::to_string(p);
    std::filesystem::create_directories(dir);
    HERMES_ASSIGN_OR_RETURN(auto store, DurableGraphStore::Open(p, dir));
    for (VertexId id : store->store().NodeIds()) {
      max_id = std::max(max_id, id);
      any_node = true;
    }
    durable.push_back(std::move(store));
  }

  // Rebuild the graph view and directory from the recovered records:
  // every node record places its vertex; every non-ghost relationship
  // record contributes its edge exactly once (full records appear in one
  // store; cross-partition edges have one real and one ghost copy).
  const std::size_t n = any_node ? static_cast<std::size_t>(max_id) + 1 : 0;
  Graph graph(n);
  PartitionAssignment assignment(n, num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (const auto& node : durable[p]->store().DumpNodes()) {
      assignment.Assign(node.id, p);
      graph.SetVertexWeight(node.id, node.weight);
    }
  }
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (const auto& rel : durable[p]->store().DumpRelationships()) {
      if (rel.ghost) continue;
      const Status st = graph.AddEdge(rel.src, rel.dst);
      if (!st.ok() && !st.IsAlreadyExists()) return st;
    }
  }
  return std::unique_ptr<HermesCluster>(
      new HermesCluster(RecoveredTag{}, std::move(graph),
                        std::move(assignment), std::move(options),
                        std::move(durable)));
}

Status HermesCluster::Checkpoint() {
  MutexLock lock(&mu_);
  if (!durable()) {
    return Status::InvalidArgument("cluster is not durable");
  }
  for (auto& d : durable_) {
    HERMES_RETURN_NOT_OK(d->Checkpoint());
  }
  return Status::OK();
}

// --- Mutation routing -----------------------------------------------------

Status HermesCluster::DoCreateNode(PartitionId p, VertexId id, double w) {
  return durable() ? durable_[p]->CreateNode(id, w)
                   : store_ptrs_[p]->CreateNode(id, w);
}
Status HermesCluster::DoRemoveNode(PartitionId p, VertexId v) {
  return durable() ? durable_[p]->RemoveNode(v)
                   : store_ptrs_[p]->RemoveNode(v);
}
Status HermesCluster::DoSetNodeState(PartitionId p, VertexId v,
                                     NodeState state) {
  return durable() ? durable_[p]->SetNodeState(v, state)
                   : store_ptrs_[p]->SetNodeState(v, state);
}
Status HermesCluster::DoAddNodeWeight(PartitionId p, VertexId v,
                                      double delta) {
  return durable() ? durable_[p]->AddNodeWeight(v, delta)
                   : store_ptrs_[p]->AddNodeWeight(v, delta);
}
Result<RecordId> HermesCluster::DoAddEdge(PartitionId p, VertexId v,
                                          VertexId other, std::uint32_t type,
                                          bool other_is_local) {
  return durable() ? durable_[p]->AddEdge(v, other, type, other_is_local)
                   : store_ptrs_[p]->AddEdge(v, other, type, other_is_local);
}
Status HermesCluster::DoSetNodeProperty(PartitionId p, VertexId v,
                                        std::uint32_t key,
                                        const std::string& value) {
  return durable() ? durable_[p]->SetNodeProperty(v, key, value)
                   : store_ptrs_[p]->SetNodeProperty(v, key, value);
}
Status HermesCluster::DoSetEdgeProperty(PartitionId p, VertexId v,
                                        VertexId other, std::uint32_t key,
                                        const std::string& value) {
  return durable() ? durable_[p]->SetEdgeProperty(v, other, key, value)
                   : store_ptrs_[p]->SetEdgeProperty(v, other, key, value);
}

Status HermesCluster::LoadStores() {
  MutexLock lock(&mu_);
  const std::size_t n = graph_.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    HERMES_RETURN_NOT_OK(DoCreateNode(assignment_.PartitionOf(v), v,
                                      graph_.VertexWeight(v)));
  }
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId pv = assignment_.PartitionOf(v);
    for (VertexId w : graph_.Neighbors(v)) {
      if (w < v) continue;  // one pass per undirected edge
      const PartitionId pw = assignment_.PartitionOf(w);
      if (pv == pw) {
        HERMES_RETURN_NOT_OK(DoAddEdge(pv, v, w, 0, true).status());
      } else {
        HERMES_RETURN_NOT_OK(DoAddEdge(pv, v, w, 0, false).status());
        HERMES_RETURN_NOT_OK(DoAddEdge(pw, w, v, 0, false).status());
      }
    }
  }
  return Status::OK();
}

Result<HermesCluster::TraversalRun> HermesCluster::ExecuteRead(VertexId start,
                                                               int hops) {
  MutexLock lock(&mu_);
  if (start >= graph_.NumVertices()) {
    return Status::OutOfRange("start vertex out of range");
  }
  const PartitionId p0 = assignment_.PartitionOf(start);
  if (!store_ptrs_[p0]->HasNode(start)) {
    return Status::Unavailable("start vertex unavailable (mid-migration)");
  }

  TraversalRun run;
  run.segments.emplace_back(p0, 1);
  run.vertices_processed = 1;
  run.unique_vertices = 1;

  // Level-synchronous execution with per-server batching: at each hop the
  // query is forwarded once to every server that hosts touched vertices
  // (scatter-gather), not once per edge. Touching a vertex's record
  // happens on its host, so the per-server visit counts — and the number
  // of distinct remote servers per level — are what edge-cut controls.
  std::unordered_set<VertexId> seen{start};
  std::vector<VertexId> level{start};
  PartitionId position = p0;  // server currently holding the traversal
  for (int depth = 0; depth < hops && !level.empty(); ++depth) {
    std::vector<VertexId> next_level;
    std::map<PartitionId, std::uint32_t> visits_by_server;
    for (VertexId v : level) {
      const PartitionId pv = assignment_.PartitionOf(v);
      auto neighbors = store_ptrs_[pv]->Neighbors(v);
      if (!neighbors.ok()) continue;  // vertex went unavailable mid-run
      for (VertexId w : *neighbors) {
        ++visits_by_server[assignment_.PartitionOf(w)];
        ++run.vertices_processed;
        if (seen.insert(w).second) {
          ++run.unique_vertices;
          next_level.push_back(w);
        }
      }
    }
    // Serve the local batch first, then hop to each remote server once.
    if (auto it = visits_by_server.find(position);
        it != visits_by_server.end()) {
      run.segments.back().second += it->second;
      visits_by_server.erase(it);
    }
    for (const auto& [server, visits] : visits_by_server) {
      ++run.remote_hops;
      run.segments.emplace_back(server, visits);
      position = server;
    }
    level = std::move(next_level);
  }

  if (options_.count_reads_in_weights) {
    graph_.AddVertexWeight(start, 1.0);
    aux_.OnVertexWeightChanged(start, 1.0, assignment_);
    (void)DoAddNodeWeight(p0, start, 1.0);
  }
  m_reads_->Increment();
  m_read_remote_hops_->Increment(run.remote_hops);
  return run;
}

NeighborProvider HermesCluster::MakeNeighborProvider() const {
  return [this](VertexId v, std::optional<std::uint32_t> type)
             -> Result<std::vector<VertexId>> {
    MutexLock lock(&mu_);
    if (v >= assignment_.size()) {
      return Status::OutOfRange("vertex out of range");
    }
    return store_ptrs_[assignment_.PartitionOf(v)]->NeighborsByType(v, type);
  };
}

Result<VertexId> HermesCluster::InsertVertex(double weight) {
  MutexLock lock(&mu_);
  const VertexId id = graph_.AddVertex(weight);
  const PartitionId p =
      HashPartitioner(1).PartitionFor(id, assignment_.num_partitions());
  assignment_.AddVertex(p);
  aux_.OnVertexAdded(p, weight);
  HERMES_RETURN_NOT_OK(DoCreateNode(p, id, weight));
  m_writes_->Increment();
  return id;
}

Status HermesCluster::InsertEdge(VertexId u, VertexId v, std::uint32_t type) {
  MutexLock lock(&mu_);
  if (u >= graph_.NumVertices() || v >= graph_.NumVertices()) {
    return Status::OutOfRange("endpoint out of range");
  }
  Transaction txn = txns_.Begin();
  // Lock both endpoints in id order to keep lock acquisition ordered;
  // conflicting workloads still resolve deadlocks by timeout.
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::min(u, v)));
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::max(u, v)));

  const Status st = graph_.AddEdge(u, v);
  if (!st.ok()) {
    txn.Abort();
    return st;
  }
  const PartitionId pu = assignment_.PartitionOf(u);
  const PartitionId pv = assignment_.PartitionOf(v);
  if (pu == pv) {
    HERMES_RETURN_NOT_OK(DoAddEdge(pu, u, v, type, true).status());
  } else {
    HERMES_RETURN_NOT_OK(DoAddEdge(pu, u, v, type, false).status());
    HERMES_RETURN_NOT_OK(DoAddEdge(pv, v, u, type, false).status());
  }
  aux_.OnEdgeAdded(u, v, assignment_);
  txn.Commit();
  m_writes_->Increment();
  return Status::OK();
}

Result<MigrationStats> HermesCluster::RunLightweightRepartition() {
  TraceSpan span("cluster.repartition");
  MutexLock lock(&mu_);
  const PartitionAssignment before = assignment_;
  LightweightRepartitioner repartitioner(options_.repartitioner);
  const RepartitionResult logical =
      repartitioner.Run(graph_, &assignment_, &aux_);

  HERMES_ASSIGN_OR_RETURN(MigrationStats stats,
                          MigrateDiff(before, assignment_));
  stats.repartitioner_iterations = logical.iterations;
  stats.repartitioner_converged = logical.converged;
  stats.aux_bytes_exchanged = logical.aux_bytes_exchanged;
  stats.edge_cut_fraction_before = logical.initial_edge_cut_fraction;
  stats.edge_cut_fraction_after = logical.final_edge_cut_fraction;
  stats.imbalance_before = logical.initial_imbalance;
  stats.imbalance_after = logical.final_imbalance;
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateToAssignment(
    const PartitionAssignment& target) {
  MutexLock lock(&mu_);
  if (target.size() != assignment_.size() ||
      target.num_partitions() != assignment_.num_partitions()) {
    return Status::InvalidArgument("assignment shape mismatch");
  }
  const PartitionAssignment before = assignment_;
  assignment_ = target;
  HERMES_ASSIGN_OR_RETURN(MigrationStats stats,
                          MigrateDiff(before, assignment_));
  stats.edge_cut_fraction_before = EdgeCutFraction(graph_, before);
  stats.edge_cut_fraction_after = EdgeCutFraction(graph_, assignment_);
  stats.imbalance_before = ImbalanceFactor(graph_, before);
  stats.imbalance_after = ImbalanceFactor(graph_, assignment_);
  // A global repartitioner invalidates the incremental counts; rebuild.
  aux_ = AuxiliaryData(graph_, assignment_);
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateDiff(
    const PartitionAssignment& before, const PartitionAssignment& after) {
  MigrationStats stats;
  std::vector<VertexId> moved;
  for (VertexId v = 0; v < before.size(); ++v) {
    if (before.PartitionOf(v) != after.PartitionOf(v)) moved.push_back(v);
  }
  stats.vertices_moved = moved.size();
  stats.relationships_touched = RelationshipsTouched(graph_, before, after);
  if (moved.empty()) return stats;

  const PartitionId alpha = assignment_.num_partitions();
  std::vector<SimTime> target_busy(alpha, 0.0);
  std::vector<SimTime> source_busy(alpha, 0.0);

  // --- Copy step: snapshot on the source, replicate on the target.
  // Insertion-only, so every target proceeds fully in parallel
  // (Section 3.2); the step's duration is the busiest server's time.
  std::vector<NodeSnapshot> snapshots;
  snapshots.reserve(moved.size());
  {
    TraceSpan copy_span("cluster.migration.copy");
    for (VertexId v : moved) {
      HERMES_ASSIGN_OR_RETURN(
          NodeSnapshot snap, store_ptrs_[before.PartitionOf(v)]->ExtractNode(v));
      stats.bytes_copied += snap.WireBytes();
      target_busy[after.PartitionOf(v)] +=
          static_cast<SimTime>(snap.WireBytes()) * options_.net.per_byte_us +
          static_cast<SimTime>(1 + snap.relationships.size()) *
              options_.net.write_op_us;
      snapshots.push_back(std::move(snap));
    }
    // Replicate node records first so that edges between co-migrating
    // vertices find both endpoints present.
    for (const NodeSnapshot& snap : snapshots) {
      const PartitionId tp = after.PartitionOf(snap.id);
      HERMES_RETURN_NOT_OK(DoCreateNode(tp, snap.id, snap.weight));
      for (const auto& [key, value] : snap.properties) {
        HERMES_RETURN_NOT_OK(DoSetNodeProperty(tp, snap.id, key, value));
      }
    }
    for (const NodeSnapshot& snap : snapshots) {
      const PartitionId tp = after.PartitionOf(snap.id);
      for (const auto& rel : snap.relationships) {
        const bool other_local = after.PartitionOf(rel.other) == tp;
        auto added = DoAddEdge(tp, snap.id, rel.other, rel.type, other_local);
        if (!added.ok()) {
          if (added.status().IsAlreadyExists()) continue;  // co-migrated edge
          return added.status();
        }
        if (rel.properties_included) {
          for (const auto& [key, value] : rel.properties) {
            const Status st =
                DoSetEdgeProperty(tp, snap.id, rel.other, key, value);
            // Ghost copies refuse properties by design.
            if (!st.ok() && !st.IsInvalidArgument()) return st;
          }
        }
      }
    }
  }
  stats.copy_time_us =
      *std::max_element(target_busy.begin(), target_busy.end());

  // --- Synchronization barrier, then remove step: mark unavailable and
  // delete the originals (queries treat unavailable records as absent, so
  // no locks are held).
  {
    TraceSpan remove_span("cluster.migration.remove");
    for (VertexId v : moved) {
      const PartitionId sp = before.PartitionOf(v);
      HERMES_RETURN_NOT_OK(DoSetNodeState(sp, v, NodeState::kUnavailable));
    }
    for (const NodeSnapshot& snap : snapshots) {
      const PartitionId sp = before.PartitionOf(snap.id);
      source_busy[sp] += static_cast<SimTime>(1 + snap.relationships.size()) *
                         options_.net.write_op_us;
      HERMES_RETURN_NOT_OK(DoRemoveNode(sp, snap.id));
    }
  }
  stats.total_time_us =
      stats.copy_time_us + options_.net.migration_barrier_us +
      *std::max_element(source_busy.begin(), source_busy.end());
  m_migrations_->Increment();
  m_vertices_migrated_->Increment(stats.vertices_moved);
  m_migration_bytes_->Increment(stats.bytes_copied);
  return stats;
}

bool HermesCluster::Validate(std::size_t sample, std::uint64_t seed) const {
  MutexLock lock(&mu_);
  const std::size_t n = graph_.NumVertices();
  Rng rng(seed);
  const bool all = (sample == 0 || sample >= n);
  const std::size_t rounds = all ? n : sample;
  for (std::size_t i = 0; i < rounds; ++i) {
    const VertexId v = all ? static_cast<VertexId>(i) : rng.Uniform(n);
    const PartitionId pv = assignment_.PartitionOf(v);
    if (!store_ptrs_[pv]->HasNode(v)) return false;
    // No other store may host v.
    for (PartitionId p = 0; p < num_servers(); ++p) {
      if (p != pv && store_ptrs_[p]->NodeExists(v)) return false;
    }
    auto neighbors = store_ptrs_[pv]->Neighbors(v);
    if (!neighbors.ok()) return false;
    std::vector<VertexId> from_store = *neighbors;
    std::sort(from_store.begin(), from_store.end());
    const auto expected = graph_.Neighbors(v);
    if (from_store.size() != expected.size() ||
        !std::equal(from_store.begin(), from_store.end(), expected.begin())) {
      return false;
    }
    // Ghost discipline: cross-partition edges have exactly one ghost copy;
    // co-located edges have a single non-ghost record.
    for (VertexId w : expected) {
      const PartitionId pw = assignment_.PartitionOf(w);
      auto mine = store_ptrs_[pv]->EdgeIsGhost(v, w);
      auto theirs = store_ptrs_[pw]->EdgeIsGhost(w, v);
      if (!mine.ok() || !theirs.ok()) return false;
      if (pv == pw) {
        if (*mine || *theirs) return false;
      } else {
        if (*mine == *theirs) return false;
      }
    }
  }
  return true;
}

std::size_t HermesCluster::TotalStoreBytes() const {
  MutexLock lock(&mu_);
  std::size_t total = 0;
  for (const GraphStore* store : store_ptrs_) total += store->MemoryBytes();
  return total;
}

hermes::MetricsSnapshot HermesCluster::MetricsSnapshot() const {
  auto& registry = MetricsRegistry::Global();
  {
    // Refresh point-in-time gauges under mu_, then snapshot. The registry
    // mutex is a leaf, so mu_ -> registry.mu_ respects the lock order.
    MutexLock lock(&mu_);
    std::size_t store_bytes = 0;
    for (const GraphStore* store : store_ptrs_) {
      store_bytes += store->MemoryBytes();
    }
    registry.GetGauge("cluster.store_bytes")
        ->Set(static_cast<double>(store_bytes));
    registry.GetGauge("cluster.num_vertices")
        ->Set(static_cast<double>(graph_.NumVertices()));
    registry.GetGauge("cluster.num_edges")
        ->Set(static_cast<double>(graph_.NumEdges()));
    registry.GetGauge("cluster.imbalance")
        ->Set(ImbalanceFactor(graph_, assignment_));
  }
  return registry.Snapshot();
}

}  // namespace hermes
