#include "cluster/hermes_cluster.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"

namespace hermes {

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment,
                             Options options)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)),
      tombstoned_(assignment_.size(), 0) {
  HERMES_CHECK(assignment_.size() == graph_.NumVertices());
  Status st = InitServers();
  HERMES_CHECK(st.ok());
  st = LoadServers();
  HERMES_CHECK(st.ok());
}

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment)
    : HermesCluster(std::move(graph), std::move(assignment), Options{}) {}

HermesCluster::HermesCluster(
    RecoveredTag, Graph graph, PartitionAssignment assignment, Options options,
    std::unique_ptr<InProcTransport> transport,
    std::vector<std::unique_ptr<PartitionServer>> servers,
    std::unique_ptr<MessageBus> bus, std::vector<char> tombstoned)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)),
      tombstoned_(std::move(tombstoned)),
      transport_(std::move(transport)),
      servers_(std::move(servers)),
      bus_(std::move(bus)) {
  tombstoned_.resize(assignment_.size(), 0);
}

HermesCluster::~HermesCluster() {
  // Fail every pending call, then join the dispatch threads while all the
  // servers are still alive. Members then destruct bus_ -> servers_ ->
  // transport_, and the (idempotent) transport re-Shutdown is a no-op.
  if (bus_ != nullptr) bus_->Shutdown();
  if (transport_ != nullptr) transport_->Shutdown();
}

Status HermesCluster::InitServers() {
  // Construction-time, single-threaded: no cluster locks needed or taken.
  // Endpoint layout: server p owns endpoint p, the client bus owns
  // endpoint alpha.
  const PartitionId alpha = assignment_.num_partitions();
  transport_ = std::make_unique<InProcTransport>(options_.transport);
  servers_.reserve(alpha);
  for (PartitionId p = 0; p < alpha; ++p) {
    PartitionServer::Options server_options;
    if (durable()) {
      server_options.durability_dir =
          options_.durability_dir + "/p" + std::to_string(p);
    }
    // The dedup window must dominate the number of frames that can be in
    // flight at once (every inbox full, all addressed to one server), or
    // eviction could forget a token whose duplicate is still queued and
    // re-apply the mutation.
    server_options.dedup_window =
        options_.transport.inbox_capacity * (alpha + 1);
    HERMES_ASSIGN_OR_RETURN(
        auto server, PartitionServer::Open(p, p, transport_.get(),
                                           std::move(server_options)));
    servers_.push_back(std::move(server));
  }
  bus_ = std::make_unique<MessageBus>(transport_.get(), alpha, options_.bus);
  HERMES_RETURN_NOT_OK(bus_->Start());
  return Status::OK();
}

Status HermesCluster::LoadServers() {
  // Construction-time, single-threaded. Every partition's node chunks are
  // installed before any edge chunk, so a co-located half record always
  // finds both endpoints present (cross-partition halves never need the
  // remote node).
  const std::size_t n = graph_.NumVertices();
  const PartitionId alpha = assignment_.num_partitions();
  constexpr std::size_t kLoadChunk = 8192;
  std::vector<InstallChunkRequest> pending(alpha);
  auto flush = [&](PartitionId p) -> Status {
    if (pending[p].nodes.empty() && pending[p].edges.empty()) {
      return Status::OK();
    }
    HERMES_ASSIGN_OR_RETURN(InstallChunkReply reply,
                            CallInstallChunk(p, std::move(pending[p])));
    pending[p] = InstallChunkRequest{};
    return reply.status;
  };
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId p = assignment_.PartitionOf(v);
    pending[p].nodes.push_back({v, graph_.VertexWeight(v), {}});
    if (pending[p].nodes.size() >= kLoadChunk) {
      HERMES_RETURN_NOT_OK(flush(p));
    }
  }
  for (PartitionId p = 0; p < alpha; ++p) {
    HERMES_RETURN_NOT_OK(flush(p));
  }
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId pv = assignment_.PartitionOf(v);
    for (VertexId w : graph_.Neighbors(v)) {
      if (w < v) continue;  // one pass per undirected edge
      const PartitionId pw = assignment_.PartitionOf(w);
      if (pv == pw) {
        pending[pv].edges.push_back({v, w, 0, true, false, {}});
      } else {
        pending[pv].edges.push_back({v, w, 0, false, false, {}});
        pending[pw].edges.push_back({w, v, 0, false, false, {}});
      }
      if (pending[pv].edges.size() >= kLoadChunk) {
        HERMES_RETURN_NOT_OK(flush(pv));
      }
      if (pv != pw && pending[pw].edges.size() >= kLoadChunk) {
        HERMES_RETURN_NOT_OK(flush(pw));
      }
    }
  }
  for (PartitionId p = 0; p < alpha; ++p) {
    HERMES_RETURN_NOT_OK(flush(p));
  }
  return Status::OK();
}

Result<std::unique_ptr<HermesCluster>> HermesCluster::Recover(
    PartitionId num_partitions, Options options) {
  if (options.durability_dir.empty()) {
    return Status::InvalidArgument("Recover() needs a durability_dir");
  }
  // Bring up the message runtime first, exactly as the constructor does,
  // then rebuild the logical directory from per-server Dump replies. On
  // any failure the transport is shut down before the servers go out of
  // scope, so no dispatch thread outlives its server.
  auto transport = std::make_unique<InProcTransport>(options.transport);
  std::vector<std::unique_ptr<PartitionServer>> servers;
  servers.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    PartitionServer::Options server_options;
    server_options.durability_dir =
        options.durability_dir + "/p" + std::to_string(p);
    server_options.dedup_window =
        options.transport.inbox_capacity *
        (static_cast<std::size_t>(num_partitions) + 1);
    auto server =
        PartitionServer::Open(p, p, transport.get(), std::move(server_options));
    if (!server.ok()) {
      transport->Shutdown();
      return server.status();
    }
    servers.push_back(std::move(*server));
  }
  // Start minting request ids above every idempotency token recovered
  // from the WALs: a fresh call whose id collided with a recovered token
  // would be answered from stale dedup state instead of being applied.
  for (const auto& server : servers) {
    options.bus.first_request_id = std::max(
        options.bus.first_request_id, server->max_recovered_token_id() + 1);
  }
  auto bus =
      std::make_unique<MessageBus>(transport.get(), num_partitions, options.bus);
  {
    const Status st = bus->Start();
    if (!st.ok()) {
      transport->Shutdown();
      return st;
    }
  }
  std::vector<DumpReply> dumps;
  dumps.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    Envelope request;
    request.payload = DumpRequest{};
    auto reply = bus->Call(p, std::move(request));
    if (!reply.ok()) {
      transport->Shutdown();
      return reply.status();
    }
    auto* dump = std::get_if<DumpReply>(&reply->payload);
    if (dump == nullptr) {
      transport->Shutdown();
      return Status::Internal("recover: unexpected reply payload");
    }
    if (!dump->status.ok()) {
      transport->Shutdown();
      return dump->status;
    }
    dumps.push_back(std::move(*dump));
  }

  // Rebuild the graph view and directory from the recovered records:
  // every node record places its vertex; every non-ghost relationship
  // record contributes its edge exactly once (full records appear in one
  // store; cross-partition edges have one real and one ghost copy).
  VertexId max_id = 0;
  bool any_node = false;
  for (const DumpReply& dump : dumps) {
    for (const auto& node : dump.nodes) {
      max_id = std::max(max_id, node.id);
      any_node = true;
    }
  }
  const std::size_t n = any_node ? static_cast<std::size_t>(max_id) + 1 : 0;
  Graph graph(n);
  PartitionAssignment assignment(n, num_partitions);
  std::vector<char> seen(n, 0);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (const auto& node : dumps[p].nodes) {
      assignment.Assign(node.id, p);
      graph.SetVertexWeight(node.id, node.weight);
      seen[node.id] = 1;
    }
  }
  // Ids below max_id with no node record anywhere were removed and never
  // re-created. Left alone they would recover as weight-1 phantoms on
  // partition 0 (the directory default) that no store hosts — Validate()
  // fails forever and InsertEdge to one diverges graph and stores.
  // Tombstone them instead: weight 0 (so partition weights are exact),
  // rejected by every mutation/read path, never migrated.
  std::vector<char> tombstoned(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!seen[v]) {
      tombstoned[v] = 1;
      graph.SetVertexWeight(v, 0.0);
    }
  }
  for (const DumpReply& dump : dumps) {
    for (const auto& rel : dump.rels) {
      if (rel.ghost) continue;
      const Status st = graph.AddEdge(rel.src, rel.dst);
      if (!st.ok() && !st.IsAlreadyExists()) {
        transport->Shutdown();
        return st;
      }
    }
  }
  return std::unique_ptr<HermesCluster>(new HermesCluster(
      RecoveredTag{}, std::move(graph), std::move(assignment),
      std::move(options), std::move(transport), std::move(servers),
      std::move(bus), std::move(tombstoned)));
}

Status HermesCluster::Checkpoint() {
  // migration_mu_ first: a snapshot must never capture the inside of a
  // chunk (node copied to the target but the directory not yet flipped).
  MutexLock migration(&migration_mu_);
  WriterMutexLock dir(&dir_mu_);
  if (!durable()) {
    return Status::InvalidArgument("cluster is not durable");
  }
  for (PartitionId p = 0; p < num_servers(); ++p) {
    // audit:allow(blocking, checkpoint is the documented quiesce point: the
    // exclusive directory hold is what makes the per-partition snapshots
    // mutually consistent, and the dispatch thread serving this call takes
    // only its own server mutex — never a cluster lock)
    HERMES_ASSIGN_OR_RETURN(CheckpointReply reply, CallCheckpoint(p));
    HERMES_RETURN_NOT_OK(reply.status);
  }
  return Status::OK();
}

// --- Message-bus round-trips ----------------------------------------------
//
// Every cross-server operation below is one Call() on the bus: encode,
// send, block for the matching reply (bounded by the call timeout). The
// typed wrappers unwrap the expected reply payload; a payload of the
// wrong type is a protocol bug, not an I/O error.

Result<Envelope> HermesCluster::BusCall(PartitionId p,
                                        MessagePayload payload) const {
  Envelope request;
  request.payload = std::move(payload);
  return bus_->Call(p, std::move(request));
}

namespace {
// Shared unwrap: BusCall succeeded, now the payload must be the reply
// type the request implies.
template <typename ReplyT>
[[nodiscard]] Result<ReplyT> UnwrapReply(Result<Envelope> reply) {
  HERMES_RETURN_NOT_OK(reply.status());
  auto* typed = std::get_if<ReplyT>(&reply->payload);
  if (typed == nullptr) {
    return Status::Internal("message bus: unexpected reply payload type");
  }
  return std::move(*typed);
}
}  // namespace

Result<NeighborsReply> HermesCluster::CallNeighbors(
    PartitionId p, NeighborsRequest req) const {
  return UnwrapReply<NeighborsReply>(BusCall(p, MessagePayload(std::move(req))));
}
Result<ProbeReply> HermesCluster::CallProbe(PartitionId p,
                                            ProbeRequest req) const {
  return UnwrapReply<ProbeReply>(BusCall(p, MessagePayload(std::move(req))));
}
Result<MutateReply> HermesCluster::CallMutate(PartitionId p,
                                              MutateRequest req) const {
  return UnwrapReply<MutateReply>(BusCall(p, MessagePayload(std::move(req))));
}
Result<InstallChunkReply> HermesCluster::CallInstallChunk(
    PartitionId p, InstallChunkRequest req) const {
  return UnwrapReply<InstallChunkReply>(
      BusCall(p, MessagePayload(std::move(req))));
}
Result<ExtractReply> HermesCluster::CallExtract(PartitionId p,
                                                VertexId v) const {
  ExtractRequest req;
  req.vertex = v;
  return UnwrapReply<ExtractReply>(BusCall(p, MessagePayload(std::move(req))));
}
Result<AuxExchangeReply> HermesCluster::CallAuxExchange(
    PartitionId p, AuxExchangeRequest req) const {
  return UnwrapReply<AuxExchangeReply>(
      BusCall(p, MessagePayload(std::move(req))));
}
Result<HealthReply> HermesCluster::CallHealth(PartitionId p) const {
  return UnwrapReply<HealthReply>(BusCall(p, MessagePayload(HealthRequest{})));
}
Result<CheckpointReply> HermesCluster::CallCheckpoint(PartitionId p) const {
  return UnwrapReply<CheckpointReply>(
      BusCall(p, MessagePayload(CheckpointRequest{})));
}

// --- Mutation routing -----------------------------------------------------
//
// Thin wrappers that put one store mutation on the wire. Callers hold
// dir_mu_ (shared for single-record ops, exclusive for migration epochs);
// the owning server serializes execution on its dispatch thread.

Status HermesCluster::DoCreateNode(PartitionId p, VertexId id, double w) {
  MutateRequest req;
  req.op = MutateRequest::Op::kCreateNode;
  req.vertex = id;
  req.weight = w;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Status HermesCluster::DoRemoveNode(PartitionId p, VertexId v) {
  MutateRequest req;
  req.op = MutateRequest::Op::kRemoveNode;
  req.vertex = v;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Status HermesCluster::DoSetNodeState(PartitionId p, VertexId v,
                                     WireNodeState state) {
  MutateRequest req;
  req.op = MutateRequest::Op::kSetNodeState;
  req.vertex = v;
  req.node_state = state;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Status HermesCluster::DoAddNodeWeight(PartitionId p, VertexId v,
                                      double delta) {
  MutateRequest req;
  req.op = MutateRequest::Op::kAddNodeWeight;
  req.vertex = v;
  req.weight = delta;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Result<RecordId> HermesCluster::DoAddEdge(PartitionId p, VertexId v,
                                          VertexId other, std::uint32_t type,
                                          bool other_is_local) {
  MutateRequest req;
  req.op = MutateRequest::Op::kAddEdge;
  req.vertex = v;
  req.other = other;
  req.type_or_key = type;
  req.other_is_local = other_is_local;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  HERMES_RETURN_NOT_OK(reply.status);
  return reply.record_id;
}
Status HermesCluster::DoRemoveEdge(PartitionId p, VertexId v, VertexId other) {
  MutateRequest req;
  req.op = MutateRequest::Op::kRemoveEdge;
  req.vertex = v;
  req.other = other;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Status HermesCluster::DoSetNodeProperty(PartitionId p, VertexId v,
                                        std::uint32_t key,
                                        const std::string& value) {
  MutateRequest req;
  req.op = MutateRequest::Op::kSetNodeProperty;
  req.vertex = v;
  req.type_or_key = key;
  req.value = value;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}
Status HermesCluster::DoSetEdgeProperty(PartitionId p, VertexId v,
                                        VertexId other, std::uint32_t key,
                                        const std::string& value) {
  MutateRequest req;
  req.op = MutateRequest::Op::kSetEdgeProperty;
  req.vertex = v;
  req.other = other;
  req.type_or_key = key;
  req.value = value;
  HERMES_ASSIGN_OR_RETURN(MutateReply reply, CallMutate(p, std::move(req)));
  return reply.status;
}

Result<HermesCluster::TraversalRun> HermesCluster::ExecuteRead(VertexId start,
                                                               int hops) {
  // The shared directory hold pins every vertex's placement for the whole
  // traversal; per-server serialization happens on the dispatch threads,
  // so concurrent traversals (and writes to other partitions) interleave.
  ReaderMutexLock dir(&dir_mu_);
  if (start >= assignment_.size()) {
    return Status::OutOfRange("start vertex out of range");
  }
  if (tombstoned_[start]) {
    return Status::NotFound("start vertex is tombstoned");
  }
  const PartitionId p0 = assignment_.PartitionOf(start);
  {
    ProbeRequest probe;
    probe.mode = ProbeRequest::Mode::kHasNode;
    probe.vertex = start;
    // audit:allow(blocking, bus round-trip under the shared directory
    // hold: the dispatch thread serving it takes only its own server
    // mutex, never a cluster lock, so the reply always arrives or the
    // call times out retryably (DESIGN.md §12))
    HERMES_ASSIGN_OR_RETURN(ProbeReply reply, CallProbe(p0, std::move(probe)));
    HERMES_RETURN_NOT_OK(reply.status);
    if (!reply.truth) {
      return Status::Unavailable("start vertex unavailable (mid-migration)");
    }
  }

  TraversalRun run;
  run.segments.emplace_back(p0, 1);
  run.vertices_processed = 1;
  run.unique_vertices = 1;

  // Level-synchronous execution with per-server batching: at each hop the
  // query is forwarded once to every server that hosts touched vertices —
  // a single NeighborsRequest carries the whole level's vertices for that
  // server (scatter-gather), not one message per edge. Touching a
  // vertex's record happens on its host, so the per-server visit counts —
  // and the number of distinct remote servers per level — are what
  // edge-cut controls.
  std::unordered_set<VertexId> seen{start};
  std::vector<VertexId> level{start};
  PartitionId position = p0;  // server currently holding the traversal
  for (int depth = 0; depth < hops && !level.empty(); ++depth) {
    std::map<PartitionId, NeighborsRequest> batches;
    for (VertexId v : level) {
      batches[assignment_.PartitionOf(v)].vertices.push_back(v);
    }
    std::vector<VertexId> next_level;
    std::map<PartitionId, std::uint32_t> visits_by_server;
    for (auto& [pv, batch] : batches) {
      // audit:allow(blocking, bus round-trip under the shared directory
      // hold — same non-deadlock argument as the probe above)
      HERMES_ASSIGN_OR_RETURN(NeighborsReply reply,
                              CallNeighbors(pv, std::move(batch)));
      HERMES_RETURN_NOT_OK(reply.status);
      for (const auto& adjacency : reply.results) {
        // Per-vertex failure = unavailable (mid-migration barrier): skip
        // the vertex, keep the batch.
        if (!adjacency.status.ok()) continue;
        for (VertexId w : adjacency.neighbors) {
          ++visits_by_server[assignment_.PartitionOf(w)];
          ++run.vertices_processed;
          if (seen.insert(w).second) {
            ++run.unique_vertices;
            next_level.push_back(w);
          }
        }
      }
    }
    // Serve the local batch first, then hop to each remote server once.
    if (auto it = visits_by_server.find(position);
        it != visits_by_server.end()) {
      run.segments.back().second += it->second;
      visits_by_server.erase(it);
    }
    for (const auto& [server, visits] : visits_by_server) {
      ++run.remote_hops;
      run.segments.emplace_back(server, visits);
      position = server;
      if (options_.read_hop_latency_us > 0.0) {
        // Model the remote round-trip with a real wait. No server is
        // blocked on this: only the shared directory hold spans the
        // simulated hop, so concurrent readers overlap their waits.
        // audit:allow(blocking, network-latency model: only the shared
        // directory hold spans the simulated hop, so readers overlap and
        // writers wait exactly as a remote fetch would make them)
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
            options_.read_hop_latency_us));
      }
    }
    level = std::move(next_level);
  }

  if (options_.count_reads_in_weights) {
    {
      MutexLock topo(&topo_mu_);
      graph_.AddVertexWeight(start, 1.0);
      aux_.OnVertexWeightChanged(start, 1.0, assignment_);
    }
    AuxExchangeRequest bump_req;
    bump_req.entries.push_back({start, 1.0});
    // audit:allow(blocking, bus round-trip under the shared directory
    // hold — same non-deadlock argument as the probe above)
    const Result<AuxExchangeReply> bump =
        CallAuxExchange(p0, std::move(bump_req));
    const Status bump_st = bump.ok() ? bump->status : bump.status();
    if (!bump_st.ok()) {
      // The server missed the bump (e.g. a WAL append failure, or the
      // reply was lost). Undo the in-memory side — otherwise graph_ and
      // the store diverge permanently: recovery reconstructs the lower
      // weight and every repartition decision runs on phantom load.
      // Surface the error so the caller sees the fault (the traversal
      // result itself is sacrificed; reads are retryable under the
      // Unavailable contract).
      MutexLock topo(&topo_mu_);
      graph_.AddVertexWeight(start, -1.0);
      aux_.OnVertexWeightChanged(start, -1.0, assignment_);
      return bump_st;
    }
  }
  m_reads_->Increment();
  m_read_remote_hops_->Increment(run.remote_hops);
  return run;
}

NeighborProvider HermesCluster::MakeNeighborProvider() const {
  return [this](VertexId v, std::optional<std::uint32_t> type)
             -> Result<std::vector<VertexId>> {
    ReaderMutexLock dir(&dir_mu_);
    if (v >= assignment_.size()) {
      return Status::OutOfRange("vertex out of range");
    }
    if (tombstoned_[v]) {
      return Status::NotFound("vertex is tombstoned");
    }
    const PartitionId p = assignment_.PartitionOf(v);
    NeighborsRequest req;
    req.vertices.push_back(v);
    req.has_type = type.has_value();
    req.type = type.value_or(0);
    // audit:allow(blocking, bus round-trip under the shared directory
    // hold: dispatch threads never take cluster locks (DESIGN.md §12))
    HERMES_ASSIGN_OR_RETURN(NeighborsReply reply,
                            CallNeighbors(p, std::move(req)));
    HERMES_RETURN_NOT_OK(reply.status);
    if (reply.results.size() != 1) {
      return Status::Internal("neighbors reply shape mismatch");
    }
    HERMES_RETURN_NOT_OK(reply.results[0].status);
    return std::move(reply.results[0].neighbors);
  };
}

Result<VertexId> HermesCluster::InsertVertex(double weight) {
  // The vertex-id space grows: exclusive directory hold (which also
  // excludes every other cluster-side capability).
  WriterMutexLock dir(&dir_mu_);
  VertexId id;
  {
    MutexLock topo(&topo_mu_);
    id = graph_.AddVertex(weight);
  }
  const PartitionId p =
      HashPartitioner(1).PartitionFor(id, assignment_.num_partitions());
  assignment_.AddVertex(p);
  tombstoned_.push_back(0);
  {
    MutexLock topo(&topo_mu_);
    aux_.OnVertexAdded(p, weight);
  }
  // audit:allow(blocking, bus round-trip under the exclusive directory
  // hold: the dispatch thread serving it takes only its own server mutex,
  // never a cluster lock (DESIGN.md §12))
  const Status created = DoCreateNode(p, id, weight);
  if (!created.ok()) {
    // The store never saw the node (the send failed before apply), so
    // tombstoning the burned id keeps directory and stores in agreement;
    // the weight contribution is cancelled rather than the aux row
    // removed (ids are append-only).
    tombstoned_[id] = 1;
    MutexLock topo(&topo_mu_);
    aux_.OnVertexWeightChanged(id, -weight, assignment_);
    return created;
  }
  m_writes_->Increment();
  return id;
}

Status HermesCluster::InsertEdge(VertexId u, VertexId v, std::uint32_t type) {
  ReaderMutexLock dir(&dir_mu_);
  if (u >= assignment_.size() || v >= assignment_.size()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (tombstoned_[u] || tombstoned_[v]) {
    return Status::NotFound("endpoint is tombstoned");
  }
  Transaction txn = txns_.Begin();
  // Lock both endpoints in id order to keep lock acquisition ordered;
  // conflicting workloads still resolve deadlocks by timeout.
  // audit:allow(blocking, 2PL under directory stability: the shared dir
  // hold pins the topology while vertex locks are acquired, and the lock
  // manager bounds the wait with the deadlock timeout)
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::min(u, v)));
  // audit:allow(blocking, same 2PL acquisition as the line above)
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::max(u, v)));

  {
    MutexLock topo(&topo_mu_);
    const Status st = graph_.AddEdge(u, v);
    if (!st.ok()) {
      txn.Abort();
      return st;
    }
  }
  const PartitionId pu = assignment_.PartitionOf(u);
  const PartitionId pv = assignment_.PartitionOf(v);
  // Write the half records through the bus; each owning server serializes
  // its own store, and the exclusive record locks above make the pair of
  // sends atomic with respect to competing writers.
  Status store_st;
  bool first_half_stranded = false;
  if (pu == pv) {
    // audit:allow(blocking, bus round-trip under the shared directory
    // hold: dispatch threads never take cluster locks (DESIGN.md §12))
    store_st = DoAddEdge(pu, u, v, type, true).status();
  } else {
    // audit:allow(blocking, same bus round-trip contract as above)
    store_st = DoAddEdge(pu, u, v, type, false).status();
    if (store_st.ok()) {
      // audit:allow(blocking, same bus round-trip contract as above)
      store_st = DoAddEdge(pv, v, u, type, false).status();
      if (!store_st.ok()) {
        // v's half failed after u's succeeded: undo u's half so the two
        // stores agree before we roll back the graph view.
        // audit:allow(blocking, same bus round-trip contract as above)
        const Status undo = DoRemoveEdge(pu, u, v);
        first_half_stranded = !undo.ok();
      }
    }
  }
  if (!store_st.ok()) {
    // Roll back the graph edge and abort: without this, graph_ keeps an
    // edge the stores never materialized, aux_ is never updated, and the
    // transaction leaks its record locks until destruction — Validate()
    // then fails forever.
    {
      // The edge is provably present: this transaction added it under the
      // endpoints' exclusive record locks, which it still holds.
      MutexLock topo(&topo_mu_);
      HERMES_CHECK_OK(graph_.RemoveEdge(u, v));
    }
    if (first_half_stranded) {
      // Double fault: the rollback write itself failed (e.g. the WAL is
      // rejecting appends, or the reply was lost). The half record on
      // pu's store is stranded until recovery; surface it rather than
      // hiding it.
      HERMES_LOG(Warning) << "InsertEdge rollback failed; edge {" << u << ","
                          << v << "} half record stranded on partition "
                          << pu;
    }
    txn.Abort();
    return store_st;
  }
  {
    MutexLock topo(&topo_mu_);
    aux_.OnEdgeAdded(u, v, assignment_);
  }
  txn.Commit();
  m_writes_->Increment();
  return Status::OK();
}

Result<MigrationStats> HermesCluster::RunLightweightRepartition() {
  TraceSpan span("cluster.repartition");
  MutexLock migration(&migration_mu_);
  LightweightRepartitioner repartitioner(options_.repartitioner);
  RepartitionResult logical;
  std::optional<PartitionAssignment> target;
  std::optional<Graph> graph_copy;
  AuxiliaryData aux_copy;
  {
    // Phase one (logical) runs on copies of the directory, topology, and
    // auxiliary data: the locks are held only long enough to snapshot a
    // consistent triple, then released before the algorithm iterates —
    // readers keep traversing the live directory the whole time
    // (RepartitionDoesNotBlockReaders). migration_mu_ alone serializes
    // concurrent repartitions, and MigrateDiffChunked re-snapshots the
    // live directory, so mutations that land during the computation only
    // make the chosen placement stale, never wrong.
    ReaderMutexLock dir(&dir_mu_);
    MutexLock topo(&topo_mu_);
    target = assignment_;
    graph_copy = graph_;
    aux_copy = aux_;
  }
  // audit:allow(blocking, only migration_mu_ — the repartition-serialization
  // token — spans the computation; it guards no reader or writer path)
  logical = repartitioner.Run(*graph_copy, &*target, &aux_copy);
  graph_copy.reset();
  HERMES_ASSIGN_OR_RETURN(MigrationStats stats, MigrateDiffChunked(*target));
  stats.repartitioner_iterations = logical.iterations;
  stats.repartitioner_converged = logical.converged;
  stats.aux_bytes_exchanged = logical.aux_bytes_exchanged;
  stats.edge_cut_fraction_before = logical.initial_edge_cut_fraction;
  stats.edge_cut_fraction_after = logical.final_edge_cut_fraction;
  stats.imbalance_before = logical.initial_imbalance;
  stats.imbalance_after = logical.final_imbalance;
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateToAssignment(
    const PartitionAssignment& target) {
  MutexLock migration(&migration_mu_);
  double cut_before = 0.0;
  double imbalance_before = 0.0;
  {
    WriterMutexLock dir(&dir_mu_);
    if (target.size() != assignment_.size() ||
        target.num_partitions() != assignment_.num_partitions()) {
      return Status::InvalidArgument("assignment shape mismatch");
    }
    MutexLock topo(&topo_mu_);
    cut_before = EdgeCutFraction(graph_, assignment_);
    imbalance_before = ImbalanceFactor(graph_, assignment_);
  }
  HERMES_ASSIGN_OR_RETURN(MigrationStats stats, MigrateDiffChunked(target));
  stats.edge_cut_fraction_before = cut_before;
  stats.imbalance_before = imbalance_before;
  {
    WriterMutexLock dir(&dir_mu_);
    MutexLock topo(&topo_mu_);
    stats.edge_cut_fraction_after = EdgeCutFraction(graph_, assignment_);
    stats.imbalance_after = ImbalanceFactor(graph_, assignment_);
    // A global repartitioner invalidates the incremental counts; rebuild.
    aux_ = AuxiliaryData(graph_, assignment_);
  }
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateDiffChunked(
    const PartitionAssignment& target) {
  MigrationStats stats;
  PartitionId alpha = 1;
  std::vector<VertexId> moved;
  std::optional<PartitionAssignment> after;
  {
    WriterMutexLock dir(&dir_mu_);
    alpha = assignment_.num_partitions();
    // Snapshot the final placement now: `target` may be narrower than the
    // live directory if InsertVertex ran since the caller computed it.
    // Vertices past target.size() (and tombstones) simply don't move.
    after = assignment_;
    const std::size_t n = std::min(target.size(), after->size());
    for (VertexId v = 0; v < n; ++v) {
      if (tombstoned_[v]) continue;
      if (after->PartitionOf(v) != target.PartitionOf(v)) {
        after->Assign(v, target.PartitionOf(v));
        moved.push_back(v);
      }
    }
    MutexLock topo(&topo_mu_);
    stats.relationships_touched =
        RelationshipsTouched(graph_, assignment_, *after);
  }
  stats.vertices_moved = moved.size();
  if (moved.empty()) return stats;

  const std::size_t chunk_size =
      options_.migration_chunk == 0 ? moved.size() : options_.migration_chunk;
  std::vector<SimTime> target_busy(alpha, 0.0);
  std::vector<SimTime> source_busy(alpha, 0.0);

  std::vector<VertexId> chunk;
  for (std::size_t begin = 0; begin < moved.size(); begin += chunk_size) {
    const std::size_t end = std::min(moved.size(), begin + chunk_size);
    chunk.assign(moved.begin() + begin, moved.begin() + end);
    ++stats.chunks;
    std::vector<ExtractReply> extracts;
    std::vector<PartitionId> sources;
    extracts.reserve(chunk.size());
    sources.reserve(chunk.size());

    // --- Copy step (exclusive directory hold, which excludes every other
    // cluster-side capability). Extract each vertex off its source server,
    // replicate everything on the targets with InstallChunk messages, then
    // mark the originals unavailable so the barrier window below is
    // observable to readers (Section 3.2: the directory still routes to
    // the source, whose record answers Unavailable).
    {
      WriterMutexLock dir(&dir_mu_);
      TraceSpan copy_span("cluster.migration.copy");
      for (VertexId v : chunk) {
        const PartitionId sp = assignment_.PartitionOf(v);
        // Extraction is read-only: a failure here aborts the chunk with
        // nothing to unwind.
        // audit:allow(blocking, bus round-trip under the exclusive
        // directory hold: the dispatch thread serving it takes only its
        // own server mutex, never a cluster lock (DESIGN.md §12))
        HERMES_ASSIGN_OR_RETURN(ExtractReply snap, CallExtract(sp, v));
        HERMES_RETURN_NOT_OK(snap.status);
        stats.bytes_copied += snap.wire_bytes;
        target_busy[after->PartitionOf(v)] +=
            static_cast<SimTime>(snap.wire_bytes) * options_.net.per_byte_us +
            static_cast<SimTime>(1 + snap.relationships.size()) *
                options_.net.write_op_us;
        sources.push_back(sp);
        extracts.push_back(std::move(snap));
      }
      // Group the replicas into one InstallChunk per target server. The
      // server creates node records before edges, so edges between
      // co-migrating vertices find both endpoints present. Progress is
      // tracked through the replies so that a mid-chunk storage failure
      // (a WAL append rejected on the target, say) unwinds to the
      // pre-chunk state instead of leaving a vertex hosted by two stores
      // with the directory still at the source.
      std::map<PartitionId, InstallChunkRequest> installs;
      for (const ExtractReply& snap : extracts) {
        const PartitionId tp = after->PartitionOf(snap.id);
        InstallChunkRequest& req = installs[tp];
        req.nodes.push_back({snap.id, snap.weight, snap.properties});
        for (const auto& rel : snap.relationships) {
          // Each chunk is an independent classic migration epoch against
          // the live directory: a neighbor's locality is its placement as
          // of the END of this chunk (co-chunk movers land with us; later
          // chunks are still where the live directory says, and their own
          // epoch upgrades the half record to full when they arrive — the
          // ghost rule is id-derived, so both sides stay consistent).
          const bool other_in_chunk =
              std::binary_search(chunk.begin(), chunk.end(), rel.other);
          const PartitionId other_p = other_in_chunk
                                          ? after->PartitionOf(rel.other)
                                          : assignment_.PartitionOf(rel.other);
          req.edges.push_back({snap.id, rel.other, rel.type, other_p == tp,
                               rel.properties_included, rel.properties});
        }
      }
      // (target, nodes created there) for the unwind path; node order
      // within a target matches installs[target].nodes.
      std::vector<std::pair<PartitionId, std::uint64_t>> created_by_target;
      std::size_t marked = 0;  // sources already flagged kUnavailable
      const Status copy_st = [&]() -> Status {
        for (const auto& [tp, req] : installs) {
          // audit:allow(blocking, bus round-trip under the exclusive
          // directory hold — same non-deadlock argument as CallExtract)
          const Result<InstallChunkReply> reply = CallInstallChunk(tp, req);
          HERMES_RETURN_NOT_OK(reply.status());
          created_by_target.emplace_back(tp, reply->nodes_created);
          HERMES_RETURN_NOT_OK(reply->status);
        }
        for (; marked < chunk.size(); ++marked) {
          // audit:allow(blocking, bus round-trip under the exclusive
          // directory hold — same non-deadlock argument as CallExtract)
          HERMES_RETURN_NOT_OK(DoSetNodeState(sources[marked], chunk[marked],
                                              WireNodeState::kUnavailable));
        }
        return Status::OK();
      }();
      if (!copy_st.ok()) {
        // Unwind under the same exclusive directory hold, so no reader or
        // writer ever observes the half-replicated chunk. Removing a
        // target replica degrades any co-located records it upgraded back
        // to the half records they were before this chunk (the degrade
        // rule node removal always applies), so the pre-chunk
        // representation is restored exactly. Unwind writes are
        // best-effort: under a persistent storage fault they can fail too
        // — warn loudly and keep going so as much of the chunk as
        // possible is released, then surface the original error.
        for (std::size_t i = 0; i < marked; ++i) {
          // audit:allow(blocking, bus round-trip under the exclusive
          // directory hold — same non-deadlock argument as CallExtract)
          const Status undo =
              DoSetNodeState(sources[i], chunk[i], WireNodeState::kAvailable);
          if (!undo.ok()) {
            HERMES_LOG(Warning)
                << "migration unwind: vertex " << chunk[i]
                << " stuck unavailable on partition " << sources[i] << ": "
                << undo.ToString();
          }
        }
        for (const auto& [tp, created] : created_by_target) {
          const auto& nodes = installs[tp].nodes;
          for (std::uint64_t i = 0; i < created; ++i) {
            // audit:allow(blocking, bus round-trip under the exclusive
            // directory hold — same non-deadlock argument as CallExtract)
            const Status undo = DoRemoveNode(tp, nodes[i].id);
            if (!undo.ok()) {
              HERMES_LOG(Warning)
                  << "migration unwind: replica of vertex " << nodes[i].id
                  << " stranded on partition " << tp << ": "
                  << undo.ToString();
            }
          }
        }
        return copy_st;
      }
    }

    // --- Synchronization barrier: every lock released, so reads and
    // writes interleave with the in-flight migration here and observe the
    // unavailable-record semantics for this chunk's vertices.
    if (options_.migration_barrier_hook) {
      options_.migration_barrier_hook(chunk);
    }

    // --- Remove step: flip the directory, shift the auxiliary counters,
    // and delete the originals.
    {
      WriterMutexLock dir(&dir_mu_);
      TraceSpan remove_span("cluster.migration.remove");
      for (std::size_t i = 0; i < extracts.size(); ++i) {
        const ExtractReply& snap = extracts[i];
        const PartitionId sp = sources[i];
        const PartitionId tp = after->PartitionOf(snap.id);
        {
          // Live counters (not the phase-one copies): concurrent weight
          // bumps between chunks stay accounted.
          MutexLock topo(&topo_mu_);
          aux_.OnVertexMigrated(graph_, snap.id, sp, tp);
        }
        assignment_.Assign(snap.id, tp);
        source_busy[sp] +=
            static_cast<SimTime>(1 + snap.relationships.size()) *
            options_.net.write_op_us;
        // audit:allow(blocking, bus round-trip under the exclusive
        // directory hold — same non-deadlock argument as CallExtract)
        HERMES_RETURN_NOT_OK(DoRemoveNode(sp, snap.id));
      }
    }
  }

  stats.copy_time_us =
      *std::max_element(target_busy.begin(), target_busy.end());
  stats.total_time_us =
      stats.copy_time_us +
      static_cast<SimTime>(stats.chunks) * options_.net.migration_barrier_us +
      *std::max_element(source_busy.begin(), source_busy.end());
  m_migrations_->Increment();
  m_vertices_migrated_->Increment(stats.vertices_moved);
  m_migration_bytes_->Increment(stats.bytes_copied);
  return stats;
}

bool HermesCluster::Validate(std::size_t sample, std::uint64_t seed) const {
  WriterMutexLock dir(&dir_mu_);
  MutexLock topo(&topo_mu_);
  // Everything below goes through the message protocol too — validation
  // exercises the same probes a remote client would. Any bus-level error
  // counts as an inconsistency (strict by design).
  auto probe = [this](PartitionId p, ProbeRequest::Mode mode, VertexId v,
                      VertexId other) -> Result<bool> {
    ProbeRequest req;
    req.mode = mode;
    req.vertex = v;
    req.other = other;
    // audit:allow(blocking, bus round-trip under the exclusive directory
    // hold: the dispatch thread serving it takes only its own server
    // mutex, never a cluster lock (DESIGN.md §12))
    HERMES_ASSIGN_OR_RETURN(ProbeReply reply, CallProbe(p, std::move(req)));
    HERMES_RETURN_NOT_OK(reply.status);
    return reply.truth;
  };
  const std::size_t n = graph_.NumVertices();
  Rng rng(seed);
  const bool all = (sample == 0 || sample >= n);
  const std::size_t rounds = all ? n : sample;
  for (std::size_t i = 0; i < rounds; ++i) {
    const VertexId v = all ? static_cast<VertexId>(i) : rng.Uniform(n);
    if (tombstoned_[v]) {
      // A tombstoned id must not exist in any store.
      for (PartitionId p = 0; p < num_servers(); ++p) {
        const Result<bool> exists =
            probe(p, ProbeRequest::Mode::kNodeExists, v, 0);
        if (!exists.ok() || *exists) return false;
      }
      continue;
    }
    const PartitionId pv = assignment_.PartitionOf(v);
    const Result<bool> hosted = probe(pv, ProbeRequest::Mode::kHasNode, v, 0);
    if (!hosted.ok() || !*hosted) return false;
    // No other store may host v.
    for (PartitionId p = 0; p < num_servers(); ++p) {
      if (p == pv) continue;
      const Result<bool> exists =
          probe(p, ProbeRequest::Mode::kNodeExists, v, 0);
      if (!exists.ok() || *exists) return false;
    }
    NeighborsRequest req;
    req.vertices.push_back(v);
    // audit:allow(blocking, bus round-trip under the exclusive directory
    // hold — same non-deadlock argument as the probe lambda)
    const Result<NeighborsReply> reply = CallNeighbors(pv, std::move(req));
    if (!reply.ok() || !reply->status.ok() || reply->results.size() != 1 ||
        !reply->results[0].status.ok()) {
      return false;
    }
    std::vector<VertexId> from_store = reply->results[0].neighbors;
    std::sort(from_store.begin(), from_store.end());
    const auto expected = graph_.Neighbors(v);
    if (from_store.size() != expected.size() ||
        !std::equal(from_store.begin(), from_store.end(), expected.begin())) {
      return false;
    }
    // Ghost discipline: cross-partition edges have exactly one ghost copy;
    // co-located edges have a single non-ghost record.
    for (VertexId w : expected) {
      const PartitionId pw = assignment_.PartitionOf(w);
      const Result<bool> mine =
          probe(pv, ProbeRequest::Mode::kEdgeIsGhost, v, w);
      const Result<bool> theirs =
          probe(pw, ProbeRequest::Mode::kEdgeIsGhost, w, v);
      if (!mine.ok() || !theirs.ok()) return false;
      if (pv == pw) {
        if (*mine || *theirs) return false;
      } else {
        if (*mine == *theirs) return false;
      }
    }
  }
  return true;
}

std::size_t HermesCluster::TotalStoreBytes() const {
  ReaderMutexLock dir(&dir_mu_);
  std::size_t total = 0;
  for (PartitionId p = 0; p < num_servers(); ++p) {
    // Best-effort metric: a server that fails to answer contributes 0.
    // audit:allow(blocking, bus round-trip under the shared directory
    // hold: dispatch threads never take cluster locks (DESIGN.md §12))
    const Result<HealthReply> health = CallHealth(p);
    if (health.ok() && health->status.ok()) {
      total += static_cast<std::size_t>(health->store_bytes);
    }
  }
  return total;
}

hermes::MetricsSnapshot HermesCluster::MetricsSnapshot() const {
  auto& registry = MetricsRegistry::Global();
  {
    // Refresh point-in-time gauges under the directory lock, then
    // snapshot. The registry mutex is a leaf, so every acquisition here
    // respects the lock order.
    ReaderMutexLock dir(&dir_mu_);
    std::size_t store_bytes = 0;
    for (PartitionId p = 0; p < num_servers(); ++p) {
      // audit:allow(blocking, bus round-trip under the shared directory
      // hold: dispatch threads never take cluster locks (DESIGN.md §12))
      const Result<HealthReply> health = CallHealth(p);
      if (health.ok() && health->status.ok()) {
        store_bytes += static_cast<std::size_t>(health->store_bytes);
      }
    }
    registry.GetGauge("cluster.store_bytes")
        ->Set(static_cast<double>(store_bytes));
    MutexLock topo(&topo_mu_);
    registry.GetGauge("cluster.num_vertices")
        ->Set(static_cast<double>(graph_.NumVertices()));
    registry.GetGauge("cluster.num_edges")
        ->Set(static_cast<double>(graph_.NumEdges()));
    registry.GetGauge("cluster.imbalance")
        ->Set(ImbalanceFactor(graph_, assignment_));
  }
  return registry.Snapshot();
}

}  // namespace hermes
