#include "cluster/hermes_cluster.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <thread>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"

namespace hermes {

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment,
                             Options options)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)),
      tombstoned_(assignment_.size(), 0) {
  HERMES_CHECK(assignment_.size() == graph_.NumVertices());
  Status st = InitStores();
  HERMES_CHECK(st.ok());
  st = LoadStores();
  HERMES_CHECK(st.ok());
}

HermesCluster::HermesCluster(Graph graph, PartitionAssignment assignment)
    : HermesCluster(std::move(graph), std::move(assignment), Options{}) {}

HermesCluster::HermesCluster(
    RecoveredTag, Graph graph, PartitionAssignment assignment,
    Options options, std::vector<std::unique_ptr<DurableGraphStore>> durable,
    std::vector<char> tombstoned)
    : graph_(std::move(graph)),
      assignment_(std::move(assignment)),
      aux_(graph_, assignment_),
      options_(std::move(options)),
      tombstoned_(std::move(tombstoned)),
      durable_(std::move(durable)) {
  tombstoned_.resize(assignment_.size(), 0);
  store_ptrs_.reserve(durable_.size());
  for (auto& d : durable_) store_ptrs_.push_back(d->mutable_store());
  InitShards(static_cast<PartitionId>(durable_.size()));
}

void HermesCluster::InitShards(PartitionId alpha) {
  shards_.clear();
  shards_.reserve(alpha);
  for (PartitionId p = 0; p < alpha; ++p) {
    shards_.push_back(std::make_unique<PartitionShard>(p));
  }
}

Status HermesCluster::InitStores() {
  // Construction-time, single-threaded: no locks needed or taken.
  const PartitionId alpha = assignment_.num_partitions();
  InitShards(alpha);
  store_ptrs_.clear();
  if (durable()) {
    for (PartitionId p = 0; p < alpha; ++p) {
      const std::string dir =
          options_.durability_dir + "/p" + std::to_string(p);
      std::filesystem::create_directories(dir);
      HERMES_ASSIGN_OR_RETURN(auto store, DurableGraphStore::Open(p, dir));
      store_ptrs_.push_back(store->mutable_store());
      durable_.push_back(std::move(store));
    }
  } else {
    for (PartitionId p = 0; p < alpha; ++p) {
      stores_.push_back(std::make_unique<GraphStore>(p));
      store_ptrs_.push_back(stores_.back().get());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<HermesCluster>> HermesCluster::Recover(
    PartitionId num_partitions, Options options) {
  if (options.durability_dir.empty()) {
    return Status::InvalidArgument("Recover() needs a durability_dir");
  }
  std::vector<std::unique_ptr<DurableGraphStore>> durable;
  VertexId max_id = 0;
  bool any_node = false;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    const std::string dir =
        options.durability_dir + "/p" + std::to_string(p);
    std::filesystem::create_directories(dir);
    HERMES_ASSIGN_OR_RETURN(auto store, DurableGraphStore::Open(p, dir));
    for (VertexId id : store->store().NodeIds()) {
      max_id = std::max(max_id, id);
      any_node = true;
    }
    durable.push_back(std::move(store));
  }

  // Rebuild the graph view and directory from the recovered records:
  // every node record places its vertex; every non-ghost relationship
  // record contributes its edge exactly once (full records appear in one
  // store; cross-partition edges have one real and one ghost copy).
  const std::size_t n = any_node ? static_cast<std::size_t>(max_id) + 1 : 0;
  Graph graph(n);
  PartitionAssignment assignment(n, num_partitions);
  std::vector<char> seen(n, 0);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (const auto& node : durable[p]->store().DumpNodes()) {
      assignment.Assign(node.id, p);
      graph.SetVertexWeight(node.id, node.weight);
      seen[node.id] = 1;
    }
  }
  // Ids below max_id with no node record anywhere were removed and never
  // re-created. Left alone they would recover as weight-1 phantoms on
  // partition 0 (the directory default) that no store hosts — Validate()
  // fails forever and InsertEdge to one diverges graph and stores.
  // Tombstone them instead: weight 0 (so partition weights are exact),
  // rejected by every mutation/read path, never migrated.
  std::vector<char> tombstoned(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!seen[v]) {
      tombstoned[v] = 1;
      graph.SetVertexWeight(v, 0.0);
    }
  }
  for (PartitionId p = 0; p < num_partitions; ++p) {
    for (const auto& rel : durable[p]->store().DumpRelationships()) {
      if (rel.ghost) continue;
      const Status st = graph.AddEdge(rel.src, rel.dst);
      if (!st.ok() && !st.IsAlreadyExists()) return st;
    }
  }
  return std::unique_ptr<HermesCluster>(
      new HermesCluster(RecoveredTag{}, std::move(graph),
                        std::move(assignment), std::move(options),
                        std::move(durable), std::move(tombstoned)));
}

Status HermesCluster::Checkpoint() {
  // migration_mu_ first: a snapshot must never capture the inside of a
  // chunk (node copied to the target but the directory not yet flipped).
  MutexLock migration(&migration_mu_);
  WriterMutexLock dir(&dir_mu_);
  if (!durable()) {
    return Status::InvalidArgument("cluster is not durable");
  }
  for (auto& d : durable_) {
    // audit:allow(blocking, checkpoint is the documented quiesce point: the
    // exclusive directory hold is what makes the per-partition snapshots
    // mutually consistent)
    HERMES_RETURN_NOT_OK(d->Checkpoint());
  }
  return Status::OK();
}

// --- Mutation routing -----------------------------------------------------
//
// Callers hold either partition p's shard mutex (under dir_mu_ shared) or
// dir_mu_ exclusively — see the locking contract in the header.

Status HermesCluster::DoCreateNode(PartitionId p, VertexId id, double w) {
  return durable() ? durable_[p]->CreateNode(id, w)
                   : store_ptrs_[p]->CreateNode(id, w);
}
Status HermesCluster::DoRemoveNode(PartitionId p, VertexId v) {
  return durable() ? durable_[p]->RemoveNode(v)
                   : store_ptrs_[p]->RemoveNode(v);
}
Status HermesCluster::DoSetNodeState(PartitionId p, VertexId v,
                                     NodeState state) {
  return durable() ? durable_[p]->SetNodeState(v, state)
                   : store_ptrs_[p]->SetNodeState(v, state);
}
Status HermesCluster::DoAddNodeWeight(PartitionId p, VertexId v,
                                      double delta) {
  return durable() ? durable_[p]->AddNodeWeight(v, delta)
                   : store_ptrs_[p]->AddNodeWeight(v, delta);
}
Result<RecordId> HermesCluster::DoAddEdge(PartitionId p, VertexId v,
                                          VertexId other, std::uint32_t type,
                                          bool other_is_local) {
  return durable() ? durable_[p]->AddEdge(v, other, type, other_is_local)
                   : store_ptrs_[p]->AddEdge(v, other, type, other_is_local);
}
Status HermesCluster::DoRemoveEdge(PartitionId p, VertexId v, VertexId other) {
  return durable() ? durable_[p]->RemoveEdge(v, other)
                   : store_ptrs_[p]->RemoveEdge(v, other);
}
Status HermesCluster::DoSetNodeProperty(PartitionId p, VertexId v,
                                        std::uint32_t key,
                                        const std::string& value) {
  return durable() ? durable_[p]->SetNodeProperty(v, key, value)
                   : store_ptrs_[p]->SetNodeProperty(v, key, value);
}
Status HermesCluster::DoSetEdgeProperty(PartitionId p, VertexId v,
                                        VertexId other, std::uint32_t key,
                                        const std::string& value) {
  return durable() ? durable_[p]->SetEdgeProperty(v, other, key, value)
                   : store_ptrs_[p]->SetEdgeProperty(v, other, key, value);
}

Status HermesCluster::LoadStores() {
  // Construction-time, single-threaded: no locks needed or taken.
  const std::size_t n = graph_.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    HERMES_RETURN_NOT_OK(DoCreateNode(assignment_.PartitionOf(v), v,
                                      graph_.VertexWeight(v)));
  }
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId pv = assignment_.PartitionOf(v);
    for (VertexId w : graph_.Neighbors(v)) {
      if (w < v) continue;  // one pass per undirected edge
      const PartitionId pw = assignment_.PartitionOf(w);
      if (pv == pw) {
        HERMES_RETURN_NOT_OK(DoAddEdge(pv, v, w, 0, true).status());
      } else {
        HERMES_RETURN_NOT_OK(DoAddEdge(pv, v, w, 0, false).status());
        HERMES_RETURN_NOT_OK(DoAddEdge(pw, w, v, 0, false).status());
      }
    }
  }
  return Status::OK();
}

Result<HermesCluster::TraversalRun> HermesCluster::ExecuteRead(VertexId start,
                                                               int hops) {
  // The shared directory hold pins every vertex's placement for the whole
  // traversal; shard mutexes are taken per adjacency fetch only, so
  // concurrent traversals (and writes to other partitions) interleave.
  ReaderMutexLock dir(&dir_mu_);
  if (start >= assignment_.size()) {
    return Status::OutOfRange("start vertex out of range");
  }
  if (tombstoned_[start]) {
    return Status::NotFound("start vertex is tombstoned");
  }
  const PartitionId p0 = assignment_.PartitionOf(start);
  {
    MutexLock shard_lock(&shard(p0));
    if (!store_ptrs_[p0]->HasNode(start)) {
      return Status::Unavailable("start vertex unavailable (mid-migration)");
    }
  }

  TraversalRun run;
  run.segments.emplace_back(p0, 1);
  run.vertices_processed = 1;
  run.unique_vertices = 1;

  // Level-synchronous execution with per-server batching: at each hop the
  // query is forwarded once to every server that hosts touched vertices
  // (scatter-gather), not once per edge. Touching a vertex's record
  // happens on its host, so the per-server visit counts — and the number
  // of distinct remote servers per level — are what edge-cut controls.
  std::unordered_set<VertexId> seen{start};
  std::vector<VertexId> level{start};
  PartitionId position = p0;  // server currently holding the traversal
  for (int depth = 0; depth < hops && !level.empty(); ++depth) {
    std::vector<VertexId> next_level;
    std::map<PartitionId, std::uint32_t> visits_by_server;
    for (VertexId v : level) {
      const PartitionId pv = assignment_.PartitionOf(v);
      const Result<std::vector<VertexId>> neighbors =
          [&]() -> Result<std::vector<VertexId>> {
        MutexLock shard_lock(&shard(pv));
        return store_ptrs_[pv]->Neighbors(v);
      }();
      if (!neighbors.ok()) continue;  // unavailable (mid-migration barrier)
      for (VertexId w : *neighbors) {
        ++visits_by_server[assignment_.PartitionOf(w)];
        ++run.vertices_processed;
        if (seen.insert(w).second) {
          ++run.unique_vertices;
          next_level.push_back(w);
        }
      }
    }
    // Serve the local batch first, then hop to each remote server once.
    if (auto it = visits_by_server.find(position);
        it != visits_by_server.end()) {
      run.segments.back().second += it->second;
      visits_by_server.erase(it);
    }
    for (const auto& [server, visits] : visits_by_server) {
      ++run.remote_hops;
      run.segments.emplace_back(server, visits);
      position = server;
      if (options_.read_hop_latency_us > 0.0) {
        // Model the remote round-trip with a real wait. No shard mutex is
        // held here, so concurrent readers overlap their network waits —
        // under the old global lock these sleeps serialized.
        // audit:allow(blocking, network-latency model: only the shared
        // directory hold spans the simulated hop, so readers overlap and
        // writers wait exactly as a remote fetch would make them)
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
            options_.read_hop_latency_us));
      }
    }
    level = std::move(next_level);
  }

  if (options_.count_reads_in_weights) {
    {
      MutexLock topo(&topo_mu_);
      graph_.AddVertexWeight(start, 1.0);
      aux_.OnVertexWeightChanged(start, 1.0, assignment_);
    }
    Status bump;
    {
      MutexLock shard_lock(&shard(p0));
      bump = DoAddNodeWeight(p0, start, 1.0);
    }
    if (!bump.ok()) {
      // The durable store missed the bump (e.g. a WAL append failure).
      // Undo the in-memory side — otherwise graph_ and the store diverge
      // permanently: recovery reconstructs the lower weight and every
      // repartition decision runs on phantom load. Surface the error so
      // the caller sees the storage fault (the traversal result itself is
      // sacrificed; reads are retryable under the Unavailable contract).
      MutexLock topo(&topo_mu_);
      graph_.AddVertexWeight(start, -1.0);
      aux_.OnVertexWeightChanged(start, -1.0, assignment_);
      return bump;
    }
  }
  m_reads_->Increment();
  m_read_remote_hops_->Increment(run.remote_hops);
  return run;
}

NeighborProvider HermesCluster::MakeNeighborProvider() const {
  return [this](VertexId v, std::optional<std::uint32_t> type)
             -> Result<std::vector<VertexId>> {
    ReaderMutexLock dir(&dir_mu_);
    if (v >= assignment_.size()) {
      return Status::OutOfRange("vertex out of range");
    }
    if (tombstoned_[v]) {
      return Status::NotFound("vertex is tombstoned");
    }
    const PartitionId p = assignment_.PartitionOf(v);
    MutexLock shard_lock(&shard(p));
    return store_ptrs_[p]->NeighborsByType(v, type);
  };
}

Result<VertexId> HermesCluster::InsertVertex(double weight) {
  // The vertex-id space grows: exclusive directory hold (which also
  // excludes every shard holder, so no shard mutex is needed).
  WriterMutexLock dir(&dir_mu_);
  VertexId id;
  {
    MutexLock topo(&topo_mu_);
    id = graph_.AddVertex(weight);
  }
  const PartitionId p =
      HashPartitioner(1).PartitionFor(id, assignment_.num_partitions());
  assignment_.AddVertex(p);
  tombstoned_.push_back(0);
  {
    MutexLock topo(&topo_mu_);
    aux_.OnVertexAdded(p, weight);
  }
  HERMES_RETURN_NOT_OK(DoCreateNode(p, id, weight));
  m_writes_->Increment();
  return id;
}

Status HermesCluster::InsertEdge(VertexId u, VertexId v, std::uint32_t type) {
  ReaderMutexLock dir(&dir_mu_);
  if (u >= assignment_.size() || v >= assignment_.size()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (tombstoned_[u] || tombstoned_[v]) {
    return Status::NotFound("endpoint is tombstoned");
  }
  Transaction txn = txns_.Begin();
  // Lock both endpoints in id order to keep lock acquisition ordered;
  // conflicting workloads still resolve deadlocks by timeout.
  // audit:allow(blocking, 2PL under directory stability: the shared dir
  // hold pins the topology while vertex locks are acquired, and the lock
  // manager bounds the wait with the deadlock timeout)
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::min(u, v)));
  // audit:allow(blocking, same 2PL acquisition as the line above)
  HERMES_RETURN_NOT_OK(txn.LockExclusive(std::max(u, v)));

  {
    MutexLock topo(&topo_mu_);
    const Status st = graph_.AddEdge(u, v);
    if (!st.ok()) {
      txn.Abort();
      return st;
    }
  }
  const PartitionId pu = assignment_.PartitionOf(u);
  const PartitionId pv = assignment_.PartitionOf(v);
  // Write the store records with the endpoint shard mutexes held, taken
  // in partition-id order (== increasing lock rank).
  Status store_st;
  bool first_half_stranded = false;
  if (pu == pv) {
    MutexLock shard_lock(&shard(pu));
    store_st = DoAddEdge(pu, u, v, type, true).status();
  } else {
    MutexLock shard_lo(&shard(std::min(pu, pv)));
    MutexLock shard_hi(&shard(std::max(pu, pv)));
    store_st = DoAddEdge(pu, u, v, type, false).status();
    if (store_st.ok()) {
      store_st = DoAddEdge(pv, v, u, type, false).status();
      if (!store_st.ok()) {
        // v's half failed after u's succeeded: undo u's half so the two
        // stores agree before we roll back the graph view.
        const Status undo = DoRemoveEdge(pu, u, v);
        first_half_stranded = !undo.ok();
      }
    }
  }
  if (!store_st.ok()) {
    // Roll back the graph edge and abort: without this, graph_ keeps an
    // edge the stores never materialized, aux_ is never updated, and the
    // transaction leaks its record locks until destruction — Validate()
    // then fails forever.
    {
      // The edge is provably present: this transaction added it under the
      // endpoints' exclusive record locks, which it still holds.
      MutexLock topo(&topo_mu_);
      HERMES_CHECK_OK(graph_.RemoveEdge(u, v));
    }
    if (first_half_stranded) {
      // Double fault: the rollback write itself failed (e.g. the WAL is
      // rejecting appends). The half record on pu's store is stranded
      // until recovery; surface it rather than hiding it.
      HERMES_LOG(Warning) << "InsertEdge rollback failed; edge {" << u << ","
                          << v << "} half record stranded on partition "
                          << pu;
    }
    txn.Abort();
    return store_st;
  }
  {
    MutexLock topo(&topo_mu_);
    aux_.OnEdgeAdded(u, v, assignment_);
  }
  txn.Commit();
  m_writes_->Increment();
  return Status::OK();
}

Result<MigrationStats> HermesCluster::RunLightweightRepartition() {
  TraceSpan span("cluster.repartition");
  MutexLock migration(&migration_mu_);
  LightweightRepartitioner repartitioner(options_.repartitioner);
  RepartitionResult logical;
  std::optional<PartitionAssignment> target;
  std::optional<Graph> graph_copy;
  AuxiliaryData aux_copy;
  {
    // Phase one (logical) runs on copies of the directory, topology, and
    // auxiliary data: the locks are held only long enough to snapshot a
    // consistent triple, then released before the algorithm iterates —
    // readers keep traversing the live directory the whole time
    // (RepartitionDoesNotBlockReaders). migration_mu_ alone serializes
    // concurrent repartitions, and MigrateDiffChunked re-snapshots the
    // live directory, so mutations that land during the computation only
    // make the chosen placement stale, never wrong.
    ReaderMutexLock dir(&dir_mu_);
    MutexLock topo(&topo_mu_);
    target = assignment_;
    graph_copy = graph_;
    aux_copy = aux_;
  }
  // audit:allow(blocking, only migration_mu_ — the repartition-serialization
  // token — spans the computation; it guards no reader or writer path)
  logical = repartitioner.Run(*graph_copy, &*target, &aux_copy);
  graph_copy.reset();
  HERMES_ASSIGN_OR_RETURN(MigrationStats stats, MigrateDiffChunked(*target));
  stats.repartitioner_iterations = logical.iterations;
  stats.repartitioner_converged = logical.converged;
  stats.aux_bytes_exchanged = logical.aux_bytes_exchanged;
  stats.edge_cut_fraction_before = logical.initial_edge_cut_fraction;
  stats.edge_cut_fraction_after = logical.final_edge_cut_fraction;
  stats.imbalance_before = logical.initial_imbalance;
  stats.imbalance_after = logical.final_imbalance;
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateToAssignment(
    const PartitionAssignment& target) {
  MutexLock migration(&migration_mu_);
  double cut_before = 0.0;
  double imbalance_before = 0.0;
  {
    WriterMutexLock dir(&dir_mu_);
    if (target.size() != assignment_.size() ||
        target.num_partitions() != assignment_.num_partitions()) {
      return Status::InvalidArgument("assignment shape mismatch");
    }
    MutexLock topo(&topo_mu_);
    cut_before = EdgeCutFraction(graph_, assignment_);
    imbalance_before = ImbalanceFactor(graph_, assignment_);
  }
  HERMES_ASSIGN_OR_RETURN(MigrationStats stats, MigrateDiffChunked(target));
  stats.edge_cut_fraction_before = cut_before;
  stats.imbalance_before = imbalance_before;
  {
    WriterMutexLock dir(&dir_mu_);
    MutexLock topo(&topo_mu_);
    stats.edge_cut_fraction_after = EdgeCutFraction(graph_, assignment_);
    stats.imbalance_after = ImbalanceFactor(graph_, assignment_);
    // A global repartitioner invalidates the incremental counts; rebuild.
    aux_ = AuxiliaryData(graph_, assignment_);
  }
  return stats;
}

Result<MigrationStats> HermesCluster::MigrateDiffChunked(
    const PartitionAssignment& target) {
  MigrationStats stats;
  PartitionId alpha = 1;
  std::vector<VertexId> moved;
  std::optional<PartitionAssignment> after;
  {
    WriterMutexLock dir(&dir_mu_);
    alpha = assignment_.num_partitions();
    // Snapshot the final placement now: `target` may be narrower than the
    // live directory if InsertVertex ran since the caller computed it.
    // Vertices past target.size() (and tombstones) simply don't move.
    after = assignment_;
    const std::size_t n = std::min(target.size(), after->size());
    for (VertexId v = 0; v < n; ++v) {
      if (tombstoned_[v]) continue;
      if (after->PartitionOf(v) != target.PartitionOf(v)) {
        after->Assign(v, target.PartitionOf(v));
        moved.push_back(v);
      }
    }
    MutexLock topo(&topo_mu_);
    stats.relationships_touched =
        RelationshipsTouched(graph_, assignment_, *after);
  }
  stats.vertices_moved = moved.size();
  if (moved.empty()) return stats;

  const std::size_t chunk_size =
      options_.migration_chunk == 0 ? moved.size() : options_.migration_chunk;
  std::vector<SimTime> target_busy(alpha, 0.0);
  std::vector<SimTime> source_busy(alpha, 0.0);

  std::vector<VertexId> chunk;
  for (std::size_t begin = 0; begin < moved.size(); begin += chunk_size) {
    const std::size_t end = std::min(moved.size(), begin + chunk_size);
    chunk.assign(moved.begin() + begin, moved.begin() + end);
    ++stats.chunks;
    std::vector<NodeSnapshot> snapshots;
    std::vector<PartitionId> sources;
    snapshots.reserve(chunk.size());
    sources.reserve(chunk.size());

    // --- Copy step (exclusive directory hold, which excludes every shard
    // holder — no shard mutexes needed). Snapshot on the source, replicate
    // on the target, then mark the originals unavailable so the barrier
    // window below is observable to readers (Section 3.2: the directory
    // still routes to the source, whose record answers Unavailable).
    {
      WriterMutexLock dir(&dir_mu_);
      TraceSpan copy_span("cluster.migration.copy");
      for (VertexId v : chunk) {
        const PartitionId sp = assignment_.PartitionOf(v);
        HERMES_ASSIGN_OR_RETURN(NodeSnapshot snap,
                                store_ptrs_[sp]->ExtractNode(v));
        stats.bytes_copied += snap.WireBytes();
        target_busy[after->PartitionOf(v)] +=
            static_cast<SimTime>(snap.WireBytes()) * options_.net.per_byte_us +
            static_cast<SimTime>(1 + snap.relationships.size()) *
                options_.net.write_op_us;
        sources.push_back(sp);
        snapshots.push_back(std::move(snap));
      }
      // Replicate node records first so that edges between co-migrating
      // vertices find both endpoints present. Progress is tracked so that
      // a mid-chunk storage failure (a WAL append rejected on the target,
      // say) unwinds to the pre-chunk state instead of leaving the vertex
      // hosted by two stores with the directory still at the source.
      std::size_t created = 0;  // snapshots whose target node record exists
      std::size_t marked = 0;   // sources already flagged kUnavailable
      const Status copy_st = [&]() -> Status {
        for (const NodeSnapshot& snap : snapshots) {
          const PartitionId tp = after->PartitionOf(snap.id);
          HERMES_RETURN_NOT_OK(DoCreateNode(tp, snap.id, snap.weight));
          ++created;
          for (const auto& [key, value] : snap.properties) {
            HERMES_RETURN_NOT_OK(DoSetNodeProperty(tp, snap.id, key, value));
          }
        }
        for (const NodeSnapshot& snap : snapshots) {
          const PartitionId tp = after->PartitionOf(snap.id);
          for (const auto& rel : snap.relationships) {
            // Each chunk is an independent classic migration epoch against
            // the live directory: a neighbor's locality is its placement
            // as of the END of this chunk (co-chunk movers land with us;
            // later chunks are still where the live directory says, and
            // their own epoch upgrades the half record to full when they
            // arrive — the ghost rule is id-derived, so both sides stay
            // consistent).
            const bool other_in_chunk =
                std::binary_search(chunk.begin(), chunk.end(), rel.other);
            const PartitionId other_p =
                other_in_chunk ? after->PartitionOf(rel.other)
                               : assignment_.PartitionOf(rel.other);
            const bool other_local = other_p == tp;
            auto added =
                DoAddEdge(tp, snap.id, rel.other, rel.type, other_local);
            if (!added.ok()) {
              if (added.status().IsAlreadyExists()) continue;  // co-migrated
              return added.status();
            }
            if (rel.properties_included) {
              for (const auto& [key, value] : rel.properties) {
                const Status st =
                    DoSetEdgeProperty(tp, snap.id, rel.other, key, value);
                // Ghost copies refuse properties by design.
                if (!st.ok() && !st.IsInvalidArgument()) return st;
              }
            }
          }
        }
        for (; marked < chunk.size(); ++marked) {
          HERMES_RETURN_NOT_OK(DoSetNodeState(sources[marked], chunk[marked],
                                              NodeState::kUnavailable));
        }
        return Status::OK();
      }();
      if (!copy_st.ok()) {
        // Unwind under the same exclusive directory hold, so no reader or
        // writer ever observes the half-replicated chunk. Removing a
        // target replica degrades any co-located records it upgraded back
        // to the half records they were before this chunk (the degrade
        // rule node removal always applies), so the pre-chunk
        // representation is restored exactly. Unwind writes are
        // best-effort: under a persistent storage fault they can fail too
        // — warn loudly and keep going so as much of the chunk as
        // possible is released, then surface the original error.
        for (std::size_t i = 0; i < marked; ++i) {
          const Status undo =
              DoSetNodeState(sources[i], chunk[i], NodeState::kAvailable);
          if (!undo.ok()) {
            HERMES_LOG(Warning)
                << "migration unwind: vertex " << chunk[i]
                << " stuck unavailable on partition " << sources[i] << ": "
                << undo.ToString();
          }
        }
        for (std::size_t i = 0; i < created; ++i) {
          const NodeSnapshot& snap = snapshots[i];
          const PartitionId tp = after->PartitionOf(snap.id);
          const Status undo = DoRemoveNode(tp, snap.id);
          if (!undo.ok()) {
            HERMES_LOG(Warning)
                << "migration unwind: replica of vertex " << snap.id
                << " stranded on partition " << tp << ": "
                << undo.ToString();
          }
        }
        return copy_st;
      }
    }

    // --- Synchronization barrier: every lock released, so reads and
    // writes interleave with the in-flight migration here and observe the
    // unavailable-record semantics for this chunk's vertices.
    if (options_.migration_barrier_hook) {
      options_.migration_barrier_hook(chunk);
    }

    // --- Remove step: flip the directory, shift the auxiliary counters,
    // and delete the originals.
    {
      WriterMutexLock dir(&dir_mu_);
      TraceSpan remove_span("cluster.migration.remove");
      for (std::size_t i = 0; i < snapshots.size(); ++i) {
        const NodeSnapshot& snap = snapshots[i];
        const PartitionId sp = sources[i];
        const PartitionId tp = after->PartitionOf(snap.id);
        {
          // Live counters (not the phase-one copies): concurrent weight
          // bumps between chunks stay accounted.
          MutexLock topo(&topo_mu_);
          aux_.OnVertexMigrated(graph_, snap.id, sp, tp);
        }
        assignment_.Assign(snap.id, tp);
        source_busy[sp] +=
            static_cast<SimTime>(1 + snap.relationships.size()) *
            options_.net.write_op_us;
        HERMES_RETURN_NOT_OK(DoRemoveNode(sp, snap.id));
      }
    }
  }

  stats.copy_time_us =
      *std::max_element(target_busy.begin(), target_busy.end());
  stats.total_time_us =
      stats.copy_time_us +
      static_cast<SimTime>(stats.chunks) * options_.net.migration_barrier_us +
      *std::max_element(source_busy.begin(), source_busy.end());
  m_migrations_->Increment();
  m_vertices_migrated_->Increment(stats.vertices_moved);
  m_migration_bytes_->Increment(stats.bytes_copied);
  return stats;
}

bool HermesCluster::Validate(std::size_t sample, std::uint64_t seed) const {
  WriterMutexLock dir(&dir_mu_);
  MutexLock topo(&topo_mu_);
  const std::size_t n = graph_.NumVertices();
  Rng rng(seed);
  const bool all = (sample == 0 || sample >= n);
  const std::size_t rounds = all ? n : sample;
  for (std::size_t i = 0; i < rounds; ++i) {
    const VertexId v = all ? static_cast<VertexId>(i) : rng.Uniform(n);
    if (tombstoned_[v]) {
      // A tombstoned id must not exist in any store.
      for (PartitionId p = 0; p < num_servers(); ++p) {
        if (store_ptrs_[p]->NodeExists(v)) return false;
      }
      continue;
    }
    const PartitionId pv = assignment_.PartitionOf(v);
    if (!store_ptrs_[pv]->HasNode(v)) return false;
    // No other store may host v.
    for (PartitionId p = 0; p < num_servers(); ++p) {
      if (p != pv && store_ptrs_[p]->NodeExists(v)) return false;
    }
    auto neighbors = store_ptrs_[pv]->Neighbors(v);
    if (!neighbors.ok()) return false;
    std::vector<VertexId> from_store = *neighbors;
    std::sort(from_store.begin(), from_store.end());
    const auto expected = graph_.Neighbors(v);
    if (from_store.size() != expected.size() ||
        !std::equal(from_store.begin(), from_store.end(), expected.begin())) {
      return false;
    }
    // Ghost discipline: cross-partition edges have exactly one ghost copy;
    // co-located edges have a single non-ghost record.
    for (VertexId w : expected) {
      const PartitionId pw = assignment_.PartitionOf(w);
      auto mine = store_ptrs_[pv]->EdgeIsGhost(v, w);
      auto theirs = store_ptrs_[pw]->EdgeIsGhost(w, v);
      if (!mine.ok() || !theirs.ok()) return false;
      if (pv == pw) {
        if (*mine || *theirs) return false;
      } else {
        if (*mine == *theirs) return false;
      }
    }
  }
  return true;
}

std::size_t HermesCluster::TotalStoreBytes() const {
  ReaderMutexLock dir(&dir_mu_);
  std::size_t total = 0;
  for (PartitionId p = 0; p < num_servers(); ++p) {
    MutexLock shard_lock(&shard(p));
    total += store_ptrs_[p]->MemoryBytes();
  }
  return total;
}

hermes::MetricsSnapshot HermesCluster::MetricsSnapshot() const {
  auto& registry = MetricsRegistry::Global();
  {
    // Refresh point-in-time gauges under the directory lock, then
    // snapshot. The registry mutex is a leaf, so every acquisition here
    // respects the lock order.
    ReaderMutexLock dir(&dir_mu_);
    std::size_t store_bytes = 0;
    for (PartitionId p = 0; p < num_servers(); ++p) {
      MutexLock shard_lock(&shard(p));
      store_bytes += store_ptrs_[p]->MemoryBytes();
    }
    registry.GetGauge("cluster.store_bytes")
        ->Set(static_cast<double>(store_bytes));
    MutexLock topo(&topo_mu_);
    registry.GetGauge("cluster.num_vertices")
        ->Set(static_cast<double>(graph_.NumVertices()));
    registry.GetGauge("cluster.num_edges")
        ->Set(static_cast<double>(graph_.NumEdges()));
    registry.GetGauge("cluster.imbalance")
        ->Set(ImbalanceFactor(graph_, assignment_));
  }
  return registry.Snapshot();
}

}  // namespace hermes
