#ifndef HERMES_COMMON_LOGGING_H_
#define HERMES_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hermes {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level below which log lines are dropped. Defaults to
/// kInfo; benchmarks lower it to kWarning to keep output clean.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HERMES_LOG(level)                                          \
  ::hermes::internal::LogMessage(::hermes::LogLevel::k##level,     \
                                 __FILE__, __LINE__)

/// Fatal invariant check: logs and aborts. Used for programming errors
/// only; recoverable conditions use Status.
#define HERMES_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::hermes::internal::LogMessage(::hermes::LogLevel::kError,        \
                                     __FILE__, __LINE__)                \
          << "Check failed: " #cond;                                    \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

}  // namespace hermes

#endif  // HERMES_COMMON_LOGGING_H_
