#ifndef HERMES_COMMON_FAILPOINT_H_
#define HERMES_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

/// Deterministic fault injection for the storage stack (DESIGN.md §9).
///
/// A failpoint is a named site at an I/O boundary (WAL append, paged-file
/// write, checkpoint window) that tests can arm with a deterministic
/// activation policy. When a site fires, the caller turns that into the
/// failure mode appropriate for the site: a clean Status::IOError, a torn
/// write (a prefix of the bytes reaches the file), or a simulated crash.
///
/// Crash semantics: a crash-mode failpoint *latches* the registry into a
/// crashed state. While latched, every evaluation at every site fires —
/// the process is "dead", so all subsequent I/O fails — until the torture
/// harness abandons the live store, calls Reset(), and re-opens from
/// disk. This guarantees that nothing can be appended after a torn tail,
/// which is what makes prefix-consistent recovery provable.
///
/// The whole subsystem compiles to zero-cost no-ops unless
/// HERMES_FAILPOINTS is defined (the asan-ubsan and tsan presets turn it
/// on, mirroring HERMES_DEBUG_LOCK_ORDER). Release builds must keep it
/// off — enforced by tools/lint.py. Sites outside src/storage and
/// src/graphdb are also a lint finding: failpoints belong at storage
/// I/O boundaries, not in partitioning or simulation logic.
namespace hermes {

/// True when the registry is compiled in; tests use this to GTEST_SKIP
/// torture cases under the default (uninstrumented) preset.
#ifdef HERMES_FAILPOINTS
inline constexpr bool kFailpointsEnabled = true;
#else
inline constexpr bool kFailpointsEnabled = false;
#endif

/// Activation policy for an armed failpoint. All three are deterministic
/// given the config (probability draws come from a private seeded Rng).
struct FailpointConfig {
  enum class Policy : std::uint8_t {
    kNthHit,       // fire exactly once, on the n-th evaluation (1-based)
    kEveryK,       // fire on every k-th evaluation (n = k)
    kProbability,  // fire with probability `probability`, seeded by `seed`
  };
  Policy policy = Policy::kNthHit;
  std::uint64_t n = 1;
  double probability = 0.0;
  std::uint64_t seed = 0;
  // Site-specific argument, e.g. how many bytes of a frame a torn write
  // lets through before the simulated power loss. 0 = site default.
  std::uint64_t arg = 0;
};

/// Result of evaluating one site: whether it fires, and the armed `arg`.
struct FailpointHit {
  bool fired = false;
  std::uint64_t arg = 0;
};

/// Process-wide registry of failpoint sites. Sites self-register on
/// first evaluation, so hit counts are observable even for sites that
/// were never armed. Evaluation also increments `failpoint.<name>.hits`
/// and (when fired) `failpoint.<name>.fired` in the global
/// MetricsRegistry; the Counter pointers are cached per site, so the
/// metrics mutex (rank kRankMetrics) is only taken on a site's first
/// evaluation — legal because mu_ holds the lower rank kRankFailpoint.
///
/// Thread-safe. mu_ may be acquired while holding any storage-stack
/// mutex (DurableStore, WAL, PageCache — all ranked below kRankFailpoint
/// in common/lock_order.h).
class FailpointRegistry {
 public:
  /// The process-wide registry every HERMES_FAILPOINT_* macro consults.
  static FailpointRegistry& Global();

  /// Arms `name` with `config`, resetting the site's evaluation count so
  /// nth-hit policies count from the moment of arming.
  void Arm(const std::string& name, const FailpointConfig& config)
      EXCLUDES(mu_);

  /// Disarms `name`; evaluations keep being counted.
  void Disarm(const std::string& name) EXCLUDES(mu_);

  /// Disarms every site, clears all counts, and releases the crash
  /// latch. The torture harness calls this before re-opening the store
  /// (the "new process" after a crash has no injected faults).
  void Reset() EXCLUDES(mu_);

  /// Evaluates the site: counts the hit and decides whether it fires.
  /// While the crash latch is set, every site fires unconditionally.
  FailpointHit Evaluate(const char* name) EXCLUDES(mu_);

  /// Sets the crash latch (see class comment).
  void LatchCrash(const char* name) EXCLUDES(mu_);
  bool crashed() const EXCLUDES(mu_);

  /// Test hooks: lifetime evaluation / fire counts for one site.
  std::uint64_t Evaluations(const std::string& name) const EXCLUDES(mu_);
  std::uint64_t FiredCount(const std::string& name) const EXCLUDES(mu_);

 private:
  struct Site {
    FailpointConfig config;
    bool armed = false;
    std::uint64_t evals = 0;  // since last Arm/Reset
    std::uint64_t lifetime_evals = 0;
    std::uint64_t fired = 0;
    Rng rng{0};
    Counter* hits_counter = nullptr;   // failpoint.<name>.hits
    Counter* fired_counter = nullptr;  // failpoint.<name>.fired
  };

  Site* GetSite(const std::string& name) REQUIRES(mu_);

  mutable Mutex mu_{"failpoint_registry.mu", lock_order::kRankFailpoint};
  std::map<std::string, Site> sites_ GUARDED_BY(mu_);
  bool crashed_ GUARDED_BY(mu_) = false;
};

}  // namespace hermes

/// Site macros. Only src/storage and src/graphdb may use these
/// (tools/lint.py); everything expands to nothing without
/// HERMES_FAILPOINTS.
///
///   HERMES_FAILPOINT_HIT(name)          -> FailpointHit (inspect .fired)
///   HERMES_FAILPOINT_IOERROR(name)      -> return Status::IOError if fired
///   HERMES_FAILPOINT_CRASH(name)        -> latch crash + return IOError
///   HERMES_FAILPOINT_LATCH_CRASH(name)  -> latch crash (no return)
#ifdef HERMES_FAILPOINTS

#define HERMES_FAILPOINT_HIT(name) \
  ::hermes::FailpointRegistry::Global().Evaluate(name)

#define HERMES_FAILPOINT_LATCH_CRASH(name) \
  ::hermes::FailpointRegistry::Global().LatchCrash(name)

#define HERMES_FAILPOINT_IOERROR(name)                              \
  do {                                                              \
    if (::hermes::FailpointRegistry::Global().Evaluate(name).fired) \
      return ::hermes::Status::IOError(std::string("failpoint: ") + \
                                       (name));                     \
  } while (0)

#define HERMES_FAILPOINT_CRASH(name)                                  \
  do {                                                                \
    if (::hermes::FailpointRegistry::Global().Evaluate(name).fired) { \
      ::hermes::FailpointRegistry::Global().LatchCrash(name);         \
      return ::hermes::Status::IOError(                               \
          std::string("failpoint crash: ") + (name));                 \
    }                                                                 \
  } while (0)

#else  // !HERMES_FAILPOINTS

#define HERMES_FAILPOINT_HIT(name) (::hermes::FailpointHit{})
#define HERMES_FAILPOINT_LATCH_CRASH(name) \
  do {                                     \
  } while (0)
#define HERMES_FAILPOINT_IOERROR(name) \
  do {                                 \
  } while (0)
#define HERMES_FAILPOINT_CRASH(name) \
  do {                               \
  } while (0)

#endif  // HERMES_FAILPOINTS

#endif  // HERMES_COMMON_FAILPOINT_H_
