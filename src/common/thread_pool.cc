#include "common/thread_pool.h"

#include <algorithm>

namespace hermes {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(&mu_);
      if (tasks_.empty()) return;  // shutting down and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace hermes
