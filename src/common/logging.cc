#include "common/logging.h"

#include <atomic>
#include <cstring>

#include "common/thread_annotations.h"

namespace hermes {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
// Serializes line emission to stderr. The ultimate lock-order leaf: LOG()
// must be callable while holding any other mutex in the repo.
Mutex g_log_mutex{"common.log.mu", lock_order::kRankLogging};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(&g_log_mutex);
    // audit:allow(blocking, serialized console emission is the mutex's
    // whole job; it sits at the ultimate leaf rank so no other lock can
    // ever wait behind a slow stderr)
    std::cerr << stream_.str() << std::endl;
  }
  (void)level_;
}

}  // namespace internal

}  // namespace hermes
