#ifndef HERMES_COMMON_METRICS_H_
#define HERMES_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/thread_annotations.h"

namespace hermes {

/// Monotonically increasing event count. Updates are relaxed atomics, so
/// counters are cheap enough to stay enabled in release builds (one
/// uncontended fetch_add on the hot path) and race-free under TSan.
/// Counters never move once registered; cache the pointer at construction
/// time instead of looking it up per event.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, utilization, resident
/// bytes). Same relaxed-atomic cost model as Counter.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of every registered metric, suitable for printing
/// or JSON serialization (bench/bench_common.h's reporter).
struct MetricsSnapshot {
  struct HistogramSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

/// Named metric registry. Subsystems register counters/gauges once (at
/// construction) and hold the returned pointer; the registry owns the
/// metric objects, so their addresses are stable for the process
/// lifetime. Latency observations go into the shared Histogram type
/// under the registry mutex — fine for span-granularity timings, not for
/// per-record hot paths (use a Counter there).
///
/// Metric naming scheme (DESIGN.md §7): `<subsystem>.<event>`, with unit
/// suffixes `_bytes` / `_us` where the unit is not a plain count, e.g.
/// `page_cache.hits`, `wal.append_bytes`, `cluster.migration.copy_us`.
///
/// Thread-safe; `mu_` is a leaf in the repo lock order (no other mutex is
/// acquired while it is held), so metrics may be touched from any context,
/// including under any of HermesCluster's ranked mutexes.
class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  /// Returns the counter/gauge registered under `name`, creating it on
  /// first use. The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);

  /// Records one latency/size observation into the histogram `name`.
  void Observe(const std::string& name, double value) EXCLUDES(mu_);

  /// Copies every metric's current value.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

  /// Zeroes all counters/gauges and clears all histograms. Registered
  /// metric objects survive (cached pointers stay valid) — used by tests
  /// and benches to isolate measurement windows.
  void ResetAll() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"metrics_registry.mu", lock_order::kRankMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mu_);
};

/// One completed trace span: a named duration on the timeline.
struct TraceEvent {
  const char* name = "";      // static string supplied by the span
  std::uint64_t start_us = 0; // steady-clock microseconds
  std::uint64_t duration_us = 0;
};

/// Fixed-capacity ring buffer of completed spans. Recording overwrites
/// the oldest event once full (dropped count is kept), so tracing never
/// allocates after construction and is safe to leave on in production.
class TraceLog {
 public:
  static constexpr std::size_t kCapacity = 4096;

  static TraceLog& Global();

  void Record(const char* name, std::uint64_t start_us,
              std::uint64_t duration_us) EXCLUDES(mu_);

  /// Events currently in the buffer, oldest first.
  std::vector<TraceEvent> Events() const EXCLUDES(mu_);

  std::uint64_t total_recorded() const EXCLUDES(mu_);
  std::uint64_t dropped() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"trace_log.mu", lock_order::kRankTraceLog};
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);
  std::size_t next_ GUARDED_BY(mu_) = 0;      // ring write position
  std::uint64_t recorded_ GUARDED_BY(mu_) = 0;
};

/// Steady-clock microseconds since process start (monotonic).
std::uint64_t SteadyNowMicros();

#ifndef HERMES_NO_TRACING

/// RAII span: records a TraceEvent (and a latency observation into the
/// registry histogram of the same name) when it goes out of scope. The
/// name must be a string literal / static string. Compiles to a no-op
/// when the build defines HERMES_NO_TRACING.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_us_(SteadyNowMicros()) {}
  ~TraceSpan() {
    const std::uint64_t duration = SteadyNowMicros() - start_us_;
    TraceLog::Global().Record(name_, start_us_, duration);
    MetricsRegistry::Global().Observe(name_, static_cast<double>(duration));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* const name_;
  const std::uint64_t start_us_;
};

#else  // HERMES_NO_TRACING

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // HERMES_NO_TRACING

}  // namespace hermes

#endif  // HERMES_COMMON_METRICS_H_
