#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace hermes {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::size_t Histogram::BucketFor(double value) {
  if (value <= 0.0) return 0;
  // Quarter-decade log buckets spanning ~1e-8 .. ~1e24.
  const double idx = (std::log10(value) + 8.0) * 4.0;
  if (idx < 0.0) return 0;
  const auto b = static_cast<std::size_t>(idx);
  return std::min(b, kNumBuckets - 1);
}

double Histogram::BucketUpper(std::size_t bucket) {
  return std::pow(10.0, (static_cast<double>(bucket + 1) / 4.0) - 8.0);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= target) {
      return std::min(max_, std::max(min_, BucketUpper(i)));
    }
  }
  return max_;
}

}  // namespace hermes
