#ifndef HERMES_COMMON_RESULT_H_
#define HERMES_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hermes {

/// Result<T> holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. A Result is never in the OK-status-without-value
/// state: constructing from an OK status is a programming error and is
/// converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Constructs from an error status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if a value is held.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the held value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_RESULT_H_
