#include "common/lock_order.h"

#ifdef HERMES_DEBUG_LOCK_ORDER

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // raw std::mutex: the validator cannot use the Mutex it instruments
#include <string>
#include <utility>
#include <vector>

namespace hermes {
namespace lock_order {
namespace {

struct Held {
  const void* mu;
  const char* name;
  int rank;
};

// Per-thread stack of ranked locks currently held (push on acquire, erase
// by address on release). thread_local keeps the hot path allocation-free
// after the first few acquisitions on a thread.
thread_local std::vector<Held> tl_held;

// Global acquired-before graph: (held name, acquired name) -> the held
// stack snapshot when the edge was first observed. Guarded by a raw
// std::mutex because the validator must not recurse into the annotated
// Mutex it instruments.
std::mutex g_graph_mu;
std::map<std::pair<std::string, std::string>, std::string>* g_edges = nullptr;

std::string StackString(const std::vector<Held>& held) {
  std::string out;
  for (const Held& h : held) {
    if (!out.empty()) out += " -> ";
    out += h.name;
    out += "(rank ";
    out += std::to_string(h.rank);
    out += ")";
  }
  return out.empty() ? std::string("<empty>") : out;
}

[[noreturn]] void Die(const char* kind, const char* name, int rank,
                      const std::string& prior_stack) {
  std::fprintf(stderr,
               "lock_order: FATAL %s acquiring %s (rank %d)\n"
               "lock_order:   this thread holds: %s\n",
               kind, name, rank, StackString(tl_held).c_str());
  if (!prior_stack.empty()) {
    std::fprintf(stderr,
                 "lock_order:   opposite order first seen holding: %s\n",
                 prior_stack.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

/// Records held->acquired edges and returns the stored stack for the
/// reverse edge, if that inversion has ever been observed.
std::string RecordEdges(const char* name) {
  std::string reverse_stack;
  std::lock_guard<std::mutex> g(g_graph_mu);
  if (g_edges == nullptr) {
    g_edges = new std::map<std::pair<std::string, std::string>, std::string>();
  }
  for (const Held& h : tl_held) {
    auto key = std::make_pair(std::string(h.name), std::string(name));
    g_edges->emplace(std::move(key), StackString(tl_held));
    auto rev = g_edges->find({std::string(name), std::string(h.name)});
    if (rev != g_edges->end()) reverse_stack = rev->second;
  }
  return reverse_stack;
}

}  // namespace

void OnAcquire(const void* mu, const char* name, int rank) {
  if (rank == kRankUnranked) return;
  for (const Held& h : tl_held) {
    if (h.mu == mu) {
      Die("self-relock (non-recursive mutex)", name, rank, "");
    }
  }
  const std::string reverse_stack =
      tl_held.empty() ? std::string() : RecordEdges(name);
  if (!reverse_stack.empty()) {
    Die("acquired-before inversion", name, rank, reverse_stack);
  }
  for (const Held& h : tl_held) {
    if (h.rank >= rank) {
      Die("rank-order violation", name, rank, reverse_stack);
    }
  }
  tl_held.push_back(Held{mu, name, rank});
}

void OnRelease(const void* mu) {
  for (auto it = tl_held.begin(); it != tl_held.end(); ++it) {
    if (it->mu == mu) {
      tl_held.erase(it);
      return;
    }
  }
}

std::size_t HeldCount() { return tl_held.size(); }

void ResetGraphForTest() {
  std::lock_guard<std::mutex> g(g_graph_mu);
  if (g_edges != nullptr) g_edges->clear();
}

}  // namespace lock_order
}  // namespace hermes

#endif  // HERMES_DEBUG_LOCK_ORDER

#ifdef HERMES_LOCK_PROFILING

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>  // raw std::mutex: the profiler cannot use the Mutex it instruments
#include <string>
#include <vector>

namespace hermes {
namespace lock_order {

namespace {

constexpr int kHistBuckets = 64;

// Value v lands in bucket bit_width(v) (0 for v == 0); the bucket's
// representative value is its upper bound 2^b - 1. All recording is
// relaxed — the profiler tolerates slightly torn snapshots in exchange
// for staying off the hot path's critical section entirely.
int BucketIndex(std::uint64_t v) {
  const int w = std::bit_width(v);
  return w < kHistBuckets ? w : kHistBuckets - 1;
}

std::uint64_t BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= 63) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

struct AtomicHist {
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::atomic<std::uint64_t> buckets[kHistBuckets] = {};

  void Record(std::uint64_t v) {
    buckets[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = min.load(std::memory_order_relaxed);
    while (v < cur &&
           !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (v > cur &&
           !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  HistSummary Summarize() const {
    std::uint64_t counts[kHistBuckets];
    std::uint64_t total = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
      counts[b] = buckets[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    HistSummary out;
    if (total == 0) return out;
    out.count = total;
    out.sum = sum.load(std::memory_order_relaxed);
    out.min = min.load(std::memory_order_relaxed);
    out.max = max.load(std::memory_order_relaxed);
    auto quantile = [&](double q) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
      std::uint64_t cum = 0;
      for (int b = 0; b < kHistBuckets; ++b) {
        cum += counts[b];
        if (cum >= target && cum > 0) {
          return std::min(BucketUpperBound(b), out.max);
        }
      }
      return out.max;
    };
    out.p50 = std::max(quantile(0.50), out.min);
    out.p99 = std::max(quantile(0.99), out.min);
    return out;
  }

  void Reset() {
    sum.store(0, std::memory_order_relaxed);
    min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
    for (int b = 0; b < kHistBuckets; ++b) {
      buckets[b].store(0, std::memory_order_relaxed);
    }
  }
};

}  // namespace

struct LockStats {
  std::string name;
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contention{0};
  std::atomic<std::uint64_t> try_lock_misses{0};
  AtomicHist hold;
  AtomicHist wait;
};

namespace {

// Name -> stats, created on first use and leaked on purpose (rows must
// outlive every Mutex, including function-local statics destroyed at
// exit). Guarded by a raw std::mutex: registration and snapshotting are
// cold paths and must not recurse into the instrumented Mutex.
std::mutex g_profile_mu;
std::map<std::string, LockStats*>* g_profile_rows = nullptr;

// Per-thread acquire stamps for hold-time measurement. Keyed by mutex
// address so nested holds (distinct ranks) resolve correctly.
struct HoldStamp {
  const void* mu;
  LockStats* stats;
  std::uint64_t t0_us;
};
thread_local std::vector<HoldStamp> tl_hold_stamps;

}  // namespace

LockStats* ProfileStats(std::atomic<LockStats*>* slot, const char* name,
                        int rank) {
  LockStats* s = slot->load(std::memory_order_acquire);
  if (s != nullptr) return s;
  if (rank == kRankUnranked || name == nullptr) return nullptr;
  std::lock_guard<std::mutex> g(g_profile_mu);
  if (g_profile_rows == nullptr) {
    g_profile_rows = new std::map<std::string, LockStats*>();
  }
  LockStats*& row = (*g_profile_rows)[name];
  if (row == nullptr) {
    row = new LockStats();
    row->name = name;
  }
  slot->store(row, std::memory_order_release);
  return row;
}

std::uint64_t ProfileNowMicros() {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

void ProfileContention(LockStats* s, std::uint64_t wait_us) {
  if (s == nullptr) return;
  s->contention.fetch_add(1, std::memory_order_relaxed);
  s->wait.Record(wait_us);
}

void ProfileTryLockMiss(LockStats* s) {
  if (s == nullptr) return;
  s->try_lock_misses.fetch_add(1, std::memory_order_relaxed);
}

void ProfileAcquired(LockStats* s, const void* mu) {
  if (s == nullptr) return;
  s->acquisitions.fetch_add(1, std::memory_order_relaxed);
  tl_hold_stamps.push_back(HoldStamp{mu, s, ProfileNowMicros()});
}

void ProfileReleased(const void* mu) {
  for (auto it = tl_hold_stamps.rbegin(); it != tl_hold_stamps.rend(); ++it) {
    if (it->mu == mu) {
      it->stats->hold.Record(ProfileNowMicros() - it->t0_us);
      tl_hold_stamps.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<LockProfileRow> ProfileSnapshot() {
  std::vector<LockProfileRow> rows;
  std::lock_guard<std::mutex> g(g_profile_mu);
  if (g_profile_rows == nullptr) return rows;
  for (const auto& [name, stats] : *g_profile_rows) {
    LockProfileRow row;
    row.name = name;
    row.acquisitions = stats->acquisitions.load(std::memory_order_relaxed);
    row.contention = stats->contention.load(std::memory_order_relaxed);
    row.try_lock_misses =
        stats->try_lock_misses.load(std::memory_order_relaxed);
    if (row.acquisitions == 0 && row.try_lock_misses == 0) continue;
    row.hold = stats->hold.Summarize();
    row.wait = stats->wait.Summarize();
    rows.push_back(std::move(row));
  }
  return rows;
}

void ProfileReset() {
  std::lock_guard<std::mutex> g(g_profile_mu);
  if (g_profile_rows == nullptr) return;
  for (auto& [name, stats] : *g_profile_rows) {
    stats->acquisitions.store(0, std::memory_order_relaxed);
    stats->contention.store(0, std::memory_order_relaxed);
    stats->try_lock_misses.store(0, std::memory_order_relaxed);
    stats->hold.Reset();
    stats->wait.Reset();
  }
}

}  // namespace lock_order
}  // namespace hermes

#endif  // HERMES_LOCK_PROFILING

#if !defined(HERMES_DEBUG_LOCK_ORDER) && !defined(HERMES_LOCK_PROFILING)

// The hooks are inline no-ops in the header; this TU is intentionally
// empty when both the validator and the profiler are compiled out.
namespace hermes {
namespace lock_order {
namespace {
[[maybe_unused]] const int kTranslationUnitNotEmpty = 0;
}  // namespace
}  // namespace lock_order
}  // namespace hermes

#endif  // !HERMES_DEBUG_LOCK_ORDER && !HERMES_LOCK_PROFILING
