#include "common/lock_order.h"

#ifdef HERMES_DEBUG_LOCK_ORDER

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // raw std::mutex: the validator cannot use the Mutex it instruments
#include <string>
#include <utility>
#include <vector>

namespace hermes {
namespace lock_order {
namespace {

struct Held {
  const void* mu;
  const char* name;
  int rank;
};

// Per-thread stack of ranked locks currently held (push on acquire, erase
// by address on release). thread_local keeps the hot path allocation-free
// after the first few acquisitions on a thread.
thread_local std::vector<Held> tl_held;

// Global acquired-before graph: (held name, acquired name) -> the held
// stack snapshot when the edge was first observed. Guarded by a raw
// std::mutex because the validator must not recurse into the annotated
// Mutex it instruments.
std::mutex g_graph_mu;
std::map<std::pair<std::string, std::string>, std::string>* g_edges = nullptr;

std::string StackString(const std::vector<Held>& held) {
  std::string out;
  for (const Held& h : held) {
    if (!out.empty()) out += " -> ";
    out += h.name;
    out += "(rank ";
    out += std::to_string(h.rank);
    out += ")";
  }
  return out.empty() ? std::string("<empty>") : out;
}

[[noreturn]] void Die(const char* kind, const char* name, int rank,
                      const std::string& prior_stack) {
  std::fprintf(stderr,
               "lock_order: FATAL %s acquiring %s (rank %d)\n"
               "lock_order:   this thread holds: %s\n",
               kind, name, rank, StackString(tl_held).c_str());
  if (!prior_stack.empty()) {
    std::fprintf(stderr,
                 "lock_order:   opposite order first seen holding: %s\n",
                 prior_stack.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

/// Records held->acquired edges and returns the stored stack for the
/// reverse edge, if that inversion has ever been observed.
std::string RecordEdges(const char* name) {
  std::string reverse_stack;
  std::lock_guard<std::mutex> g(g_graph_mu);
  if (g_edges == nullptr) {
    g_edges = new std::map<std::pair<std::string, std::string>, std::string>();
  }
  for (const Held& h : tl_held) {
    auto key = std::make_pair(std::string(h.name), std::string(name));
    g_edges->emplace(std::move(key), StackString(tl_held));
    auto rev = g_edges->find({std::string(name), std::string(h.name)});
    if (rev != g_edges->end()) reverse_stack = rev->second;
  }
  return reverse_stack;
}

}  // namespace

void OnAcquire(const void* mu, const char* name, int rank) {
  if (rank == kRankUnranked) return;
  for (const Held& h : tl_held) {
    if (h.mu == mu) {
      Die("self-relock (non-recursive mutex)", name, rank, "");
    }
  }
  const std::string reverse_stack =
      tl_held.empty() ? std::string() : RecordEdges(name);
  if (!reverse_stack.empty()) {
    Die("acquired-before inversion", name, rank, reverse_stack);
  }
  for (const Held& h : tl_held) {
    if (h.rank >= rank) {
      Die("rank-order violation", name, rank, reverse_stack);
    }
  }
  tl_held.push_back(Held{mu, name, rank});
}

void OnRelease(const void* mu) {
  for (auto it = tl_held.begin(); it != tl_held.end(); ++it) {
    if (it->mu == mu) {
      tl_held.erase(it);
      return;
    }
  }
}

std::size_t HeldCount() { return tl_held.size(); }

void ResetGraphForTest() {
  std::lock_guard<std::mutex> g(g_graph_mu);
  if (g_edges != nullptr) g_edges->clear();
}

}  // namespace lock_order
}  // namespace hermes

#else  // !HERMES_DEBUG_LOCK_ORDER

// The hooks are inline no-ops in the header; this TU is intentionally
// empty in release builds.
namespace hermes {
namespace lock_order {
namespace {
[[maybe_unused]] const int kTranslationUnitNotEmpty = 0;
}  // namespace
}  // namespace lock_order
}  // namespace hermes

#endif  // HERMES_DEBUG_LOCK_ORDER
