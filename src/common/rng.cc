#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace hermes {

std::size_t SampleFromCumulative(const std::vector<double>& cumulative,
                                 Rng* rng) {
  assert(!cumulative.empty());
  const double total = cumulative.back();
  const double target = rng->NextDouble() * total;
  auto it = std::upper_bound(cumulative.begin(), cumulative.end(), target);
  if (it == cumulative.end()) --it;
  return static_cast<std::size_t>(it - cumulative.begin());
}

}  // namespace hermes
