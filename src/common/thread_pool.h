#ifndef HERMES_COMMON_THREAD_POOL_H_
#define HERMES_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace hermes {

/// Fixed-size worker pool used to run per-partition repartitioner passes in
/// parallel (the paper's algorithm runs independently on each server).
///
/// Thread-safe: Submit() may be called from any thread, including from a
/// running task (recursive submission). Wait() returns once every task
/// submitted so far — including tasks those tasks submitted — has finished;
/// `in_flight_` counts queued plus running tasks, so it only reaches zero
/// at full quiescence.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run in FIFO order across workers.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until all submitted tasks have completed.
  void Wait() EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_{"thread_pool.mu", lock_order::kRankThreadPool};
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  // audit:allow(guard, written in the ctor and joined in the dtor only)
  std::vector<std::thread> workers_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_THREAD_POOL_H_
