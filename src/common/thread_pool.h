#ifndef HERMES_COMMON_THREAD_POOL_H_
#define HERMES_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hermes {

/// Fixed-size worker pool used to run per-partition repartitioner passes in
/// parallel (the paper's algorithm runs independently on each server).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks run in FIFO order across workers.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_THREAD_POOL_H_
