#ifndef HERMES_COMMON_THREAD_ANNOTATIONS_H_
#define HERMES_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#ifdef HERMES_LOCK_PROFILING
#include <atomic>
#include <cstdint>
#endif

#include "common/lock_order.h"

/// Clang thread-safety-analysis annotations plus an annotated Mutex /
/// MutexLock / CondVar wrapper used by every shared-state class in the
/// repo (ThreadPool, PageCache, LockManager, WriteAheadLog, ...).
///
/// Under clang the macros expand to the analysis attributes and the build
/// adds -Wthread-safety -Werror=thread-safety (see the top-level
/// CMakeLists.txt), so locking-discipline violations are compile errors.
/// Under other compilers they expand to nothing and the wrappers are a
/// zero-cost veneer over <mutex>.
///
/// Style (mirrors the capability-based names in the clang docs):
///   Mutex mu_;
///   std::deque<Task> tasks_ GUARDED_BY(mu_);
///   void Drain() EXCLUDES(mu_);            // takes mu_ itself
///   void DrainLocked() REQUIRES(mu_);      // caller already holds mu_

#if defined(__clang__)
#define HERMES_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HERMES_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY HERMES_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member is protected by the given capability.
#define GUARDED_BY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define PT_GUARDED_BY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define ACQUIRED_BEFORE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held (exclusively / shared) on
/// entry and does not release it.
#define REQUIRES(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define RELEASE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define TRY_ACQUIRE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (it acquires
/// it itself; prevents self-deadlock on non-recursive mutexes).
#define EXCLUDES(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held.
#define ASSERT_CAPABILITY(x) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis for one function (used for move
/// constructors and other single-threaded-by-contract code).
#define NO_THREAD_SAFETY_ANALYSIS \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace hermes {

/// Annotated std::mutex. Lock()/Unlock()/TryLock() carry the acquire /
/// release attributes; the lowercase BasicLockable aliases let CondVar
/// (condition_variable_any) release and reacquire it during waits.
///
/// Shared-state mutexes are constructed with a name and a rank from the
/// lock_order table (common/lock_order.h) mirroring DESIGN.md §6's
/// global acquisition order. Under HERMES_DEBUG_LOCK_ORDER every
/// acquisition is validated against the per-thread held-lock stack and
/// the global acquired-before graph; otherwise the hooks compile to
/// empty inlines and only the two identity fields remain.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(this, name_, rank_);
#ifdef HERMES_LOCK_PROFILING
    lock_order::LockStats* s = ProfileRow();
    if (s != nullptr) {
      // try_lock-first: an uncontended acquire pays one CAS and no clock
      // reads beyond the hold stamp; only a miss times the blocking wait.
      if (!mu_.try_lock()) {
        const std::uint64_t t0 = lock_order::ProfileNowMicros();
        mu_.lock();
        lock_order::ProfileContention(s,
                                      lock_order::ProfileNowMicros() - t0);
      }
      lock_order::ProfileAcquired(s, this);
      return;
    }
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
    lock_order::OnRelease(this);
#ifdef HERMES_LOCK_PROFILING
    lock_order::ProfileReleased(this);
#endif
  }
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
#ifdef HERMES_LOCK_PROFILING
      lock_order::ProfileTryLockMiss(ProfileRow());
#endif
      return false;
    }
    lock_order::OnAcquire(this, name_, rank_);
#ifdef HERMES_LOCK_PROFILING
    lock_order::ProfileAcquired(ProfileRow(), this);
#endif
    return true;
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

  // BasicLockable interface (std::condition_variable_any, std::scoped_lock).
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
#ifdef HERMES_LOCK_PROFILING
  lock_order::LockStats* ProfileRow() {
    return lock_order::ProfileStats(&pstats_, name_, rank_);
  }
  std::atomic<lock_order::LockStats*> pstats_{nullptr};
#endif
  std::mutex mu_;
  const char* name_ = "<unranked>";
  int rank_ = lock_order::kRankUnranked;
};

/// RAII lock over Mutex, visible to the analysis as a scoped capability.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Annotated reader/writer lock with writer preference: once a writer is
/// waiting, new readers queue behind it, so a migration or topology
/// update cannot be starved by a continuous read stream (glibc's
/// std::shared_mutex is reader-preferring, which is exactly the wrong
/// default for the cluster directory lock — see DESIGN.md §6).
///
/// Participates in the lock-order validator like Mutex: both Lock() and
/// LockShared() run the same OnAcquire rank check, because a shared hold
/// still forbids acquiring lower-ranked mutexes (the inversion deadlock
/// needs only one side to block).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(const char* name, int rank) : name_(name), rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    lock_order::OnAcquire(this, name_, rank_);
#ifdef HERMES_LOCK_PROFILING
    lock_order::LockStats* s = ProfileRow();
#endif
    std::unique_lock<std::mutex> l(mu_);
    ++waiting_writers_;
#ifdef HERMES_LOCK_PROFILING
    // Contended iff the acquire predicate is false right now (checked
    // under the internal mutex, so the read is exact, not a race).
    const bool contended = writer_active_ || active_readers_ > 0;
    const std::uint64_t t0 =
        contended ? lock_order::ProfileNowMicros() : 0;
#endif
    cv_writer_.wait(l, [&] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
#ifdef HERMES_LOCK_PROFILING
    if (s != nullptr && contended) {
      lock_order::ProfileContention(s, lock_order::ProfileNowMicros() - t0);
    }
    lock_order::ProfileAcquired(s, this);
#endif
  }
  void Unlock() RELEASE() {
    {
      std::lock_guard<std::mutex> l(mu_);
      writer_active_ = false;
    }
    cv_writer_.notify_one();
    cv_reader_.notify_all();
    lock_order::OnRelease(this);
#ifdef HERMES_LOCK_PROFILING
    lock_order::ProfileReleased(this);
#endif
  }
  void LockShared() ACQUIRE_SHARED() {
    lock_order::OnAcquire(this, name_, rank_);
#ifdef HERMES_LOCK_PROFILING
    lock_order::LockStats* s = ProfileRow();
#endif
    std::unique_lock<std::mutex> l(mu_);
#ifdef HERMES_LOCK_PROFILING
    const bool contended = writer_active_ || waiting_writers_ > 0;
    const std::uint64_t t0 =
        contended ? lock_order::ProfileNowMicros() : 0;
#endif
    cv_reader_.wait(l, [&] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
#ifdef HERMES_LOCK_PROFILING
    if (s != nullptr && contended) {
      lock_order::ProfileContention(s, lock_order::ProfileNowMicros() - t0);
    }
    lock_order::ProfileAcquired(s, this);
#endif
  }
  void UnlockShared() RELEASE_SHARED() {
    bool last_reader;
    {
      std::lock_guard<std::mutex> l(mu_);
      last_reader = (--active_readers_ == 0);
    }
    if (last_reader) cv_writer_.notify_one();
    lock_order::OnRelease(this);
#ifdef HERMES_LOCK_PROFILING
    lock_order::ProfileReleased(this);
#endif
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
#ifdef HERMES_LOCK_PROFILING
  lock_order::LockStats* ProfileRow() {
    return lock_order::ProfileStats(&pstats_, name_, rank_);
  }
  std::atomic<lock_order::LockStats*> pstats_{nullptr};
#endif
  std::mutex mu_;
  std::condition_variable cv_reader_;
  std::condition_variable cv_writer_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
  const char* name_;
  int rank_;
};

/// RAII shared (read) lock over SharedMutex. Per the clang thread-safety
/// docs a scoped_lockable destructor always uses the generic RELEASE()
/// attribute; the analysis pairs it with the shared acquire.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (write) lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to the annotated Mutex. Wait/WaitUntil
/// REQUIRE the mutex: it is held on entry and on return (released and
/// reacquired internally, which the analysis cannot see — the REQUIRES
/// contract is the sound summary of that behaviour). Predicate waits are
/// deliberately not offered: guarded-state predicates belong in an
/// explicit `while` loop inside the annotated caller, where the analysis
/// can check them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(*mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_THREAD_ANNOTATIONS_H_
