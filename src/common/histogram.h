#ifndef HERMES_COMMON_HISTOGRAM_H_
#define HERMES_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hermes {

/// Streaming summary of a numeric sample: count, mean, min/max, and
/// approximate quantiles via a fixed exponential bucketing (HdrHistogram
/// style but simpler). Used for latency and queue-length reporting.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Approximate quantile (q in [0,1]); exact for min/max, bucketed
  /// otherwise. Returns 0 for an empty histogram.
  double Quantile(double q) const;

 private:
  static constexpr std::size_t kNumBuckets = 128;
  // Bucket i covers [2^(i/4 - 8), 2^((i+1)/4 - 8)) roughly; computed via
  // BucketFor. Values <= 0 go to bucket 0.
  static std::size_t BucketFor(double value);
  static double BucketUpper(std::size_t bucket);

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_HISTOGRAM_H_
