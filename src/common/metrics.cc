#include "common/metrics.h"

#include <chrono>

namespace hermes {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  MutexLock lock(&mu_);
  histograms_[name].Add(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramSummary s;
    s.count = hist.count();
    s.sum = hist.sum();
    s.mean = hist.Mean();
    s.min = hist.min();
    s.max = hist.max();
    s.p50 = hist.Quantile(0.5);
    s.p99 = hist.Quantile(0.99);
    snap.histograms[name] = s;
  }
#ifdef HERMES_LOCK_PROFILING
  // Merge the lock profiler's rows (common/lock_order.h) so hold/wait
  // times and contention reach every consumer of the registry snapshot —
  // HermesCluster::MetricsSnapshot() and the BENCH_*.json reports — under
  // stable lock.<name>.* keys. ProfileSnapshot's internal raw mutex is a
  // leaf below mu_ (it never takes an annotated Mutex), so calling it
  // under the registry lock cannot invert.
  for (const lock_order::LockProfileRow& row : lock_order::ProfileSnapshot()) {
    const std::string prefix = "lock." + row.name;
    snap.counters[prefix + ".acquisitions"] = row.acquisitions;
    snap.counters[prefix + ".contention"] = row.contention;
    auto hist = [](const lock_order::HistSummary& h) {
      MetricsSnapshot::HistogramSummary s;
      s.count = h.count;
      s.sum = static_cast<double>(h.sum);
      s.mean = h.count == 0 ? 0.0
                            : static_cast<double>(h.sum) /
                                  static_cast<double>(h.count);
      s.min = static_cast<double>(h.min);
      s.max = static_cast<double>(h.max);
      s.p50 = static_cast<double>(h.p50);
      s.p99 = static_cast<double>(h.p99);
      return s;
    };
    snap.histograms[prefix + ".hold_us"] = hist(row.hold);
    if (row.wait.count > 0) {
      snap.histograms[prefix + ".wait_us"] = hist(row.wait);
    }
  }
#endif
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist.Reset();
#ifdef HERMES_LOCK_PROFILING
  lock_order::ProfileReset();
#endif
}

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

void TraceLog::Record(const char* name, std::uint64_t start_us,
                      std::uint64_t duration_us) {
  MutexLock lock(&mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(TraceEvent{name, start_us, duration_us});
  } else {
    ring_[next_] = TraceEvent{name, start_us, duration_us};
    next_ = (next_ + 1) % kCapacity;
  }
  ++recorded_;
}

std::vector<TraceEvent> TraceLog::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // `next_` is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceLog::total_recorded() const {
  MutexLock lock(&mu_);
  return recorded_;
}

std::uint64_t TraceLog::dropped() const {
  MutexLock lock(&mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void TraceLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::uint64_t SteadyNowMicros() {
  static const auto origin = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

}  // namespace hermes
