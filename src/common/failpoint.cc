#include "common/failpoint.h"

namespace hermes {

FailpointRegistry& FailpointRegistry::Global() {
  // Leaked singleton, same idiom as MetricsRegistry::Global(): sites are
  // evaluated from destructors (WAL flush on close), so the registry
  // must outlive every static-storage client.
  static FailpointRegistry* const registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::Site* FailpointRegistry::GetSite(const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, Site{}).first;
    // First evaluation/arm of this site: register its metrics counters.
    // GetCounter takes the metrics mutex (rank 70) under mu_ (rank 65),
    // which the lock-order validator permits.
    it->second.hits_counter =
        MetricsRegistry::Global().GetCounter("failpoint." + name + ".hits");
    it->second.fired_counter =
        MetricsRegistry::Global().GetCounter("failpoint." + name + ".fired");
  }
  return &it->second;
}

void FailpointRegistry::Arm(const std::string& name,
                            const FailpointConfig& config) {
  MutexLock lock(&mu_);
  Site* site = GetSite(name);
  site->config = config;
  site->armed = true;
  site->evals = 0;
  site->rng = Rng(config.seed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  MutexLock lock(&mu_);
  GetSite(name)->armed = false;
}

void FailpointRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, site] : sites_) {
    site.armed = false;
    site.evals = 0;
  }
  crashed_ = false;
}

FailpointHit FailpointRegistry::Evaluate(const char* name) {
  MutexLock lock(&mu_);
  Site* site = GetSite(name);
  site->evals++;
  site->lifetime_evals++;
  site->hits_counter->Increment();
  bool fired = false;
  if (crashed_) {
    // The simulated process is dead: every I/O boundary fails until the
    // harness resets the registry and re-opens from disk.
    fired = true;
  } else if (site->armed) {
    const FailpointConfig& cfg = site->config;
    const std::uint64_t n = cfg.n == 0 ? 1 : cfg.n;
    switch (cfg.policy) {
      case FailpointConfig::Policy::kNthHit:
        fired = site->evals == n;
        break;
      case FailpointConfig::Policy::kEveryK:
        fired = site->evals % n == 0;
        break;
      case FailpointConfig::Policy::kProbability:
        fired = site->rng.Bernoulli(cfg.probability);
        break;
    }
  }
  if (fired) {
    site->fired++;
    site->fired_counter->Increment();
  }
  return FailpointHit{fired, site->config.arg};
}

void FailpointRegistry::LatchCrash(const char* name) {
  MutexLock lock(&mu_);
  crashed_ = true;
  MetricsRegistry::Global().GetCounter("failpoint.crashes")->Increment();
  GetSite(name);  // ensure the latching site is visible in test hooks
}

bool FailpointRegistry::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

std::uint64_t FailpointRegistry::Evaluations(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.lifetime_evals;
}

std::uint64_t FailpointRegistry::FiredCount(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fired;
}

}  // namespace hermes
