#ifndef HERMES_COMMON_RNG_H_
#define HERMES_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hermes {

/// Deterministic pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64. All randomized components of Hermes take an
/// explicit seed so that experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Uniform(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples from a (continuous) Pareto/power-law distribution with density
  /// proportional to x^{-exponent} for x >= x_min. Requires exponent > 1.
  double PowerLaw(double exponent, double x_min) {
    assert(exponent > 1.0);
    const double u = NextDouble();
    // Inverse-CDF sampling.
    return x_min * std::exp(std::log1p(-u) * (-1.0 / (exponent - 1.0)));
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Draws an index from a discrete distribution given cumulative weights.
/// `cumulative` must be non-empty and non-decreasing with positive total.
std::size_t SampleFromCumulative(const std::vector<double>& cumulative,
                                 Rng* rng);

}  // namespace hermes

#endif  // HERMES_COMMON_RNG_H_
