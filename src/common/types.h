#ifndef HERMES_COMMON_TYPES_H_
#define HERMES_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hermes {

/// Identifier of a vertex in the (global) social graph.
using VertexId = std::uint64_t;

/// Identifier of a partition (server shard). The paper calls the number of
/// partitions alpha; it is small (typically 16), so 32 bits suffice.
using PartitionId = std::uint32_t;

/// Identifier of a stored record (relationship, property, dynamic block).
using RecordId = std::uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();
inline constexpr RecordId kInvalidRecord =
    std::numeric_limits<RecordId>::max();

}  // namespace hermes

#endif  // HERMES_COMMON_TYPES_H_
