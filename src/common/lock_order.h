#ifndef HERMES_COMMON_LOCK_ORDER_H_
#define HERMES_COMMON_LOCK_ORDER_H_

#include <cstddef>

#ifdef HERMES_LOCK_PROFILING
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>
#endif

/// Runtime lock-order validator (DESIGN.md §6 / §8).
///
/// Every shared-state Mutex in the repo is constructed with a name and a
/// rank from the table below; ranks mirror the declared global
/// acquisition order ("acquire in this order and never the reverse").
/// When HERMES_DEBUG_LOCK_ORDER is defined (the asan-ubsan and tsan
/// presets turn it on) each acquisition is checked against a per-thread
/// held-lock stack — a thread may only acquire a mutex whose rank is
/// strictly greater than every rank it already holds — and recorded into
/// a global acquired-before graph so that a rank-table bug that lets two
/// mutexes invert still gets caught by the observed-edge check. A
/// violation aborts the process after printing the current thread's
/// held-lock stack and, when the opposite edge was seen before, the
/// held-lock stack recorded at that first observation.
///
/// Without the flag every hook is an empty inline function and the
/// annotated Mutex stays the zero-cost veneer documented in
/// common/thread_annotations.h.
namespace hermes {
namespace lock_order {

/// Rank table — the global acquisition order, outermost first. Gaps are
/// deliberate so future mutexes slot in without renumbering. A thread
/// holding rank r may only acquire ranks strictly greater than r, so
/// equal-rank mutexes can never be held together (leaves are therefore
/// given distinct ranks even though they are never nested).
///
/// The cluster tier (ranks < 10000) is the sharded locking scheme from
/// DESIGN.md §6: one whole-migration mutex, the shared directory lock,
/// the topology mutex, and one mutex per partition shard. Per-partition
/// mutexes take rank kRankPartitionBase + partition id — distinct ranks
/// (and distinct names, "cluster.p<i>") so that acquiring two endpoint
/// partitions in partition-id order is exactly acquiring them in
/// strictly increasing rank order. The storage tier starts at 10000 so
/// any realistic partition count fits below it.
inline constexpr int kRankUnranked = -1;  // invisible to the validator
inline constexpr int kRankMigration = 5;  // HermesCluster::migration_mu_
inline constexpr int kRankCluster = 10;   // HermesCluster::dir_mu_ (shared)
inline constexpr int kRankClusterTopology = 20;  // HermesCluster::topo_mu_
/// Message-bus tier (DESIGN.md §12): a cluster thread may issue a bus
/// call while holding the directory/topology locks, so the bus's pending
/// table, the transport registry, and the per-endpoint inbox mutexes all
/// rank above kRankClusterTopology and below the partition servers.
/// Inbox mutexes take kRankMsgInboxBase + endpoint id ("msg.inbox.<i>");
/// InProcTransport rejects endpoint ids that would collide with
/// kRankPartitionBase.
inline constexpr int kRankMsgBus = 30;        // MessageBus::mu_
inline constexpr int kRankMsgTransport = 35;  // InProcTransport::mu_
inline constexpr int kRankMsgInboxBase = 40;  // msg.inbox.<i> -> 40 + i
inline constexpr int kRankPartitionBase = 100;   // server.p<i> -> 100 + i
inline constexpr int kRankDurableStore = 10000;  // DurableGraphStore::mu_
inline constexpr int kRankWal = 10010;           // WriteAheadLog::mu_
inline constexpr int kRankThreadPool = 10020;    // ThreadPool::mu_
inline constexpr int kRankLockManager = 10030;   // LockManager::mu_ (leaf)
/// PageCache shard mutexes take kRankPageCacheShardBase + shard index
/// ("page_cache.s<i>") — distinct ranks, so the validator rejects any
/// path that ever holds two shards at once (the cache never nests them;
/// page I/O happens outside the shard locks entirely).
inline constexpr int kRankPageCacheShardBase = 10040;  // page_cache.s<i>
inline constexpr int kRankPagedFile = 10060;     // PagedFile::meta_mu_
inline constexpr int kRankFailpoint = 10200;     // FailpointRegistry::mu_
inline constexpr int kRankMetrics = 10210;       // MetricsRegistry::mu_ (leaf)
inline constexpr int kRankTraceLog = 10220;      // TraceLog::mu_ (leaf)
inline constexpr int kRankLogging = 10230;       // g_log_mutex (ultimate leaf)

#ifdef HERMES_DEBUG_LOCK_ORDER

/// Called by Mutex immediately before a blocking Lock() (so a would-be
/// deadlock aborts with the stacks instead of hanging) and after a
/// successful TryLock(). Aborts on rank inversion, self-relock, or an
/// acquired-before edge whose reverse was observed earlier.
void OnAcquire(const void* mu, const char* name, int rank);

/// Called by Mutex after unlocking. Removal is by address anywhere in
/// the stack: unlock order is not required to be LIFO.
void OnRelease(const void* mu);

/// Number of ranked locks the calling thread currently holds (test hook).
std::size_t HeldCount();

/// Drops every recorded acquired-before edge (test hook; the per-thread
/// stacks are left alone because live locks are still held).
void ResetGraphForTest();

#else  // !HERMES_DEBUG_LOCK_ORDER

inline void OnAcquire(const void*, const char*, int) {}
inline void OnRelease(const void*) {}
inline std::size_t HeldCount() { return 0; }
inline void ResetGraphForTest() {}

#endif  // HERMES_DEBUG_LOCK_ORDER

#ifdef HERMES_LOCK_PROFILING

/// Lock contention profiler (DESIGN.md §11). Every named, ranked Mutex
/// and SharedMutex records, per lock name:
///   - an acquisition counter and a contention counter (acquisitions
///     that had to wait because the lock was already held),
///   - a hold-time histogram (microseconds between acquire and release),
///   - a wait-time histogram (microseconds spent blocked on contended
///     acquires only, so count(wait_us) == contention).
/// MetricsRegistry::Snapshot() merges these rows in as
/// lock.<name>.acquisitions / lock.<name>.contention counters and
/// lock.<name>.hold_us / lock.<name>.wait_us histograms, which is how
/// they reach HermesCluster::MetricsSnapshot() and the BENCH_*.json
/// reports. All recording is lock-free (relaxed atomics into power-of-two
/// buckets); the one raw std::mutex guards only first-use registration
/// and snapshotting. Compiled out entirely unless HERMES_LOCK_PROFILING.

/// Opaque per-lock-name accumulator; obtained once per Mutex via
/// ProfileStats and cached in the Mutex's atomic slot.
struct LockStats;

/// Resolves (and on first use registers) the stats row for `name`,
/// caching it through `slot`. Returns nullptr for unnamed/unranked
/// mutexes ("<unranked>") so scratch locks stay invisible, mirroring the
/// validator's kRankUnranked behavior.
LockStats* ProfileStats(std::atomic<LockStats*>* slot, const char* name,
                        int rank);

/// Steady-clock microseconds. Defined here (not via metrics.h) because
/// thread_annotations.h cannot include metrics.h without a cycle.
std::uint64_t ProfileNowMicros();

/// Records one contended acquisition that waited `wait_us`.
void ProfileContention(LockStats* s, std::uint64_t wait_us);

/// Records a failed TryLock (the lock was held by someone else).
void ProfileTryLockMiss(LockStats* s);

/// Records a successful acquisition of `mu` and stamps the hold start on
/// this thread; paired with ProfileReleased(mu).
void ProfileAcquired(LockStats* s, const void* mu);

/// Records the hold time for the acquisition stamped by the matching
/// ProfileAcquired on this thread. A release with no matching stamp
/// (e.g. a lock handed between threads) is silently dropped.
void ProfileReleased(const void* mu);

/// One histogram, summarized. Quantiles are approximate: each falls on
/// the upper bound of its power-of-two bucket.
struct HistSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

struct LockProfileRow {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contention = 0;
  std::uint64_t try_lock_misses = 0;
  HistSummary hold;
  HistSummary wait;
};

/// All registered locks, sorted by name. Rows with zero acquisitions and
/// zero misses are skipped.
std::vector<LockProfileRow> ProfileSnapshot();

/// Zeroes every registered row (test/bench hook; registration survives).
void ProfileReset();

#endif  // HERMES_LOCK_PROFILING

}  // namespace lock_order
}  // namespace hermes

#endif  // HERMES_COMMON_LOCK_ORDER_H_
