#ifndef HERMES_COMMON_STATUS_H_
#define HERMES_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

namespace hermes {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of status-based error handling; Hermes never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTimedOut,
  kAborted,
  kUnavailable,
  kIOError,
  kInternal,
  kNotImplemented,
};

/// Returns a human-readable name for a status code (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// A Status encodes the result of an operation that can fail.
///
/// The OK state carries no allocation; error states hold a code and a
/// message. Status is cheaply movable and copyable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  [[nodiscard]] static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

/// Propagates a non-OK status to the caller.
#define HERMES_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::hermes::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Fatal discipline check for statuses on invariant paths (rollback of a
/// write that provably succeeded, freeing records just observed live):
/// aborts with the status message. Recoverable conditions propagate a
/// Status instead; Result-returning calls pass `expr.status()`.
#define HERMES_CHECK_OK(expr)                                           \
  do {                                                                  \
    ::hermes::Status _st = (expr);                                      \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "%s:%d: status invariant failed: %s\n",      \
                   __FILE__, __LINE__, _st.ToString().c_str());         \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
/// Usage: HERMES_ASSIGN_OR_RETURN(auto v, ComputeValue());
#define HERMES_ASSIGN_OR_RETURN(lhs, expr)                    \
  HERMES_ASSIGN_OR_RETURN_IMPL(                               \
      HERMES_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define HERMES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define HERMES_CONCAT_NAME(x, y) HERMES_CONCAT_NAME_INNER(x, y)
#define HERMES_CONCAT_NAME_INNER(x, y) x##y

}  // namespace hermes

#endif  // HERMES_COMMON_STATUS_H_
