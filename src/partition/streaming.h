#ifndef HERMES_PARTITION_STREAMING_H_
#define HERMES_PARTITION_STREAMING_H_

#include <cstdint>

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// Streaming (single-pass) partitioners from the paper's related work
/// (Section 6): vertices arrive one at a time and are placed permanently
/// using only the placement of previously seen vertices. They improve
/// *initial* placement but, as the paper notes, cannot adapt to workload
/// changes afterwards — which is the gap the lightweight repartitioner
/// fills.

/// Linear Deterministic Greedy (Stanton & Kliot, KDD 2012 [32]):
/// place v on the partition holding most of v's already-placed neighbors,
/// discounted linearly by fullness: score = |N(v) ∩ P| * (1 - |P|/C).
struct LdgOptions {
  /// Per-partition capacity slack over n/alpha (1.0 = exact).
  double capacity_slack = 1.0;
  std::uint64_t seed = 3;
};

class LdgPartitioner {
 public:
  explicit LdgPartitioner(LdgOptions options = {});
  PartitionAssignment Partition(const Graph& g,
                                PartitionId num_partitions) const;

 private:
  LdgOptions options_;
};

/// FENNEL (Tsourakakis et al., WSDM 2014 [33]): interpolates between
/// neighbor attraction and a superlinear load penalty:
/// score = |N(v) ∩ P| - alpha_cost * gamma * |P|^(gamma-1).
struct FennelOptions {
  double gamma = 1.5;
  /// Load-balance slack nu (partitions capped at nu * n / alpha).
  double nu = 1.1;
  std::uint64_t seed = 3;
};

class FennelPartitioner {
 public:
  explicit FennelPartitioner(FennelOptions options = {});
  PartitionAssignment Partition(const Graph& g,
                                PartitionId num_partitions) const;

 private:
  FennelOptions options_;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_STREAMING_H_
