#include "partition/multilevel.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes {

namespace {

/// Internal weighted graph used across coarsening levels: vertex weights
/// accumulate merged vertices; edge weights accumulate merged edges.
struct WeightedGraph {
  // adj[v] = (neighbor, edge weight); neighbor lists are unsorted.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj;
  std::vector<double> vweights;

  std::size_t NumVertices() const { return adj.size(); }

  double TotalWeight() const {
    return std::accumulate(vweights.begin(), vweights.end(), 0.0);
  }

  std::size_t MemoryBytes() const {
    std::size_t bytes = vweights.size() * sizeof(double);
    for (const auto& list : adj) {
      bytes += list.size() * sizeof(std::pair<std::uint32_t, double>);
    }
    return bytes;
  }
};

WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph wg;
  const std::size_t n = g.NumVertices();
  wg.adj.resize(n);
  wg.vweights.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    wg.vweights[v] = g.VertexWeight(v);
    const auto neigh = g.Neighbors(v);
    wg.adj[v].reserve(neigh.size());
    for (VertexId w : neigh) {
      wg.adj[v].emplace_back(static_cast<std::uint32_t>(w), 1.0);
    }
  }
  return wg;
}

/// Heavy-edge matching: every vertex pairs with its unmatched neighbor of
/// maximum edge weight. Returns the coarse-vertex map and the number of
/// coarse vertices.
std::size_t HeavyEdgeMatching(const WeightedGraph& g, double max_vweight,
                              Rng* rng,
                              std::vector<std::uint32_t>* coarse_of) {
  const std::size_t n = g.NumVertices();
  constexpr std::uint32_t kUnmatched = 0xffffffffu;
  std::vector<std::uint32_t> match(n, kUnmatched);

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = v;  // fall back to matching with self
    double best_weight = -1.0;
    for (const auto& [u, w] : g.adj[v]) {
      // Standard Metis constraint: never merge past the maximum coarse
      // vertex weight, or heavy coarse vertices force unbalanced (and
      // therefore high-cut) partitions later.
      if (match[u] == kUnmatched && u != v && w > best_weight &&
          g.vweights[v] + g.vweights[u] <= max_vweight) {
        best = u;
        best_weight = w;
      }
    }
    match[v] = best;
    match[best] = v;
  }

  coarse_of->assign(n, kUnmatched);
  std::size_t next = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if ((*coarse_of)[v] != kUnmatched) continue;
    const std::uint32_t u = match[v];
    (*coarse_of)[v] = static_cast<std::uint32_t>(next);
    (*coarse_of)[u] = static_cast<std::uint32_t>(next);
    ++next;
  }
  return next;
}

WeightedGraph Contract(const WeightedGraph& g,
                       const std::vector<std::uint32_t>& coarse_of,
                       std::size_t coarse_n) {
  WeightedGraph coarse;
  coarse.adj.resize(coarse_n);
  coarse.vweights.assign(coarse_n, 0.0);

  const std::size_t n = g.NumVertices();
  for (std::uint32_t v = 0; v < n; ++v) {
    coarse.vweights[coarse_of[v]] += g.vweights[v];
  }
  // Accumulate parallel edges per coarse vertex: collect raw
  // (neighbor, weight) pairs, then sort by neighbor id and merge
  // duplicates. Sorting makes the coarse adjacency order deterministic
  // across platforms — it used to follow unordered_map iteration order,
  // which leaked into heavy-edge-matching tie-breaks (repo_lint's
  // determinism rule now bans unordered containers here).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> raw(coarse_n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = coarse_of[v];
    for (const auto& [u, w] : g.adj[v]) {
      const std::uint32_t cu = coarse_of[u];
      if (cu != cv) raw[cv].emplace_back(cu, w);
    }
  }
  for (std::uint32_t cv = 0; cv < coarse_n; ++cv) {
    auto& pairs = raw[cv];
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    auto& out = coarse.adj[cv];
    out.reserve(pairs.size());
    for (const auto& [cu, w] : pairs) {
      if (!out.empty() && out.back().first == cu) {
        out.back().second += w;
      } else {
        out.emplace_back(cu, w);
      }
    }
  }
  return coarse;
}

/// Greedy graph-growing bisection (GGGP): grows side A from a seed by
/// always absorbing the frontier vertex with the strongest connection to
/// A, until A holds ~`fraction` of the total weight. Returns side flags.
std::vector<bool> GrowBisection(const WeightedGraph& g, double fraction,
                                Rng* rng) {
  const std::size_t n = g.NumVertices();
  const double target = fraction * g.TotalWeight();
  std::vector<bool> in_a(n, false);
  std::vector<double> conn(n, 0.0);
  double weight_a = 0.0;

  // Frontier as a lazy max-heap of (connectivity, vertex) snapshots.
  std::priority_queue<std::pair<double, std::uint32_t>> frontier;
  auto seed_new_region = [&]() {
    for (std::size_t attempts = 0; attempts < n; ++attempts) {
      const std::uint32_t v = rng->Uniform(n);
      if (!in_a[v]) {
        frontier.emplace(0.0, v);
        return true;
      }
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_a[v]) {
        frontier.emplace(0.0, v);
        return true;
      }
    }
    return false;
  };

  seed_new_region();
  while (weight_a < target) {
    if (frontier.empty() && !seed_new_region()) break;
    if (frontier.empty()) break;
    const auto [snapshot_conn, v] = frontier.top();
    frontier.pop();
    if (in_a[v]) continue;
    if (snapshot_conn < conn[v]) {
      // Stale snapshot; requeue with the fresh connectivity.
      frontier.emplace(conn[v], v);
      continue;
    }
    in_a[v] = true;
    weight_a += g.vweights[v];
    for (const auto& [u, w] : g.adj[v]) {
      if (!in_a[u]) {
        conn[u] += w;
        frontier.emplace(conn[u], u);
      }
    }
  }
  return in_a;
}

/// FM-flavoured boundary refinement for a (possibly asymmetric) bisection:
/// sides have target weights fraction*total and (1-fraction)*total; moves
/// need positive gain unless the source side is overloaded.
void RefineBisection(const WeightedGraph& g, double fraction, double beta,
                     std::size_t passes, Rng* rng, std::vector<bool>* in_a) {
  const std::size_t n = g.NumVertices();
  const double total = g.TotalWeight();
  const double max_a = beta * fraction * total;
  const double max_b = beta * (1.0 - fraction) * total;

  double weight_a = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if ((*in_a)[v]) weight_a += g.vweights[v];
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t pass = 0; pass < passes; ++pass) {
    rng->Shuffle(&order);
    std::size_t moves = 0;
    for (std::uint32_t v : order) {
      const bool a_side = (*in_a)[v];
      double conn_same = 0.0;
      double conn_other = 0.0;
      for (const auto& [u, w] : g.adj[v]) {
        if ((*in_a)[u] == a_side) {
          conn_same += w;
        } else {
          conn_other += w;
        }
      }
      const double gain = conn_other - conn_same;
      const double wv = g.vweights[v];
      const double weight_b = total - weight_a;
      const bool source_overloaded = a_side ? weight_a > max_a
                                            : weight_b > max_b;
      const bool target_has_room = a_side ? (weight_b + wv <= max_b)
                                          : (weight_a + wv <= max_a);
      if (!target_has_room) continue;
      if (gain > 0.0 || source_overloaded) {
        (*in_a)[v] = !a_side;
        weight_a += a_side ? -wv : wv;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

/// Induced subgraph over `keep` (flag per vertex); fills old->new map.
WeightedGraph InducedSubgraph(const WeightedGraph& g,
                              const std::vector<bool>& keep,
                              std::vector<std::uint32_t>* old_ids) {
  const std::size_t n = g.NumVertices();
  std::vector<std::uint32_t> new_id(n, 0xffffffffu);
  old_ids->clear();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (keep[v]) {
      new_id[v] = static_cast<std::uint32_t>(old_ids->size());
      old_ids->push_back(v);
    }
  }
  WeightedGraph sub;
  sub.adj.resize(old_ids->size());
  sub.vweights.resize(old_ids->size());
  for (std::uint32_t sv = 0; sv < old_ids->size(); ++sv) {
    const std::uint32_t v = (*old_ids)[sv];
    sub.vweights[sv] = g.vweights[v];
    for (const auto& [u, w] : g.adj[v]) {
      if (keep[u]) sub.adj[sv].emplace_back(new_id[u], w);
    }
  }
  return sub;
}

/// Recursive bisection: partitions g into k parts labelled
/// offset..offset+k-1 (the classic Metis initial-partitioning strategy).
void RecursiveBisect(const WeightedGraph& g, PartitionId k,
                     PartitionId offset, double beta, std::size_t passes,
                     Rng* rng, std::vector<PartitionId>* labels_by_vertex,
                     const std::vector<std::uint32_t>& global_ids) {
  if (k <= 1 || g.NumVertices() == 0) {
    for (std::uint32_t gid : global_ids) {
      (*labels_by_vertex)[gid] = offset;
    }
    return;
  }
  const PartitionId k1 = k / 2;
  const PartitionId k2 = k - k1;
  const double fraction = static_cast<double>(k1) / static_cast<double>(k);

  // GGGP: grow + refine from several seeds and keep the best bisection
  // (cut weight of edges crossing the A/B boundary).
  auto cut_weight = [&g](const std::vector<bool>& in_a) {
    double cut = 0.0;
    for (std::uint32_t v = 0; v < g.NumVertices(); ++v) {
      if (!in_a[v]) continue;
      for (const auto& [u, w] : g.adj[v]) {
        if (!in_a[u]) cut += w;
      }
    }
    return cut;
  };
  constexpr int kBisectionTries = 4;
  std::vector<bool> in_a;
  double best_cut = std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < kBisectionTries; ++attempt) {
    std::vector<bool> candidate = GrowBisection(g, fraction, rng);
    RefineBisection(g, fraction, beta, passes, rng, &candidate);
    const double cut = cut_weight(candidate);
    if (cut < best_cut) {
      best_cut = cut;
      in_a = std::move(candidate);
    }
  }

  std::vector<std::uint32_t> a_old;
  std::vector<std::uint32_t> b_old;
  const WeightedGraph sub_a = InducedSubgraph(g, in_a, &a_old);
  std::vector<bool> in_b(in_a.size());
  for (std::size_t v = 0; v < in_a.size(); ++v) in_b[v] = !in_a[v];
  const WeightedGraph sub_b = InducedSubgraph(g, in_b, &b_old);

  std::vector<std::uint32_t> a_global(a_old.size());
  for (std::size_t i = 0; i < a_old.size(); ++i) {
    a_global[i] = global_ids[a_old[i]];
  }
  std::vector<std::uint32_t> b_global(b_old.size());
  for (std::size_t i = 0; i < b_old.size(); ++i) {
    b_global[i] = global_ids[b_old[i]];
  }
  RecursiveBisect(sub_a, k1, offset, beta, passes, rng, labels_by_vertex,
                  a_global);
  RecursiveBisect(sub_b, k2, offset + k1, beta, passes, rng,
                  labels_by_vertex, b_global);
}

/// K-way greedy boundary refinement (Fiduccia-Mattheyses flavour): moves a
/// vertex to the partition maximizing connection gain subject to the
/// balance constraint; overloaded partitions may shed with negative gain.
void Refine(const WeightedGraph& g, PartitionId alpha, double beta,
            std::size_t passes, Rng* rng, std::vector<PartitionId>* part) {
  const std::size_t n = g.NumVertices();
  const double total = g.TotalWeight();
  const double avg = total / static_cast<double>(alpha);
  const double max_weight = beta * avg;

  std::vector<double> weight(alpha, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) weight[(*part)[v]] += g.vweights[v];

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> conn(alpha, 0.0);

  for (std::size_t pass = 0; pass < passes; ++pass) {
    rng->Shuffle(&order);
    std::size_t moves = 0;
    for (std::uint32_t v : order) {
      const PartitionId s = (*part)[v];
      const double wv = g.vweights[v];
      const bool source_overloaded = weight[s] > max_weight;
      std::fill(conn.begin(), conn.end(), 0.0);
      bool boundary = false;
      for (const auto& [u, w] : g.adj[v]) {
        conn[(*part)[u]] += w;
        if ((*part)[u] != s) boundary = true;
      }
      if (!boundary && !source_overloaded) continue;

      // Best target by gain; ties prefer the lightest partition. When the
      // source is overloaded any gain is admissible (shedding).
      PartitionId best = s;
      double best_gain = source_overloaded
                             ? -std::numeric_limits<double>::infinity()
                             : 0.0;
      for (PartitionId t = 0; t < alpha; ++t) {
        if (t == s) continue;
        if (weight[t] + wv > max_weight) continue;
        const double gain = conn[t] - conn[s];
        if (gain > best_gain ||
            (gain == best_gain && best != s && weight[t] < weight[best])) {
          best = t;
          best_gain = gain;
        }
      }
      const bool worth_moving =
          best != s &&
          (source_overloaded || best_gain > 0.0 ||
           (best_gain == 0.0 && weight[best] + wv < weight[s] - wv));
      if (worth_moving) {
        weight[s] -= wv;
        weight[best] += wv;
        (*part)[v] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner(MultilevelOptions options)
    : options_(options) {
  HERMES_CHECK(options_.beta > 1.0);
}

PartitionAssignment MultilevelPartitioner::Partition(
    const Graph& g, PartitionId alpha, MultilevelStats* stats) const {
  HERMES_CHECK(alpha > 0);
  Rng rng(options_.seed);
  const std::size_t n = g.NumVertices();
  if (stats != nullptr) *stats = MultilevelStats{};

  if (n == 0 || alpha == 1) {
    return PartitionAssignment(n, alpha);
  }

  const std::size_t coarsen_until =
      options_.coarsen_until > 0
          ? options_.coarsen_until
          : std::max<std::size_t>(120, 24 * static_cast<std::size_t>(alpha));

  // --- Coarsening phase ---------------------------------------------------
  std::vector<WeightedGraph> levels;
  std::vector<std::vector<std::uint32_t>> maps;  // fine -> coarse per level
  levels.push_back(FromGraph(g));
  std::size_t peak_memory = levels.back().MemoryBytes();

  // Cap on merged vertex weight: a coarse vertex must stay well below a
  // partition's weight budget or refinement cannot rebalance it later.
  const double max_vweight =
      levels.back().TotalWeight() / (4.0 * static_cast<double>(alpha));
  while (levels.back().NumVertices() > coarsen_until &&
         levels.size() < options_.max_levels) {
    std::vector<std::uint32_t> coarse_of;
    const std::size_t coarse_n =
        HeavyEdgeMatching(levels.back(), max_vweight, &rng, &coarse_of);
    // Stop when matching no longer shrinks the graph meaningfully.
    if (coarse_n >
        static_cast<std::size_t>(0.95 * static_cast<double>(
                                            levels.back().NumVertices()))) {
      break;
    }
    WeightedGraph coarse = Contract(levels.back(), coarse_of, coarse_n);
    peak_memory += coarse.MemoryBytes();
    maps.push_back(std::move(coarse_of));
    levels.push_back(std::move(coarse));
  }

  // --- Initial partitioning: recursive bisection on the coarsest graph ----
  const WeightedGraph& coarsest = levels.back();
  std::vector<PartitionId> part(coarsest.NumVertices(), 0);
  {
    std::vector<std::uint32_t> all(coarsest.NumVertices());
    std::iota(all.begin(), all.end(), 0);
    RecursiveBisect(coarsest, alpha, 0, options_.beta,
                    options_.refinement_passes * 2, &rng, &part, all);
  }
  Refine(coarsest, alpha, options_.beta, options_.refinement_passes * 2,
         &rng, &part);

  // --- Uncoarsening + refinement -------------------------------------------
  for (std::size_t level = maps.size(); level-- > 0;) {
    const auto& coarse_of = maps[level];
    std::vector<PartitionId> fine_part(coarse_of.size());
    for (std::size_t v = 0; v < coarse_of.size(); ++v) {
      fine_part[v] = part[coarse_of[v]];
    }
    part = std::move(fine_part);
    Refine(levels[level], alpha, options_.beta, options_.refinement_passes,
           &rng, &part);
  }

  if (stats != nullptr) {
    stats->levels = levels.size();
    stats->peak_memory_bytes = peak_memory;
  }

  PartitionAssignment asg(n, alpha);
  for (VertexId v = 0; v < n; ++v) asg.Assign(v, part[v]);
  return asg;
}

}  // namespace hermes
