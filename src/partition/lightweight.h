#ifndef HERMES_PARTITION_LIGHTWEIGHT_H_
#define HERMES_PARTITION_LIGHTWEIGHT_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "partition/assignment.h"
#include "partition/aux_data.h"

namespace hermes {

class ThreadPool;

/// One logical vertex movement chosen by the repartitioner.
struct MigrationRecord {
  VertexId vertex;
  PartitionId from;
  PartitionId to;
};

/// Tunables for the lightweight repartitioner (Section 3).
struct RepartitionerOptions {
  /// Maximum allowed imbalance load factor (1 < beta < 2). A partition is
  /// overloaded above beta * avg and underloaded below (2 - beta) * avg.
  /// The Hermes default is 1.1.
  double beta = 1.1;

  /// Per-partition cap on vertices migrated per stage (the paper's k).
  /// 0 derives k from k_fraction.
  std::size_t k = 0;

  /// Used when k == 0: k = max(1, k_fraction * n). The paper recommends a
  /// small fixed fraction of the graph size.
  double k_fraction = 0.01;

  /// Safety bound; the algorithm converges far earlier (Theorem 4; < 50
  /// iterations in the paper's experiments).
  std::size_t max_iterations = 200;

  /// Two one-way stages per iteration (low->high partition IDs, then
  /// high->low) to prevent oscillation (Fig. 2). Setting this to false
  /// yields the single-stage bidirectional ablation.
  bool two_stage = true;

  /// Re-validate the balance constraints against live partition weights
  /// when a logical move is applied (candidates are selected against
  /// stage-start weights, so simultaneous migrations from many partitions
  /// can overshoot a target). The paper bounds that risk with k alone;
  /// disabling this reproduces the k-induced imbalance of Section 5.3.4
  /// (balance factor degrading from ~1.05 to ~1.16 as k grows).
  bool apply_time_balance_check = true;

  /// Stop once this many consecutive iterations neither improve the
  /// edge-cut nor leave any partition overloaded. The paper's servers run
  /// asynchronously, which breaks symmetric move cycles naturally; our
  /// deterministic batch-synchronous stages can cycle on pathological
  /// symmetric inputs (pairs of border vertices swapping forever), so the
  /// run is declared converged when the objective is quiescent and the
  /// balance constraint holds. 0 disables the heuristic (strict
  /// zero-move convergence only).
  std::size_t quiescence_window = 3;

  /// Gain threshold admitted for vertices on an overloaded partition.
  /// Algorithm 1 line 6 uses -1 (admitting gain >= 0); the prose says an
  /// overloaded partition should consider *all* vertices. When true, any
  /// gain is admitted so overloaded partitions can always shed load.
  bool overloaded_admits_any_gain = true;

  /// Record edge-cut after every iteration (costs O(m) per iteration).
  bool track_edge_cut_history = false;

  /// Worker threads for the candidate scan (Algorithm 2, lines 4-9 run
  /// independently per server; within this process they shard across a
  /// thread pool). 0/1 = serial. Results are identical either way: the
  /// scan is read-only and candidates merge in deterministic order.
  std::size_t num_threads = 0;

  /// Test hook: runs at the start of every iteration of Run(). Cluster
  /// concurrency tests park the algorithm here to prove the logical
  /// phase holds no cluster lock (readers must stay live while parked).
  std::function<void()> iteration_hook_for_test;
};

/// Outcome of a repartitioning run.
struct RepartitionResult {
  std::size_t iterations = 0;
  bool converged = false;

  /// Logical moves summed over all stages (border vertices may move more
  /// than once; only net moves are physically migrated).
  std::size_t total_logical_moves = 0;

  /// Net difference between final and initial assignment — the physical
  /// migration work list (phase two).
  std::vector<MigrationRecord> net_moves;

  std::size_t moves_per_iteration_sum() const { return total_logical_moves; }
  std::vector<std::size_t> moves_per_iteration;
  std::vector<std::size_t> edge_cut_history;  // filled when tracking enabled

  /// Network bytes of auxiliary data exchanged during phase one: each
  /// logical move ships the vertex's per-partition neighbor counters plus
  /// its weight, and each iteration that moves anything broadcasts the
  /// partition weights (alpha doubles to alpha-1 peers; a zero-move
  /// iteration leaves the weights unchanged, so nothing is sent and the
  /// final convergence-detecting iteration is free). This is the entire
  /// inter-server
  /// traffic of the repartitioning algorithm itself — the quantified
  /// "lightweight" claim; physical record movement is reported separately
  /// by the migration layer.
  std::size_t aux_bytes_exchanged = 0;

  double initial_edge_cut_fraction = 0.0;
  double final_edge_cut_fraction = 0.0;
  double initial_imbalance = 0.0;
  double final_imbalance = 0.0;
};

/// The paper's core contribution: an iterative repartitioner that uses only
/// the AuxiliaryData (neighbor counts per partition + partition weights) to
/// select vertex migrations that rebalance load and reduce edge-cut.
///
/// Each iteration runs two stages. In stage 1 vertices may only move from
/// lower-ID to higher-ID partitions; stage 2 allows only the opposite
/// direction. Within a stage every partition independently evaluates its
/// vertices with `GetTargetPartition` (Algorithm 1), keeps the top-k by
/// gain, and the chosen vertices are then moved logically (auxiliary data
/// updated; physical records untouched). The run stops when an iteration
/// makes no move (Algorithm 2 + Theorem 4).
class LightweightRepartitioner {
 public:
  explicit LightweightRepartitioner(RepartitionerOptions options = {});

  /// Candidate decision for one vertex (Algorithm 1). `stage` is 1 or 2.
  /// Returns kInvalidPartition when the vertex must stay. The chosen gain
  /// is written to *gain when a target exists.
  PartitionId GetTargetPartition(const AuxiliaryData& aux, VertexId v,
                                 double vertex_weight, PartitionId source,
                                 int stage, long* gain) const;

  /// Runs stages until convergence. Mutates `asg` and `aux` in place and
  /// returns statistics plus the physical-migration work list.
  RepartitionResult Run(const Graph& g, PartitionAssignment* asg,
                        AuxiliaryData* aux) const;

  /// Runs a single iteration (both stages); returns the number of logical
  /// moves performed. Exposed for step-by-step tests and examples.
  std::size_t RunIteration(const Graph& g, PartitionAssignment* asg,
                           AuxiliaryData* aux) const;

  const RepartitionerOptions& options() const { return options_; }

  /// Effective k for a graph of n vertices.
  std::size_t EffectiveK(std::size_t n) const;

 private:
  /// `pool` is the shared scan pool (owned by Run(), created once per run
  /// rather than per stage); nullptr means scan serially.
  std::size_t RunStage(const Graph& g, int stage, PartitionAssignment* asg,
                       AuxiliaryData* aux, ThreadPool* pool) const;
  std::size_t RunIteration(const Graph& g, PartitionAssignment* asg,
                           AuxiliaryData* aux, ThreadPool* pool) const;

  RepartitionerOptions options_;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_LIGHTWEIGHT_H_
