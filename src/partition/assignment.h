#ifndef HERMES_PARTITION_ASSIGNMENT_H_
#define HERMES_PARTITION_ASSIGNMENT_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace hermes {

/// Maps every vertex to a partition (shard). The number of partitions is
/// the paper's alpha. This is the "directory" shared by all servers.
class PartitionAssignment {
 public:
  PartitionAssignment() = default;

  /// All `n` vertices start in partition `initial`.
  PartitionAssignment(std::size_t n, PartitionId num_partitions,
                      PartitionId initial = 0)
      : part_of_(n, initial), num_partitions_(num_partitions) {
    HERMES_CHECK(num_partitions > 0);
    HERMES_CHECK(initial < num_partitions);
  }

  PartitionId PartitionOf(VertexId v) const { return part_of_[v]; }

  void Assign(VertexId v, PartitionId p) {
    HERMES_CHECK(p < num_partitions_);
    part_of_[v] = p;
  }

  /// Registers a newly created vertex (id == current size()).
  void AddVertex(PartitionId p) {
    HERMES_CHECK(p < num_partitions_);
    part_of_.push_back(p);
  }

  std::size_t size() const { return part_of_.size(); }
  PartitionId num_partitions() const { return num_partitions_; }

  const std::vector<PartitionId>& raw() const { return part_of_; }

  bool operator==(const PartitionAssignment& other) const {
    return num_partitions_ == other.num_partitions_ &&
           part_of_ == other.part_of_;
  }

 private:
  std::vector<PartitionId> part_of_;
  PartitionId num_partitions_ = 1;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_ASSIGNMENT_H_
