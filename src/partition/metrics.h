#ifndef HERMES_PARTITION_METRICS_H_
#define HERMES_PARTITION_METRICS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// Number of edges whose endpoints lie in different partitions.
std::size_t EdgeCut(const Graph& g, const PartitionAssignment& asg);

/// EdgeCut as a fraction of all edges (0 when the graph has no edges).
double EdgeCutFraction(const Graph& g, const PartitionAssignment& asg);

/// Aggregate vertex weight per partition.
std::vector<double> PartitionWeights(const Graph& g,
                                     const PartitionAssignment& asg);

/// Imbalance load factor: max partition weight divided by the average
/// partition weight (>= 1 for nonempty graphs). The paper's beta bounds it.
double ImbalanceFactor(const Graph& g, const PartitionAssignment& asg);

/// True iff every partition's weight is within [(2-beta)*avg, beta*avg].
bool IsBalanced(const Graph& g, const PartitionAssignment& asg, double beta);

/// Number of vertices assigned differently in `before` vs `after`.
std::size_t VerticesMoved(const PartitionAssignment& before,
                          const PartitionAssignment& after);

/// Number of edges with at least one endpoint that changed partition —
/// every such relationship record (and its ghost counterpart) must be
/// rewritten during physical migration (Fig. 8b's metric).
std::size_t RelationshipsTouched(const Graph& g,
                                 const PartitionAssignment& before,
                                 const PartitionAssignment& after);

/// Relabels `after`'s partitions to maximize per-vertex agreement with
/// `before` (greedy maximum-overlap matching on the confusion matrix).
/// Offline partitioners like Metis assign arbitrary labels; matching makes
/// migration-volume comparisons fair.
PartitionAssignment MatchLabels(const PartitionAssignment& before,
                                const PartitionAssignment& after);

}  // namespace hermes

#endif  // HERMES_PARTITION_METRICS_H_
