#include "partition/aux_data.h"

#include "common/logging.h"

namespace hermes {

AuxiliaryData::AuxiliaryData(const Graph& g, const PartitionAssignment& asg)
    : alpha_(asg.num_partitions()),
      counts_(g.NumVertices() * asg.num_partitions(), 0),
      weights_(asg.num_partitions(), 0.0) {
  const std::size_t n = g.NumVertices();
  HERMES_CHECK(asg.size() == n);
  for (VertexId v = 0; v < n; ++v) {
    weights_[asg.PartitionOf(v)] += g.VertexWeight(v);
    for (VertexId w : g.Neighbors(v)) {
      ++counts_[v * alpha_ + asg.PartitionOf(w)];
    }
  }
  total_weight_ = g.TotalWeight();
}

void AuxiliaryData::OnVertexAdded(PartitionId p, double w) {
  counts_.insert(counts_.end(), alpha_, 0);
  weights_[p] += w;
  total_weight_ += w;
}

void AuxiliaryData::OnEdgeAdded(VertexId u, VertexId v,
                                const PartitionAssignment& asg) {
  // A self-loop contributes a single neighbor-list entry (mirroring the
  // constructor's per-entry count), so only bump one slot when u == v.
  ++counts_[u * alpha_ + asg.PartitionOf(v)];
  if (u != v) ++counts_[v * alpha_ + asg.PartitionOf(u)];
}

void AuxiliaryData::OnEdgeRemoved(VertexId u, VertexId v,
                                  const PartitionAssignment& asg) {
  --counts_[u * alpha_ + asg.PartitionOf(v)];
  if (u != v) --counts_[v * alpha_ + asg.PartitionOf(u)];
}

void AuxiliaryData::OnVertexWeightChanged(VertexId v, double delta,
                                          const PartitionAssignment& asg) {
  weights_[asg.PartitionOf(v)] += delta;
  total_weight_ += delta;
}

void AuxiliaryData::OnVertexMigrated(const Graph& g, VertexId v,
                                     PartitionId from, PartitionId to) {
  if (from == to) return;
  const double w = g.VertexWeight(v);
  weights_[from] -= w;
  weights_[to] += w;
  for (VertexId nbr : g.Neighbors(v)) {
    --counts_[nbr * alpha_ + from];
    ++counts_[nbr * alpha_ + to];
  }
}

}  // namespace hermes
