#include "partition/lightweight.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <tuple>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "partition/metrics.h"

namespace hermes {

namespace {

double AuxImbalance(const AuxiliaryData& aux) {
  double max_w = 0.0;
  for (PartitionId p = 0; p < aux.num_partitions(); ++p) {
    max_w = std::max(max_w, aux.PartitionWeight(p));
  }
  const double avg = aux.AverageWeight();
  return avg <= 0.0 ? 1.0 : max_w / avg;
}

}  // namespace

LightweightRepartitioner::LightweightRepartitioner(
    RepartitionerOptions options)
    : options_(options) {
  HERMES_CHECK(options_.beta > 1.0 && options_.beta < 2.0);
}

std::size_t LightweightRepartitioner::EffectiveK(std::size_t n) const {
  if (options_.k > 0) return options_.k;
  const auto derived =
      static_cast<std::size_t>(options_.k_fraction * static_cast<double>(n));
  return std::max<std::size_t>(1, derived);
}

PartitionId LightweightRepartitioner::GetTargetPartition(
    const AuxiliaryData& aux, VertexId v, double vertex_weight,
    PartitionId source, int stage, long* gain) const {
  const double avg = aux.AverageWeight();
  if (avg <= 0.0) return kInvalidPartition;
  const double beta = options_.beta;

  // Rule: moving v must not underload the source partition
  // (Algorithm 1, line 2).
  if ((aux.PartitionWeight(source) - vertex_weight) / avg < 2.0 - beta) {
    return kInvalidPartition;
  }

  // Rule: either the source is overloaded, or a strictly positive gain is
  // required (Algorithm 1, lines 4-6). For an overloaded source the paper's
  // prose admits every vertex; the pseudocode's -1 sentinel admits only
  // gain >= 0 — both behaviours are supported via the option.
  long max_gain = 0;
  const bool overloaded = aux.PartitionWeight(source) / avg > beta;
  if (overloaded) {
    max_gain = options_.overloaded_admits_any_gain
                   ? std::numeric_limits<long>::min()
                   : -1;
  }

  const long d_source = static_cast<long>(aux.NeighborCount(v, source));
  PartitionId target = kInvalidPartition;
  for (PartitionId pt = 0; pt < aux.num_partitions(); ++pt) {
    if (pt == source) continue;
    if (options_.two_stage) {
      // One-way migration rule: stage 1 moves only to higher IDs, stage 2
      // only to lower IDs (oscillation prevention, Fig. 2).
      if (stage == 1 && pt <= source) continue;
      if (stage == 2 && pt >= source) continue;
    }
    const long g =
        static_cast<long>(aux.NeighborCount(v, pt)) - d_source;
    // Rule: the move must not overload the target (Algorithm 1, line 11).
    if ((aux.PartitionWeight(pt) + vertex_weight) / avg < beta &&
        g > max_gain) {
      target = pt;
      max_gain = g;
    }
  }
  if (target != kInvalidPartition && gain != nullptr) *gain = max_gain;
  return target;
}

std::size_t LightweightRepartitioner::RunStage(const Graph& g, int stage,
                                               PartitionAssignment* asg,
                                               AuxiliaryData* aux,
                                               ThreadPool* pool) const {
  const std::size_t n = g.NumVertices();
  const PartitionId alpha = asg->num_partitions();

  // Candidate selection runs against the stage-start auxiliary data: in the
  // real system each server evaluates its own vertices in parallel without
  // seeing the other servers' in-flight decisions. Collect first, apply
  // after (Algorithm 2, lines 4-9 then 10-11).
  struct Candidate {
    long gain;
    VertexId vertex;
    PartitionId target;
  };
  std::vector<std::vector<Candidate>> per_partition(alpha);
  auto scan_range = [&](VertexId begin, VertexId end,
                        std::vector<std::vector<Candidate>>* out) {
    for (VertexId v = begin; v < end; ++v) {
      const PartitionId source = asg->PartitionOf(v);
      long gain = 0;
      const PartitionId target = GetTargetPartition(
          *aux, v, g.VertexWeight(v), source, stage, &gain);
      if (target != kInvalidPartition) {
        (*out)[source].push_back(Candidate{gain, v, target});
      }
    }
  };

  if (pool != nullptr && n > 1024) {
    // Shard the read-only scan; merge shard results in shard order so the
    // outcome is identical to the serial scan. The pool is created once per
    // Run() and reused across every stage of every iteration.
    const std::size_t shards = pool->num_threads();
    const std::size_t chunk = (n + shards - 1) / shards;
    std::vector<std::vector<std::vector<Candidate>>> shard_results(
        shards, std::vector<std::vector<Candidate>>(alpha));
    for (std::size_t s = 0; s < shards; ++s) {
      const VertexId begin = static_cast<VertexId>(s * chunk);
      const VertexId end =
          static_cast<VertexId>(std::min(n, (s + 1) * chunk));
      if (begin >= end) break;
      pool->Submit([&, s, begin, end] {
        scan_range(begin, end, &shard_results[s]);
      });
    }
    pool->Wait();
    for (std::size_t s = 0; s < shards; ++s) {
      for (PartitionId p = 0; p < alpha; ++p) {
        auto& dst = per_partition[p];
        auto& src = shard_results[s][p];
        dst.insert(dst.end(), src.begin(), src.end());
      }
    }
  } else {
    scan_range(0, static_cast<VertexId>(n), &per_partition);
  }

  const std::size_t k = EffectiveK(n);
  std::size_t moves = 0;
  long applied_gain = 0;
  for (PartitionId p = 0; p < alpha; ++p) {
    auto& cands = per_partition[p];
    if (cands.size() > k) {
      // Keep the k candidates with the highest gains. Ties on gain are
      // broken by vertex id (ascending) to make the kept set — and the
      // order moves are applied in — a total order: nth_element with a
      // partial order would split a gain tie in an implementation-defined
      // way, so the final cuts could differ across standard libraries.
      const auto by_gain_then_id = [](const Candidate& a, const Candidate& b) {
        return a.gain != b.gain ? a.gain > b.gain : a.vertex < b.vertex;
      };
      std::nth_element(cands.begin(), cands.begin() + k, cands.end(),
                       by_gain_then_id);
      cands.resize(k);
      // Restore scan order within the kept set so the apply loop below
      // (whose balance re-check is order-sensitive) behaves identically
      // to the no-truncation path: selection is by gain, application is
      // by vertex id.
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.vertex < b.vertex;
                });
    }
    for (const Candidate& c : cands) {
      // Apply-time guard: candidates were selected against stage-start
      // weights, so simultaneous migrations from several partitions could
      // overshoot a target (the imbalance risk the paper bounds with k).
      // Re-checking against live weights makes the k cap a soft limit and
      // the balance constraint a hard one.
      if (options_.apply_time_balance_check) {
        const double avg = aux->AverageWeight();
        const double w = g.VertexWeight(c.vertex);
        if ((aux->PartitionWeight(c.target) + w) / avg >= options_.beta) {
          continue;
        }
        if ((aux->PartitionWeight(p) - w) / avg < 2.0 - options_.beta) {
          continue;
        }
      }
      // Logical migration: only auxiliary data and the directory move.
      aux->OnVertexMigrated(g, c.vertex, p, c.target);
      asg->Assign(c.vertex, c.target);
      applied_gain += c.gain;
      ++moves;
    }
  }
  if (moves > 0) {
    MetricsRegistry::Global().Observe("repartitioner.stage_gain_sum",
                                      static_cast<double>(applied_gain));
  }
  return moves;
}

std::size_t LightweightRepartitioner::RunIteration(const Graph& g,
                                                   PartitionAssignment* asg,
                                                   AuxiliaryData* aux,
                                                   ThreadPool* pool) const {
  if (!options_.two_stage) {
    // Ablation: one bidirectional stage per iteration (stage index 0 means
    // no direction filter in GetTargetPartition).
    return RunStage(g, 0, asg, aux, pool);
  }
  std::size_t moves = RunStage(g, 1, asg, aux, pool);
  moves += RunStage(g, 2, asg, aux, pool);
  return moves;
}

std::size_t LightweightRepartitioner::RunIteration(const Graph& g,
                                                   PartitionAssignment* asg,
                                                   AuxiliaryData* aux) const {
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && g.NumVertices() > 1024) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return RunIteration(g, asg, aux, pool.get());
}

RepartitionResult LightweightRepartitioner::Run(const Graph& g,
                                                PartitionAssignment* asg,
                                                AuxiliaryData* aux) const {
  TraceSpan span("repartitioner.run");
  auto& registry = MetricsRegistry::Global();
  Counter* const m_iterations =
      registry.GetCounter("repartitioner.iterations");
  Counter* const m_moves = registry.GetCounter("repartitioner.logical_moves");
  Counter* const m_aux_bytes =
      registry.GetCounter("repartitioner.aux_bytes_exchanged");

  RepartitionResult result;
  const PartitionAssignment initial = *asg;
  result.initial_edge_cut_fraction = EdgeCutFraction(g, *asg);
  result.initial_imbalance = AuxImbalance(*aux);

  // One scan pool for the whole run; RunStage previously constructed and
  // joined a fresh pool per stage, paying thread create/teardown up to
  // 2 * max_iterations times.
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && g.NumVertices() > 1024) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  std::size_t best_cut = EdgeCut(g, *asg);
  double best_imbalance = AuxImbalance(*aux);
  std::size_t stalled_iterations = 0;
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.iteration_hook_for_test) options_.iteration_hook_for_test();
    const std::size_t moves = RunIteration(g, asg, aux, pool.get());
    ++result.iterations;
    result.total_logical_moves += moves;
    result.moves_per_iteration.push_back(moves);
    const std::size_t alpha = asg->num_partitions();
    // A zero-move iteration changes no partition weight, so nothing is
    // broadcast; the convergence-detecting final iteration costs no bytes.
    std::size_t iter_bytes =
        moves * (alpha * sizeof(std::uint32_t) + sizeof(double));
    if (moves > 0) iter_bytes += alpha * (alpha - 1) * sizeof(double);
    result.aux_bytes_exchanged += iter_bytes;
    m_iterations->Increment();
    m_moves->Increment(moves);
    m_aux_bytes->Increment(iter_bytes);
    registry.Observe("repartitioner.iteration_moves",
                     static_cast<double>(moves));
    const std::size_t cut = EdgeCut(g, *asg);
    if (options_.track_edge_cut_history) {
      result.edge_cut_history.push_back(cut);
    }
    if (moves == 0) {
      result.converged = true;
      break;
    }
    // Quiescence detection (see RepartitionerOptions::quiescence_window):
    // an iteration counts as progress when it improves either objective —
    // the imbalance factor or the edge-cut.
    bool improved = false;
    const double imbalance = AuxImbalance(*aux);
    if (imbalance < best_imbalance - 1e-12) {
      best_imbalance = imbalance;
      improved = true;
    }
    if (cut < best_cut) {
      best_cut = cut;
      improved = true;
    }
    if (options_.quiescence_window > 0) {
      if (improved) {
        stalled_iterations = 0;
      } else if (++stalled_iterations >= options_.quiescence_window) {
        result.converged = true;
        break;
      }
    }
  }

  result.final_edge_cut_fraction = EdgeCutFraction(g, *asg);
  result.final_imbalance = AuxImbalance(*aux);
  for (VertexId v = 0; v < asg->size(); ++v) {
    if (initial.PartitionOf(v) != asg->PartitionOf(v)) {
      result.net_moves.push_back(
          MigrationRecord{v, initial.PartitionOf(v), asg->PartitionOf(v)});
    }
  }
  return result;
}

}  // namespace hermes
