#ifndef HERMES_PARTITION_AUX_DATA_H_
#define HERMES_PARTITION_AUX_DATA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// The repartitioner's auxiliary data (Section 2.2 / 3.1 of the paper):
///
///   * for each vertex v, alpha integers d_v(0..alpha-1) counting v's
///     neighbors hosted in each partition, and
///   * the aggregate vertex weight of every partition.
///
/// This is all the repartitioner ever reads — it never touches adjacency
/// lists or property payloads, which is what makes it "lightweight"
/// (Theorem 2: amortized n + Theta(alpha) integers per partition).
///
/// The data is maintained incrementally as user requests execute: adding an
/// edge increments two counters; a read bumps a vertex weight; migrating a
/// vertex shifts one counter on each of its neighbors.
///
/// Concurrency: NOT internally synchronized — the counters sit on the
/// repartitioner's hot path and a per-call mutex would defeat Theorem 2's
/// lightweight claim. Every mutation hook and every read during an active
/// repartition must be externally serialized; in this repo that external
/// capability is HermesCluster::topo_mu_ (always itself held under the
/// cluster's shared directory lock), and the repartitioner's logical
/// phase runs on a private copy under the directory lock held exclusively
/// (parallel candidate scans in the repartitioner are read-only and
/// joined before the next mutation). See DESIGN.md "Concurrency
/// invariants".
class AuxiliaryData {
 public:
  AuxiliaryData() = default;

  /// Builds counts and weights from scratch (initial load).
  AuxiliaryData(const Graph& g, const PartitionAssignment& asg);

  PartitionId num_partitions() const { return alpha_; }
  std::size_t num_vertices() const { return alpha_ == 0 ? 0 : counts_.size() / alpha_; }

  /// d_v(p): number of neighbors of v hosted in partition p.
  std::uint32_t NeighborCount(VertexId v, PartitionId p) const {
    return counts_[v * alpha_ + p];
  }

  double PartitionWeight(PartitionId p) const { return weights_[p]; }
  double TotalWeight() const { return total_weight_; }
  double AverageWeight() const {
    return total_weight_ / static_cast<double>(alpha_);
  }

  /// Imbalance factor of partition p (weight / average weight).
  double Imbalance(PartitionId p) const {
    const double avg = AverageWeight();
    return avg <= 0.0 ? 1.0 : weights_[p] / avg;
  }

  // --- Incremental maintenance hooks -------------------------------------

  /// A new vertex was created in partition p with weight w.
  void OnVertexAdded(PartitionId p, double w);

  /// Edge {u, v} was created; counters of both endpoints are bumped.
  void OnEdgeAdded(VertexId u, VertexId v, const PartitionAssignment& asg);

  /// Edge {u, v} was removed.
  void OnEdgeRemoved(VertexId u, VertexId v, const PartitionAssignment& asg);

  /// Vertex v's popularity weight changed by `delta` (e.g. read traffic).
  void OnVertexWeightChanged(VertexId v, double delta,
                             const PartitionAssignment& asg);

  /// Vertex v (with its current weight `w` and neighbor list from `g`)
  /// logically moved from partition `from` to `to`. Updates v's neighbors'
  /// counters and the partition weights. The caller updates `asg`.
  void OnVertexMigrated(const Graph& g, VertexId v, PartitionId from,
                        PartitionId to);

  /// Bytes of auxiliary state (Theorem 2 accounting).
  std::size_t MemoryBytes() const {
    return counts_.size() * sizeof(std::uint32_t) +
           weights_.size() * sizeof(double);
  }

 private:
  PartitionId alpha_ = 0;
  std::vector<std::uint32_t> counts_;  // n * alpha, row-major by vertex
  std::vector<double> weights_;        // per-partition aggregate weight
  double total_weight_ = 0.0;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_AUX_DATA_H_
