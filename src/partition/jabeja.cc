#include "partition/jabeja.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace hermes {

namespace {

/// Number of v's neighbors colored c.
std::size_t DegreeInColor(const Graph& g, const PartitionAssignment& asg,
                          VertexId v, PartitionId c) {
  std::size_t d = 0;
  for (VertexId u : g.Neighbors(v)) {
    if (asg.PartitionOf(u) == c) ++d;
  }
  return d;
}

}  // namespace

JabejaPartitioner::JabejaPartitioner(JabejaOptions options)
    : options_(options) {}

PartitionAssignment JabejaPartitioner::Partition(
    const Graph& g, PartitionId num_partitions) const {
  Rng rng(options_.seed);
  PartitionAssignment asg(g.NumVertices(), num_partitions);
  // Uniform random initial coloring (balanced in expectation; we deal
  // colors round-robin over a shuffled order to balance exactly).
  std::vector<VertexId> order(g.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    asg.Assign(order[i], static_cast<PartitionId>(i % num_partitions));
  }
  Improve(g, &asg);
  return asg;
}

void JabejaPartitioner::Improve(const Graph& g,
                                PartitionAssignment* asg) const {
  Rng rng(options_.seed ^ 0x5851f42d4c957f2dULL);
  const std::size_t n = g.NumVertices();
  if (n == 0) return;
  const double a = options_.exponent;

  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);

  double temperature = options_.initial_temperature;
  const double cooling =
      options_.rounds > 1
          ? (options_.initial_temperature - 1.0) /
                static_cast<double>(options_.rounds - 1)
          : 0.0;

  for (std::size_t round = 0; round < options_.rounds; ++round) {
    rng.Shuffle(&order);
    std::size_t swaps = 0;
    for (VertexId p : order) {
      const PartitionId cp = asg->PartitionOf(p);
      const double dp_own = static_cast<double>(DegreeInColor(g, *asg, p, cp));

      // Candidate partners: neighbors first, then a random sample.
      VertexId best_partner = kInvalidVertex;
      double best_benefit = 0.0;
      auto consider = [&](VertexId q) {
        const PartitionId cq = asg->PartitionOf(q);
        if (cq == cp || q == p) return;
        const double dp_new =
            static_cast<double>(DegreeInColor(g, *asg, p, cq));
        const double dq_own =
            static_cast<double>(DegreeInColor(g, *asg, q, cq));
        const double dq_new =
            static_cast<double>(DegreeInColor(g, *asg, q, cp));
        const double before = std::pow(dp_own, a) + std::pow(dq_own, a);
        const double after = std::pow(dp_new, a) + std::pow(dq_new, a);
        if (after * temperature > before && after - before > best_benefit) {
          best_partner = q;
          best_benefit = after - before;
        }
      };

      for (VertexId q : g.Neighbors(p)) consider(q);
      if (best_partner == kInvalidVertex) {
        for (std::size_t s = 0; s < options_.sample_size; ++s) {
          consider(rng.Uniform(n));
        }
      }

      if (best_partner != kInvalidVertex) {
        const PartitionId cq = asg->PartitionOf(best_partner);
        asg->Assign(p, cq);
        asg->Assign(best_partner, cp);
        ++swaps;
      }
    }
    temperature = std::max(1.0, temperature - cooling);
    if (swaps == 0 && temperature <= 1.0) break;
  }
}

}  // namespace hermes
