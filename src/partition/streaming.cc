#include "partition/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes {

namespace {

/// Counts already-placed neighbors of v per partition.
void NeighborCounts(const Graph& g, const std::vector<PartitionId>& part,
                    VertexId v, std::vector<std::size_t>* counts) {
  std::fill(counts->begin(), counts->end(), 0);
  for (VertexId w : g.Neighbors(v)) {
    if (part[w] != kInvalidPartition) ++(*counts)[part[w]];
  }
}

std::vector<VertexId> StreamOrder(std::size_t n, std::uint64_t seed) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  return order;
}

}  // namespace

LdgPartitioner::LdgPartitioner(LdgOptions options) : options_(options) {
  HERMES_CHECK(options_.capacity_slack >= 1.0);
}

PartitionAssignment LdgPartitioner::Partition(
    const Graph& g, PartitionId alpha) const {
  const std::size_t n = g.NumVertices();
  const double capacity = options_.capacity_slack *
                          static_cast<double>(n) /
                          static_cast<double>(alpha);
  std::vector<PartitionId> part(n, kInvalidPartition);
  std::vector<std::size_t> size(alpha, 0);
  std::vector<std::size_t> counts(alpha, 0);

  for (VertexId v : StreamOrder(n, options_.seed)) {
    NeighborCounts(g, part, v, &counts);
    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId p = 0; p < alpha; ++p) {
      const double fullness =
          static_cast<double>(size[p]) / capacity;
      if (fullness >= 1.0) continue;  // at capacity
      const double score =
          static_cast<double>(counts[p]) * (1.0 - fullness);
      const bool better =
          score > best_score ||
          (score == best_score && size[p] < size[best]);
      if (better) {
        best = p;
        best_score = score;
      }
    }
    if (best_score == -std::numeric_limits<double>::infinity()) {
      // All partitions full (slack = 1.0 rounding): take the smallest.
      best = static_cast<PartitionId>(
          std::min_element(size.begin(), size.end()) - size.begin());
    }
    part[v] = best;
    ++size[best];
  }

  PartitionAssignment asg(n, alpha);
  for (VertexId v = 0; v < n; ++v) asg.Assign(v, part[v]);
  return asg;
}

FennelPartitioner::FennelPartitioner(FennelOptions options)
    : options_(options) {
  HERMES_CHECK(options_.gamma > 1.0);
  HERMES_CHECK(options_.nu >= 1.0);
}

PartitionAssignment FennelPartitioner::Partition(
    const Graph& g, PartitionId alpha) const {
  const std::size_t n = g.NumVertices();
  const std::size_t m = g.NumEdges();
  // FENNEL's interpolation constant: alpha_cost = sqrt(k) * m / n^gamma.
  const double alpha_cost =
      std::sqrt(static_cast<double>(alpha)) * static_cast<double>(m) /
      std::pow(static_cast<double>(std::max<std::size_t>(n, 1)),
               options_.gamma);
  const double capacity = options_.nu * static_cast<double>(n) /
                          static_cast<double>(alpha);

  std::vector<PartitionId> part(n, kInvalidPartition);
  std::vector<std::size_t> size(alpha, 0);
  std::vector<std::size_t> counts(alpha, 0);

  for (VertexId v : StreamOrder(n, options_.seed)) {
    NeighborCounts(g, part, v, &counts);
    PartitionId best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (PartitionId p = 0; p < alpha; ++p) {
      if (static_cast<double>(size[p]) + 1.0 > capacity) continue;
      const double penalty =
          alpha_cost * options_.gamma *
          std::pow(static_cast<double>(size[p]),
                   options_.gamma - 1.0);
      const double score = static_cast<double>(counts[p]) - penalty;
      const bool better =
          score > best_score ||
          (score == best_score && size[p] < size[best]);
      if (better) {
        best = p;
        best_score = score;
      }
    }
    if (best_score == -std::numeric_limits<double>::infinity()) {
      best = static_cast<PartitionId>(
          std::min_element(size.begin(), size.end()) - size.begin());
    }
    part[v] = best;
    ++size[best];
  }

  PartitionAssignment asg(n, alpha);
  for (VertexId v = 0; v < n; ++v) asg.Assign(v, part[v]);
  return asg;
}

}  // namespace hermes
