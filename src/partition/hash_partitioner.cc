#include "partition/hash_partitioner.h"

namespace hermes {

namespace {
// SplitMix64 finalizer: a high-quality 64-bit mixer.
std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

PartitionId HashPartitioner::PartitionFor(VertexId v,
                                          PartitionId num_partitions) const {
  return static_cast<PartitionId>(Mix(v + 0x9e3779b97f4a7c15ULL * (seed_ + 1)) %
                                  num_partitions);
}

PartitionAssignment HashPartitioner::Partition(
    const Graph& g, PartitionId num_partitions) const {
  PartitionAssignment asg(g.NumVertices(), num_partitions);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    asg.Assign(v, PartitionFor(v, num_partitions));
  }
  return asg;
}

}  // namespace hermes
