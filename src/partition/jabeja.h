#ifndef HERMES_PARTITION_JABEJA_H_
#define HERMES_PARTITION_JABEJA_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// Options for JA-BE-JA (Rahimian et al., SASO 2013), discussed as related
/// work in Section 6 of the Hermes paper.
struct JabejaOptions {
  /// Rounds of local search (each round every vertex attempts one swap).
  std::size_t rounds = 100;

  /// Energy exponent (the JA-BE-JA paper's alpha; 2 is its default).
  double exponent = 2.0;

  /// Simulated-annealing start temperature (decays linearly to 1).
  double initial_temperature = 2.0;

  /// Random vertices examined when no neighbor swap helps.
  std::size_t sample_size = 6;

  std::uint64_t seed = 7;
};

/// Distributed swap-based partitioner without global knowledge: starts from
/// a uniform random coloring and greedily *swaps* colors between vertex
/// pairs, which preserves the per-color vertex counts exactly. As the
/// Hermes paper notes, this guarantees balance only under fixed uniform
/// vertex weights — it cannot rebalance popularity skew, which is the case
/// Hermes targets. Implemented as a comparison baseline.
class JabejaPartitioner {
 public:
  explicit JabejaPartitioner(JabejaOptions options = {});

  /// Runs local search starting from a uniform random color assignment.
  PartitionAssignment Partition(const Graph& g,
                                PartitionId num_partitions) const;

  /// Improves a provided assignment in place (counts per color preserved).
  void Improve(const Graph& g, PartitionAssignment* asg) const;

 private:
  JabejaOptions options_;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_JABEJA_H_
