#ifndef HERMES_PARTITION_MULTILEVEL_H_
#define HERMES_PARTITION_MULTILEVEL_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// Tunables for the multilevel partitioner.
struct MultilevelOptions {
  /// Balance tolerance enforced during initial partitioning/refinement:
  /// every partition weight stays <= beta * average.
  double beta = 1.05;

  /// Coarsening stops when the graph has at most this many vertices
  /// (0 derives max(120, 24 * alpha)).
  std::size_t coarsen_until = 0;

  /// Hard cap on coarsening levels.
  std::size_t max_levels = 40;

  /// Greedy refinement passes per level.
  std::size_t refinement_passes = 8;

  std::uint64_t seed = 42;
};

/// Statistics of the last run, for the memory comparison in Section 5.3
/// (Metis memory scales with the number of relationships and coarsening
/// stages; the lightweight repartitioner scales with vertices).
struct MultilevelStats {
  std::size_t levels = 0;
  std::size_t peak_memory_bytes = 0;
};

/// From-scratch Metis-equivalent offline partitioner: heavy-edge-matching
/// coarsening, greedy region-growing initial partitioning, and k-way
/// Fiduccia-Mattheyses-style boundary refinement at every level — the
/// family of multilevel algorithms [18, 19, 30, 6] the paper uses as the
/// static "gold standard". Supports vertex weights (popularity), matching
/// the paper's use of Metis with custom weights as a secondary goal.
class MultilevelPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options = {});

  /// Produces an alpha-way partitioning of g. This is a *global* algorithm:
  /// it reads the entire graph (the cost the lightweight repartitioner
  /// avoids). `stats` (optional) receives level/memory accounting.
  PartitionAssignment Partition(const Graph& g, PartitionId num_partitions,
                                MultilevelStats* stats = nullptr) const;

 private:
  MultilevelOptions options_;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_MULTILEVEL_H_
