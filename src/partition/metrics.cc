#include "partition/metrics.h"

#include <algorithm>
#include <limits>

namespace hermes {

std::size_t EdgeCut(const Graph& g, const PartitionAssignment& asg) {
  std::size_t cut = 0;
  const std::size_t n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId pv = asg.PartitionOf(v);
    for (VertexId w : g.Neighbors(v)) {
      if (w > v && asg.PartitionOf(w) != pv) ++cut;
    }
  }
  return cut;
}

double EdgeCutFraction(const Graph& g, const PartitionAssignment& asg) {
  const std::size_t m = g.NumEdges();
  if (m == 0) return 0.0;
  return static_cast<double>(EdgeCut(g, asg)) / static_cast<double>(m);
}

std::vector<double> PartitionWeights(const Graph& g,
                                     const PartitionAssignment& asg) {
  std::vector<double> weights(asg.num_partitions(), 0.0);
  const std::size_t n = g.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    weights[asg.PartitionOf(v)] += g.VertexWeight(v);
  }
  return weights;
}

double ImbalanceFactor(const Graph& g, const PartitionAssignment& asg) {
  const auto weights = PartitionWeights(g, asg);
  const double avg = g.TotalWeight() / static_cast<double>(weights.size());
  if (avg <= 0.0) return 1.0;
  const double max_w = *std::max_element(weights.begin(), weights.end());
  return max_w / avg;
}

bool IsBalanced(const Graph& g, const PartitionAssignment& asg, double beta) {
  const auto weights = PartitionWeights(g, asg);
  const double avg = g.TotalWeight() / static_cast<double>(weights.size());
  if (avg <= 0.0) return true;
  for (double w : weights) {
    if (w > beta * avg) return false;
    if (w < (2.0 - beta) * avg) return false;
  }
  return true;
}

std::size_t VerticesMoved(const PartitionAssignment& before,
                          const PartitionAssignment& after) {
  const std::size_t n = std::min(before.size(), after.size());
  std::size_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (before.PartitionOf(v) != after.PartitionOf(v)) ++moved;
  }
  return moved;
}

std::size_t RelationshipsTouched(const Graph& g,
                                 const PartitionAssignment& before,
                                 const PartitionAssignment& after) {
  std::size_t touched = 0;
  const std::size_t n = std::min({g.NumVertices(), before.size(), after.size()});
  for (VertexId v = 0; v < n; ++v) {
    const bool v_moved = before.PartitionOf(v) != after.PartitionOf(v);
    for (VertexId w : g.Neighbors(v)) {
      if (w > v && w < n) {
        const bool w_moved = before.PartitionOf(w) != after.PartitionOf(w);
        if (v_moved || w_moved) ++touched;
      }
    }
  }
  return touched;
}

PartitionAssignment MatchLabels(const PartitionAssignment& before,
                                const PartitionAssignment& after) {
  const PartitionId alpha = after.num_partitions();
  const std::size_t n = std::min(before.size(), after.size());

  // Confusion matrix: overlap[a][b] = #vertices in after-partition a and
  // before-partition b.
  std::vector<std::vector<std::size_t>> overlap(
      alpha, std::vector<std::size_t>(before.num_partitions(), 0));
  for (VertexId v = 0; v < n; ++v) {
    ++overlap[after.PartitionOf(v)][before.PartitionOf(v)];
  }

  // Greedy maximum matching: repeatedly pick the largest remaining overlap.
  // The relabeling must stay a permutation of [0, alpha): a before-label
  // >= alpha cannot be used directly (and must not wrap onto a taken id),
  // so such matches consume their row/column but get a label later, from
  // the unused pool.
  std::vector<PartitionId> relabel(alpha, kInvalidPartition);
  std::vector<bool> after_used(alpha, false);
  std::vector<bool> before_used(before.num_partitions(), false);
  std::vector<bool> label_used(alpha, false);
  for (PartitionId round = 0; round < alpha; ++round) {
    std::size_t best = 0;
    PartitionId best_a = kInvalidPartition;
    PartitionId best_b = kInvalidPartition;
    for (PartitionId a = 0; a < alpha; ++a) {
      if (after_used[a]) continue;
      for (PartitionId b = 0; b < before.num_partitions(); ++b) {
        if (before_used[b]) continue;
        if (overlap[a][b] >= best &&
            (best_a == kInvalidPartition || overlap[a][b] > best)) {
          best = overlap[a][b];
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == kInvalidPartition || best_b == kInvalidPartition) break;
    if (best_b < alpha) {
      relabel[best_a] = best_b;
      label_used[best_b] = true;
    }
    after_used[best_a] = true;
    before_used[best_b] = true;
  }
  // Unmatched after-partitions (possible only when partition counts
  // differ) take unused labels, keeping their own id when it is free.
  for (PartitionId a = 0; a < alpha; ++a) {
    if (relabel[a] == kInvalidPartition && !label_used[a]) {
      relabel[a] = a;
      label_used[a] = true;
    }
  }
  PartitionId next_free = 0;
  for (PartitionId a = 0; a < alpha; ++a) {
    if (relabel[a] != kInvalidPartition) continue;
    while (label_used[next_free]) ++next_free;
    relabel[a] = next_free;
    label_used[next_free] = true;
  }

  PartitionAssignment result(after.size(), alpha);
  for (VertexId v = 0; v < after.size(); ++v) {
    result.Assign(v, relabel[after.PartitionOf(v)]);
  }
  return result;
}

}  // namespace hermes
