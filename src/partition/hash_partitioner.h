#ifndef HERMES_PARTITION_HASH_PARTITIONER_H_
#define HERMES_PARTITION_HASH_PARTITIONER_H_

#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// Random hash-based partitioning — the de-facto standard baseline
/// (Section 5.3). Decentralized, vertex-count balanced, oblivious to graph
/// structure, so its edge-cut approaches (alpha-1)/alpha of all edges.
class HashPartitioner {
 public:
  explicit HashPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  PartitionId PartitionFor(VertexId v, PartitionId num_partitions) const;

  PartitionAssignment Partition(const Graph& g,
                                PartitionId num_partitions) const;

 private:
  std::uint64_t seed_;
};

}  // namespace hermes

#endif  // HERMES_PARTITION_HASH_PARTITIONER_H_
