/// Request/reply bus over a Transport (DESIGN.md §12). Call() stamps a
/// fresh request id, sends the encoded frame, and blocks until the
/// matching reply frame arrives on this bus's own endpoint or the call
/// deadline passes — a timeout surfaces as kUnavailable ("retryable"),
/// never a hang, which is what the delivery-fault tests pin down.
/// Replies are matched purely by request id, so duplicated or reordered
/// frames at the transport layer cannot mispair a call: stale and
/// duplicate replies are counted and dropped.
#ifndef HERMES_NET_BUS_H_
#define HERMES_NET_BUS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/transport.h"

namespace hermes {

class MessageBus {
 public:
  struct Options {
    /// How long Call() waits for the reply before returning
    /// kUnavailable.
    std::uint64_t call_timeout_us = 30'000'000;
  };

  /// The bus does not own `transport`; it must outlive the bus.
  MessageBus(Transport* transport, EndpointId self, Options options);

  /// Opens this bus's reply endpoint on the transport.
  [[nodiscard]] Status Start() EXCLUDES(mu_);

  /// Sends `request` to `dst` and waits for the matching reply.
  /// `request.payload` must be set; the routing header is filled in
  /// here. Returns the transport error, the encode error, or
  /// kUnavailable on reply timeout / bus shutdown.
  [[nodiscard]] Result<Envelope> Call(EndpointId dst, Envelope request)
      EXCLUDES(mu_);

  /// Fails every pending and future Call with kUnavailable. Does not
  /// touch the transport (the owner shuts that down separately).
  void Shutdown() EXCLUDES(mu_);

  EndpointId endpoint() const { return self_; }

 private:
  void OnFrame(std::string frame) EXCLUDES(mu_);

  // audit:allow(guard, not owned; Transport implementations self-synchronize)
  Transport* const transport_;
  const EndpointId self_;
  const Options options_;
  mutable Mutex mu_{"msg.bus", lock_order::kRankMsgBus};
  CondVar reply_cv_;
  std::uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  /// Calls that have been issued and not yet completed.
  std::set<std::uint64_t> waiting_ GUARDED_BY(mu_);
  /// Replies delivered but not yet claimed by their caller.
  std::map<std::uint64_t, Envelope> done_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  Counter* const m_calls_;
  Counter* const m_timeouts_;
  Counter* const m_decode_errors_;
  Counter* const m_stale_replies_;
};

}  // namespace hermes

#endif  // HERMES_NET_BUS_H_
