/// Request/reply bus over a Transport (DESIGN.md §12). Call() stamps a
/// fresh request id, sends the encoded frame, and blocks until the
/// matching reply frame arrives on this bus's own endpoint or the call
/// deadline passes — a timeout surfaces as kUnavailable ("retryable"),
/// never a hang, which is what the delivery-fault tests pin down.
/// Replies are matched purely by request id, so duplicated or reordered
/// frames at the transport layer cannot mispair a call: stale and
/// duplicate replies are counted and dropped.
///
/// Retries are idempotent by construction: a Call that times out or hits
/// a retryable send error resends the SAME request id (never a fresh
/// one), with bounded attempts and exponential, deterministically
/// jittered backoff. Servers deduplicate on (src, request_id) and replay
/// the cached reply, which upgrades mutations from at-most-once to
/// exactly-once under message loss (the exactly-once contract, DESIGN.md
/// §12). tools/lint.py enforces that no retry loop outside this class
/// mints request ids.
#ifndef HERMES_NET_BUS_H_
#define HERMES_NET_BUS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "net/transport.h"

namespace hermes {

class MessageBus {
 public:
  struct Options {
    /// How long one attempt waits for the reply before timing out (and,
    /// if attempts remain, resending the same token).
    std::uint64_t call_timeout_us = 30'000'000;
    /// Total delivery attempts per Call (0 behaves as 1). Every attempt
    /// reuses the request id minted on the first, so server-side dedup
    /// makes retried mutations exactly-once.
    std::uint32_t max_attempts = 3;
    /// Backoff before the 2nd attempt; doubles each further attempt,
    /// plus a deterministic jitter in [0, backoff) seeded from
    /// `retry_jitter_seed`, the request id, and the attempt number. The
    /// wait parks on the reply condvar, so a straggler reply completes
    /// the call mid-backoff.
    std::uint64_t retry_backoff_us = 1'000;
    std::uint64_t retry_jitter_seed = 0x48455253u;  // "HERS"
    /// First request id this bus mints. HermesCluster::Recover() sets it
    /// above the highest idempotency token recovered from any WAL, so a
    /// fresh post-recovery call can never collide with a recovered
    /// token and be answered from stale dedup state.
    std::uint64_t first_request_id = 1;
  };

  /// The bus does not own `transport`; it must outlive the bus.
  MessageBus(Transport* transport, EndpointId self, Options options);

  /// Opens this bus's reply endpoint on the transport.
  [[nodiscard]] Status Start() EXCLUDES(mu_);

  /// Sends `request` to `dst` and waits for the matching reply.
  /// `request.payload` must be set; the routing header is filled in
  /// here. Returns the transport error, the encode error, or
  /// kUnavailable on reply timeout / bus shutdown.
  [[nodiscard]] Result<Envelope> Call(EndpointId dst, Envelope request)
      EXCLUDES(mu_);

  /// Fails every pending and future Call with kUnavailable. Does not
  /// touch the transport (the owner shuts that down separately).
  void Shutdown() EXCLUDES(mu_);

  EndpointId endpoint() const { return self_; }

 private:
  enum class WaitOutcome { kReply, kShutdown, kTimeout };

  void OnFrame(std::string frame) EXCLUDES(mu_);

  /// Blocks until the reply for `id` arrives (claims it into `*out`),
  /// the bus shuts down, or `deadline` passes. On kTimeout the id stays
  /// in `waiting_` so a later attempt — or a straggler reply — can still
  /// complete the call.
  [[nodiscard]] WaitOutcome WaitForReply(
      std::uint64_t id, std::chrono::steady_clock::time_point deadline,
      Envelope* out) EXCLUDES(mu_);

  /// Exponential backoff with deterministic jitter before attempt
  /// `attempt` (>= 1) of request `id`.
  [[nodiscard]] std::uint64_t BackoffUs(std::uint32_t attempt,
                                        std::uint64_t id) const;

  // audit:allow(guard, not owned; Transport implementations self-synchronize)
  Transport* const transport_;
  const EndpointId self_;
  const Options options_;
  mutable Mutex mu_{"msg.bus", lock_order::kRankMsgBus};
  CondVar reply_cv_;
  std::uint64_t next_request_id_ GUARDED_BY(mu_);
  /// Calls that have been issued and not yet completed.
  std::set<std::uint64_t> waiting_ GUARDED_BY(mu_);
  /// Replies delivered but not yet claimed by their caller.
  std::map<std::uint64_t, Envelope> done_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  Counter* const m_calls_;
  Counter* const m_timeouts_;
  Counter* const m_decode_errors_;
  Counter* const m_stale_replies_;
  Counter* const m_retries_;
};

}  // namespace hermes

#endif  // HERMES_NET_BUS_H_
