#include "net/wire.h"

#include <array>

namespace hermes {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WireReader::ReadU16(std::uint16_t* out) {
  HERMES_RETURN_NOT_OK(Need(2));
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)])
        << (8 * i));
  }
  pos_ += 2;
  *out = v;
  return Status::OK();
}

Status WireReader::ReadU32(std::uint32_t* out) {
  HERMES_RETURN_NOT_OK(Need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status WireReader::ReadU64(std::uint64_t* out) {
  HERMES_RETURN_NOT_OK(Need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(buf_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status WireReader::ReadBool(bool* out) {
  std::uint8_t v = 0;
  HERMES_RETURN_NOT_OK(ReadU8(&v));
  if (v > 1) {
    return Status::InvalidArgument("wire: bool byte out of range");
  }
  *out = v != 0;
  return Status::OK();
}

Status WireReader::ReadF64(double* out) {
  std::uint64_t bits = 0;
  HERMES_RETURN_NOT_OK(this->ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status WireReader::ReadString(std::string* out) {
  std::uint32_t len = 0;
  HERMES_RETURN_NOT_OK(this->ReadU32(&len));
  if (len > remaining()) {
    return Status::OutOfRange("wire: string length exceeds buffer");
  }
  out->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::ReadCount(std::size_t min_elem_bytes, std::uint32_t* out) {
  std::uint32_t count = 0;
  HERMES_RETURN_NOT_OK(this->ReadU32(&count));
  if (min_elem_bytes > 0 && count > remaining() / min_elem_bytes) {
    return Status::OutOfRange("wire: element count exceeds buffer");
  }
  *out = count;
  return Status::OK();
}

void PutStatus(const Status& s, WireWriter* w) {
  w->PutU8(static_cast<std::uint8_t>(s.code()));
  w->PutString(s.message());
}

[[nodiscard]] Status ReadStatus(WireReader* r, Status* out) {
  std::uint8_t code = 0;
  std::string msg;
  HERMES_RETURN_NOT_OK(r->ReadU8(&code));
  HERMES_RETURN_NOT_OK(r->ReadString(&msg));
  if (code > static_cast<std::uint8_t>(StatusCode::kNotImplemented)) {
    return Status::InvalidArgument("wire: unknown status code");
  }
  if (code == 0) {
    *out = Status::OK();
  } else {
    *out = Status(static_cast<StatusCode>(code), std::move(msg));
  }
  return Status::OK();
}

}  // namespace hermes
