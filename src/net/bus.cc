#include "net/bus.h"

#include <chrono>
#include <utility>

namespace hermes {

MessageBus::MessageBus(Transport* transport, EndpointId self, Options options)
    : transport_(transport),
      self_(self),
      options_(options),
      m_calls_(MetricsRegistry::Global().GetCounter("msg.calls")),
      m_timeouts_(MetricsRegistry::Global().GetCounter("msg.timeouts")),
      m_decode_errors_(
          MetricsRegistry::Global().GetCounter("msg.decode_errors")),
      m_stale_replies_(
          MetricsRegistry::Global().GetCounter("msg.stale_replies")) {}

Status MessageBus::Start() {
  return transport_->OpenEndpoint(
      self_, [this](std::string frame) { OnFrame(std::move(frame)); });
}

Result<Envelope> MessageBus::Call(EndpointId dst, Envelope request) {
  request.src = self_;
  request.dst = dst;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Unavailable("message bus: shut down");
    }
    request.request_id = next_request_id_++;
    waiting_.insert(request.request_id);
  }
  const std::uint64_t id = request.request_id;
  auto cleanup = [this, id]() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    waiting_.erase(id);
    done_.erase(id);
  };
  auto encoded = EncodeFrame(request);
  if (!encoded.ok()) {
    cleanup();
    return encoded.status();
  }
  const std::uint64_t start_us = SteadyNowMicros();
  // The pending-table mutex is NOT held across Send: a bounded inbox can
  // block the sender, and the reply handler needs the mutex to complete
  // this very call.
  Status sent = transport_->Send(dst, std::move(*encoded));
  if (!sent.ok()) {
    cleanup();
    return sent;
  }
  m_calls_->Increment();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.call_timeout_us);
  Envelope reply;
  {
    MutexLock lock(&mu_);
    while (done_.find(id) == done_.end() && !shutdown_) {
      if (reply_cv_.WaitUntil(&mu_, deadline) == std::cv_status::timeout &&
          done_.find(id) == done_.end()) {
        waiting_.erase(id);
        m_timeouts_->Increment();
        return Status::Unavailable(
            "message bus: reply timed out (retryable)");
      }
    }
    auto it = done_.find(id);
    if (it == done_.end()) {
      waiting_.erase(id);
      return Status::Unavailable("message bus: shut down");
    }
    reply = std::move(it->second);
    done_.erase(it);
    waiting_.erase(id);
  }
  MetricsRegistry::Global().Observe(
      "msg.rtt_us", static_cast<double>(SteadyNowMicros() - start_us));
  return reply;
}

void MessageBus::Shutdown() {
  MutexLock lock(&mu_);
  shutdown_ = true;
  reply_cv_.NotifyAll();
}

void MessageBus::OnFrame(std::string frame) {
  auto env = DecodeFrame(frame);
  if (!env.ok()) {
    m_decode_errors_->Increment();
    return;
  }
  MutexLock lock(&mu_);
  if (waiting_.find(env->request_id) == waiting_.end()) {
    // Duplicate of an already-claimed reply, or a reply that raced its
    // own timeout. Either way the caller is gone.
    m_stale_replies_->Increment();
    return;
  }
  done_[env->request_id] = std::move(*env);
  reply_cv_.NotifyAll();
}

}  // namespace hermes
