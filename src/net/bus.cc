#include "net/bus.h"

#include <chrono>
#include <utility>

#include "common/rng.h"

namespace hermes {

MessageBus::MessageBus(Transport* transport, EndpointId self, Options options)
    : transport_(transport),
      self_(self),
      options_(options),
      m_calls_(MetricsRegistry::Global().GetCounter("msg.calls")),
      m_timeouts_(MetricsRegistry::Global().GetCounter("msg.timeouts")),
      m_decode_errors_(
          MetricsRegistry::Global().GetCounter("msg.decode_errors")),
      m_stale_replies_(
          MetricsRegistry::Global().GetCounter("msg.stale_replies")),
      m_retries_(MetricsRegistry::Global().GetCounter("msg.retries")) {
  MutexLock lock(&mu_);
  next_request_id_ = options_.first_request_id == 0 ? 1
                                                    : options_.first_request_id;
}

Status MessageBus::Start() {
  return transport_->OpenEndpoint(
      self_, [this](std::string frame) { OnFrame(std::move(frame)); });
}

Result<Envelope> MessageBus::Call(EndpointId dst, Envelope request) {
  request.src = self_;
  request.dst = dst;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Unavailable("message bus: shut down");
    }
    request.request_id = next_request_id_++;
    waiting_.insert(request.request_id);
  }
  const std::uint64_t id = request.request_id;
  auto cleanup = [this, id]() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    waiting_.erase(id);
    done_.erase(id);
  };
  const std::uint32_t max_attempts =
      options_.max_attempts == 0 ? 1 : options_.max_attempts;
  const std::uint64_t start_us = SteadyNowMicros();
  m_calls_->Increment();
  Envelope reply;
  bool have_reply = false;
  std::uint32_t attempts_used = 1;
  Status last_error =
      Status::Unavailable("message bus: reply timed out (retryable)");
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential, deterministically jittered backoff before every
      // resend. The wait parks on reply_cv_ (never a raw sleep), so a
      // straggler reply from an earlier attempt completes the call
      // mid-backoff instead of after it.
      const auto backoff_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(BackoffUs(attempt, id));
      const WaitOutcome w = WaitForReply(id, backoff_deadline, &reply);
      if (w == WaitOutcome::kShutdown) {
        return Status::Unavailable("message bus: shut down");
      }
      if (w == WaitOutcome::kReply) {
        have_reply = true;
        break;
      }
      m_retries_->Increment();
      attempts_used = attempt + 1;
    }
    // Every attempt resends the SAME request id — the idempotency token.
    // A server that already applied this mutation replays its cached
    // reply instead of re-executing, which is what makes the retry loop
    // exactly-once rather than at-least-once.
    request.attempt = static_cast<std::uint16_t>(attempt);
    auto encoded = EncodeFrame(request);
    if (!encoded.ok()) {
      cleanup();
      return encoded.status();
    }
    // The pending-table mutex is NOT held across Send: a bounded inbox
    // can block the sender, and the reply handler needs the mutex to
    // complete this very call.
    const Status sent = transport_->Send(dst, std::move(*encoded));
    if (!sent.ok()) {
      last_error = sent;
      if (sent.IsNotFound() || sent.IsInvalidArgument()) {
        // No such endpoint / malformed destination: permanent, fail fast.
        cleanup();
        return sent;
      }
      continue;  // retryable send failure: back off, then resend
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.call_timeout_us);
    const WaitOutcome w = WaitForReply(id, deadline, &reply);
    if (w == WaitOutcome::kShutdown) {
      return Status::Unavailable("message bus: shut down");
    }
    if (w == WaitOutcome::kReply) {
      have_reply = true;
      break;
    }
    m_timeouts_->Increment();
    last_error =
        Status::Unavailable("message bus: reply timed out (retryable)");
  }
  if (!have_reply) {
    cleanup();
    return last_error;
  }
  const double elapsed = static_cast<double>(SteadyNowMicros() - start_us);
  MetricsRegistry::Global().Observe("msg.rtt_us", elapsed);
  if (attempts_used > 1) {
    // Latency distribution of calls that needed at least one retry: the
    // price of a lost frame under the exactly-once contract.
    MetricsRegistry::Global().Observe("msg.retry_latency_us", elapsed);
  }
  return reply;
}

MessageBus::WaitOutcome MessageBus::WaitForReply(
    std::uint64_t id, std::chrono::steady_clock::time_point deadline,
    Envelope* out) {
  MutexLock lock(&mu_);
  for (;;) {
    auto it = done_.find(id);
    if (it != done_.end()) {
      *out = std::move(it->second);
      done_.erase(it);
      waiting_.erase(id);
      return WaitOutcome::kReply;
    }
    if (shutdown_) {
      waiting_.erase(id);
      return WaitOutcome::kShutdown;
    }
    if (reply_cv_.WaitUntil(&mu_, deadline) == std::cv_status::timeout &&
        done_.find(id) == done_.end() && !shutdown_) {
      // The id stays in waiting_: a later attempt (or a straggler reply
      // beating the next resend) can still complete this call.
      return WaitOutcome::kTimeout;
    }
  }
}

std::uint64_t MessageBus::BackoffUs(std::uint32_t attempt,
                                    std::uint64_t id) const {
  const std::uint64_t base = attempt >= 64
                                 ? options_.retry_backoff_us
                                 : options_.retry_backoff_us << (attempt - 1);
  if (base == 0) return 0;
  Rng jitter(options_.retry_jitter_seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
             attempt);
  return base + jitter.Uniform(base);
}

void MessageBus::Shutdown() {
  MutexLock lock(&mu_);
  shutdown_ = true;
  reply_cv_.NotifyAll();
}

void MessageBus::OnFrame(std::string frame) {
  auto env = DecodeFrame(frame);
  if (!env.ok()) {
    m_decode_errors_->Increment();
    return;
  }
  MutexLock lock(&mu_);
  if (waiting_.find(env->request_id) == waiting_.end()) {
    // Duplicate of an already-claimed reply, or a reply that raced its
    // own timeout. Either way the caller is gone.
    m_stale_replies_->Increment();
    return;
  }
  done_[env->request_id] = std::move(*env);
  reply_cv_.NotifyAll();
}

}  // namespace hermes
