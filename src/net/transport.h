/// Transport abstraction under the message bus (DESIGN.md §12): moves
/// opaque, already-encoded frames between numbered endpoints. The
/// interface deliberately assumes nothing beyond byte delivery — no
/// shared memory, no ordering across endpoints, no delivery guarantee
/// stronger than "Send returning OK means the frame was accepted for
/// delivery" — so a socket-backed `hermesd` transport can slot in behind
/// the same seam as the in-process queue implementation.
#ifndef HERMES_NET_TRANSPORT_H_
#define HERMES_NET_TRANSPORT_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "net/message.h"

namespace hermes {

/// Invoked on the receiving endpoint's dispatch thread with the raw
/// frame bytes. The handler owns the buffer and must not block on a
/// reply from its own endpoint.
using FrameHandler = std::function<void(std::string)>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers `handler` as the consumer for frames addressed to `id`
  /// and starts its dispatcher. Fails if the endpoint already exists or
  /// the transport is shut down.
  [[nodiscard]] virtual Status OpenEndpoint(EndpointId id,
                                            FrameHandler handler) = 0;

  /// Queues a frame for asynchronous delivery to `dst`. May block while
  /// the destination inbox is at capacity (bounded queues are the
  /// backpressure mechanism). OK means accepted, not yet delivered.
  [[nodiscard]] virtual Status Send(EndpointId dst, std::string frame) = 0;

  /// Stops all dispatchers and joins their threads. Frames still queued
  /// are delivered before the dispatcher exits; subsequent Sends fail
  /// with kUnavailable. Idempotent.
  virtual void Shutdown() = 0;
};

}  // namespace hermes

#endif  // HERMES_NET_TRANSPORT_H_
