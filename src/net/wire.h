/// Wire primitives for the typed message layer (DESIGN.md §12): a
/// little-endian append-only writer, a bounds-checked reader whose every
/// accessor returns Status instead of crashing on hostile input, and the
/// CRC-32 used to seal frames. The encoding is deliberately dumb —
/// fixed-width integers, doubles as raw bit patterns, strings and vectors
/// as u32 count + elements — so that encode→decode→re-encode is
/// byte-identical (the round-trip fuzz test in tests/net_wire_test.cc
/// relies on this).
#ifndef HERMES_NET_WIRE_H_
#define HERMES_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hermes {

/// Current frame-format version. Bump when the frame layout or any
/// message payload encoding changes; tests/net_golden_test.cc documents
/// the procedure.
///
/// Version history:
///   v1 — initial layout; u16 after the type byte was reserved (must be 0).
///   v2 — the reserved u16 became the retry `attempt` counter so servers
///        can distinguish first deliveries from client retries (DESIGN.md
///        §12, exactly-once mutation contract).
inline constexpr std::uint8_t kWireVersion = 2;

/// Hard ceiling on a single frame (length prefix included). Large enough
/// for a single-shot recovery dump at test scale; bulk paths (store
/// loading, migration) chunk their payloads well below this.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
[[nodiscard]] std::uint32_t Crc32(const void* data, std::size_t len);

/// Appends little-endian primitives to an owned buffer. Never fails:
/// bounds problems only exist on the decode side.
class WireWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU16(std::uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(std::uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(std::uint64_t v) { PutLittleEndian(v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Doubles travel as their IEEE-754 bit pattern, so every value —
  /// including NaNs — re-encodes to the same bytes.
  void PutF64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void PutRaw(std::string_view s) { out_.append(s.data(), s.size()); }

  const std::string& bytes() const { return out_; }
  std::string&& TakeBytes() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  void PutLittleEndian(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// Bounds-checked little-endian reader over a borrowed buffer. Every
/// accessor returns Status; reading past the end yields kOutOfRange and
/// leaves the cursor untouched, so decoders can bail with
/// HERMES_RETURN_NOT_OK and never index out of bounds.
class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}

  [[nodiscard]] Status ReadU8(std::uint8_t* out) {
    HERMES_RETURN_NOT_OK(Need(1));
    *out = static_cast<std::uint8_t>(buf_[pos_++]);
    return Status::OK();
  }
  [[nodiscard]] Status ReadU16(std::uint16_t* out);
  [[nodiscard]] Status ReadU32(std::uint32_t* out);
  [[nodiscard]] Status ReadU64(std::uint64_t* out);
  [[nodiscard]] Status ReadBool(bool* out);
  [[nodiscard]] Status ReadF64(double* out);
  [[nodiscard]] Status ReadString(std::string* out);
  /// Reads an element count and validates it against the bytes actually
  /// remaining (each element needs at least `min_elem_bytes`), so a
  /// hostile count cannot trigger a huge allocation.
  [[nodiscard]] Status ReadCount(std::size_t min_elem_bytes,
                                 std::uint32_t* out);

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  [[nodiscard]] Status Need(std::size_t n) {
    if (remaining() < n) {
      return Status::OutOfRange("wire: truncated buffer");
    }
    return Status::OK();
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
};

/// Status as it travels on the wire: u8 code + message string.
void PutStatus(const Status& s, WireWriter* w);
[[nodiscard]] Status ReadStatus(WireReader* r, Status* out);

}  // namespace hermes

#endif  // HERMES_NET_WIRE_H_
