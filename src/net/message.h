/// Typed request/reply messages for every cluster↔partition-server
/// boundary operation (DESIGN.md §12): batched neighbor reads, existence
/// probes, single-record mutations, migration chunk install/extract,
/// aux-weight exchange, health, checkpoint, and recovery dumps. Each
/// payload knows how to encode itself into a WireWriter and decode from a
/// WireReader with full bounds checking; EncodeFrame/DecodeFrame wrap a
/// payload in the versioned, CRC-sealed frame that actually travels:
///
///   [u32 len][u8 version][u8 type][u16 reserved]
///   [u64 request_id][u32 src][u32 dst][payload][u32 crc32]
///
/// `len` counts every byte after the length prefix, and the CRC covers
/// version..payload. DecodeFrame demands an exact length match, so any
/// single-bit corruption is caught by the length, version, type, or CRC
/// check and surfaces as a Status — never a crash.
#ifndef HERMES_NET_MESSAGE_H_
#define HERMES_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "net/wire.h"

namespace hermes {

/// Logical endpoint on a Transport: partition servers own endpoints
/// 0..alpha-1, the cluster client owns endpoint alpha.
using EndpointId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kNeighborsRequest = 1,
  kNeighborsReply = 2,
  kProbeRequest = 3,
  kProbeReply = 4,
  kMutateRequest = 5,
  kMutateReply = 6,
  kInstallChunkRequest = 7,
  kInstallChunkReply = 8,
  kExtractRequest = 9,
  kExtractReply = 10,
  kAuxExchangeRequest = 11,
  kAuxExchangeReply = 12,
  kHealthRequest = 13,
  kHealthReply = 14,
  kCheckpointRequest = 15,
  kCheckpointReply = 16,
  kDumpRequest = 17,
  kDumpReply = 18,
};

/// Node availability as it travels on the wire; values mirror
/// storage NodeState so the server-side cast is a no-op.
enum class WireNodeState : std::uint8_t {
  kAvailable = 0,
  kUnavailable = 1,
};

/// One property as stored on node or relationship chains.
struct WireProperty {
  std::uint32_t key = 0;
  std::string value;
};

/// Batched adjacency fetch: all of one traversal level's vertices that
/// live on the destination server travel in a single request.
struct NeighborsRequest {
  std::vector<VertexId> vertices;
  bool has_type = false;
  std::uint32_t type = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<NeighborsRequest> DecodeFrom(WireReader* r);
};

struct NeighborsReply {
  struct Adjacency {
    Status status;
    std::vector<VertexId> neighbors;
  };
  Status status;
  /// Parallel to the request's `vertices`; a per-vertex status lets one
  /// mid-migration vertex fail without poisoning the batch.
  std::vector<Adjacency> results;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<NeighborsReply> DecodeFrom(WireReader* r);
};

/// Existence/ghost probe against a single server's store.
struct ProbeRequest {
  enum class Mode : std::uint8_t {
    kHasNode = 0,     // linked and available
    kNodeExists = 1,  // record present regardless of state
    kEdgeIsGhost = 2, // half-record (vertex, other) is a ghost copy
  };
  Mode mode = Mode::kHasNode;
  VertexId vertex = 0;
  VertexId other = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<ProbeRequest> DecodeFrom(WireReader* r);
};

struct ProbeReply {
  Status status;
  bool truth = false;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<ProbeReply> DecodeFrom(WireReader* r);
};

/// Single-record mutation; one op enum instead of eight message types
/// keeps the frame dispatch table small. Unused fields ride along as
/// zero.
struct MutateRequest {
  enum class Op : std::uint8_t {
    kCreateNode = 0,
    kRemoveNode = 1,
    kSetNodeState = 2,
    kAddNodeWeight = 3,
    kAddEdge = 4,
    kRemoveEdge = 5,
    kSetNodeProperty = 6,
    kSetEdgeProperty = 7,
  };
  Op op = Op::kCreateNode;
  VertexId vertex = 0;
  VertexId other = 0;
  /// Edge type for edge ops, property key for property ops.
  std::uint32_t type_or_key = 0;
  WireNodeState node_state = WireNodeState::kAvailable;
  double weight = 0.0;
  bool other_is_local = false;
  std::string value;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<MutateRequest> DecodeFrom(WireReader* r);
};

struct MutateReply {
  Status status;
  /// Record id of a newly created edge (kAddEdge); kInvalidRecord
  /// otherwise.
  RecordId record_id = kInvalidRecord;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<MutateReply> DecodeFrom(WireReader* r);
};

/// Bulk install of nodes and relationship halves on one server — the
/// write side of a migration chunk, and the initial store-loading path.
/// The server creates every node before any edge, so edges between
/// co-migrating vertices in the same chunk always find their endpoints.
struct InstallChunkRequest {
  struct Node {
    VertexId id = 0;
    double weight = 1.0;
    std::vector<WireProperty> properties;
  };
  struct Edge {
    VertexId v = 0;
    VertexId other = 0;
    std::uint32_t type = 0;
    bool other_is_local = false;
    bool properties_included = false;
    std::vector<WireProperty> properties;
  };
  std::vector<Node> nodes;
  std::vector<Edge> edges;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<InstallChunkRequest> DecodeFrom(WireReader* r);
};

struct InstallChunkReply {
  Status status;
  /// How many nodes the server managed to create before stopping — the
  /// cluster's unwind path removes exactly these on failure.
  std::uint64_t nodes_created = 0;
  std::uint64_t edges_created = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<InstallChunkReply> DecodeFrom(WireReader* r);
};

/// Read one vertex's full snapshot off its source server (migration copy
/// step).
struct ExtractRequest {
  VertexId vertex = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<ExtractRequest> DecodeFrom(WireReader* r);
};

struct ExtractReply {
  struct Relationship {
    VertexId other = 0;
    std::uint32_t type = 0;
    bool properties_included = false;
    std::vector<WireProperty> properties;
  };
  Status status;
  VertexId id = 0;
  double weight = 1.0;
  /// Server-computed NodeSnapshot::WireBytes(), so migration byte
  /// accounting matches the shared-memory implementation exactly.
  std::uint64_t wire_bytes = 0;
  std::vector<WireProperty> properties;
  std::vector<Relationship> relationships;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<ExtractReply> DecodeFrom(WireReader* r);
};

/// Popularity-weight deltas pushed to the server owning the vertices
/// (the read path's weight bump).
struct AuxExchangeRequest {
  struct Entry {
    VertexId vertex = 0;
    double delta = 0.0;
  };
  std::vector<Entry> entries;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<AuxExchangeRequest> DecodeFrom(WireReader* r);
};

struct AuxExchangeReply {
  Status status;
  std::uint64_t applied = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<AuxExchangeReply> DecodeFrom(WireReader* r);
};

struct HealthRequest {
  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<HealthRequest> DecodeFrom(WireReader* r);
};

struct HealthReply {
  Status status;
  std::uint64_t store_bytes = 0;
  std::uint64_t nodes = 0;
  std::uint64_t relationships = 0;
  std::uint64_t ghost_relationships = 0;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<HealthReply> DecodeFrom(WireReader* r);
};

struct CheckpointRequest {
  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<CheckpointRequest> DecodeFrom(WireReader* r);
};

struct CheckpointReply {
  Status status;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<CheckpointReply> DecodeFrom(WireReader* r);
};

struct DumpRequest {
  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<DumpRequest> DecodeFrom(WireReader* r);
};

/// Everything recovery needs to rebuild the logical directory from one
/// server: node ids + weights and relationship halves with their ghost
/// flag. Single-shot today (bounded by kMaxFrameBytes); a streaming dump
/// is future work alongside the socket transport.
struct DumpReply {
  struct Node {
    VertexId id = 0;
    double weight = 1.0;
  };
  struct Rel {
    VertexId src = 0;
    VertexId dst = 0;
    std::uint32_t type = 0;
    bool ghost = false;
  };
  Status status;
  std::vector<Node> nodes;
  std::vector<Rel> rels;

  void EncodeTo(WireWriter* w) const;
  [[nodiscard]] static Result<DumpReply> DecodeFrom(WireReader* r);
};

using MessagePayload =
    std::variant<NeighborsRequest, NeighborsReply, ProbeRequest, ProbeReply,
                 MutateRequest, MutateReply, InstallChunkRequest,
                 InstallChunkReply, ExtractRequest, ExtractReply,
                 AuxExchangeRequest, AuxExchangeReply, HealthRequest,
                 HealthReply, CheckpointRequest, CheckpointReply, DumpRequest,
                 DumpReply>;

/// One addressed message: routing header + typed payload. The payload's
/// variant index determines the on-wire MsgType.
struct Envelope {
  std::uint64_t request_id = 0;
  /// Retry ordinal of this delivery: 0 for the first send, incremented by
  /// the bus on each same-token resend (v2 wire field, formerly reserved).
  /// Servers dedup on (src, request_id) alone; `attempt` exists for
  /// diagnostics and so a future socket transport can prioritize retries.
  std::uint16_t attempt = 0;
  EndpointId src = 0;
  EndpointId dst = 0;
  MessagePayload payload;

  [[nodiscard]] MsgType type() const;
};

/// Seals `env` into a length-prefixed, CRC'd frame. Fails only if the
/// encoded frame would exceed kMaxFrameBytes.
[[nodiscard]] Result<std::string> EncodeFrame(const Envelope& env);

/// Parses and verifies a frame. Truncated, oversized, bit-flipped,
/// version-skewed, or type-unknown input returns a non-OK Status; the
/// payload decoder never reads out of bounds.
[[nodiscard]] Result<Envelope> DecodeFrame(std::string_view frame);

}  // namespace hermes

#endif  // HERMES_NET_MESSAGE_H_
