#include "net/message.h"

namespace hermes {

namespace {

/// Minimum encoded sizes, used to bound element counts before reserving.
constexpr std::size_t kMinPropertyBytes = 8;   // key u32 + length u32
constexpr std::size_t kMinVertexBytes = 8;     // u64
constexpr std::size_t kMinAdjacencyBytes = 9;  // status (1+4) + count u32
constexpr std::size_t kMinNodeBytes = 20;      // id + weight + prop count
constexpr std::size_t kMinEdgeBytes = 26;      // ids + type + flags + count
constexpr std::size_t kMinRelBytes = 17;       // other + type + flag + count
constexpr std::size_t kMinAuxEntryBytes = 16;  // vertex + delta
constexpr std::size_t kMinDumpNodeBytes = 16;  // id + weight
constexpr std::size_t kMinDumpRelBytes = 21;   // src + dst + type + ghost

void EncodeProperties(const std::vector<WireProperty>& props, WireWriter* w) {
  w->PutU32(static_cast<std::uint32_t>(props.size()));
  for (const WireProperty& p : props) {
    w->PutU32(p.key);
    w->PutString(p.value);
  }
}

[[nodiscard]] Status DecodeProperties(WireReader* r,
                                    std::vector<WireProperty>* out) {
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinPropertyBytes, &n));
  out->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WireProperty p;
    HERMES_RETURN_NOT_OK(r->ReadU32(&p.key));
    HERMES_RETURN_NOT_OK(r->ReadString(&p.value));
    out->push_back(std::move(p));
  }
  return Status::OK();
}

void PutVertices(const std::vector<VertexId>& vs, WireWriter* w) {
  w->PutU32(static_cast<std::uint32_t>(vs.size()));
  for (VertexId v : vs) w->PutU64(v);
}

[[nodiscard]] Status ReadVertices(WireReader* r, std::vector<VertexId>* out) {
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinVertexBytes, &n));
  out->reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    HERMES_RETURN_NOT_OK(r->ReadU64(&v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace

void NeighborsRequest::EncodeTo(WireWriter* w) const {
  PutVertices(vertices, w);
  w->PutBool(has_type);
  w->PutU32(type);
}

Result<NeighborsRequest> NeighborsRequest::DecodeFrom(WireReader* r) {
  NeighborsRequest m;
  HERMES_RETURN_NOT_OK(ReadVertices(r, &m.vertices));
  HERMES_RETURN_NOT_OK(r->ReadBool(&m.has_type));
  HERMES_RETURN_NOT_OK(r->ReadU32(&m.type));
  return m;
}

void NeighborsReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU32(static_cast<std::uint32_t>(results.size()));
  for (const Adjacency& a : results) {
    PutStatus(a.status, w);
    PutVertices(a.neighbors, w);
  }
}

Result<NeighborsReply> NeighborsReply::DecodeFrom(WireReader* r) {
  NeighborsReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinAdjacencyBytes, &n));
  m.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Adjacency a;
    HERMES_RETURN_NOT_OK(ReadStatus(r, &a.status));
    HERMES_RETURN_NOT_OK(ReadVertices(r, &a.neighbors));
    m.results.push_back(std::move(a));
  }
  return m;
}

void ProbeRequest::EncodeTo(WireWriter* w) const {
  w->PutU8(static_cast<std::uint8_t>(mode));
  w->PutU64(vertex);
  w->PutU64(other);
}

Result<ProbeRequest> ProbeRequest::DecodeFrom(WireReader* r) {
  ProbeRequest m;
  std::uint8_t mode = 0;
  HERMES_RETURN_NOT_OK(r->ReadU8(&mode));
  if (mode > static_cast<std::uint8_t>(Mode::kEdgeIsGhost)) {
    return Status::InvalidArgument("wire: unknown probe mode");
  }
  m.mode = static_cast<Mode>(mode);
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.vertex));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.other));
  return m;
}

void ProbeReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutBool(truth);
}

Result<ProbeReply> ProbeReply::DecodeFrom(WireReader* r) {
  ProbeReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadBool(&m.truth));
  return m;
}

void MutateRequest::EncodeTo(WireWriter* w) const {
  w->PutU8(static_cast<std::uint8_t>(op));
  w->PutU64(vertex);
  w->PutU64(other);
  w->PutU32(type_or_key);
  w->PutU8(static_cast<std::uint8_t>(node_state));
  w->PutF64(weight);
  w->PutBool(other_is_local);
  w->PutString(value);
}

Result<MutateRequest> MutateRequest::DecodeFrom(WireReader* r) {
  MutateRequest m;
  std::uint8_t op = 0;
  HERMES_RETURN_NOT_OK(r->ReadU8(&op));
  if (op > static_cast<std::uint8_t>(Op::kSetEdgeProperty)) {
    return Status::InvalidArgument("wire: unknown mutate op");
  }
  m.op = static_cast<Op>(op);
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.vertex));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.other));
  HERMES_RETURN_NOT_OK(r->ReadU32(&m.type_or_key));
  std::uint8_t state = 0;
  HERMES_RETURN_NOT_OK(r->ReadU8(&state));
  if (state > static_cast<std::uint8_t>(WireNodeState::kUnavailable)) {
    return Status::InvalidArgument("wire: unknown node state");
  }
  m.node_state = static_cast<WireNodeState>(state);
  HERMES_RETURN_NOT_OK(r->ReadF64(&m.weight));
  HERMES_RETURN_NOT_OK(r->ReadBool(&m.other_is_local));
  HERMES_RETURN_NOT_OK(r->ReadString(&m.value));
  return m;
}

void MutateReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU64(record_id);
}

Result<MutateReply> MutateReply::DecodeFrom(WireReader* r) {
  MutateReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.record_id));
  return m;
}

void InstallChunkRequest::EncodeTo(WireWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(nodes.size()));
  for (const Node& n : nodes) {
    w->PutU64(n.id);
    w->PutF64(n.weight);
    EncodeProperties(n.properties, w);
  }
  w->PutU32(static_cast<std::uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    w->PutU64(e.v);
    w->PutU64(e.other);
    w->PutU32(e.type);
    w->PutBool(e.other_is_local);
    w->PutBool(e.properties_included);
    EncodeProperties(e.properties, w);
  }
}

Result<InstallChunkRequest> InstallChunkRequest::DecodeFrom(WireReader* r) {
  InstallChunkRequest m;
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinNodeBytes, &n));
  m.nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Node node;
    HERMES_RETURN_NOT_OK(r->ReadU64(&node.id));
    HERMES_RETURN_NOT_OK(r->ReadF64(&node.weight));
    HERMES_RETURN_NOT_OK(DecodeProperties(r, &node.properties));
    m.nodes.push_back(std::move(node));
  }
  std::uint32_t e = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinEdgeBytes, &e));
  m.edges.reserve(e);
  for (std::uint32_t i = 0; i < e; ++i) {
    Edge edge;
    HERMES_RETURN_NOT_OK(r->ReadU64(&edge.v));
    HERMES_RETURN_NOT_OK(r->ReadU64(&edge.other));
    HERMES_RETURN_NOT_OK(r->ReadU32(&edge.type));
    HERMES_RETURN_NOT_OK(r->ReadBool(&edge.other_is_local));
    HERMES_RETURN_NOT_OK(r->ReadBool(&edge.properties_included));
    HERMES_RETURN_NOT_OK(DecodeProperties(r, &edge.properties));
    m.edges.push_back(std::move(edge));
  }
  return m;
}

void InstallChunkReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU64(nodes_created);
  w->PutU64(edges_created);
}

Result<InstallChunkReply> InstallChunkReply::DecodeFrom(WireReader* r) {
  InstallChunkReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.nodes_created));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.edges_created));
  return m;
}

void ExtractRequest::EncodeTo(WireWriter* w) const { w->PutU64(vertex); }

Result<ExtractRequest> ExtractRequest::DecodeFrom(WireReader* r) {
  ExtractRequest m;
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.vertex));
  return m;
}

void ExtractReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU64(id);
  w->PutF64(weight);
  w->PutU64(wire_bytes);
  EncodeProperties(properties, w);
  w->PutU32(static_cast<std::uint32_t>(relationships.size()));
  for (const Relationship& rel : relationships) {
    w->PutU64(rel.other);
    w->PutU32(rel.type);
    w->PutBool(rel.properties_included);
    EncodeProperties(rel.properties, w);
  }
}

Result<ExtractReply> ExtractReply::DecodeFrom(WireReader* r) {
  ExtractReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.id));
  HERMES_RETURN_NOT_OK(r->ReadF64(&m.weight));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.wire_bytes));
  HERMES_RETURN_NOT_OK(DecodeProperties(r, &m.properties));
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinRelBytes, &n));
  m.relationships.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Relationship rel;
    HERMES_RETURN_NOT_OK(r->ReadU64(&rel.other));
    HERMES_RETURN_NOT_OK(r->ReadU32(&rel.type));
    HERMES_RETURN_NOT_OK(r->ReadBool(&rel.properties_included));
    HERMES_RETURN_NOT_OK(DecodeProperties(r, &rel.properties));
    m.relationships.push_back(std::move(rel));
  }
  return m;
}

void AuxExchangeRequest::EncodeTo(WireWriter* w) const {
  w->PutU32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w->PutU64(e.vertex);
    w->PutF64(e.delta);
  }
}

Result<AuxExchangeRequest> AuxExchangeRequest::DecodeFrom(WireReader* r) {
  AuxExchangeRequest m;
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinAuxEntryBytes, &n));
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Entry e;
    HERMES_RETURN_NOT_OK(r->ReadU64(&e.vertex));
    HERMES_RETURN_NOT_OK(r->ReadF64(&e.delta));
    m.entries.push_back(e);
  }
  return m;
}

void AuxExchangeReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU64(applied);
}

Result<AuxExchangeReply> AuxExchangeReply::DecodeFrom(WireReader* r) {
  AuxExchangeReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.applied));
  return m;
}

void HealthRequest::EncodeTo(WireWriter* w) const { (void)w; }

Result<HealthRequest> HealthRequest::DecodeFrom(WireReader* r) {
  (void)r;
  return HealthRequest{};
}

void HealthReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU64(store_bytes);
  w->PutU64(nodes);
  w->PutU64(relationships);
  w->PutU64(ghost_relationships);
}

Result<HealthReply> HealthReply::DecodeFrom(WireReader* r) {
  HealthReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.store_bytes));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.nodes));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.relationships));
  HERMES_RETURN_NOT_OK(r->ReadU64(&m.ghost_relationships));
  return m;
}

void CheckpointRequest::EncodeTo(WireWriter* w) const { (void)w; }

Result<CheckpointRequest> CheckpointRequest::DecodeFrom(WireReader* r) {
  (void)r;
  return CheckpointRequest{};
}

void CheckpointReply::EncodeTo(WireWriter* w) const { PutStatus(status, w); }

Result<CheckpointReply> CheckpointReply::DecodeFrom(WireReader* r) {
  CheckpointReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  return m;
}

void DumpRequest::EncodeTo(WireWriter* w) const { (void)w; }

Result<DumpRequest> DumpRequest::DecodeFrom(WireReader* r) {
  (void)r;
  return DumpRequest{};
}

void DumpReply::EncodeTo(WireWriter* w) const {
  PutStatus(status, w);
  w->PutU32(static_cast<std::uint32_t>(nodes.size()));
  for (const Node& n : nodes) {
    w->PutU64(n.id);
    w->PutF64(n.weight);
  }
  w->PutU32(static_cast<std::uint32_t>(rels.size()));
  for (const Rel& rel : rels) {
    w->PutU64(rel.src);
    w->PutU64(rel.dst);
    w->PutU32(rel.type);
    w->PutBool(rel.ghost);
  }
}

Result<DumpReply> DumpReply::DecodeFrom(WireReader* r) {
  DumpReply m;
  HERMES_RETURN_NOT_OK(ReadStatus(r, &m.status));
  std::uint32_t n = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinDumpNodeBytes, &n));
  m.nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Node node;
    HERMES_RETURN_NOT_OK(r->ReadU64(&node.id));
    HERMES_RETURN_NOT_OK(r->ReadF64(&node.weight));
    m.nodes.push_back(node);
  }
  std::uint32_t e = 0;
  HERMES_RETURN_NOT_OK(r->ReadCount(kMinDumpRelBytes, &e));
  m.rels.reserve(e);
  for (std::uint32_t i = 0; i < e; ++i) {
    Rel rel;
    HERMES_RETURN_NOT_OK(r->ReadU64(&rel.src));
    HERMES_RETURN_NOT_OK(r->ReadU64(&rel.dst));
    HERMES_RETURN_NOT_OK(r->ReadU32(&rel.type));
    HERMES_RETURN_NOT_OK(r->ReadBool(&rel.ghost));
    m.rels.push_back(rel);
  }
  return m;
}

MsgType Envelope::type() const {
  return static_cast<MsgType>(payload.index() + 1);
}

namespace {

/// Frame header after the length prefix: version + type + attempt +
/// request_id + src + dst.
constexpr std::size_t kFrameHeaderBytes = 1 + 1 + 2 + 8 + 4 + 4;

}  // namespace

[[nodiscard]] Result<std::string> EncodeFrame(const Envelope& env) {
  WireWriter body;
  body.PutU8(kWireVersion);
  body.PutU8(static_cast<std::uint8_t>(env.type()));
  body.PutU16(env.attempt);
  body.PutU64(env.request_id);
  body.PutU32(env.src);
  body.PutU32(env.dst);
  std::visit([&body](const auto& m) { m.EncodeTo(&body); }, env.payload);
  if (4 + body.size() + 4 > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds kMaxFrameBytes");
  }
  const std::uint32_t crc = Crc32(body.bytes().data(), body.size());
  WireWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(body.size() + 4));
  frame.PutRaw(body.bytes());
  frame.PutU32(crc);
  return frame.TakeBytes();
}

[[nodiscard]] Result<Envelope> DecodeFrame(std::string_view frame) {
  if (frame.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds kMaxFrameBytes");
  }
  if (frame.size() < 4 + kFrameHeaderBytes + 4) {
    return Status::OutOfRange("wire: frame shorter than header");
  }
  WireReader prefix(frame);
  std::uint32_t len = 0;
  HERMES_RETURN_NOT_OK(prefix.ReadU32(&len));
  // An exact match is required: together with the CRC and version checks
  // this catches every single-bit corruption of the frame.
  if (len != frame.size() - 4) {
    return Status::InvalidArgument("wire: frame length mismatch");
  }
  const std::string_view crcd = frame.substr(4, len - 4);
  WireReader tail(frame.substr(4 + crcd.size()));
  std::uint32_t stored_crc = 0;
  HERMES_RETURN_NOT_OK(tail.ReadU32(&stored_crc));
  if (stored_crc != Crc32(crcd.data(), crcd.size())) {
    return Status::InvalidArgument("wire: frame CRC mismatch");
  }
  WireReader r(crcd);
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  Envelope env;
  HERMES_RETURN_NOT_OK(r.ReadU8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported frame version");
  }
  HERMES_RETURN_NOT_OK(r.ReadU8(&type));
  HERMES_RETURN_NOT_OK(r.ReadU16(&env.attempt));
  HERMES_RETURN_NOT_OK(r.ReadU64(&env.request_id));
  HERMES_RETURN_NOT_OK(r.ReadU32(&env.src));
  HERMES_RETURN_NOT_OK(r.ReadU32(&env.dst));
  switch (static_cast<MsgType>(type)) {
#define HERMES_DECODE_CASE(MSG)                        \
  case MsgType::k##MSG: {                              \
    HERMES_ASSIGN_OR_RETURN(auto m, MSG::DecodeFrom(&r)); \
    env.payload = std::move(m);                        \
    break;                                             \
  }
    HERMES_DECODE_CASE(NeighborsRequest)
    HERMES_DECODE_CASE(NeighborsReply)
    HERMES_DECODE_CASE(ProbeRequest)
    HERMES_DECODE_CASE(ProbeReply)
    HERMES_DECODE_CASE(MutateRequest)
    HERMES_DECODE_CASE(MutateReply)
    HERMES_DECODE_CASE(InstallChunkRequest)
    HERMES_DECODE_CASE(InstallChunkReply)
    HERMES_DECODE_CASE(ExtractRequest)
    HERMES_DECODE_CASE(ExtractReply)
    HERMES_DECODE_CASE(AuxExchangeRequest)
    HERMES_DECODE_CASE(AuxExchangeReply)
    HERMES_DECODE_CASE(HealthRequest)
    HERMES_DECODE_CASE(HealthReply)
    HERMES_DECODE_CASE(CheckpointRequest)
    HERMES_DECODE_CASE(CheckpointReply)
    HERMES_DECODE_CASE(DumpRequest)
    HERMES_DECODE_CASE(DumpReply)
#undef HERMES_DECODE_CASE
    default:
      return Status::InvalidArgument("wire: unknown message type");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("wire: trailing payload bytes");
  }
  return env;
}

}  // namespace hermes
