#include "net/inproc_transport.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace hermes {

InProcTransport::Inbox::Inbox(EndpointId id, FrameHandler h)
    : label("msg.inbox." + std::to_string(id)),
      handler(std::move(h)),
      mu(label.c_str(),
         lock_order::kRankMsgInboxBase + static_cast<int>(id)),
      depth_gauge(MetricsRegistry::Global().GetGauge(
          "msg.inbox_depth." + std::to_string(id))) {}

InProcTransport::InProcTransport(Options options)
    : options_(options),
      m_sent_(MetricsRegistry::Global().GetCounter("msg.sent")),
      m_bytes_(MetricsRegistry::Global().GetCounter("msg.bytes")),
      m_dropped_(MetricsRegistry::Global().GetCounter("msg.dropped")),
      m_duplicated_(MetricsRegistry::Global().GetCounter("msg.duplicated")),
      m_reordered_(MetricsRegistry::Global().GetCounter("msg.reordered")) {}

InProcTransport::~InProcTransport() { Shutdown(); }

Status InProcTransport::OpenEndpoint(EndpointId id, FrameHandler handler) {
  // Inbox ranks live between the transport registry and the partition
  // servers; an id that reached kRankPartitionBase would alias a server
  // rank and blind the lock-order validator.
  if (lock_order::kRankMsgInboxBase + static_cast<int>(id) >=
      lock_order::kRankPartitionBase) {
    return Status::InvalidArgument("inproc transport: endpoint id too large");
  }
  auto inbox = std::make_unique<Inbox>(id, std::move(handler));
  Inbox* raw = inbox.get();
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Unavailable("inproc transport: shut down");
    }
    if (!inboxes_.emplace(id, std::move(inbox)).second) {
      return Status::AlreadyExists("inproc transport: endpoint already open");
    }
  }
  raw->dispatcher = std::thread(&InProcTransport::DispatchLoop, this, raw);
  return Status::OK();
}

Status InProcTransport::Send(EndpointId dst, std::string frame) {
  HERMES_FAILPOINT_IOERROR("msg.send.io_error");
  Inbox* inbox = nullptr;
  bool drop = false;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return Status::Unavailable("inproc transport: shut down");
    }
    auto it = inboxes_.find(dst);
    if (it == inboxes_.end()) {
      return Status::NotFound("inproc transport: no such endpoint");
    }
    inbox = it->second.get();
    if (options_.drop_every_n != 0 && dst == options_.drop_dst) {
      // Count the arrival whether or not it survives: a cadence over
      // delivered frames only would re-fire on every frame after the
      // first hit.
      ++drop_arrivals_;
      drop = (drop_arrivals_ + options_.fault_seed) %
                 options_.drop_every_n ==
             0;
    }
  }
  if (drop) {
    m_dropped_->Increment();
    return Status::OK();
  }
  // A fired receive-drop means the frame was "accepted" but never
  // arrives: the sender sees OK and the caller's reply timeout is what
  // surfaces the loss, exactly like a lossy network.
  if (HERMES_FAILPOINT_HIT("msg.recv.drop").fired) {
    m_dropped_->Increment();
    return Status::OK();
  }
  m_sent_->Increment();
  m_bytes_->Increment(frame.size());
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.send_timeout_us);
  MutexLock lock(&inbox->mu);
  while (inbox->frames.size() >= options_.inbox_capacity &&
         !inbox->stopping) {
    if (inbox->not_full.WaitUntil(&inbox->mu, deadline) ==
            std::cv_status::timeout &&
        inbox->frames.size() >= options_.inbox_capacity &&
        !inbox->stopping) {
      return Status::TimedOut("inproc transport: inbox full");
    }
  }
  if (inbox->stopping) {
    return Status::Unavailable("inproc transport: endpoint stopping");
  }
  ++inbox->pushes;
  const std::uint64_t phase = inbox->pushes + options_.fault_seed;
  const bool duplicate = options_.duplicate_every_n != 0 &&
                         phase % options_.duplicate_every_n == 0;
  const bool reorder = options_.reorder_every_n != 0 &&
                       phase % options_.reorder_every_n == 0;
  if (reorder && !inbox->frames.empty()) {
    // Deliver this frame ahead of the one queued before it.
    inbox->frames.insert(inbox->frames.end() - 1, frame);
    m_reordered_->Increment();
  } else {
    inbox->frames.push_back(frame);
  }
  if (duplicate) {
    inbox->frames.push_back(std::move(frame));
    m_duplicated_->Increment();
  }
  inbox->depth_gauge->Set(static_cast<double>(inbox->frames.size()));
  inbox->not_empty.NotifyOne();
  return Status::OK();
}

void InProcTransport::DispatchLoop(Inbox* inbox) {
  for (;;) {
    std::string frame;
    {
      MutexLock lock(&inbox->mu);
      while (inbox->frames.empty() && !inbox->stopping) {
        inbox->not_empty.Wait(&inbox->mu);
      }
      if (inbox->frames.empty()) {
        return;  // stopping and fully drained
      }
      frame = std::move(inbox->frames.front());
      inbox->frames.pop_front();
      inbox->depth_gauge->Set(static_cast<double>(inbox->frames.size()));
      inbox->not_full.NotifyAll();
    }
    TraceSpan span("msg.dispatch");
    inbox->handler(std::move(frame));
  }
}

void InProcTransport::Shutdown() {
  std::vector<Inbox*> all;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    all.reserve(inboxes_.size());
    for (auto& [id, inbox] : inboxes_) {
      all.push_back(inbox.get());
    }
  }
  for (Inbox* inbox : all) {
    MutexLock lock(&inbox->mu);
    inbox->stopping = true;
    inbox->not_empty.NotifyAll();
    inbox->not_full.NotifyAll();
  }
  for (Inbox* inbox : all) {
    if (inbox->dispatcher.joinable()) {
      inbox->dispatcher.join();
    }
  }
}

}  // namespace hermes
