/// In-process Transport: one bounded frame queue ("inbox") per endpoint,
/// drained by a dedicated dispatch thread. This is the first transport
/// behind the bus seam — it exercises the full encode/queue/dispatch
/// path and all of its failure modes (full inboxes, injected send
/// errors, dropped/duplicated/reordered frames) without sockets, so the
/// cluster logic is already written against real message semantics when
/// a socket `hermesd` transport arrives.
///
/// Fault injection: `msg.send.io_error` and `msg.recv.drop` failpoints
/// fire at the send boundary; seeded duplicate/reorder cadences are
/// plain Options so every build preset can exercise them
/// deterministically.
#ifndef HERMES_NET_INPROC_TRANSPORT_H_
#define HERMES_NET_INPROC_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace hermes {

class InProcTransport final : public Transport {
 public:
  struct Options {
    /// Frames an inbox may hold before Send blocks (backpressure).
    std::size_t inbox_capacity = 1024;
    /// How long Send waits on a full inbox before giving up.
    std::uint64_t send_timeout_us = 10'000'000;
    /// Every n-th accepted frame is delivered twice (0 = off).
    std::uint64_t duplicate_every_n = 0;
    /// Every n-th accepted frame is delivered before its predecessor
    /// (0 = off).
    std::uint64_t reorder_every_n = 0;
    /// Phase offset for the duplicate/reorder/drop cadences, so
    /// different seeds hit different frames.
    std::uint64_t fault_seed = 0;
    /// Every n-th frame addressed to `drop_dst` vanishes after Send
    /// returns OK (0 = off) — the sender only learns via its reply
    /// timeout, exactly like a lossy network. Unlike the msg.recv.drop
    /// failpoint this is plain configuration, so benchmarks in every
    /// build preset can measure retry cost deterministically. The
    /// cadence counts every arrival (dropped frames included), so a hit
    /// never shifts the phase onto the frames that follow it.
    std::uint64_t drop_every_n = 0;
    EndpointId drop_dst = 0;
  };

  explicit InProcTransport(Options options);
  ~InProcTransport() override;

  [[nodiscard]] Status OpenEndpoint(EndpointId id,
                                    FrameHandler handler) override
      EXCLUDES(mu_);
  [[nodiscard]] Status Send(EndpointId dst, std::string frame) override
      EXCLUDES(mu_);
  void Shutdown() override EXCLUDES(mu_);

 private:
  /// One endpoint's bounded queue plus the thread that drains it. The
  /// mutex rank is kRankMsgInboxBase + id: above the bus/transport
  /// registry (senders may hold those), below every partition server
  /// (dispatch handlers acquire server mutexes with nothing held).
  struct Inbox {
    Inbox(EndpointId id, FrameHandler h);

    const std::string label;
    const FrameHandler handler;
    Mutex mu;
    CondVar not_empty;
    CondVar not_full;
    std::deque<std::string> frames GUARDED_BY(mu);
    bool stopping GUARDED_BY(mu) = false;
    /// Accepted-frame counter driving the fault cadences.
    std::uint64_t pushes GUARDED_BY(mu) = 0;
    Gauge* const depth_gauge;
    // audit:allow(guard, joined exactly once by Shutdown after `stopping`
    // is published under `mu`; never touched concurrently)
    std::thread dispatcher;
  };

  void DispatchLoop(Inbox* inbox);

  const Options options_;
  mutable Mutex mu_{"msg.transport", lock_order::kRankMsgTransport};
  std::map<EndpointId, std::unique_ptr<Inbox>> inboxes_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  /// Arrivals at `drop_dst`, dropped frames included, driving the
  /// Options::drop_every_n cadence.
  std::uint64_t drop_arrivals_ GUARDED_BY(mu_) = 0;
  Counter* const m_sent_;
  Counter* const m_bytes_;
  Counter* const m_dropped_;
  Counter* const m_duplicated_;
  Counter* const m_reordered_;
};

}  // namespace hermes

#endif  // HERMES_NET_INPROC_TRANSPORT_H_
