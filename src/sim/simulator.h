#ifndef HERMES_SIM_SIMULATOR_H_
#define HERMES_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hermes {

/// Simulated time in microseconds.
using SimTime = double;

/// Deterministic discrete-event simulator. The paper measured Hermes on a
/// 16-machine cluster; we reproduce the *relative* performance of
/// partitioning strategies by replaying the same request streams against a
/// virtual cluster whose servers and network links have explicit costs.
/// Determinism: ties in time are broken by insertion order.
class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (clamped to Now()).
  void At(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }

  /// Schedules `cb` `delay` after Now().
  void After(SimTime delay, Callback cb) {
    At(now_ + delay, std::move(cb));
  }

  /// Runs events until the queue drains. Returns the final time.
  SimTime Run() {
    while (!queue_.empty()) Step();
    return now_;
  }

  /// Runs events with time <= `until`. Later events stay queued.
  SimTime RunUntil(SimTime until) {
    while (!queue_.empty() && queue_.top().time <= until) Step();
    if (now_ < until) now_ = until;
    return now_;
  }

  bool Idle() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void Step() {
    // Moving the callback out before popping keeps reentrant scheduling
    // (callbacks scheduling new events) safe.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ev.cb();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hermes

#endif  // HERMES_SIM_SIMULATOR_H_
