#ifndef HERMES_SIM_NETWORK_H_
#define HERMES_SIM_NETWORK_H_

#include <cstddef>

#include "sim/simulator.h"

namespace hermes {

/// Cost model for the virtual cluster, in microseconds. Defaults are
/// loosely calibrated to the paper's testbed (1GbE between dual-core
/// servers): a remote traversal hop costs two orders of magnitude more
/// than visiting a vertex locally — which is precisely why edge-cut drives
/// throughput.
struct NetworkParams {
  /// CPU time to visit one vertex (read its record + adjacency step).
  SimTime local_visit_us = 1.0;

  /// Latency of forwarding a traversal to another server (RPC round
  /// setup + wire time for a small message).
  SimTime remote_hop_us = 120.0;

  /// One-way client -> server request overhead (connection handling,
  /// serialization, index lookup for the start vertex).
  SimTime client_request_us = 150.0;

  /// Extra cost per vertex visited on a server other than the one the
  /// traversal originated on: request marshalling, result serialization,
  /// and the remote server's dispatch work. This is what makes the
  /// *number* of remote visits (edge-cut), not just the number of remote
  /// round-trips, drive throughput.
  SimTime remote_visit_overhead_us = 4.0;

  /// CPU time for one record write (B+Tree append path).
  SimTime write_op_us = 4.0;

  /// Wire time per byte for bulk transfers (migration copy step);
  /// ~1 Gb/s ≈ 0.008 us per byte.
  SimTime per_byte_us = 0.008;

  /// Fixed synchronization barrier cost between the copy and remove steps
  /// of physical migration.
  SimTime migration_barrier_us = 500.0;
};

}  // namespace hermes

#endif  // HERMES_SIM_NETWORK_H_
