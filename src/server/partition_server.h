/// One partition server: owns a partition's GraphStore (optionally
/// durable) and speaks only the typed message protocol (DESIGN.md §12).
/// Frames arrive on the transport's dispatch thread, the request is
/// applied under the server's own mutex, and the reply frame is sent
/// with no locks held — so a server never participates in a lock cycle
/// with the cluster directory or another server.
///
/// The header deliberately forward-declares the store types and exposes
/// no store-typed API besides the quiesced test accessor: the cluster
/// layer compiles against this interface without ever seeing a store
/// header, which is what makes "all cross-server access goes through
/// the bus" a compile-time property (tools/layers.json forbids the
/// includes outright).
#ifndef HERMES_SERVER_PARTITION_SERVER_H_
#define HERMES_SERVER_PARTITION_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/lock_order.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "net/message.h"
#include "net/transport.h"

namespace hermes {

class GraphStore;
class DurableGraphStore;

class PartitionServer {
 public:
  struct Options {
    /// Non-empty: open a DurableGraphStore rooted here (the directory is
    /// created if missing). Empty: plain in-memory store.
    std::string durability_dir;
    /// Capacity of the (src, request_id) dedup window and its reply
    /// cache. 0 selects the built-in default. The cluster sizes this from
    /// the transport's inbox capacity × endpoint count: eviction of a
    /// token whose duplicate is still queued somewhere silently
    /// reintroduces double-apply, so the window must dominate the number
    /// of frames that can be in flight at once.
    std::size_t dedup_window = 0;
  };

  /// Creates the server's store and registers its endpoint + dispatch
  /// thread on `transport`. The transport must be shut down before the
  /// server is destroyed (the cluster owns that ordering).
  [[nodiscard]] static Result<std::unique_ptr<PartitionServer>> Open(
      PartitionId partition, EndpointId endpoint, Transport* transport,
      Options options);

  ~PartitionServer();
  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  PartitionId partition() const { return partition_; }
  EndpointId endpoint() const { return endpoint_; }
  bool durable() const { return durable_raw_ != nullptr; }

  /// Highest bus request id among the idempotency tokens recovered from
  /// the WAL at Open() (0 when none). The cluster starts the post-recovery
  /// MessageBus above this so fresh request ids can never collide with a
  /// recovered token and be answered from stale dedup state.
  std::uint64_t max_recovered_token_id() const {
    return max_recovered_token_id_;
  }

  /// Direct store access for quiesced tests and recovery-free seeding
  /// ONLY — production traffic goes through the message protocol.
  GraphStore* store_for_test() { return store_; }
  const GraphStore* store_for_test() const { return store_; }

 private:
  PartitionServer(PartitionId partition, EndpointId endpoint,
                  Transport* transport,
                  std::unique_ptr<GraphStore> mem_store,
                  std::unique_ptr<DurableGraphStore> durable,
                  GraphStore* store, std::size_t dedup_window);

  using DedupKey = std::pair<EndpointId, std::uint64_t>;

  /// Entry point on the transport dispatch thread.
  void HandleFrame(std::string frame);

  /// True for request payloads that mutate the store (Mutate /
  /// InstallChunk / AuxExchange): these are deduplicated by token and
  /// their replies cached for replay. Reads are idempotent and simply
  /// re-execute on duplicate delivery.
  [[nodiscard]] static bool IsMutatingRequest(const MessagePayload& request);

  /// Applies one decoded request and produces the reply payload. `src`
  /// and `request_id` identify the mutation's idempotency token for the
  /// WAL (reads ignore them).
  [[nodiscard]] MessagePayload ApplyLocked(const MessagePayload& request,
                                           EndpointId src,
                                           std::uint64_t request_id)
      REQUIRES(mu_);

  /// Synthesizes the reply for a mutation whose token was recovered from
  /// the WAL: the mutation is applied state, but its encoded reply died
  /// with the crashed process, so the answer is reconstructed from the
  /// current store (e.g. FindEdge supplies the record id a kAddEdge retry
  /// expects).
  [[nodiscard]] MessagePayload RecoveredReplyLocked(
      const MessagePayload& request) REQUIRES(mu_);

  /// Records a mutation token, evicting the oldest entry (and its cached
  /// reply) once the window overflows.
  void RememberLocked(const DedupKey& key) REQUIRES(mu_);

  NeighborsReply DoNeighbors(const NeighborsRequest& req) REQUIRES(mu_);
  ProbeReply DoProbe(const ProbeRequest& req) REQUIRES(mu_);
  MutateReply DoMutate(const MutateRequest& req, EndpointId src,
                       std::uint64_t request_id) REQUIRES(mu_);
  InstallChunkReply DoInstall(const InstallChunkRequest& req, EndpointId src,
                              std::uint64_t request_id) REQUIRES(mu_);
  ExtractReply DoExtract(const ExtractRequest& req) REQUIRES(mu_);
  AuxExchangeReply DoAux(const AuxExchangeRequest& req, EndpointId src,
                         std::uint64_t request_id) REQUIRES(mu_);
  HealthReply DoHealth() REQUIRES(mu_);
  CheckpointReply DoCheckpoint() REQUIRES(mu_);
  DumpReply DoDump() REQUIRES(mu_);

  const PartitionId partition_;
  const EndpointId endpoint_;
  // audit:allow(guard, not owned; Transport implementations self-synchronize)
  Transport* const transport_;
  const std::string label_;
  /// Serializes every request against this partition's store — the
  /// message-era successor of the cluster's per-partition shard mutex,
  /// so it keeps the kRankPartitionBase + p rank slot.
  mutable Mutex mu_;
  std::unique_ptr<GraphStore> mem_store_ GUARDED_BY(mu_);
  std::unique_ptr<DurableGraphStore> durable_ GUARDED_BY(mu_);
  // audit:allow(guard, set once in the ctor; request paths read it under mu_)
  DurableGraphStore* durable_raw_;
  // audit:allow(guard, same single-assignment view as durable_raw_)
  GraphStore* store_;
  /// Dedup window capacity (Options::dedup_window, defaulted).
  const std::size_t dedup_window_;
  /// Mutation tokens this server has applied (or recovered from the WAL),
  /// plus their FIFO eviction order. Exactly-once contract: a token in
  /// `seen_` is never re-applied; if its encoded reply is in `replies_`
  /// it is replayed verbatim, otherwise (recovered token) the reply is
  /// synthesized from store state. All three structures evict together.
  std::set<DedupKey> seen_ GUARDED_BY(mu_);
  std::deque<DedupKey> seen_fifo_ GUARDED_BY(mu_);
  std::map<DedupKey, std::string> replies_ GUARDED_BY(mu_);
  // audit:allow(guard, set once in Open() before the endpoint is registered)
  std::uint64_t max_recovered_token_id_ = 0;
  Counter* const m_requests_;
  Counter* const m_duplicates_;
  Counter* const m_decode_errors_;
  Counter* const m_reply_errors_;
  Counter* const m_dedup_hits_;
};

}  // namespace hermes

#endif  // HERMES_SERVER_PARTITION_SERVER_H_
