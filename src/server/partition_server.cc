#include "server/partition_server.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/logging.h"
#include "graphdb/durable_store.h"
#include "graphdb/graph_store.h"
#include "graphdb/node_snapshot.h"
#include "storage/records.h"

namespace hermes {

namespace {

/// Default dedup window when Options::dedup_window is 0. Standalone
/// servers (tests, benches) see at most a few in-flight frames; the
/// cluster overrides this with inbox capacity x endpoint count so a
/// token can never be evicted while its duplicate is still queued.
constexpr std::size_t kDefaultDedupWindow = 4096;

}  // namespace

PartitionServer::PartitionServer(PartitionId partition, EndpointId endpoint,
                                 Transport* transport,
                                 std::unique_ptr<GraphStore> mem_store,
                                 std::unique_ptr<DurableGraphStore> durable,
                                 GraphStore* store, std::size_t dedup_window)
    : partition_(partition),
      endpoint_(endpoint),
      transport_(transport),
      label_("server.p" + std::to_string(partition)),
      mu_(label_.c_str(),
          lock_order::kRankPartitionBase + static_cast<int>(partition)),
      mem_store_(std::move(mem_store)),
      durable_(std::move(durable)),
      durable_raw_(durable_.get()),
      store_(store),
      dedup_window_(dedup_window == 0 ? kDefaultDedupWindow : dedup_window),
      m_requests_(MetricsRegistry::Global().GetCounter("server.requests")),
      m_duplicates_(
          MetricsRegistry::Global().GetCounter("server.duplicate_requests")),
      m_decode_errors_(
          MetricsRegistry::Global().GetCounter("server.decode_errors")),
      m_reply_errors_(
          MetricsRegistry::Global().GetCounter("server.reply_errors")),
      m_dedup_hits_(MetricsRegistry::Global().GetCounter("msg.dedup_hits")) {}

PartitionServer::~PartitionServer() = default;

Result<std::unique_ptr<PartitionServer>> PartitionServer::Open(
    PartitionId partition, EndpointId endpoint, Transport* transport,
    Options options) {
  std::unique_ptr<GraphStore> mem_store;
  std::unique_ptr<DurableGraphStore> durable;
  GraphStore* store = nullptr;
  if (options.durability_dir.empty()) {
    mem_store = std::make_unique<GraphStore>(partition);
    store = mem_store.get();
  } else {
    std::filesystem::create_directories(options.durability_dir);
    HERMES_ASSIGN_OR_RETURN(
        durable, DurableGraphStore::Open(partition, options.durability_dir));
    store = durable->mutable_store();
  }
  std::unique_ptr<PartitionServer> server(new PartitionServer(
      partition, endpoint, transport, std::move(mem_store), std::move(durable),
      store, options.dedup_window));
  PartitionServer* raw = server.get();
  if (raw->durable_raw_ != nullptr) {
    // Seed the dedup table with every token the WAL still remembers: a
    // client whose reply died with the crashed process is about to retry,
    // and that retry must be answered (RecoveredReplyLocked), never
    // re-applied. The endpoint is not registered yet, so this lock is
    // uncontended — it exists for the thread-safety analysis.
    MutexLock lock(&raw->mu_);
    for (const WalToken& token : raw->durable_raw_->recovered_tokens()) {
      const DedupKey key{static_cast<EndpointId>(token.src), token.id};
      if (raw->seen_.insert(key).second) {
        raw->seen_fifo_.push_back(key);
      }
      raw->max_recovered_token_id_ =
          std::max(raw->max_recovered_token_id_, token.id);
    }
    while (raw->seen_fifo_.size() > raw->dedup_window_) {
      raw->seen_.erase(raw->seen_fifo_.front());
      raw->seen_fifo_.pop_front();
    }
  }
  HERMES_RETURN_NOT_OK(transport->OpenEndpoint(
      endpoint, [raw](std::string frame) { raw->HandleFrame(std::move(frame)); }));
  return server;
}

void PartitionServer::HandleFrame(std::string frame) {
  auto env = DecodeFrame(frame);
  if (!env.ok()) {
    // No request id to answer to; the caller's timeout surfaces the loss.
    m_decode_errors_->Increment();
    return;
  }
  const bool mutating = IsMutatingRequest(env->payload);
  const DedupKey key{env->src, env->request_id};
  std::string encoded;
  {
    MutexLock lock(&mu_);
    if (mutating && replies_.count(key) != 0) {
      // Same-token retry (or a transport-manufactured duplicate) of a
      // mutation this server already applied: replay the cached reply
      // byte-for-byte. Re-applying would double-execute; replying with
      // nothing — the pre-fix behavior — made every same-id retry time
      // out, which is the at-most-once hole this path closes.
      m_duplicates_->Increment();
      m_dedup_hits_->Increment();
      encoded = replies_[key];
    } else {
      Envelope reply;
      reply.request_id = env->request_id;
      reply.src = endpoint_;
      reply.dst = env->src;
      if (mutating && seen_.count(key) != 0) {
        // Token recovered from the WAL: the mutation is applied state,
        // but the encoded reply died with the crashed process.
        m_duplicates_->Increment();
        m_dedup_hits_->Increment();
        reply.payload = RecoveredReplyLocked(env->payload);
      } else {
        if (mutating) RememberLocked(key);
        reply.payload = ApplyLocked(env->payload, env->src, env->request_id);
        m_requests_->Increment();
      }
      auto frame_bytes = EncodeFrame(reply);
      if (!frame_bytes.ok()) {
        m_reply_errors_->Increment();
        return;
      }
      encoded = std::move(*frame_bytes);
      // Cache the encoded reply while the token is in the window, so
      // every later same-token delivery gets the identical answer.
      if (mutating) replies_[key] = encoded;
    }
  }
  // Reply send happens with no locks held (class contract).
  const Status sent = transport_->Send(env->src, std::move(encoded));
  if (!sent.ok()) {
    m_reply_errors_->Increment();
    HERMES_LOG(Warning) << "partition server p" << partition_
                        << ": reply send failed: " << sent.ToString();
  }
}

bool PartitionServer::IsMutatingRequest(const MessagePayload& request) {
  return std::get_if<MutateRequest>(&request) != nullptr ||
         std::get_if<InstallChunkRequest>(&request) != nullptr ||
         std::get_if<AuxExchangeRequest>(&request) != nullptr;
}

void PartitionServer::RememberLocked(const DedupKey& key) {
  if (!seen_.insert(key).second) return;
  seen_fifo_.push_back(key);
  if (seen_fifo_.size() > dedup_window_) {
    replies_.erase(seen_fifo_.front());
    seen_.erase(seen_fifo_.front());
    seen_fifo_.pop_front();
  }
}

MessagePayload PartitionServer::ApplyLocked(const MessagePayload& request,
                                            EndpointId src,
                                            std::uint64_t request_id) {
  if (const auto* m = std::get_if<NeighborsRequest>(&request)) {
    return DoNeighbors(*m);
  }
  if (const auto* m = std::get_if<ProbeRequest>(&request)) {
    return DoProbe(*m);
  }
  if (const auto* m = std::get_if<MutateRequest>(&request)) {
    return DoMutate(*m, src, request_id);
  }
  if (const auto* m = std::get_if<InstallChunkRequest>(&request)) {
    return DoInstall(*m, src, request_id);
  }
  if (const auto* m = std::get_if<ExtractRequest>(&request)) {
    return DoExtract(*m);
  }
  if (const auto* m = std::get_if<AuxExchangeRequest>(&request)) {
    return DoAux(*m, src, request_id);
  }
  if (std::get_if<HealthRequest>(&request) != nullptr) {
    return DoHealth();
  }
  if (std::get_if<CheckpointRequest>(&request) != nullptr) {
    return DoCheckpoint();
  }
  if (std::get_if<DumpRequest>(&request) != nullptr) {
    return DoDump();
  }
  MutateReply reply;
  reply.status = Status::InvalidArgument("server: frame is not a request");
  return reply;
}

MessagePayload PartitionServer::RecoveredReplyLocked(
    const MessagePayload& request) {
  // The mutation's effects are already in the recovered store; the reply
  // is reconstructed from what the apply must have produced. Success is
  // the only reply ever cached into the WAL path: a mutation that failed
  // Precheck was never logged, so its token was never recovered.
  if (const auto* m = std::get_if<MutateRequest>(&request)) {
    MutateReply reply;
    reply.status = Status::OK();
    if (m->op == MutateRequest::Op::kAddEdge) {
      if (auto rid = store_->FindEdge(m->vertex, m->other); rid.ok()) {
        reply.record_id = *rid;
      }
    }
    return reply;
  }
  if (const auto* m = std::get_if<InstallChunkRequest>(&request)) {
    // Counts are recomputed from presence. A crash mid-chunk can leave
    // the chunk partially logged; the cluster rebuilds migration state
    // from Dump() on Recover(), so this reply only serves stray retries.
    InstallChunkReply reply;
    reply.status = Status::OK();
    for (const auto& node : m->nodes) {
      if (store_->NodeExists(node.id)) ++reply.nodes_created;
    }
    for (const auto& edge : m->edges) {
      if (store_->FindEdge(edge.v, edge.other).ok()) ++reply.edges_created;
    }
    return reply;
  }
  if (const auto* m = std::get_if<AuxExchangeRequest>(&request)) {
    AuxExchangeReply reply;
    reply.status = Status::OK();
    reply.applied = m->entries.size();
    return reply;
  }
  MutateReply reply;
  reply.status = Status::Internal("recovered token for non-mutating request");
  return reply;
}

NeighborsReply PartitionServer::DoNeighbors(const NeighborsRequest& req) {
  NeighborsReply reply;
  reply.status = Status::OK();
  reply.results.reserve(req.vertices.size());
  for (VertexId v : req.vertices) {
    NeighborsReply::Adjacency adj;
    auto neighbors = req.has_type
                         ? store_->NeighborsByType(v, req.type)
                         : store_->Neighbors(v);
    if (neighbors.ok()) {
      adj.status = Status::OK();
      adj.neighbors = std::move(*neighbors);
    } else {
      adj.status = neighbors.status();
    }
    reply.results.push_back(std::move(adj));
  }
  return reply;
}

ProbeReply PartitionServer::DoProbe(const ProbeRequest& req) {
  ProbeReply reply;
  reply.status = Status::OK();
  switch (req.mode) {
    case ProbeRequest::Mode::kHasNode:
      reply.truth = store_->HasNode(req.vertex);
      break;
    case ProbeRequest::Mode::kNodeExists:
      reply.truth = store_->NodeExists(req.vertex);
      break;
    case ProbeRequest::Mode::kEdgeIsGhost: {
      auto ghost = store_->EdgeIsGhost(req.vertex, req.other);
      if (ghost.ok()) {
        reply.truth = *ghost;
      } else {
        reply.status = ghost.status();
      }
      break;
    }
  }
  return reply;
}

MutateReply PartitionServer::DoMutate(const MutateRequest& req,
                                      EndpointId src,
                                      std::uint64_t request_id) {
  const WalToken token{src, request_id};
  MutateReply reply;
  switch (req.op) {
    case MutateRequest::Op::kCreateNode:
      reply.status = durable_raw_
                         ? durable_raw_->CreateNode(req.vertex, req.weight, token)
                         : store_->CreateNode(req.vertex, req.weight);
      break;
    case MutateRequest::Op::kRemoveNode:
      reply.status = durable_raw_ ? durable_raw_->RemoveNode(req.vertex, token)
                                  : store_->RemoveNode(req.vertex);
      break;
    case MutateRequest::Op::kSetNodeState: {
      const NodeState state = static_cast<NodeState>(req.node_state);
      reply.status = durable_raw_
                         ? durable_raw_->SetNodeState(req.vertex, state, token)
                         : store_->SetNodeState(req.vertex, state);
      break;
    }
    case MutateRequest::Op::kAddNodeWeight:
      reply.status = durable_raw_
                         ? durable_raw_->AddNodeWeight(req.vertex, req.weight, token)
                         : store_->AddNodeWeight(req.vertex, req.weight);
      break;
    case MutateRequest::Op::kAddEdge: {
      auto added = durable_raw_
                       ? durable_raw_->AddEdge(req.vertex, req.other,
                                               req.type_or_key,
                                               req.other_is_local, token)
                       : store_->AddEdge(req.vertex, req.other,
                                         req.type_or_key, req.other_is_local);
      if (added.ok()) {
        reply.record_id = *added;
        reply.status = Status::OK();
      } else {
        reply.status = added.status();
      }
      break;
    }
    case MutateRequest::Op::kRemoveEdge:
      reply.status = durable_raw_
                         ? durable_raw_->RemoveEdge(req.vertex, req.other, token)
                         : store_->RemoveEdge(req.vertex, req.other);
      break;
    case MutateRequest::Op::kSetNodeProperty:
      reply.status =
          durable_raw_
              ? durable_raw_->SetNodeProperty(req.vertex, req.type_or_key,
                                              req.value, token)
              : store_->SetNodeProperty(req.vertex, req.type_or_key,
                                        req.value);
      break;
    case MutateRequest::Op::kSetEdgeProperty:
      reply.status =
          durable_raw_
              ? durable_raw_->SetEdgeProperty(req.vertex, req.other,
                                              req.type_or_key, req.value,
                                              token)
              : store_->SetEdgeProperty(req.vertex, req.other,
                                        req.type_or_key, req.value);
      break;
  }
  return reply;
}

InstallChunkReply PartitionServer::DoInstall(const InstallChunkRequest& req,
                                             EndpointId src,
                                             std::uint64_t request_id) {
  const WalToken token{src, request_id};
  InstallChunkReply reply;
  reply.status = Status::OK();
  // Nodes first, so edges between co-installed vertices find both
  // endpoints. nodes_created counts actual creations even on failure:
  // the cluster's unwind removes exactly these.
  for (const auto& node : req.nodes) {
    const Status st = durable_raw_
                          ? durable_raw_->CreateNode(node.id, node.weight, token)
                          : store_->CreateNode(node.id, node.weight);
    if (!st.ok()) {
      reply.status = st;
      return reply;
    }
    ++reply.nodes_created;
    for (const auto& prop : node.properties) {
      const Status pst =
          durable_raw_
              ? durable_raw_->SetNodeProperty(node.id, prop.key, prop.value,
                                              token)
              : store_->SetNodeProperty(node.id, prop.key, prop.value);
      if (!pst.ok()) {
        reply.status = pst;
        return reply;
      }
    }
  }
  for (const auto& edge : req.edges) {
    auto added =
        durable_raw_
            ? durable_raw_->AddEdge(edge.v, edge.other, edge.type,
                                    edge.other_is_local, token)
            : store_->AddEdge(edge.v, edge.other, edge.type,
                              edge.other_is_local);
    if (!added.ok()) {
      // Co-migrated neighbors may have installed this record already.
      if (added.status().IsAlreadyExists()) continue;
      reply.status = added.status();
      return reply;
    }
    ++reply.edges_created;
    if (edge.properties_included) {
      for (const auto& prop : edge.properties) {
        const Status pst =
            durable_raw_
                ? durable_raw_->SetEdgeProperty(edge.v, edge.other, prop.key,
                                                prop.value, token)
                : store_->SetEdgeProperty(edge.v, edge.other, prop.key,
                                          prop.value);
        // Ghost copies refuse properties by design.
        if (!pst.ok() && !pst.IsInvalidArgument()) {
          reply.status = pst;
          return reply;
        }
      }
    }
  }
  return reply;
}

ExtractReply PartitionServer::DoExtract(const ExtractRequest& req) {
  ExtractReply reply;
  auto snap = store_->ExtractNode(req.vertex);
  if (!snap.ok()) {
    reply.status = snap.status();
    return reply;
  }
  reply.status = Status::OK();
  reply.id = snap->id;
  reply.weight = snap->weight;
  reply.wire_bytes = snap->WireBytes();
  reply.properties.reserve(snap->properties.size());
  for (const auto& [key, value] : snap->properties) {
    reply.properties.push_back({key, value});
  }
  reply.relationships.reserve(snap->relationships.size());
  for (const auto& rel : snap->relationships) {
    ExtractReply::Relationship out;
    out.other = rel.other;
    out.type = rel.type;
    out.properties_included = rel.properties_included;
    out.properties.reserve(rel.properties.size());
    for (const auto& [key, value] : rel.properties) {
      out.properties.push_back({key, value});
    }
    reply.relationships.push_back(std::move(out));
  }
  return reply;
}

AuxExchangeReply PartitionServer::DoAux(const AuxExchangeRequest& req,
                                        EndpointId src,
                                        std::uint64_t request_id) {
  const WalToken token{src, request_id};
  AuxExchangeReply reply;
  reply.status = Status::OK();
  for (const auto& entry : req.entries) {
    const Status st =
        durable_raw_
            ? durable_raw_->AddNodeWeight(entry.vertex, entry.delta, token)
                     : store_->AddNodeWeight(entry.vertex, entry.delta);
    if (!st.ok()) {
      reply.status = st;
      return reply;
    }
    ++reply.applied;
  }
  return reply;
}

HealthReply PartitionServer::DoHealth() {
  HealthReply reply;
  reply.status = Status::OK();
  reply.store_bytes = store_->MemoryBytes();
  reply.nodes = store_->NumNodes();
  reply.relationships = store_->NumRelationships();
  reply.ghost_relationships = store_->NumGhostRelationships();
  return reply;
}

CheckpointReply PartitionServer::DoCheckpoint() {
  CheckpointReply reply;
  if (durable_raw_ == nullptr) {
    reply.status = Status::InvalidArgument("server is not durable");
    return reply;
  }
  // audit:allow(blocking, checkpoint quiesces this server by design: the
  // server mutex is exactly what makes the snapshot atomic against
  // concurrent requests, and the cluster additionally serializes
  // checkpoints against migration)
  reply.status = durable_raw_->Checkpoint();
  return reply;
}

DumpReply PartitionServer::DoDump() {
  DumpReply reply;
  reply.status = Status::OK();
  for (const auto& node : store_->DumpNodes()) {
    reply.nodes.push_back({node.id, node.weight});
  }
  for (const auto& rel : store_->DumpRelationships()) {
    reply.rels.push_back({rel.src, rel.dst, rel.type, rel.ghost});
  }
  return reply;
}

}  // namespace hermes
