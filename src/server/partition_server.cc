#include "server/partition_server.h"

#include <filesystem>
#include <vector>

#include "common/logging.h"
#include "graphdb/durable_store.h"
#include "graphdb/graph_store.h"
#include "graphdb/node_snapshot.h"
#include "storage/records.h"

namespace hermes {

namespace {

/// Duplicate-suppression window per server. Large enough that a
/// transport-manufactured duplicate (delivered at most a few frames
/// after the original) always lands inside it.
constexpr std::size_t kDedupWindow = 4096;

}  // namespace

PartitionServer::PartitionServer(PartitionId partition, EndpointId endpoint,
                                 Transport* transport,
                                 std::unique_ptr<GraphStore> mem_store,
                                 std::unique_ptr<DurableGraphStore> durable,
                                 GraphStore* store)
    : partition_(partition),
      endpoint_(endpoint),
      transport_(transport),
      label_("server.p" + std::to_string(partition)),
      mu_(label_.c_str(),
          lock_order::kRankPartitionBase + static_cast<int>(partition)),
      mem_store_(std::move(mem_store)),
      durable_(std::move(durable)),
      durable_raw_(durable_.get()),
      store_(store),
      m_requests_(MetricsRegistry::Global().GetCounter("server.requests")),
      m_duplicates_(
          MetricsRegistry::Global().GetCounter("server.duplicate_requests")),
      m_decode_errors_(
          MetricsRegistry::Global().GetCounter("server.decode_errors")),
      m_reply_errors_(
          MetricsRegistry::Global().GetCounter("server.reply_errors")) {}

PartitionServer::~PartitionServer() = default;

Result<std::unique_ptr<PartitionServer>> PartitionServer::Open(
    PartitionId partition, EndpointId endpoint, Transport* transport,
    Options options) {
  std::unique_ptr<GraphStore> mem_store;
  std::unique_ptr<DurableGraphStore> durable;
  GraphStore* store = nullptr;
  if (options.durability_dir.empty()) {
    mem_store = std::make_unique<GraphStore>(partition);
    store = mem_store.get();
  } else {
    std::filesystem::create_directories(options.durability_dir);
    HERMES_ASSIGN_OR_RETURN(
        durable, DurableGraphStore::Open(partition, options.durability_dir));
    store = durable->mutable_store();
  }
  std::unique_ptr<PartitionServer> server(
      new PartitionServer(partition, endpoint, transport,
                          std::move(mem_store), std::move(durable), store));
  PartitionServer* raw = server.get();
  HERMES_RETURN_NOT_OK(transport->OpenEndpoint(
      endpoint, [raw](std::string frame) { raw->HandleFrame(std::move(frame)); }));
  return server;
}

void PartitionServer::HandleFrame(std::string frame) {
  auto env = DecodeFrame(frame);
  if (!env.ok()) {
    // No request id to answer to; the caller's timeout surfaces the loss.
    m_decode_errors_->Increment();
    return;
  }
  Envelope reply;
  reply.request_id = env->request_id;
  reply.src = endpoint_;
  reply.dst = env->src;
  bool duplicate = false;
  {
    MutexLock lock(&mu_);
    duplicate = !RememberLocked(env->src, env->request_id);
    if (!duplicate) {
      reply.payload = ApplyLocked(env->payload);
    }
  }
  if (duplicate) {
    // The original application already replied (or its reply was lost,
    // in which case the caller's timeout makes the op retryable);
    // re-applying would double-execute a non-idempotent mutation.
    m_duplicates_->Increment();
    return;
  }
  m_requests_->Increment();
  auto encoded = EncodeFrame(reply);
  if (!encoded.ok()) {
    m_reply_errors_->Increment();
    return;
  }
  const Status sent = transport_->Send(reply.dst, std::move(*encoded));
  if (!sent.ok()) {
    m_reply_errors_->Increment();
    HERMES_LOG(Warning) << "partition server p" << partition_
                        << ": reply send failed: " << sent.ToString();
  }
}

bool PartitionServer::RememberLocked(EndpointId src,
                                     std::uint64_t request_id) {
  if (!seen_.insert({src, request_id}).second) {
    return false;
  }
  seen_fifo_.push_back({src, request_id});
  if (seen_fifo_.size() > kDedupWindow) {
    seen_.erase(seen_fifo_.front());
    seen_fifo_.pop_front();
  }
  return true;
}

MessagePayload PartitionServer::ApplyLocked(const MessagePayload& request) {
  if (const auto* m = std::get_if<NeighborsRequest>(&request)) {
    return DoNeighbors(*m);
  }
  if (const auto* m = std::get_if<ProbeRequest>(&request)) {
    return DoProbe(*m);
  }
  if (const auto* m = std::get_if<MutateRequest>(&request)) {
    return DoMutate(*m);
  }
  if (const auto* m = std::get_if<InstallChunkRequest>(&request)) {
    return DoInstall(*m);
  }
  if (const auto* m = std::get_if<ExtractRequest>(&request)) {
    return DoExtract(*m);
  }
  if (const auto* m = std::get_if<AuxExchangeRequest>(&request)) {
    return DoAux(*m);
  }
  if (std::get_if<HealthRequest>(&request) != nullptr) {
    return DoHealth();
  }
  if (std::get_if<CheckpointRequest>(&request) != nullptr) {
    return DoCheckpoint();
  }
  if (std::get_if<DumpRequest>(&request) != nullptr) {
    return DoDump();
  }
  MutateReply reply;
  reply.status = Status::InvalidArgument("server: frame is not a request");
  return reply;
}

NeighborsReply PartitionServer::DoNeighbors(const NeighborsRequest& req) {
  NeighborsReply reply;
  reply.status = Status::OK();
  reply.results.reserve(req.vertices.size());
  for (VertexId v : req.vertices) {
    NeighborsReply::Adjacency adj;
    auto neighbors = req.has_type
                         ? store_->NeighborsByType(v, req.type)
                         : store_->Neighbors(v);
    if (neighbors.ok()) {
      adj.status = Status::OK();
      adj.neighbors = std::move(*neighbors);
    } else {
      adj.status = neighbors.status();
    }
    reply.results.push_back(std::move(adj));
  }
  return reply;
}

ProbeReply PartitionServer::DoProbe(const ProbeRequest& req) {
  ProbeReply reply;
  reply.status = Status::OK();
  switch (req.mode) {
    case ProbeRequest::Mode::kHasNode:
      reply.truth = store_->HasNode(req.vertex);
      break;
    case ProbeRequest::Mode::kNodeExists:
      reply.truth = store_->NodeExists(req.vertex);
      break;
    case ProbeRequest::Mode::kEdgeIsGhost: {
      auto ghost = store_->EdgeIsGhost(req.vertex, req.other);
      if (ghost.ok()) {
        reply.truth = *ghost;
      } else {
        reply.status = ghost.status();
      }
      break;
    }
  }
  return reply;
}

MutateReply PartitionServer::DoMutate(const MutateRequest& req) {
  MutateReply reply;
  switch (req.op) {
    case MutateRequest::Op::kCreateNode:
      reply.status = durable_raw_
                         ? durable_raw_->CreateNode(req.vertex, req.weight)
                         : store_->CreateNode(req.vertex, req.weight);
      break;
    case MutateRequest::Op::kRemoveNode:
      reply.status = durable_raw_ ? durable_raw_->RemoveNode(req.vertex)
                                  : store_->RemoveNode(req.vertex);
      break;
    case MutateRequest::Op::kSetNodeState: {
      const NodeState state = static_cast<NodeState>(req.node_state);
      reply.status = durable_raw_
                         ? durable_raw_->SetNodeState(req.vertex, state)
                         : store_->SetNodeState(req.vertex, state);
      break;
    }
    case MutateRequest::Op::kAddNodeWeight:
      reply.status = durable_raw_
                         ? durable_raw_->AddNodeWeight(req.vertex, req.weight)
                         : store_->AddNodeWeight(req.vertex, req.weight);
      break;
    case MutateRequest::Op::kAddEdge: {
      auto added = durable_raw_
                       ? durable_raw_->AddEdge(req.vertex, req.other,
                                               req.type_or_key,
                                               req.other_is_local)
                       : store_->AddEdge(req.vertex, req.other,
                                         req.type_or_key, req.other_is_local);
      if (added.ok()) {
        reply.record_id = *added;
        reply.status = Status::OK();
      } else {
        reply.status = added.status();
      }
      break;
    }
    case MutateRequest::Op::kRemoveEdge:
      reply.status = durable_raw_
                         ? durable_raw_->RemoveEdge(req.vertex, req.other)
                         : store_->RemoveEdge(req.vertex, req.other);
      break;
    case MutateRequest::Op::kSetNodeProperty:
      reply.status =
          durable_raw_
              ? durable_raw_->SetNodeProperty(req.vertex, req.type_or_key,
                                              req.value)
              : store_->SetNodeProperty(req.vertex, req.type_or_key,
                                        req.value);
      break;
    case MutateRequest::Op::kSetEdgeProperty:
      reply.status =
          durable_raw_
              ? durable_raw_->SetEdgeProperty(req.vertex, req.other,
                                              req.type_or_key, req.value)
              : store_->SetEdgeProperty(req.vertex, req.other,
                                        req.type_or_key, req.value);
      break;
  }
  return reply;
}

InstallChunkReply PartitionServer::DoInstall(const InstallChunkRequest& req) {
  InstallChunkReply reply;
  reply.status = Status::OK();
  // Nodes first, so edges between co-installed vertices find both
  // endpoints. nodes_created counts actual creations even on failure:
  // the cluster's unwind removes exactly these.
  for (const auto& node : req.nodes) {
    const Status st = durable_raw_
                          ? durable_raw_->CreateNode(node.id, node.weight)
                          : store_->CreateNode(node.id, node.weight);
    if (!st.ok()) {
      reply.status = st;
      return reply;
    }
    ++reply.nodes_created;
    for (const auto& prop : node.properties) {
      const Status pst =
          durable_raw_
              ? durable_raw_->SetNodeProperty(node.id, prop.key, prop.value)
              : store_->SetNodeProperty(node.id, prop.key, prop.value);
      if (!pst.ok()) {
        reply.status = pst;
        return reply;
      }
    }
  }
  for (const auto& edge : req.edges) {
    auto added =
        durable_raw_
            ? durable_raw_->AddEdge(edge.v, edge.other, edge.type,
                                    edge.other_is_local)
            : store_->AddEdge(edge.v, edge.other, edge.type,
                              edge.other_is_local);
    if (!added.ok()) {
      // Co-migrated neighbors may have installed this record already.
      if (added.status().IsAlreadyExists()) continue;
      reply.status = added.status();
      return reply;
    }
    ++reply.edges_created;
    if (edge.properties_included) {
      for (const auto& prop : edge.properties) {
        const Status pst =
            durable_raw_
                ? durable_raw_->SetEdgeProperty(edge.v, edge.other, prop.key,
                                                prop.value)
                : store_->SetEdgeProperty(edge.v, edge.other, prop.key,
                                          prop.value);
        // Ghost copies refuse properties by design.
        if (!pst.ok() && !pst.IsInvalidArgument()) {
          reply.status = pst;
          return reply;
        }
      }
    }
  }
  return reply;
}

ExtractReply PartitionServer::DoExtract(const ExtractRequest& req) {
  ExtractReply reply;
  auto snap = store_->ExtractNode(req.vertex);
  if (!snap.ok()) {
    reply.status = snap.status();
    return reply;
  }
  reply.status = Status::OK();
  reply.id = snap->id;
  reply.weight = snap->weight;
  reply.wire_bytes = snap->WireBytes();
  reply.properties.reserve(snap->properties.size());
  for (const auto& [key, value] : snap->properties) {
    reply.properties.push_back({key, value});
  }
  reply.relationships.reserve(snap->relationships.size());
  for (const auto& rel : snap->relationships) {
    ExtractReply::Relationship out;
    out.other = rel.other;
    out.type = rel.type;
    out.properties_included = rel.properties_included;
    out.properties.reserve(rel.properties.size());
    for (const auto& [key, value] : rel.properties) {
      out.properties.push_back({key, value});
    }
    reply.relationships.push_back(std::move(out));
  }
  return reply;
}

AuxExchangeReply PartitionServer::DoAux(const AuxExchangeRequest& req) {
  AuxExchangeReply reply;
  reply.status = Status::OK();
  for (const auto& entry : req.entries) {
    const Status st =
        durable_raw_ ? durable_raw_->AddNodeWeight(entry.vertex, entry.delta)
                     : store_->AddNodeWeight(entry.vertex, entry.delta);
    if (!st.ok()) {
      reply.status = st;
      return reply;
    }
    ++reply.applied;
  }
  return reply;
}

HealthReply PartitionServer::DoHealth() {
  HealthReply reply;
  reply.status = Status::OK();
  reply.store_bytes = store_->MemoryBytes();
  reply.nodes = store_->NumNodes();
  reply.relationships = store_->NumRelationships();
  reply.ghost_relationships = store_->NumGhostRelationships();
  return reply;
}

CheckpointReply PartitionServer::DoCheckpoint() {
  CheckpointReply reply;
  if (durable_raw_ == nullptr) {
    reply.status = Status::InvalidArgument("server is not durable");
    return reply;
  }
  // audit:allow(blocking, checkpoint quiesces this server by design: the
  // server mutex is exactly what makes the snapshot atomic against
  // concurrent requests, and the cluster additionally serializes
  // checkpoints against migration)
  reply.status = durable_raw_->Checkpoint();
  return reply;
}

DumpReply PartitionServer::DoDump() {
  DumpReply reply;
  reply.status = Status::OK();
  for (const auto& node : store_->DumpNodes()) {
    reply.nodes.push_back({node.id, node.weight});
  }
  for (const auto& rel : store_->DumpRelationships()) {
    reply.rels.push_back({rel.src, rel.dst, rel.type, rel.ghost});
  }
  return reply;
}

}  // namespace hermes
