#include "graphdb/graph_store.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace hermes {

GraphStore::GraphStore(PartitionId partition_id)
    : partition_id_(partition_id),
      rel_ids_(partition_id),
      prop_ids_(partition_id) {}

// --- Nodes -------------------------------------------------------------------

Status GraphStore::CreateNode(VertexId id, double weight) {
  NodeRecord record;
  record.in_use = true;
  record.state = NodeState::kAvailable;
  record.weight = weight;
  return nodes_.Create(id, record);
}

bool GraphStore::HasNode(VertexId id) const {
  const NodeRecord* r = nodes_.GetPtr(id);
  return r != nullptr && r->in_use && r->state == NodeState::kAvailable;
}

bool GraphStore::NodeExists(VertexId id) const {
  const NodeRecord* r = nodes_.GetPtr(id);
  return r != nullptr && r->in_use;
}

Result<double> GraphStore::NodeWeight(VertexId id) const {
  const NodeRecord* r = nodes_.GetPtr(id);
  if (r == nullptr || !r->in_use) return Status::NotFound("no such node");
  return r->weight;
}

Status GraphStore::AddNodeWeight(VertexId id, double delta) {
  NodeRecord* r = nodes_.GetMutable(id);
  if (r == nullptr || !r->in_use) return Status::NotFound("no such node");
  r->weight += delta;
  return Status::OK();
}

Status GraphStore::SetNodeState(VertexId id, NodeState state) {
  NodeRecord* r = nodes_.GetMutable(id);
  if (r == nullptr || !r->in_use) return Status::NotFound("no such node");
  r->state = state;
  return Status::OK();
}

Result<NodeState> GraphStore::GetNodeState(VertexId id) const {
  const NodeRecord* r = nodes_.GetPtr(id);
  if (r == nullptr || !r->in_use) return Status::NotFound("no such node");
  return r->state;
}

// --- Relationship chains -------------------------------------------------------

void GraphStore::LinkIntoChain(VertexId node, RecordId rel_id,
                               RelationshipRecord* rec) {
  NodeRecord* n = nodes_.GetMutable(node);
  HERMES_CHECK(n != nullptr && n->in_use);
  const RecordId old_head = n->first_rel;
  NextLink(rec, node) = old_head;
  PrevLink(rec, node) = kInvalidRecord;
  if (old_head != kInvalidRecord) {
    RelationshipRecord* head = rels_.GetMutable(old_head);
    HERMES_CHECK(head != nullptr);
    PrevLink(head, node) = rel_id;
  }
  n->first_rel = rel_id;
}

void GraphStore::UnlinkFromChain(VertexId node, RecordId rel_id,
                                 RelationshipRecord* rec) {
  const RecordId prev = PrevLink(rec, node);
  const RecordId next = NextLink(rec, node);
  if (prev != kInvalidRecord) {
    RelationshipRecord* p = rels_.GetMutable(prev);
    HERMES_CHECK(p != nullptr);
    NextLink(p, node) = next;
  } else {
    NodeRecord* n = nodes_.GetMutable(node);
    HERMES_CHECK(n != nullptr);
    HERMES_CHECK(n->first_rel == rel_id);
    n->first_rel = next;
  }
  if (next != kInvalidRecord) {
    RelationshipRecord* nx = rels_.GetMutable(next);
    HERMES_CHECK(nx != nullptr);
    PrevLink(nx, node) = prev;
  }
  NextLink(rec, node) = kInvalidRecord;
  PrevLink(rec, node) = kInvalidRecord;
}

Result<RecordId> GraphStore::AddEdge(VertexId v, VertexId other,
                                     std::uint32_t type,
                                     bool other_is_local) {
  if (v == other) return Status::InvalidArgument("self-loops not allowed");
  if (!NodeExists(v)) return Status::NotFound("local endpoint missing");
  // Unavailable endpoints reject writes, exactly like Neighbors() rejects
  // reads. Without this, an edge written during a migration barrier
  // window lands on the node's already-snapshotted source copy and is
  // destroyed by the commit step's RemoveNode — the graph view keeps an
  // edge no store hosts.
  if (!HasNode(v)) return Status::Unavailable("node is mid-migration");

  // Existing record? (Either a duplicate AddEdge, or — during migration —
  // a half record created from the other endpoint that we now upgrade.)
  auto existing = FindEdge(v, other);
  if (existing.ok()) {
    return Status::AlreadyExists("edge already present in chain");
  }
  if (other_is_local) {
    if (!NodeExists(other)) {
      return Status::NotFound("other endpoint claimed local but missing");
    }
    if (!HasNode(other)) {
      return Status::Unavailable("other endpoint is mid-migration");
    }
    // The other endpoint may already hold a half record for this edge
    // (it used to see `v` as remote). Upgrade it to a full record.
    auto half = FindEdge(other, v);
    if (half.ok()) {
      const RecordId rel_id = *half;
      RelationshipRecord* rec = rels_.GetMutable(rel_id);
      rec->ghost = false;
      LinkIntoChain(v, rel_id, rec);
      return rel_id;
    }
  }

  RelationshipRecord rec;
  rec.in_use = true;
  rec.type = type;
  // Store the lower endpoint as src so chain-side selection is stable.
  rec.src = std::min(v, other);
  rec.dst = std::max(v, other);
  rec.ghost = other_is_local ? false : HalfEdgeIsGhost(v, other);

  const RecordId rel_id = rel_ids_.Next();
  HERMES_RETURN_NOT_OK(rels_.Create(rel_id, rec));
  RelationshipRecord* stored = rels_.GetMutable(rel_id);
  LinkIntoChain(v, rel_id, stored);
  if (other_is_local) LinkIntoChain(other, rel_id, stored);
  return rel_id;
}

Status GraphStore::RemoveEdge(VertexId v, VertexId other) {
  HERMES_ASSIGN_OR_RETURN(RecordId rel_id, FindEdge(v, other));
  RelationshipRecord* rec = rels_.GetMutable(rel_id);
  UnlinkFromChain(v, rel_id, rec);
  // Full record: also unlink from the other endpoint's chain.
  if (NodeExists(other)) {
    auto still = FindEdge(other, v);
    if (still.ok() && *still == rel_id) {
      UnlinkFromChain(other, rel_id, rec);
    }
  }
  FreePropertyChain(rec->first_prop);
  return rels_.Delete(rel_id);
}

Result<std::vector<VertexId>> GraphStore::Neighbors(VertexId v) const {
  const NodeRecord* n = nodes_.GetPtr(v);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");
  if (n->state != NodeState::kAvailable) {
    return Status::Unavailable("node is mid-migration");
  }
  std::vector<VertexId> out;
  RecordId id = n->first_rel;
  while (id != kInvalidRecord) {
    const RelationshipRecord* rec = rels_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    out.push_back(rec->OtherEnd(v));
    id = GetNext(*rec, v);
  }
  return out;
}

Result<std::vector<VertexId>> GraphStore::NeighborsByType(
    VertexId v, std::optional<std::uint32_t> type) const {
  const NodeRecord* n = nodes_.GetPtr(v);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");
  if (n->state != NodeState::kAvailable) {
    return Status::Unavailable("node is mid-migration");
  }
  std::vector<VertexId> out;
  RecordId id = n->first_rel;
  while (id != kInvalidRecord) {
    const RelationshipRecord* rec = rels_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    if (!type.has_value() || rec->type == *type) {
      out.push_back(rec->OtherEnd(v));
    }
    id = GetNext(*rec, v);
  }
  return out;
}

Result<std::size_t> GraphStore::DegreeOf(VertexId v) const {
  HERMES_ASSIGN_OR_RETURN(auto neighbors, Neighbors(v));
  return neighbors.size();
}

Result<RecordId> GraphStore::FindEdge(VertexId v, VertexId other) const {
  const NodeRecord* n = nodes_.GetPtr(v);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");
  RecordId id = n->first_rel;
  while (id != kInvalidRecord) {
    const RelationshipRecord* rec = rels_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    if (rec->OtherEnd(v) == other) return id;
    id = GetNext(*rec, v);
  }
  return Status::NotFound("edge not in chain");
}

Result<bool> GraphStore::EdgeIsGhost(VertexId v, VertexId other) const {
  HERMES_ASSIGN_OR_RETURN(RecordId rel_id, FindEdge(v, other));
  return rels_.GetPtr(rel_id)->ghost;
}

// --- Properties ----------------------------------------------------------------

Status GraphStore::SetPropertyOnChain(RecordId* first_prop,
                                      std::uint32_t key,
                                      const std::string& value) {
  // Look for an existing property record with this key.
  RecordId id = *first_prop;
  while (id != kInvalidRecord) {
    PropertyRecord* rec = props_.GetMutable(id);
    HERMES_CHECK(rec != nullptr);
    if (rec->key_id == key) {
      if (!rec->inlined && rec->dynamic_head != kInvalidRecord) {
        HERMES_RETURN_NOT_OK(dynamic_.Free(rec->dynamic_head));
      }
      rec->inlined = false;
      rec->dynamic_head = dynamic_.Put(value);
      return Status::OK();
    }
    id = rec->next_prop;
  }
  // Prepend a new property record.
  PropertyRecord rec;
  rec.in_use = true;
  rec.key_id = key;
  rec.inlined = false;
  rec.dynamic_head = dynamic_.Put(value);
  rec.next_prop = *first_prop;
  const RecordId prop_id = prop_ids_.Next();
  HERMES_RETURN_NOT_OK(props_.Create(prop_id, rec));
  *first_prop = prop_id;
  return Status::OK();
}

Result<std::string> GraphStore::GetPropertyFromChain(
    RecordId first_prop, std::uint32_t key) const {
  RecordId id = first_prop;
  while (id != kInvalidRecord) {
    const PropertyRecord* rec = props_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    if (rec->key_id == key) {
      if (rec->inlined) return std::to_string(rec->inline_value);
      return dynamic_.Get(rec->dynamic_head);
    }
    id = rec->next_prop;
  }
  return Status::NotFound("no such property");
}

void GraphStore::FreePropertyChain(RecordId first_prop) {
  RecordId id = first_prop;
  while (id != kInvalidRecord) {
    const PropertyRecord* rec = props_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    const RecordId next = rec->next_prop;
    // The record was just observed live via GetPtr, so freeing its
    // dynamic chain and the record itself cannot legitimately fail — a
    // failure here is chain corruption, not a recoverable condition.
    if (!rec->inlined && rec->dynamic_head != kInvalidRecord) {
      HERMES_CHECK_OK(dynamic_.Free(rec->dynamic_head));
    }
    HERMES_CHECK_OK(props_.Delete(id));
    id = next;
  }
}

std::vector<std::pair<std::uint32_t, std::string>>
GraphStore::DumpPropertyChain(RecordId first_prop) const {
  std::vector<std::pair<std::uint32_t, std::string>> out;
  RecordId id = first_prop;
  while (id != kInvalidRecord) {
    const PropertyRecord* rec = props_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    std::string value = rec->inlined
                            ? std::to_string(rec->inline_value)
                            : dynamic_.Get(rec->dynamic_head).ValueOr("");
    out.emplace_back(rec->key_id, std::move(value));
    id = rec->next_prop;
  }
  return out;
}

Status GraphStore::SetNodeProperty(VertexId id, std::uint32_t key,
                                   const std::string& value) {
  NodeRecord* n = nodes_.GetMutable(id);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");
  return SetPropertyOnChain(&n->first_prop, key, value);
}

Result<std::string> GraphStore::GetNodeProperty(VertexId id,
                                                std::uint32_t key) const {
  const NodeRecord* n = nodes_.GetPtr(id);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");
  return GetPropertyFromChain(n->first_prop, key);
}

Status GraphStore::SetEdgeProperty(VertexId v, VertexId other,
                                   std::uint32_t key,
                                   const std::string& value) {
  HERMES_ASSIGN_OR_RETURN(RecordId rel_id, FindEdge(v, other));
  RelationshipRecord* rec = rels_.GetMutable(rel_id);
  if (rec->ghost) {
    return Status::InvalidArgument(
        "ghost relationships hold no properties; write to the owning "
        "partition");
  }
  return SetPropertyOnChain(&rec->first_prop, key, value);
}

Result<std::string> GraphStore::GetEdgeProperty(VertexId v, VertexId other,
                                                std::uint32_t key) const {
  HERMES_ASSIGN_OR_RETURN(RecordId rel_id, FindEdge(v, other));
  const RelationshipRecord* rec = rels_.GetPtr(rel_id);
  if (rec->ghost) {
    return Status::Unavailable("property lives on the owning partition");
  }
  return GetPropertyFromChain(rec->first_prop, key);
}

// --- Migration -------------------------------------------------------------------

Result<NodeSnapshot> GraphStore::ExtractNode(VertexId v) const {
  const NodeRecord* n = nodes_.GetPtr(v);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");

  NodeSnapshot snap;
  snap.id = v;
  snap.weight = n->weight;
  snap.properties = DumpPropertyChain(n->first_prop);

  RecordId id = n->first_rel;
  while (id != kInvalidRecord) {
    const RelationshipRecord* rec = rels_.GetPtr(id);
    HERMES_CHECK(rec != nullptr);
    NodeSnapshot::Relationship rel;
    rel.other = rec->OtherEnd(v);
    rel.type = rec->type;
    rel.properties_included = !rec->ghost;
    if (!rec->ghost) rel.properties = DumpPropertyChain(rec->first_prop);
    snap.relationships.push_back(std::move(rel));
    id = GetNext(*rec, v);
  }
  return snap;
}

Status GraphStore::RemoveNode(VertexId v) {
  NodeRecord* n = nodes_.GetMutable(v);
  if (n == nullptr || !n->in_use) return Status::NotFound("no such node");

  RecordId id = n->first_rel;
  while (id != kInvalidRecord) {
    RelationshipRecord* rec = rels_.GetMutable(id);
    HERMES_CHECK(rec != nullptr);
    const RecordId next = GetNext(*rec, v);
    const VertexId other = rec->OtherEnd(v);

    UnlinkFromChain(v, id, rec);
    bool shared_with_local_neighbor = false;
    if (NodeExists(other)) {
      auto other_side = FindEdge(other, v);
      shared_with_local_neighbor = other_side.ok() && *other_side == id;
    }
    if (shared_with_local_neighbor) {
      // Full record degrades to the neighbor's half record. The ghost rule
      // (real copy follows the lower vertex id) decides whether this side
      // keeps the properties.
      rec->ghost = HalfEdgeIsGhost(other, v);
      if (rec->ghost && rec->first_prop != kInvalidRecord) {
        FreePropertyChain(rec->first_prop);
        rec->first_prop = kInvalidRecord;
      }
    } else {
      FreePropertyChain(rec->first_prop);
      HERMES_RETURN_NOT_OK(rels_.Delete(id));
    }
    id = next;
  }

  FreePropertyChain(n->first_prop);
  return nodes_.Delete(v);
}

// --- Introspection -----------------------------------------------------------------

std::size_t GraphStore::NumGhostRelationships() const {
  std::size_t ghosts = 0;
  rels_.ForEach([&ghosts](RecordId, const RelationshipRecord& rec) {
    if (rec.ghost) ++ghosts;
    return true;
  });
  return ghosts;
}

std::size_t GraphStore::MemoryBytes() const {
  return nodes_.MemoryBytes() + rels_.MemoryBytes() + props_.MemoryBytes() +
         dynamic_.MemoryBytes();
}

bool GraphStore::CheckChains() const {
  bool ok = true;
  nodes_.ForEach([&](RecordId node_id, const NodeRecord& n) {
    if (!n.in_use) return true;
    const auto v = static_cast<VertexId>(node_id);
    RecordId id = n.first_rel;
    RecordId expected_prev = kInvalidRecord;
    std::size_t steps = 0;
    while (id != kInvalidRecord) {
      const RelationshipRecord* rec = rels_.GetPtr(id);
      if (rec == nullptr || !(rec->src == v || rec->dst == v)) {
        ok = false;
        return false;
      }
      const RecordId prev = rec->src == v ? rec->src_prev : rec->dst_prev;
      if (prev != expected_prev) {
        ok = false;
        return false;
      }
      expected_prev = id;
      id = GetNext(*rec, v);
      if (++steps > rels_.size() + 1) {  // cycle guard
        ok = false;
        return false;
      }
    }
    return true;
  });
  return ok;
}

std::vector<GraphStore::NodeDump> GraphStore::DumpNodes() const {
  std::vector<NodeDump> out;
  out.reserve(nodes_.size());
  nodes_.ForEach([&](RecordId id, const NodeRecord& n) {
    if (n.in_use) {
      out.push_back(NodeDump{static_cast<VertexId>(id), n.weight, n.state,
                             DumpPropertyChain(n.first_prop)});
    }
    return true;
  });
  return out;
}

std::vector<GraphStore::RelationshipDump> GraphStore::DumpRelationships()
    const {
  // Chain membership per endpoint: a record can sit in one chain (half
  // record) or both (full record), and src/dst ids alone cannot tell —
  // a removed-then-recreated node leaves its old half records behind.
  std::set<std::pair<VertexId, RecordId>> linked;
  nodes_.ForEach([&](RecordId node_id, const NodeRecord& n) {
    if (!n.in_use) return true;
    const auto v = static_cast<VertexId>(node_id);
    for (RecordId id = n.first_rel; id != kInvalidRecord;) {
      const RelationshipRecord* rec = rels_.GetPtr(id);
      HERMES_CHECK(rec != nullptr);
      linked.emplace(v, id);
      id = GetNext(*rec, v);
    }
    return true;
  });

  std::vector<RelationshipDump> out;
  out.reserve(rels_.size());
  rels_.ForEach([&](RecordId id, const RelationshipRecord& r) {
    if (r.in_use) {
      out.push_back(RelationshipDump{r.src, r.dst, r.type, r.ghost,
                                     linked.count({r.src, id}) != 0,
                                     linked.count({r.dst, id}) != 0,
                                     DumpPropertyChain(r.first_prop)});
    }
    return true;
  });
  return out;
}

std::vector<VertexId> GraphStore::NodeIds() const {
  std::vector<VertexId> out;
  out.reserve(nodes_.size());
  nodes_.ForEach([&out](RecordId id, const NodeRecord& n) {
    if (n.in_use) out.push_back(static_cast<VertexId>(id));
    return true;
  });
  return out;
}

}  // namespace hermes
