#ifndef HERMES_GRAPHDB_DURABLE_STORE_H_
#define HERMES_GRAPHDB_DURABLE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graphdb/graph_store.h"
#include "storage/wal.h"
#include "storage/page_cache.h"

namespace hermes {

/// Durable wrapper around one partition's GraphStore: every mutation is
/// prechecked against the store's rejection rules, appended to a
/// write-ahead log, and only then applied (WAL rule). Prechecking means a
/// mutation the store would reject never reaches the log, so recovery
/// replay treats store rejections as real divergence. Checkpoint()
/// persists a full binary snapshot (stamped with the covered LSN) so the
/// log can be truncated. Open() recovers by loading the latest snapshot
/// and replaying the uncovered log tail — including after a crash that
/// tore the final record.
///
/// This is the persistence half of the Neo4j heritage (Section 4: a
/// "disk-based, transactional persistence engine"); the lock manager in
/// src/txn supplies the isolation half.
///
/// Concurrency: every logged mutation and Checkpoint() is serialized
/// under `mu_`, which keeps the WAL rule atomic (log, then apply) across
/// threads — but the *fsync wait* of a durable mutation happens after
/// `mu_` is released, so concurrent durable writers stage under the
/// store lock and then batch into one group-commit window instead of
/// serializing their fsyncs. Lock order: mu_ is acquired BEFORE the
/// WriteAheadLog's internal mutex (never the reverse). Reads through
/// store() are lock-free and therefore only safe when writers are
/// quiesced or the caller holds record-level locks — see DESIGN.md.
class DurableGraphStore {
 public:
  struct Options {
    /// Group-commit window tuning, forwarded to WriteAheadLog::Open.
    WalGroupCommitOptions group_commit;
    /// When true, every mutation blocks until its WAL entry is fsynced
    /// (joining the current group-commit window). When false (default,
    /// the historical behavior), mutations are staged and Sync() /
    /// Checkpoint() are the durability points.
    bool durable_mutations = false;
  };

  /// Opens (and recovers) the partition stored under `dir`. The directory
  /// must exist; files `snapshot.bin` and `wal.log` are created inside.
  /// (Overload instead of a defaulted Options argument: a nested class's
  /// member initializers are only parsed at the end of the enclosing
  /// class, so `= {}` here would not compile.)
  [[nodiscard]] static Result<std::unique_ptr<DurableGraphStore>> Open(
      PartitionId partition_id, const std::string& dir,
      const Options& options);
  [[nodiscard]] static Result<std::unique_ptr<DurableGraphStore>> Open(
      PartitionId partition_id, const std::string& dir) {
    return Open(partition_id, dir, Options());
  }

  /// Read access goes straight to the in-memory store.
  const GraphStore& store() const { return *store_; }

  /// Mutable access to the underlying store. Reads are always fine;
  /// mutating through this pointer BYPASSES the write-ahead log and is
  /// only safe for state that recovery rebuilds anyway.
  GraphStore* mutable_store() { return store_.get(); }

  // --- Logged mutations (same contracts as GraphStore) --------------------
  //
  // The trailing `token` stamps the mutation's idempotency token into its
  // WAL entry (see WalToken). Callers off the message bus leave it
  // defaulted; PartitionServer passes the bus (src, request_id) so a
  // crash between apply and reply leaves the token recoverable.

  [[nodiscard]] Status CreateNode(VertexId id, double weight = 1.0,
                                  WalToken token = {}) EXCLUDES(mu_);
  [[nodiscard]] Status RemoveNode(VertexId v, WalToken token = {})
      EXCLUDES(mu_);
  [[nodiscard]] Status SetNodeState(VertexId id, NodeState state,
                                    WalToken token = {}) EXCLUDES(mu_);
  [[nodiscard]] Status AddNodeWeight(VertexId id, double delta,
                                     WalToken token = {}) EXCLUDES(mu_);
  [[nodiscard]] Result<RecordId> AddEdge(VertexId v, VertexId other, std::uint32_t type,
                           bool other_is_local, WalToken token = {})
      EXCLUDES(mu_);
  [[nodiscard]] Status RemoveEdge(VertexId v, VertexId other,
                                  WalToken token = {}) EXCLUDES(mu_);
  [[nodiscard]] Status SetNodeProperty(VertexId id, std::uint32_t key,
                         const std::string& value, WalToken token = {})
      EXCLUDES(mu_);
  [[nodiscard]] Status SetEdgeProperty(VertexId v, VertexId other, std::uint32_t key,
                         const std::string& value, WalToken token = {})
      EXCLUDES(mu_);

  /// Writes a snapshot, marks a checkpoint, and truncates the log.
  [[nodiscard]] Status Checkpoint() EXCLUDES(mu_);

  /// Makes every staged entry durable: joins (or leads) a group-commit
  /// window and returns once the log is fsynced through the last appended
  /// LSN. The WAL synchronizes itself, so no store lock is taken — calls
  /// overlap with concurrent mutations and batch into shared windows.
  [[nodiscard]] Status Sync() EXCLUDES(mu_) { return wal_->Sync(); }

  /// Toggles per-mutation durability at runtime (see Options).
  void set_durable_mutations(bool on) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    durable_mutations_ = on;
  }

  /// Idempotency tokens of every mutation found in the WAL during Open(),
  /// in log order — including entries the snapshot already covered (a
  /// crash can land between the snapshot rename and the log truncation,
  /// and a token's retry may still be in flight either way).
  /// PartitionServer::Open seeds its dedup table from this so a
  /// post-recovery retry is answered, not double-applied.
  const std::vector<WalToken>& recovered_tokens() const {
    return recovered_tokens_;
  }

  const std::string& directory() const { return dir_; }
  std::uint64_t next_lsn() const { return wal_->next_lsn(); }
  std::uint64_t durable_lsn() const { return wal_->durable_lsn(); }
  std::uint64_t fsync_count() const { return wal_->fsync_count(); }

  // Exposed for tests: snapshot round-trip without a full Open().
  // `covered_lsn` is the highest WAL LSN whose effects the snapshot
  // contains; Open() skips replaying entries at or below it, which is
  // what makes a crash between the snapshot rename and the WAL
  // truncation safe (replaying the stale log in full would double-apply
  // non-idempotent entries such as kAddNodeWeight).
  [[nodiscard]] static Status WriteSnapshot(const GraphStore& store, const std::string& path,
                              std::uint64_t covered_lsn = 0);
  [[nodiscard]] static Status LoadSnapshot(const std::string& path, GraphStore* store,
                             std::uint64_t* covered_lsn = nullptr);

 private:
  DurableGraphStore(PartitionId partition_id, std::string dir,
                    std::unique_ptr<GraphStore> store,
                    std::unique_ptr<WriteAheadLog> wal, bool durable_mutations)
      : partition_id_(partition_id),
        dir_(std::move(dir)),
        store_(std::move(store)),
        wal_(std::move(wal)),
        durable_mutations_(durable_mutations) {}

  [[nodiscard]] static Status Replay(const WalEntry& entry, GraphStore* store);

  // Read-only mirror of GraphStore's rejection rules, checked BEFORE an
  // entry is logged. A mutation the live store would reject never reaches
  // the WAL, so recovery replay can treat any store rejection as real
  // divergence instead of tolerating it (see Replay).
  [[nodiscard]] static Status Precheck(const WalEntry& entry, const GraphStore& store);

  /// Appends under mu_ (the log-then-apply step of the WAL rule) and
  /// hands back the assigned LSN so the caller can wait for durability
  /// AFTER releasing mu_ — that release is what lets concurrent durable
  /// mutations share one group-commit fsync.
  [[nodiscard]] Result<std::uint64_t> Log(WalEntry entry) REQUIRES(mu_) {
    return wal_->Append(std::move(entry));
  }

  const PartitionId partition_id_;
  const std::string dir_;
  mutable Mutex mu_{"durable_store.mu", lock_order::kRankDurableStore};
  // Guarded by mu_ on every logged-mutation path; the store() accessors
  // expose lock-free reads by documented contract (see class comment).
  // audit:allow(guard, lock-free read contract documented above)
  std::unique_ptr<GraphStore> store_;
  // The WAL is internally synchronized (its own mutex ranks after mu_),
  // so the pointer itself is const and calls need no store lock — that is
  // what allows Sync()/SyncUntil() to run outside mu_.
  const std::unique_ptr<WriteAheadLog> wal_;
  bool durable_mutations_ GUARDED_BY(mu_) = false;
  /// Written once inside Open() before the store is shared; read-only after.
  // audit:allow(guard, written once inside Open() before the store is shared)
  std::vector<WalToken> recovered_tokens_;
};

}  // namespace hermes

#endif  // HERMES_GRAPHDB_DURABLE_STORE_H_
