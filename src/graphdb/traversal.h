#ifndef HERMES_GRAPHDB_TRAVERSAL_H_
#define HERMES_GRAPHDB_TRAVERSAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace hermes {

/// Revisit policy, mirroring Neo4j's traversal-framework uniqueness modes.
enum class Uniqueness {
  /// Each node is visited at most once (default; BFS semantics).
  kNodeGlobal,
  /// Nodes may be reached repeatedly through different paths (the mode
  /// that makes 2-hop queries reprocess vertices, Section 5.3.2).
  kNone,
};

/// Declarative description of a traversal — Hermes' primary query
/// interface, following Neo4j's TraversalDescription (Section 4).
struct TraversalDescription {
  int max_depth = 1;
  Uniqueness uniqueness = Uniqueness::kNodeGlobal;

  /// Only follow relationships of this type when set.
  std::optional<std::uint32_t> relationship_type;

  /// Include a reached node in the result? (depth 0 = start node).
  /// Default: include everything.
  std::function<bool(VertexId, int)> include;

  /// Stop expanding below this node when true (node still included).
  std::function<bool(VertexId, int)> prune;

  /// Stop the whole traversal after this many result nodes (0 = no cap).
  std::size_t max_results = 0;
};

/// One reached node.
struct TraversalHit {
  VertexId node;
  int depth;
};

/// Result of a traversal: hits in breadth-first order plus the work
/// counters the evaluation section reports (processed vs. response size).
struct TraversalResult {
  std::vector<TraversalHit> hits;
  std::uint64_t nodes_processed = 0;  // includes revisits under kNone
};

/// Supplies the neighbors of a node under an optional relationship-type
/// filter. Implementations wrap a local GraphStore, a remote server, or
/// the whole cluster (the cluster version forwards across partitions).
using NeighborProvider = std::function<Result<std::vector<VertexId>>(
    VertexId, std::optional<std::uint32_t>)>;

/// Runs a breadth-first traversal from `start` under `description`,
/// resolving adjacency through `neighbors`. Errors from the provider for
/// the start node fail the traversal; errors while expanding interior
/// nodes (e.g. a vertex mid-migration) skip that node's expansion, exactly
/// like queries treat unavailable records (Section 3.2).
[[nodiscard]] Result<TraversalResult> Traverse(VertexId start,
                                 const TraversalDescription& description,
                                 const NeighborProvider& neighbors);

}  // namespace hermes

#endif  // HERMES_GRAPHDB_TRAVERSAL_H_
