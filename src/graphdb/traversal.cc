#include "graphdb/traversal.h"

#include <deque>
#include <unordered_set>

namespace hermes {

[[nodiscard]] Result<TraversalResult> Traverse(VertexId start,
                                 const TraversalDescription& d,
                                 const NeighborProvider& neighbors) {
  // Probe the start node through the provider so a missing/unavailable
  // start fails the query.
  HERMES_ASSIGN_OR_RETURN(auto start_neighbors,
                          neighbors(start, d.relationship_type));

  TraversalResult result;
  result.nodes_processed = 1;
  auto include = [&](VertexId v, int depth) {
    return !d.include || d.include(v, depth);
  };
  auto prune = [&](VertexId v, int depth) {
    return d.prune && d.prune(v, depth);
  };
  auto push_hit = [&](VertexId v, int depth) {
    if (include(v, depth)) result.hits.push_back(TraversalHit{v, depth});
    return d.max_results == 0 || result.hits.size() < d.max_results;
  };

  if (!push_hit(start, 0)) return result;

  std::unordered_set<VertexId> seen{start};
  std::deque<std::pair<VertexId, int>> frontier;
  if (d.max_depth > 0 && !prune(start, 0)) frontier.emplace_back(start, 0);

  bool first_expansion = true;
  while (!frontier.empty()) {
    const auto [v, depth] = frontier.front();
    frontier.pop_front();

    std::vector<VertexId> adjacent;
    if (first_expansion) {
      adjacent = std::move(start_neighbors);  // already fetched
      first_expansion = false;
    } else {
      auto fetched = neighbors(v, d.relationship_type);
      if (!fetched.ok()) continue;  // mid-migration: treat as absent
      adjacent = std::move(*fetched);
    }

    for (VertexId w : adjacent) {
      ++result.nodes_processed;
      const bool fresh = (d.uniqueness == Uniqueness::kNone)
                             ? true
                             : seen.insert(w).second;
      if (d.uniqueness == Uniqueness::kNone) {
        // Under kNone every arrival is reported, but expansion still
        // happens once per node to keep the traversal finite.
        if (!push_hit(w, depth + 1)) return result;
        if (seen.insert(w).second && depth + 1 < d.max_depth &&
            !prune(w, depth + 1)) {
          frontier.emplace_back(w, depth + 1);
        }
      } else if (fresh) {
        if (!push_hit(w, depth + 1)) return result;
        if (depth + 1 < d.max_depth && !prune(w, depth + 1)) {
          frontier.emplace_back(w, depth + 1);
        }
      }
    }
  }
  return result;
}

}  // namespace hermes
