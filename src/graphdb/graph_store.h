#ifndef HERMES_GRAPHDB_GRAPH_STORE_H_
#define HERMES_GRAPHDB_GRAPH_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "graphdb/node_snapshot.h"
#include "storage/dynamic_store.h"
#include "storage/id_generator.h"
#include "storage/record_store.h"
#include "storage/records.h"

namespace hermes {

/// One partition's slice of the distributed graph: Neo4j's layered store
/// model (node store, relationship store with doubly-linked chains,
/// property store with dynamic blocks) extended with the Hermes
/// distribution mechanisms — ghost relationships, node availability
/// states, and snapshot-based migration (Section 4).
///
/// Edge representation. An edge {v, u} is materialized on every partition
/// that hosts one of its endpoints:
///   * both endpoints local  -> one full record linked into both chains;
///   * one endpoint remote   -> a half record linked into the local
///     endpoint's chain only. The copy co-located with the lower vertex id
///     is the property-bearing one; the other carries the ghost flag and no
///     properties. Both sides derive this rule independently, so no
///     coordination is needed.
/// Either way the adjacency list of a local node is fully local, which is
/// what keeps traversal hops cheap.
class GraphStore {
 public:
  explicit GraphStore(PartitionId partition_id);

  PartitionId partition_id() const { return partition_id_; }

  // --- Nodes ---------------------------------------------------------------

  [[nodiscard]] Status CreateNode(VertexId id, double weight = 1.0);

  /// True when the node exists and is available (not mid-migration).
  bool HasNode(VertexId id) const;

  /// True when the node record exists regardless of availability.
  bool NodeExists(VertexId id) const;

  [[nodiscard]] Result<double> NodeWeight(VertexId id) const;
  [[nodiscard]] Status AddNodeWeight(VertexId id, double delta);

  /// Marks a node unavailable: standard queries treat it as absent and no
  /// locks can be taken on it (migration remove step, Section 3.2).
  [[nodiscard]] Status SetNodeState(VertexId id, NodeState state);
  [[nodiscard]] Result<NodeState> GetNodeState(VertexId id) const;

  // --- Relationships --------------------------------------------------------

  /// Adds the local materialization of edge {v, other}. `other_is_local`
  /// selects full-record vs. ghost/half-record handling; `v` must be local
  /// and available. When both endpoints are local and the record already
  /// exists (e.g. created via the other endpoint) the call is a no-op
  /// returning the existing record id.
  [[nodiscard]] Result<RecordId> AddEdge(VertexId v, VertexId other, std::uint32_t type,
                           bool other_is_local);

  /// Removes the local materialization of edge {v, other}.
  [[nodiscard]] Status RemoveEdge(VertexId v, VertexId other);

  /// Walks v's relationship chain; fully local by construction.
  [[nodiscard]] Result<std::vector<VertexId>> Neighbors(VertexId v) const;

  /// Neighbors reached via relationships of the given type only
  /// (pass std::nullopt for all types).
  [[nodiscard]] Result<std::vector<VertexId>> NeighborsByType(
      VertexId v, std::optional<std::uint32_t> type) const;

  [[nodiscard]] Result<std::size_t> DegreeOf(VertexId v) const;

  /// Record id of the edge {v, other} seen from v's chain.
  [[nodiscard]] Result<RecordId> FindEdge(VertexId v, VertexId other) const;

  /// Whether the local copy of edge {v, other} is a ghost (no properties).
  [[nodiscard]] Result<bool> EdgeIsGhost(VertexId v, VertexId other) const;

  // --- Properties ------------------------------------------------------------

  [[nodiscard]] Status SetNodeProperty(VertexId id, std::uint32_t key,
                         const std::string& value);
  [[nodiscard]] Result<std::string> GetNodeProperty(VertexId id, std::uint32_t key) const;

  [[nodiscard]] Status SetEdgeProperty(VertexId v, VertexId other, std::uint32_t key,
                         const std::string& value);
  [[nodiscard]] Result<std::string> GetEdgeProperty(VertexId v, VertexId other,
                                      std::uint32_t key) const;

  // --- Migration -------------------------------------------------------------

  /// Copy-step payload for node v (does not modify the store).
  [[nodiscard]] Result<NodeSnapshot> ExtractNode(VertexId v) const;

  /// Rebuilds a migrated node locally. `is_local` reports whether a given
  /// neighbor is hosted on this partition *after* the migration epoch;
  /// half records for neighbors that are local get merged into full
  /// records (AddEdge handles the merge).
  template <typename IsLocalFn>
  [[nodiscard]] Status IngestNodeWith(const NodeSnapshot& snapshot, IsLocalFn is_local);

  /// Remove-step: deletes v and v's chain. Full records shared with a
  /// still-local neighbor degrade to half records (the neighbor keeps the
  /// edge; the ghost rule decides whether properties are kept or dropped).
  [[nodiscard]] Status RemoveNode(VertexId v);

  // --- Introspection ----------------------------------------------------------

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumRelationships() const { return rels_.size(); }
  std::size_t NumGhostRelationships() const;
  std::size_t MemoryBytes() const;

  /// Validates chain integrity (prev/next symmetry, chain membership);
  /// used by tests.
  bool CheckChains() const;

  /// All local node ids (in id order).
  std::vector<VertexId> NodeIds() const;

  // --- Bulk export (snapshots / persistence) -----------------------------

  struct NodeDump {
    VertexId id;
    double weight;
    NodeState state;
    std::vector<std::pair<std::uint32_t, std::string>> properties;
  };
  struct RelationshipDump {
    VertexId src;
    VertexId dst;
    std::uint32_t type;
    bool ghost;
    // Which endpoint chains the record is linked into. Both for a full
    // record; exactly one for a half record (remote endpoint, or a local
    // endpoint that was removed and possibly re-created since). Node
    // existence alone cannot recover this distinction, so snapshots must
    // carry it explicitly.
    bool src_linked;
    bool dst_linked;
    std::vector<std::pair<std::uint32_t, std::string>> properties;
  };

  /// Every node record with its property chain, in id order.
  std::vector<NodeDump> DumpNodes() const;

  /// Every relationship record (full and half/ghost alike), in record-id
  /// order. Whether a record was full or half is recoverable from which
  /// endpoints exist locally; the ghost flag is also carried explicitly.
  std::vector<RelationshipDump> DumpRelationships() const;

 private:
  // Chain-side helpers: a record participates in the chain of `node` via
  // its src_* links when node == src, else its dst_* links.
  RecordId& NextLink(RelationshipRecord* r, VertexId node) const {
    return r->src == node ? r->src_next : r->dst_next;
  }
  RecordId& PrevLink(RelationshipRecord* r, VertexId node) const {
    return r->src == node ? r->src_prev : r->dst_prev;
  }
  RecordId GetNext(const RelationshipRecord& r, VertexId node) const {
    return r.src == node ? r.src_next : r.dst_next;
  }

  void LinkIntoChain(VertexId node, RecordId rel_id, RelationshipRecord* rec);
  void UnlinkFromChain(VertexId node, RecordId rel_id,
                       RelationshipRecord* rec);

  /// Whether the local copy of a half edge {local, remote} is the ghost.
  static bool HalfEdgeIsGhost(VertexId local, VertexId remote) {
    return local > remote;
  }

  [[nodiscard]] Status SetPropertyOnChain(RecordId* first_prop, std::uint32_t key,
                            const std::string& value);
  [[nodiscard]] Result<std::string> GetPropertyFromChain(RecordId first_prop,
                                           std::uint32_t key) const;
  void FreePropertyChain(RecordId first_prop);
  std::vector<std::pair<std::uint32_t, std::string>> DumpPropertyChain(
      RecordId first_prop) const;

  PartitionId partition_id_;
  RecordStore<NodeRecord> nodes_;
  RecordStore<RelationshipRecord> rels_;
  RecordStore<PropertyRecord> props_;
  DynamicStore dynamic_;
  IdGenerator rel_ids_;
  IdGenerator prop_ids_;
};

template <typename IsLocalFn>
Status GraphStore::IngestNodeWith(const NodeSnapshot& snapshot,
                                  IsLocalFn is_local) {
  HERMES_RETURN_NOT_OK(CreateNode(snapshot.id, snapshot.weight));
  for (const auto& [key, value] : snapshot.properties) {
    HERMES_RETURN_NOT_OK(SetNodeProperty(snapshot.id, key, value));
  }
  for (const auto& rel : snapshot.relationships) {
    HERMES_ASSIGN_OR_RETURN(
        RecordId rel_id,
        AddEdge(snapshot.id, rel.other, rel.type, is_local(rel.other)));
    (void)rel_id;
    if (rel.properties_included) {
      for (const auto& [key, value] : rel.properties) {
        // Ghost copies drop properties by design; SetEdgeProperty on a
        // ghost returns InvalidArgument, which we tolerate here.
        Status st = SetEdgeProperty(snapshot.id, rel.other, key, value);
        if (!st.ok() && !st.IsInvalidArgument()) return st;
      }
    }
  }
  return Status::OK();
}

}  // namespace hermes

#endif  // HERMES_GRAPHDB_GRAPH_STORE_H_
