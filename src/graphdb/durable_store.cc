#include "graphdb/durable_store.h"

#include <cstring>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace hermes {

namespace {

constexpr std::uint64_t kSnapshotMagic = 0x4845524d45533032ULL;  // "HERMES02"

// Snapshot I/O goes through the page cache (storage/page_cache.h) so bulk
// store reads/writes exercise the buffer-management layer like any other
// store file. Header layout on page 0: [magic u64][partition u32]
// [pad u32][content_length u64], content follows at byte 24.
constexpr std::uint64_t kSnapshotHeaderBytes = 24;
constexpr std::size_t kSnapshotCachePages = 64;

void WriteU64(PagedWriter& out, std::uint64_t v) {
  out.Append(&v, sizeof(v));
}
void WriteU32(PagedWriter& out, std::uint32_t v) {
  out.Append(&v, sizeof(v));
}
void WriteF64(PagedWriter& out, double v) { out.Append(&v, sizeof(v)); }
void WriteString(PagedWriter& out, const std::string& s) {
  WriteU32(out, static_cast<std::uint32_t>(s.size()));
  out.Append(s.data(), s.size());
}

bool ReadU64(PagedReader& in, std::uint64_t* v) {
  return in.Read(v, sizeof(*v));
}
bool ReadU32(PagedReader& in, std::uint32_t* v) {
  return in.Read(v, sizeof(*v));
}
bool ReadF64(PagedReader& in, double* v) { return in.Read(v, sizeof(*v)); }
bool ReadString(PagedReader& in, std::string* s) {
  std::uint32_t size = 0;
  if (!ReadU32(in, &size) || size > (1u << 28)) return false;
  s->resize(size);
  return size == 0 || in.Read(s->data(), size);
}

using Properties = std::vector<std::pair<std::uint32_t, std::string>>;

void WriteProperties(PagedWriter& out, const Properties& props) {
  WriteU32(out, static_cast<std::uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    WriteU32(out, key);
    WriteString(out, value);
  }
}

bool ReadProperties(PagedReader& in, Properties* props) {
  std::uint32_t count = 0;
  if (!ReadU32(in, &count) || count > (1u << 24)) return false;
  props->clear();
  props->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t key = 0;
    std::string value;
    if (!ReadU32(in, &key) || !ReadString(in, &value)) return false;
    props->emplace_back(key, std::move(value));
  }
  return true;
}

}  // namespace

Status DurableGraphStore::WriteSnapshot(const GraphStore& store,
                                        const std::string& path) {
  // Write to a temp file then rename for atomicity.
  const std::string tmp = path + ".tmp";
  std::remove(tmp.c_str());
  {
    HERMES_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(tmp));
    PageCache cache(&file, kSnapshotCachePages);
    PagedWriter out(&cache);

    // Header placeholder; patched once the content length is known.
    const std::uint64_t zero64 = 0;
    WriteU64(out, zero64);  // magic
    WriteU32(out, 0);       // partition
    WriteU32(out, 0);       // pad
    WriteU64(out, zero64);  // content length

    const auto nodes = store.DumpNodes();
    WriteU64(out, nodes.size());
    for (const auto& n : nodes) {
      WriteU64(out, n.id);
      WriteF64(out, n.weight);
      WriteU32(out, static_cast<std::uint32_t>(n.state));
      WriteProperties(out, n.properties);
    }
    const auto rels = store.DumpRelationships();
    WriteU64(out, rels.size());
    for (const auto& r : rels) {
      WriteU64(out, r.src);
      WriteU64(out, r.dst);
      WriteU32(out, r.type);
      WriteU32(out, r.ghost ? 1 : 0);
      WriteProperties(out, r.properties);
    }
    const std::uint64_t total = out.position();
    HERMES_RETURN_NOT_OK(out.Finish());

    // Patch the header in place (page 0 round-trips the cache again).
    HERMES_ASSIGN_OR_RETURN(Page * header, cache.Pin(0));
    const std::uint32_t partition = store.partition_id();
    const std::uint64_t content = total - kSnapshotHeaderBytes;
    std::memcpy(header->bytes.data(), &kSnapshotMagic, sizeof(std::uint64_t));
    std::memcpy(header->bytes.data() + 8, &partition, sizeof(partition));
    std::memcpy(header->bytes.data() + 16, &content, sizeof(content));
    cache.Unpin(0, /*dirty=*/true);
    HERMES_RETURN_NOT_OK(cache.FlushAll());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("snapshot rename failed");
  }
  return Status::OK();
}

Status DurableGraphStore::LoadSnapshot(const std::string& path,
                                       GraphStore* store) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no snapshot at " + path);
  }
  HERMES_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path));
  PageCache cache(&file, kSnapshotCachePages);
  PagedReader in(&cache, file.NumPages() * kPageSize);

  std::uint64_t magic = 0;
  std::uint32_t partition = 0;
  std::uint32_t pad = 0;
  std::uint64_t content_length = 0;
  if (!ReadU64(in, &magic) || magic != kSnapshotMagic ||
      !ReadU32(in, &partition) || !ReadU32(in, &pad) ||
      !ReadU64(in, &content_length)) {
    return Status::IOError("bad snapshot header");
  }

  std::uint64_t node_count = 0;
  if (!ReadU64(in, &node_count)) return Status::IOError("truncated snapshot");
  for (std::uint64_t i = 0; i < node_count; ++i) {
    std::uint64_t id = 0;
    double weight = 0.0;
    std::uint32_t state = 0;
    Properties props;
    if (!ReadU64(in, &id) || !ReadF64(in, &weight) || !ReadU32(in, &state) ||
        !ReadProperties(in, &props)) {
      return Status::IOError("truncated snapshot (nodes)");
    }
    HERMES_RETURN_NOT_OK(store->CreateNode(id, weight));
    HERMES_RETURN_NOT_OK(
        store->SetNodeState(id, static_cast<NodeState>(state)));
    for (const auto& [key, value] : props) {
      HERMES_RETURN_NOT_OK(store->SetNodeProperty(id, key, value));
    }
  }

  std::uint64_t rel_count = 0;
  if (!ReadU64(in, &rel_count)) return Status::IOError("truncated snapshot");
  for (std::uint64_t i = 0; i < rel_count; ++i) {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::uint32_t type = 0;
    std::uint32_t ghost = 0;
    Properties props;
    if (!ReadU64(in, &src) || !ReadU64(in, &dst) || !ReadU32(in, &type) ||
        !ReadU32(in, &ghost) || !ReadProperties(in, &props)) {
      return Status::IOError("truncated snapshot (relationships)");
    }
    // Full records have both endpoints locally; half records exactly one.
    const bool src_local = store->NodeExists(src);
    const bool dst_local = store->NodeExists(dst);
    Result<RecordId> added = Status::Internal("unset");
    if (src_local && dst_local) {
      added = store->AddEdge(src, dst, type, /*other_is_local=*/true);
    } else if (src_local) {
      added = store->AddEdge(src, dst, type, /*other_is_local=*/false);
    } else if (dst_local) {
      added = store->AddEdge(dst, src, type, /*other_is_local=*/false);
    } else {
      return Status::IOError("snapshot relationship with no local endpoint");
    }
    HERMES_RETURN_NOT_OK(added.status());
    for (const auto& [key, value] : props) {
      const Status st = store->SetEdgeProperty(src_local ? src : dst,
                                               src_local ? dst : src, key,
                                               value);
      if (!st.ok() && !st.IsInvalidArgument()) return st;  // ghost: no props
    }
  }
  if (in.position() != kSnapshotHeaderBytes + content_length) {
    return Status::IOError("snapshot length mismatch");
  }
  return Status::OK();
}

Status DurableGraphStore::Replay(const WalEntry& e, GraphStore* store) {
  switch (e.type) {
    case WalOpType::kCreateNode:
      return store->CreateNode(e.a, e.weight);
    case WalOpType::kRemoveNode:
      return store->RemoveNode(e.a);
    case WalOpType::kSetNodeState:
      return store->SetNodeState(e.a, static_cast<NodeState>(e.flag));
    case WalOpType::kAddNodeWeight:
      return store->AddNodeWeight(e.a, e.weight);
    case WalOpType::kAddEdge:
      return store->AddEdge(e.a, e.b, e.key, e.flag != 0).status();
    case WalOpType::kRemoveEdge:
      return store->RemoveEdge(e.a, e.b);
    case WalOpType::kSetNodeProperty:
      return store->SetNodeProperty(e.a, e.key, e.payload);
    case WalOpType::kSetEdgeProperty:
      return store->SetEdgeProperty(e.a, e.b, e.key, e.payload);
    case WalOpType::kCheckpoint:
      return Status::OK();
  }
  return Status::Internal("unknown WAL entry type");
}

Result<std::unique_ptr<DurableGraphStore>> DurableGraphStore::Open(
    PartitionId partition_id, const std::string& dir) {
  auto store = std::make_unique<GraphStore>(partition_id);
  const std::string snapshot_path = dir + "/snapshot.bin";
  const std::string wal_path = dir + "/wal.log";

  // 1. Latest snapshot (if any).
  const Status snap = LoadSnapshot(snapshot_path, store.get());
  if (!snap.ok() && !snap.IsNotFound()) return snap;

  // 2. Replay the log tail after the last checkpoint. A missing log just
  // means a fresh store.
  auto entries = WriteAheadLog::ReadAll(wal_path,
                                        /*after_last_checkpoint=*/true);
  if (entries.ok()) {
    for (const WalEntry& e : *entries) {
      const Status st = Replay(e, store.get());
      // Replay is idempotent-ish: an entry already reflected in the
      // snapshot (log not yet truncated) may fail with AlreadyExists.
      if (!st.ok() && !st.IsAlreadyExists() && !st.IsNotFound()) return st;
    }
  }

  HERMES_ASSIGN_OR_RETURN(WriteAheadLog wal, WriteAheadLog::Open(wal_path));
  return std::unique_ptr<DurableGraphStore>(new DurableGraphStore(
      partition_id, dir, std::move(store),
      std::make_unique<WriteAheadLog>(std::move(wal))));
}

Status DurableGraphStore::Checkpoint() {
  MutexLock lock(&mu_);
  HERMES_RETURN_NOT_OK(WriteSnapshot(*store_, dir_ + "/snapshot.bin"));
  HERMES_RETURN_NOT_OK(wal_->LogCheckpoint().status());
  return wal_->Reset();
}

Status DurableGraphStore::CreateNode(VertexId id, double weight) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kCreateNode;
  e.a = id;
  e.weight = weight;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->CreateNode(id, weight);
}

Status DurableGraphStore::RemoveNode(VertexId v) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kRemoveNode;
  e.a = v;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->RemoveNode(v);
}

Status DurableGraphStore::SetNodeState(VertexId id, NodeState state) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kSetNodeState;
  e.a = id;
  e.flag = static_cast<std::uint8_t>(state);
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->SetNodeState(id, state);
}

Status DurableGraphStore::AddNodeWeight(VertexId id, double delta) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kAddNodeWeight;
  e.a = id;
  e.weight = delta;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->AddNodeWeight(id, delta);
}

Result<RecordId> DurableGraphStore::AddEdge(VertexId v, VertexId other,
                                            std::uint32_t type,
                                            bool other_is_local) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kAddEdge;
  e.a = v;
  e.b = other;
  e.key = type;
  e.flag = other_is_local ? 1 : 0;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->AddEdge(v, other, type, other_is_local);
}

Status DurableGraphStore::RemoveEdge(VertexId v, VertexId other) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kRemoveEdge;
  e.a = v;
  e.b = other;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->RemoveEdge(v, other);
}

Status DurableGraphStore::SetNodeProperty(VertexId id, std::uint32_t key,
                                          const std::string& value) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kSetNodeProperty;
  e.a = id;
  e.key = key;
  e.payload = value;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->SetNodeProperty(id, key, value);
}

Status DurableGraphStore::SetEdgeProperty(VertexId v, VertexId other,
                                          std::uint32_t key,
                                          const std::string& value) {
  MutexLock lock(&mu_);
  WalEntry e;
  e.type = WalOpType::kSetEdgeProperty;
  e.a = v;
  e.b = other;
  e.key = key;
  e.payload = value;
  HERMES_RETURN_NOT_OK(Log(std::move(e)));
  return store_->SetEdgeProperty(v, other, key, value);
}

}  // namespace hermes
