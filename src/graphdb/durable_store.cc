#include "graphdb/durable_store.h"

#include <algorithm>
#include <cstring>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace hermes {

namespace {

constexpr std::uint64_t kSnapshotMagic = 0x4845524d45533033ULL;  // "HERMES03"

// Snapshot I/O goes through the page cache (storage/page_cache.h) so bulk
// store reads/writes exercise the buffer-management layer like any other
// store file. Header layout on page 0: [magic u64][partition u32]
// [pad u32][content_length u64][covered_lsn u64], content follows at
// byte 32. The covered LSN makes recovery safe when a crash lands between
// the snapshot rename and the WAL truncation: entries at or below it are
// already reflected in the snapshot and must not be replayed.
constexpr std::uint64_t kSnapshotHeaderBytes = 32;
constexpr std::size_t kSnapshotCachePages = 64;

void WriteU64(PagedWriter& out, std::uint64_t v) {
  out.Append(&v, sizeof(v));
}
void WriteU32(PagedWriter& out, std::uint32_t v) {
  out.Append(&v, sizeof(v));
}
void WriteF64(PagedWriter& out, double v) { out.Append(&v, sizeof(v)); }
void WriteString(PagedWriter& out, const std::string& s) {
  WriteU32(out, static_cast<std::uint32_t>(s.size()));
  out.Append(s.data(), s.size());
}

bool ReadU64(PagedReader& in, std::uint64_t* v) {
  return in.Read(v, sizeof(*v));
}
bool ReadU32(PagedReader& in, std::uint32_t* v) {
  return in.Read(v, sizeof(*v));
}
bool ReadF64(PagedReader& in, double* v) { return in.Read(v, sizeof(*v)); }
bool ReadString(PagedReader& in, std::string* s) {
  std::uint32_t size = 0;
  if (!ReadU32(in, &size) || size > (1u << 28)) return false;
  s->resize(size);
  return size == 0 || in.Read(s->data(), size);
}

using Properties = std::vector<std::pair<std::uint32_t, std::string>>;

void WriteProperties(PagedWriter& out, const Properties& props) {
  WriteU32(out, static_cast<std::uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    WriteU32(out, key);
    WriteString(out, value);
  }
}

bool ReadProperties(PagedReader& in, Properties* props) {
  std::uint32_t count = 0;
  if (!ReadU32(in, &count) || count > (1u << 24)) return false;
  props->clear();
  props->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t key = 0;
    std::string value;
    if (!ReadU32(in, &key) || !ReadString(in, &value)) return false;
    props->emplace_back(key, std::move(value));
  }
  return true;
}

}  // namespace

Status DurableGraphStore::WriteSnapshot(const GraphStore& store,
                                        const std::string& path,
                                        std::uint64_t covered_lsn) {
  // Write to a temp file then rename for atomicity.
  const std::string tmp = path + ".tmp";
  std::remove(tmp.c_str());
  {
    HERMES_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(tmp));
    PageCache cache(&file, kSnapshotCachePages);
    PagedWriter out(&cache);

    // Header placeholder; patched once the content length is known.
    const std::uint64_t zero64 = 0;
    WriteU64(out, zero64);  // magic
    WriteU32(out, 0);       // partition
    WriteU32(out, 0);       // pad
    WriteU64(out, zero64);  // content length
    WriteU64(out, zero64);  // covered LSN

    const auto nodes = store.DumpNodes();
    WriteU64(out, nodes.size());
    for (const auto& n : nodes) {
      WriteU64(out, n.id);
      WriteF64(out, n.weight);
      WriteU32(out, static_cast<std::uint32_t>(n.state));
      WriteProperties(out, n.properties);
    }
    const auto rels = store.DumpRelationships();
    WriteU64(out, rels.size());
    for (const auto& r : rels) {
      WriteU64(out, r.src);
      WriteU64(out, r.dst);
      WriteU32(out, r.type);
      // Chain linkage must be persisted, not inferred: after a node is
      // removed and its id re-created, both endpoints of a leftover half
      // record exist again, and endpoint existence would wrongly
      // reconstruct it as a full edge.
      const std::uint32_t flags = (r.ghost ? 1u : 0u) |
                                  (r.src_linked ? 2u : 0u) |
                                  (r.dst_linked ? 4u : 0u);
      WriteU32(out, flags);
      WriteProperties(out, r.properties);
    }
    const std::uint64_t total = out.position();
    HERMES_RETURN_NOT_OK(out.Finish());

    // Patch the header in place (page 0 round-trips the cache again).
    HERMES_ASSIGN_OR_RETURN(Page * header, cache.Pin(0));
    const std::uint32_t partition = store.partition_id();
    const std::uint64_t content = total - kSnapshotHeaderBytes;
    std::memcpy(header->bytes.data(), &kSnapshotMagic, sizeof(std::uint64_t));
    std::memcpy(header->bytes.data() + 8, &partition, sizeof(partition));
    std::memcpy(header->bytes.data() + 16, &content, sizeof(content));
    std::memcpy(header->bytes.data() + 24, &covered_lsn, sizeof(covered_lsn));
    cache.Unpin(0, /*dirty=*/true);
    HERMES_RETURN_NOT_OK(cache.FlushAll());
  }
  // Crash with the complete snapshot in the temp file but not yet
  // renamed: recovery must fall back to the previous snapshot + log.
  HERMES_FAILPOINT_CRASH("durable_store.snapshot.rename.crash");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("snapshot rename failed");
  }
  return Status::OK();
}

Status DurableGraphStore::LoadSnapshot(const std::string& path,
                                       GraphStore* store,
                                       std::uint64_t* covered_lsn) {
  if (!std::filesystem::exists(path)) {
    return Status::NotFound("no snapshot at " + path);
  }
  HERMES_ASSIGN_OR_RETURN(PagedFile file, PagedFile::Open(path));
  PageCache cache(&file, kSnapshotCachePages);
  PagedReader in(&cache, file.NumPages() * kPageSize);

  std::uint64_t magic = 0;
  std::uint32_t partition = 0;
  std::uint32_t pad = 0;
  std::uint64_t content_length = 0;
  std::uint64_t covered = 0;
  if (!ReadU64(in, &magic) || magic != kSnapshotMagic ||
      !ReadU32(in, &partition) || !ReadU32(in, &pad) ||
      !ReadU64(in, &content_length) || !ReadU64(in, &covered)) {
    return Status::IOError("bad snapshot header");
  }
  if (covered_lsn != nullptr) *covered_lsn = covered;

  std::uint64_t node_count = 0;
  if (!ReadU64(in, &node_count)) return Status::IOError("truncated snapshot");
  // Non-available states are applied only after the relationship section:
  // AddEdge rejects unavailable endpoints (mid-migration write guard), so
  // restoring a node's kUnavailable state first would make its own edges
  // unloadable.
  std::vector<std::pair<VertexId, NodeState>> deferred_states;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    std::uint64_t id = 0;
    double weight = 0.0;
    std::uint32_t state = 0;
    Properties props;
    if (!ReadU64(in, &id) || !ReadF64(in, &weight) || !ReadU32(in, &state) ||
        !ReadProperties(in, &props)) {
      return Status::IOError("truncated snapshot (nodes)");
    }
    HERMES_RETURN_NOT_OK(store->CreateNode(id, weight));
    if (static_cast<NodeState>(state) != NodeState::kAvailable) {
      deferred_states.emplace_back(id, static_cast<NodeState>(state));
    }
    for (const auto& [key, value] : props) {
      HERMES_RETURN_NOT_OK(store->SetNodeProperty(id, key, value));
    }
  }

  std::uint64_t rel_count = 0;
  if (!ReadU64(in, &rel_count)) return Status::IOError("truncated snapshot");
  for (std::uint64_t i = 0; i < rel_count; ++i) {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::uint32_t type = 0;
    std::uint32_t flags = 0;
    Properties props;
    if (!ReadU64(in, &src) || !ReadU64(in, &dst) || !ReadU32(in, &type) ||
        !ReadU32(in, &flags) || !ReadProperties(in, &props)) {
      return Status::IOError("truncated snapshot (relationships)");
    }
    // flags: bit0 ghost, bit1 linked into src's chain, bit2 into dst's.
    // Full records are linked into both; half records into exactly the
    // one recorded here (the other endpoint may well exist locally — see
    // WriteSnapshot). AddEdge recomputes the ghost bit for half records
    // from the same id rule that produced the dumped value.
    const bool src_linked = (flags & 2u) != 0;
    const bool dst_linked = (flags & 4u) != 0;
    Result<RecordId> added = Status::Internal("unset");
    if (src_linked && dst_linked) {
      added = store->AddEdge(src, dst, type, /*other_is_local=*/true);
    } else if (src_linked) {
      added = store->AddEdge(src, dst, type, /*other_is_local=*/false);
    } else if (dst_linked) {
      added = store->AddEdge(dst, src, type, /*other_is_local=*/false);
    } else {
      return Status::IOError("snapshot relationship linked to no chain");
    }
    HERMES_RETURN_NOT_OK(added.status());
    for (const auto& [key, value] : props) {
      const Status st = store->SetEdgeProperty(src_linked ? src : dst,
                                               src_linked ? dst : src, key,
                                               value);
      if (!st.ok() && !st.IsInvalidArgument()) return st;  // ghost: no props
    }
  }
  for (const auto& [id, state] : deferred_states) {
    HERMES_RETURN_NOT_OK(store->SetNodeState(id, state));
  }
  if (in.position() != kSnapshotHeaderBytes + content_length) {
    return Status::IOError("snapshot length mismatch");
  }
  return Status::OK();
}

Status DurableGraphStore::Replay(const WalEntry& e, GraphStore* store) {
  // Precheck() keeps rejected mutations out of the log and the snapshot's
  // covered LSN keeps already-applied entries out of replay, so a store
  // rejection here almost always means real divergence. The one tolerated
  // case: an AlreadyExists whose payload provably matches the current
  // state (e.g. a pre-v3 log tail overlapping its snapshot) — anything
  // else must surface instead of hiding behind a blanket tolerance.
  switch (e.type) {
    case WalOpType::kCreateNode: {
      const Status st = store->CreateNode(e.a, e.weight);
      if (!st.IsAlreadyExists()) return st;
      const Result<double> weight = store->NodeWeight(e.a);
      if (weight.ok() && *weight == e.weight) return Status::OK();
      return Status::IOError(
          "replay: kCreateNode collides with an existing node of "
          "different weight (corrupt log or replay bug)");
    }
    case WalOpType::kRemoveNode:
      return store->RemoveNode(e.a);
    case WalOpType::kSetNodeState:
      return store->SetNodeState(e.a, static_cast<NodeState>(e.flag));
    case WalOpType::kAddNodeWeight:
      return store->AddNodeWeight(e.a, e.weight);
    case WalOpType::kAddEdge: {
      const Status st = store->AddEdge(e.a, e.b, e.key, e.flag != 0).status();
      if (!st.IsAlreadyExists()) return st;
      if (store->FindEdge(e.a, e.b).ok()) return Status::OK();
      return Status::IOError(
          "replay: kAddEdge rejected but the edge is not present "
          "(corrupt log or replay bug)");
    }
    case WalOpType::kRemoveEdge:
      return store->RemoveEdge(e.a, e.b);
    case WalOpType::kSetNodeProperty:
      return store->SetNodeProperty(e.a, e.key, e.payload);
    case WalOpType::kSetEdgeProperty:
      return store->SetEdgeProperty(e.a, e.b, e.key, e.payload);
    case WalOpType::kCheckpoint:
      return Status::OK();
  }
  return Status::Internal("unknown WAL entry type");
}

Status DurableGraphStore::Precheck(const WalEntry& e, const GraphStore& s) {
  switch (e.type) {
    case WalOpType::kCreateNode:
      if (s.NodeExists(e.a)) return Status::AlreadyExists("node exists");
      return Status::OK();
    case WalOpType::kRemoveNode:
    case WalOpType::kSetNodeState:
    case WalOpType::kAddNodeWeight:
    case WalOpType::kSetNodeProperty:
      if (!s.NodeExists(e.a)) return Status::NotFound("no such node");
      return Status::OK();
    case WalOpType::kAddEdge:
      // Mirrors GraphStore::AddEdge's check order exactly (including the
      // mid-migration Unavailable rejections), so that once the entry is
      // logged the store apply cannot fail and the crash-torture model
      // sees identical statuses.
      if (e.a == e.b) return Status::InvalidArgument("self-loops rejected");
      if (!s.NodeExists(e.a)) return Status::NotFound("no such node");
      if (!s.HasNode(e.a)) {
        return Status::Unavailable("node is mid-migration");
      }
      if (s.FindEdge(e.a, e.b).ok()) {
        return Status::AlreadyExists("edge exists");
      }
      if (e.flag != 0) {
        if (!s.NodeExists(e.b)) {
          return Status::NotFound("local other endpoint missing");
        }
        if (!s.HasNode(e.b)) {
          return Status::Unavailable("other endpoint is mid-migration");
        }
      }
      return Status::OK();
    case WalOpType::kRemoveEdge:
      return s.FindEdge(e.a, e.b).status();
    case WalOpType::kSetEdgeProperty: {
      const Result<bool> ghost = s.EdgeIsGhost(e.a, e.b);
      if (!ghost.ok()) return ghost.status();
      if (*ghost) {
        return Status::InvalidArgument("ghost edges carry no properties");
      }
      return Status::OK();
    }
    case WalOpType::kCheckpoint:
      return Status::OK();
  }
  return Status::Internal("unknown WAL entry type");
}

Result<std::unique_ptr<DurableGraphStore>> DurableGraphStore::Open(
    PartitionId partition_id, const std::string& dir, const Options& options) {
  auto store = std::make_unique<GraphStore>(partition_id);
  const std::string snapshot_path = dir + "/snapshot.bin";
  const std::string wal_path = dir + "/wal.log";

  // 1. Latest snapshot (if any).
  std::uint64_t covered_lsn = 0;
  const Status snap = LoadSnapshot(snapshot_path, store.get(), &covered_lsn);
  if (!snap.ok() && !snap.IsNotFound()) return snap;

  // 2. Replay the log tail after the last checkpoint, skipping entries
  // the snapshot already covers (a crash between the snapshot rename and
  // the log truncation leaves both on disk). A missing log just means a
  // fresh store; any other replay failure is real divergence and aborts
  // recovery (see Replay for the one verified tolerance).
  //
  // Idempotency tokens are collected from EVERY scanned entry — even ones
  // replay skips — because a skipped entry's mutation is applied state
  // all the same, and its client may still be retrying.
  std::vector<WalToken> recovered_tokens;
  auto entries = WriteAheadLog::ReadAll(wal_path,
                                        /*after_last_checkpoint=*/false);
  if (entries.ok()) {
    std::size_t replay_from = 0;
    for (std::size_t i = 0; i < entries->size(); ++i) {
      const WalEntry& e = (*entries)[i];
      if (e.type == WalOpType::kCheckpoint) replay_from = i + 1;
      if (e.token.valid()) recovered_tokens.push_back(e.token);
    }
    for (std::size_t i = replay_from; i < entries->size(); ++i) {
      const WalEntry& e = (*entries)[i];
      if (e.lsn <= covered_lsn) continue;
      const Status st = Replay(e, store.get());
      if (!st.ok()) {
        return Status::IOError("WAL replay failed at lsn " +
                               std::to_string(e.lsn) + ": " + st.message());
      }
    }
  }

  // New appends must never reuse LSNs the snapshot covers, even though a
  // checkpoint truncated the log this scan sees.
  HERMES_ASSIGN_OR_RETURN(
      WriteAheadLog wal,
      WriteAheadLog::Open(wal_path, covered_lsn + 1, options.group_commit));
  auto db = std::unique_ptr<DurableGraphStore>(new DurableGraphStore(
      partition_id, dir, std::move(store),
      std::make_unique<WriteAheadLog>(std::move(wal)),
      options.durable_mutations));
  db->recovered_tokens_ = std::move(recovered_tokens);
  return db;
}

Status DurableGraphStore::Checkpoint() {
  MutexLock lock(&mu_);
  // Crash windows, in order: before the snapshot (old snapshot + full
  // log recover everything), after the rename but before the checkpoint
  // marker (new snapshot + stale log — the covered LSN keeps replay from
  // double-applying), and after the marker but before the truncation
  // (replay-after-last-checkpoint sees an empty tail).
  HERMES_FAILPOINT_CRASH("durable_store.checkpoint.crash");
  const std::uint64_t covered_lsn = wal_->next_lsn() - 1;
  // audit:allow(blocking, checkpoint is the documented quiesce point: mu_
  // must span snapshot + marker + truncation or a racing mutator could
  // slip an entry between the snapshot and the log reset and lose it)
  HERMES_RETURN_NOT_OK(
      WriteSnapshot(*store_, dir_ + "/snapshot.bin", covered_lsn));
  HERMES_FAILPOINT_CRASH("durable_store.checkpoint.after_snapshot.crash");
  // audit:allow(blocking, same checkpoint quiesce as above)
  HERMES_RETURN_NOT_OK(wal_->LogCheckpoint().status());
  HERMES_FAILPOINT_CRASH("durable_store.checkpoint.before_reset.crash");
  // audit:allow(blocking, same checkpoint quiesce as above)
  return wal_->Reset();
}

// Every mutator follows the same shape: under mu_, precheck + append +
// apply (the WAL rule, atomic across threads); then, only when
// durable_mutations is on, wait for the entry's LSN to be fsynced with
// mu_ RELEASED. The release is the point of group commit — concurrent
// mutators stage back-to-back under mu_ and then share one fsync window
// instead of serializing write+fsync per call.

Status DurableGraphStore::CreateNode(VertexId id, double weight,
                                     WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kCreateNode;
    e.a = id;
    e.weight = weight;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->CreateNode(id, weight));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Status DurableGraphStore::RemoveNode(VertexId v, WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kRemoveNode;
    e.a = v;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->RemoveNode(v));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Status DurableGraphStore::SetNodeState(VertexId id, NodeState state,
                                       WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kSetNodeState;
    e.a = id;
    e.flag = static_cast<std::uint8_t>(state);
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->SetNodeState(id, state));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Status DurableGraphStore::AddNodeWeight(VertexId id, double delta,
                                        WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kAddNodeWeight;
    e.a = id;
    e.weight = delta;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->AddNodeWeight(id, delta));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Result<RecordId> DurableGraphStore::AddEdge(VertexId v, VertexId other,
                                            std::uint32_t type,
                                            bool other_is_local,
                                            WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  RecordId rid = 0;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kAddEdge;
    e.a = v;
    e.b = other;
    e.key = type;
    e.flag = other_is_local ? 1 : 0;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_ASSIGN_OR_RETURN(rid,
                            store_->AddEdge(v, other, type, other_is_local));
    durable = durable_mutations_;
  }
  if (durable) HERMES_RETURN_NOT_OK(wal_->SyncUntil(lsn));
  return rid;
}

Status DurableGraphStore::RemoveEdge(VertexId v, VertexId other,
                                     WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kRemoveEdge;
    e.a = v;
    e.b = other;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->RemoveEdge(v, other));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Status DurableGraphStore::SetNodeProperty(VertexId id, std::uint32_t key,
                                          const std::string& value,
                                          WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kSetNodeProperty;
    e.a = id;
    e.key = key;
    e.payload = value;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->SetNodeProperty(id, key, value));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

Status DurableGraphStore::SetEdgeProperty(VertexId v, VertexId other,
                                          std::uint32_t key,
                                          const std::string& value,
                                          WalToken token) {
  std::uint64_t lsn = 0;
  bool durable = false;
  {
    MutexLock lock(&mu_);
    WalEntry e;
    e.type = WalOpType::kSetEdgeProperty;
    e.a = v;
    e.b = other;
    e.key = key;
    e.payload = value;
    e.token = token;
    HERMES_RETURN_NOT_OK(Precheck(e, *store_));
    HERMES_ASSIGN_OR_RETURN(lsn, Log(std::move(e)));
    HERMES_RETURN_NOT_OK(store_->SetEdgeProperty(v, other, key, value));
    durable = durable_mutations_;
  }
  return durable ? wal_->SyncUntil(lsn) : Status::OK();
}

}  // namespace hermes
