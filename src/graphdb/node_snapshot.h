#ifndef HERMES_GRAPHDB_NODE_SNAPSHOT_H_
#define HERMES_GRAPHDB_NODE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace hermes {

/// Serialized form of a node used by the physical migration protocol
/// (Section 3.2): the copy step ships snapshots to the target partition,
/// the remove step deletes the originals. The snapshot carries everything
/// the target needs to rebuild the node: weight, properties, and all
/// incident relationships with their properties.
struct NodeSnapshot {
  struct Relationship {
    VertexId other = kInvalidVertex;
    std::uint32_t type = 0;
    /// True when this side held only a ghost record (properties live with
    /// the other endpoint's partition).
    bool properties_included = false;
    std::vector<std::pair<std::uint32_t, std::string>> properties;
  };

  VertexId id = kInvalidVertex;
  double weight = 1.0;
  std::vector<std::pair<std::uint32_t, std::string>> properties;
  std::vector<Relationship> relationships;

  /// Approximate wire size in bytes — used by the cluster simulator to
  /// charge network time for migrations.
  std::size_t WireBytes() const {
    std::size_t bytes = sizeof(VertexId) + sizeof(double);
    for (const auto& [k, v] : properties) bytes += sizeof(k) + v.size();
    for (const auto& rel : relationships) {
      bytes += sizeof(VertexId) + sizeof(std::uint32_t) + 2;
      for (const auto& [k, v] : rel.properties) bytes += sizeof(k) + v.size();
    }
    return bytes;
  }
};

}  // namespace hermes

#endif  // HERMES_GRAPHDB_NODE_SNAPSHOT_H_
