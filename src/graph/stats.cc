#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace hermes {

double LocalClusteringCoefficient(const Graph& g, VertexId v) {
  const auto neigh = g.Neighbors(v);
  const std::size_t d = neigh.size();
  if (d < 2) return 0.0;
  std::size_t closed = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      if (g.HasEdge(neigh[i], neigh[j])) ++closed;
    }
  }
  return 2.0 * static_cast<double>(closed) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double ClusteringCoefficient(const Graph& g, std::size_t samples, Rng* rng) {
  const std::size_t n = g.NumVertices();
  if (n == 0) return 0.0;
  double sum = 0.0;
  if (samples == 0 || samples >= n) {
    for (VertexId v = 0; v < n; ++v) sum += LocalClusteringCoefficient(g, v);
    return sum / static_cast<double>(n);
  }
  for (std::size_t i = 0; i < samples; ++i) {
    sum += LocalClusteringCoefficient(g, rng->Uniform(n));
  }
  return sum / static_cast<double>(samples);
}

double AveragePathLength(const Graph& g, std::size_t sources, Rng* rng) {
  const std::size_t n = g.NumVertices();
  if (n < 2) return 0.0;
  const bool all = (sources == 0 || sources >= n);
  const std::size_t rounds = all ? n : sources;

  double total = 0.0;
  std::uint64_t pairs = 0;
  std::vector<std::uint32_t> dist(n);
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

  for (std::size_t r = 0; r < rounds; ++r) {
    const VertexId src = all ? static_cast<VertexId>(r) : rng->Uniform(n);
    std::fill(dist.begin(), dist.end(), kUnvisited);
    dist[src] = 0;
    std::deque<VertexId> queue{src};
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId w : g.Neighbors(u)) {
        if (dist[w] == kUnvisited) {
          dist[w] = dist[u] + 1;
          total += dist[w];
          ++pairs;
          queue.push_back(w);
        }
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

double PowerLawExponent(const Graph& g, std::size_t d_min) {
  // Discrete MLE approximation: alpha = 1 + m / sum(ln(d_i / (d_min - 0.5))).
  const std::size_t n = g.NumVertices();
  d_min = std::max<std::size_t>(1, d_min);
  double log_sum = 0.0;
  std::size_t m = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g.Degree(v);
    if (d >= d_min) {
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(d_min) - 0.5));
      ++m;
    }
  }
  if (m < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(m) / log_sum;
}

double LargestComponentLowerBound(const Graph& g) {
  const std::size_t n = g.NumVertices();
  if (n == 0) return 0.0;
  std::vector<bool> seen(n, false);
  std::deque<VertexId> queue{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId w : g.Neighbors(u)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        queue.push_back(w);
      }
    }
  }
  return static_cast<double>(visited) / static_cast<double>(n);
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  const std::size_t n = g.NumVertices();
  if (n == 0) return stats;
  stats.min = std::numeric_limits<std::size_t>::max();
  std::size_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g.Degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += d;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

}  // namespace hermes
