#ifndef HERMES_GRAPH_GRAPH_H_
#define HERMES_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace hermes {

/// In-memory undirected graph with per-vertex weights.
///
/// This is the algorithmic representation used by the partitioners and the
/// workload generators: vertices are dense indices [0, NumVertices());
/// adjacency is stored as per-vertex neighbor vectors. Vertex weights model
/// access popularity (read-request counts), per Section 2.1 of the paper.
///
/// The graph is mutable: social networks evolve (new users, new
/// friendships), and the dynamic experiments add vertices/edges online.
/// Edge insertion keeps each adjacency list sorted so that HasEdge and
/// deduplication are O(log degree).
class Graph {
 public:
  Graph() = default;

  /// Constructs a graph with `n` vertices of weight 1 and no edges.
  explicit Graph(std::size_t n) : adjacency_(n), weights_(n, 1.0) {
    total_weight_ = static_cast<double>(n);
  }

  /// Adds a vertex and returns its id. O(1) amortized.
  VertexId AddVertex(double weight = 1.0);

  /// Adds an undirected edge {u, v}. Rejects self-loops, duplicate edges,
  /// and out-of-range endpoints.
  [[nodiscard]] Status AddEdge(VertexId u, VertexId v);

  /// Removes the undirected edge {u, v} if present.
  [[nodiscard]] Status RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  std::size_t NumVertices() const { return adjacency_.size(); }
  std::size_t NumEdges() const { return num_edges_; }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return adjacency_[v];
  }
  std::size_t Degree(VertexId v) const { return adjacency_[v].size(); }

  double VertexWeight(VertexId v) const { return weights_[v]; }
  void SetVertexWeight(VertexId v, double w) {
    total_weight_ += w - weights_[v];
    weights_[v] = w;
  }
  void AddVertexWeight(VertexId v, double delta) {
    weights_[v] += delta;
    total_weight_ += delta;
  }

  /// Sum of all vertex weights.
  double TotalWeight() const { return total_weight_; }

  /// Recomputes the cached total weight (exact); useful after bulk edits in
  /// tests to guard against drift.
  double RecomputeTotalWeight();

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<double> weights_;
  std::size_t num_edges_ = 0;
  double total_weight_ = 0.0;
};

/// Convenience constructor from an edge list; vertices are 0..n-1.
/// Ignores duplicate edges and self-loops (returns the count it skipped via
/// `skipped`, which may be null).
Graph GraphFromEdges(std::size_t n,
                     const std::vector<std::pair<VertexId, VertexId>>& edges,
                     std::size_t* skipped = nullptr);

}  // namespace hermes

#endif  // HERMES_GRAPH_GRAPH_H_
