#include "graph/graph.h"

#include <algorithm>

namespace hermes {

namespace {
void AddSorted(std::vector<VertexId>* list, VertexId value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  list->insert(it, value);
}
}  // namespace

VertexId Graph::AddVertex(double weight) {
  adjacency_.emplace_back();
  weights_.push_back(weight);
  total_weight_ += weight;
  return static_cast<VertexId>(adjacency_.size() - 1);
}

Status Graph::AddEdge(VertexId u, VertexId v) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("edge already present");
  }
  AddSorted(&adjacency_[u], v);
  AddSorted(&adjacency_[v], u);
  ++num_edges_;
  return Status::OK();
}

Status Graph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  auto& au = adjacency_[u];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it == au.end() || *it != v) {
    return Status::NotFound("edge not present");
  }
  au.erase(it);
  auto& av = adjacency_[v];
  av.erase(std::lower_bound(av.begin(), av.end(), u));
  --num_edges_;
  return Status::OK();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  const auto& a = adjacency_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

double Graph::RecomputeTotalWeight() {
  double total = 0.0;
  for (double w : weights_) total += w;
  total_weight_ = total;
  return total;
}

Graph GraphFromEdges(std::size_t n,
                     const std::vector<std::pair<VertexId, VertexId>>& edges,
                     std::size_t* skipped) {
  Graph g(n);
  std::size_t dropped = 0;
  for (const auto& [u, v] : edges) {
    if (!g.AddEdge(u, v).ok()) ++dropped;
  }
  if (skipped != nullptr) *skipped = dropped;
  return g;
}

}  // namespace hermes
