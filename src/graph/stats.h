#ifndef HERMES_GRAPH_STATS_H_
#define HERMES_GRAPH_STATS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace hermes {

/// Graph statistics matching Table 1 of the paper: average path length,
/// clustering coefficient, and power-law (degree-distribution) coefficient.

/// Local clustering coefficient of a single vertex: fraction of pairs of
/// neighbors that are themselves connected. 0 for degree < 2.
double LocalClusteringCoefficient(const Graph& g, VertexId v);

/// Average local clustering coefficient over `samples` vertices drawn
/// uniformly (or over all vertices when samples == 0 or >= n).
double ClusteringCoefficient(const Graph& g, std::size_t samples, Rng* rng);

/// Average shortest-path length estimated by BFS from `sources` sampled
/// start vertices (all vertices when sources == 0 or >= n). Unreachable
/// pairs are excluded. Returns 0 for graphs with < 2 vertices.
double AveragePathLength(const Graph& g, std::size_t sources, Rng* rng);

/// Maximum-likelihood estimate of the power-law exponent of the degree
/// distribution (Clauset-Shalizi-Newman discrete approximation) using
/// degrees >= d_min. Returns 0 when fewer than 2 vertices qualify.
double PowerLawExponent(const Graph& g, std::size_t d_min = 1);

/// Fraction of vertices reachable from vertex 0 (connectivity check).
double LargestComponentLowerBound(const Graph& g);

/// Degree summary.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
};
DegreeStats ComputeDegreeStats(const Graph& g);

}  // namespace hermes

#endif  // HERMES_GRAPH_STATS_H_
