#ifndef HERMES_WORKLOAD_TRACE_H_
#define HERMES_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "partition/assignment.h"

namespace hermes {

/// One client request. Reads are `hops`-hop traversals from `start`
/// (the paper's representative social-network operations: 1-hop profile /
/// timeline reads, 2-hop friend/ad recommendations). Writes grow the graph
/// (Section 5.3.3's mixed read/write experiments).
struct Operation {
  enum class Type { kRead, kInsertEdge, kInsertVertex };
  Type type = Type::kRead;
  VertexId start = 0;   // reads: traversal start; edge inserts: endpoint u
  VertexId other = 0;   // edge inserts: endpoint v
  int hops = 1;
};

/// Trace parameters, mirroring Section 5.3.1: start vertices are sampled
/// uniformly, except that users on `hot_partition` are selected
/// `skew_factor` times as often ("twice as many times as before"),
/// creating hotspots that trigger the repartitioner.
struct TraceOptions {
  std::size_t num_requests = 20000;
  int hops = 1;
  double write_fraction = 0.0;
  /// Within the write mix, the share that creates new vertices (the rest
  /// are new relationships).
  double vertex_insert_share = 0.1;
  PartitionId hot_partition = kInvalidPartition;  // kInvalid = no skew
  double skew_factor = 2.0;
  std::uint64_t seed = 99;
};

/// Generates a request trace against the current placement. The skew is
/// computed from `assignment` at generation time (hotspots are a property
/// of the *placement*, as in the paper's experiment design).
std::vector<Operation> GenerateTrace(const Graph& g,
                                     const PartitionAssignment& assignment,
                                     const TraceOptions& options);

}  // namespace hermes

#endif  // HERMES_WORKLOAD_TRACE_H_
