#include "workload/trace.h"

#include "common/rng.h"

namespace hermes {

std::vector<Operation> GenerateTrace(const Graph& g,
                                     const PartitionAssignment& assignment,
                                     const TraceOptions& opt) {
  Rng rng(opt.seed);
  const std::size_t n = g.NumVertices();

  // Start-vertex sampler: uniform, with hot-partition vertices boosted by
  // skew_factor.
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const bool hot = opt.hot_partition != kInvalidPartition &&
                     assignment.PartitionOf(v) == opt.hot_partition;
    acc += hot ? opt.skew_factor : 1.0;
    cumulative[v] = acc;
  }

  std::vector<Operation> trace;
  trace.reserve(opt.num_requests);
  for (std::size_t i = 0; i < opt.num_requests; ++i) {
    Operation op;
    if (rng.Bernoulli(opt.write_fraction)) {
      if (rng.Bernoulli(opt.vertex_insert_share)) {
        op.type = Operation::Type::kInsertVertex;
      } else {
        op.type = Operation::Type::kInsertEdge;
        op.start = SampleFromCumulative(cumulative, &rng);
        op.other = rng.Uniform(n);
      }
    } else {
      op.type = Operation::Type::kRead;
      op.start = SampleFromCumulative(cumulative, &rng);
      op.hops = opt.hops;
    }
    trace.push_back(op);
  }
  return trace;
}

}  // namespace hermes
