#ifndef HERMES_WORKLOAD_DRIVER_H_
#define HERMES_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "cluster/hermes_cluster.h"
#include "workload/trace.h"

namespace hermes {

/// Closed-loop driver parameters (the paper uses 32 concurrent clients
/// against 16 servers).
struct DriverOptions {
  std::size_t num_clients = 32;
};

/// Aggregate results of one timed workload run.
struct ThroughputReport {
  SimTime duration_us = 0.0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t vertices_processed = 0;  // paper's throughput numerator
  std::uint64_t unique_vertices = 0;     // query-response size
  std::uint64_t remote_hops = 0;

  /// Simulated busy time accumulated per server (one entry per partition);
  /// the skew across entries is the load-imbalance signal the
  /// repartitioner removes.
  std::vector<SimTime> server_busy_us;
  /// Worst queueing delay any request saw at a busy server.
  SimTime max_queue_delay_us = 0.0;
  /// High-water mark of the simulator's event queue (proxy for in-flight
  /// requests).
  std::size_t peak_pending_events = 0;

  /// Mean fraction of the run each server spent serving requests; 0 for
  /// an empty run (duration 0).
  double MeanUtilization() const {
    if (duration_us <= 0.0 || server_busy_us.empty()) return 0.0;
    SimTime busy = 0.0;
    for (SimTime b : server_busy_us) busy += b;
    return busy / (duration_us * static_cast<double>(server_busy_us.size()));
  }

  /// Aggregate throughput in visited vertices per simulated second.
  double VerticesPerSecond() const {
    return duration_us <= 0.0
               ? 0.0
               : static_cast<double>(vertices_processed) /
                     (duration_us / 1e6);
  }

  /// Response / processed ratio (Section 5.3.2): 1.0 for 1-hop,
  /// well below 1 for 2-hop due to revisits.
  double ResponseProcessedRatio() const {
    return vertices_processed == 0
               ? 0.0
               : static_cast<double>(unique_vertices) /
                     static_cast<double>(vertices_processed);
  }
};

/// Replays `trace` against the cluster with `num_clients` closed-loop
/// clients over the discrete-event simulator: each read is decomposed into
/// per-server segments (queueing at busy servers, remote-hop latency
/// between segments); writes charge record-write time on the involved
/// servers. Mutating operations take effect in simulated-time order, so
/// runs are deterministic.
ThroughputReport RunWorkload(HermesCluster* cluster,
                             const std::vector<Operation>& trace,
                             const DriverOptions& options = {});

}  // namespace hermes

#endif  // HERMES_WORKLOAD_DRIVER_H_
