#include "workload/driver.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "sim/simulator.h"

namespace hermes {

namespace {

/// Shared mutable state for one workload run.
struct RunState {
  HermesCluster* cluster;
  const std::vector<Operation>* trace;
  const NetworkParams* net;
  Simulator sim;
  std::vector<SimTime> server_free;  // per-server FIFO availability
  std::size_t next_op = 0;
  ThroughputReport report;

  /// Serves `service_us` of work on server `p` for a request arriving at
  /// Now(); returns the completion time.
  SimTime Serve(PartitionId p, SimTime service_us) {
    const SimTime start = std::max(sim.Now(), server_free[p]);
    const SimTime done = start + service_us;
    server_free[p] = done;
    report.server_busy_us[p] += service_us;
    report.max_queue_delay_us =
        std::max(report.max_queue_delay_us, start - sim.Now());
    report.peak_pending_events =
        std::max(report.peak_pending_events, sim.PendingEvents());
    return done;
  }
};

void ClientLoop(RunState* state);

void FinishOpAt(RunState* state, SimTime when) {
  state->sim.At(when, [state] { ClientLoop(state); });
}

/// Executes segment `index` of a traversal at its actual arrival time,
/// then schedules the next segment one remote hop later. Scheduling each
/// hop as its own event keeps server FIFO queues honest: a server's time
/// is only claimed once the forwarded request has really arrived.
void TraversalSegmentStep(
    RunState* state,
    std::shared_ptr<const HermesCluster::TraversalRun> run,
    std::size_t index) {
  const NetworkParams& net = *state->net;
  const PartitionId origin = run->segments.front().first;
  const auto [server, visits] = run->segments[index];
  SimTime per_visit = net.local_visit_us;
  if (server != origin) per_visit += net.remote_visit_overhead_us;
  const SimTime done =
      state->Serve(server, static_cast<SimTime>(visits) * per_visit);
  if (index + 1 < run->segments.size()) {
    state->sim.At(done + net.remote_hop_us,
                  [state, run = std::move(run), index] {
                    TraversalSegmentStep(state, std::move(run), index + 1);
                  });
  } else {
    FinishOpAt(state, done + net.client_request_us);
  }
}

/// Advances one client: executes its next operation functionally (state
/// changes take effect now, in simulated-time order), then charges the
/// operation's latency through the event queue.
void ClientLoop(RunState* state) {
  if (state->next_op >= state->trace->size()) return;
  const Operation& op = (*state->trace)[state->next_op++];
  HermesCluster* cluster = state->cluster;
  const NetworkParams& net = *state->net;

  switch (op.type) {
    case Operation::Type::kRead: {
      auto run = cluster->ExecuteRead(op.start, op.hops);
      if (!run.ok()) {
        ++state->report.failed_ops;
        FinishOpAt(state, state->sim.Now() + net.client_request_us);
        return;
      }
      state->report.vertices_processed += run->vertices_processed;
      state->report.unique_vertices += run->unique_vertices;
      state->report.remote_hops += run->remote_hops;
      ++state->report.reads_completed;

      auto shared =
          std::make_shared<const HermesCluster::TraversalRun>(std::move(*run));
      state->sim.After(net.client_request_us,
                       [state, shared = std::move(shared)] {
                         TraversalSegmentStep(state, std::move(shared), 0);
                       });
      return;
    }
    case Operation::Type::kInsertVertex: {
      auto id = cluster->InsertVertex();
      if (id.ok()) {
        const PartitionId p = cluster->assignment().PartitionOf(*id);
        ++state->report.writes_completed;
        state->report.vertices_processed += 1;  // the created record
        // Writes acknowledge once enqueued; the sequential-append B+Tree
        // write path drains in the background (Section 5.3.3 attributes
        // the small write-rate impact to exactly this property). The
        // server time is still claimed, delaying reads that queue behind.
        state->sim.After(net.client_request_us, [state, p] {
          state->Serve(p, state->net->write_op_us);
        });
        FinishOpAt(state, state->sim.Now() + net.client_request_us);
      } else {
        ++state->report.failed_ops;
        FinishOpAt(state, state->sim.Now() + 2.0 * net.client_request_us);
      }
      return;
    }
    case Operation::Type::kInsertEdge: {
      const PartitionId pu = cluster->assignment().PartitionOf(op.start);
      const PartitionId pv = cluster->assignment().PartitionOf(op.other);
      const Status st = cluster->InsertEdge(op.start, op.other);
      if (!st.ok()) {
        ++state->report.failed_ops;  // duplicate edge, lock timeout, ...
        FinishOpAt(state, state->sim.Now() + 2.0 * net.client_request_us);
        return;
      }
      ++state->report.writes_completed;
      state->report.vertices_processed += 2;  // both endpoint records
      // Two record writes on pu (relationship + chain-head update);
      // cross-partition edges add the ghost copy's writes after a hop.
      // Acknowledged once enqueued (see the kInsertVertex note).
      state->sim.After(net.client_request_us, [state, pu, pv] {
        const NetworkParams& n = *state->net;
        const SimTime first = state->Serve(pu, 2.0 * n.write_op_us);
        if (pu != pv) {
          state->sim.At(first + n.remote_hop_us, [state, pv] {
            state->Serve(pv, 2.0 * state->net->write_op_us);
          });
        }
      });
      FinishOpAt(state, state->sim.Now() + net.client_request_us);
      return;
    }
  }
}

}  // namespace

ThroughputReport RunWorkload(HermesCluster* cluster,
                             const std::vector<Operation>& trace,
                             const DriverOptions& options) {
  RunState state;
  state.cluster = cluster;
  state.trace = &trace;
  state.net = &cluster->options().net;
  state.server_free.assign(cluster->num_servers(), 0.0);
  state.report.server_busy_us.assign(cluster->num_servers(), 0.0);

  const std::size_t clients = std::max<std::size_t>(1, options.num_clients);
  for (std::size_t c = 0; c < clients && c < trace.size(); ++c) {
    state.sim.At(0.0, [&state] { ClientLoop(&state); });
  }
  state.report.duration_us = state.sim.Run();

  // Publish the run's load picture (DESIGN.md §7). Gauges, not counters:
  // each run overwrites the previous values.
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("driver.mean_utilization")
      ->Set(state.report.MeanUtilization());
  registry.GetGauge("driver.max_queue_delay_us")
      ->Set(state.report.max_queue_delay_us);
  registry.GetGauge("driver.peak_pending_events")
      ->Set(static_cast<double>(state.report.peak_pending_events));
  registry.GetCounter("driver.ops_completed")
      ->Increment(state.report.reads_completed +
                  state.report.writes_completed);
  registry.GetCounter("driver.ops_failed")
      ->Increment(state.report.failed_ops);
  return state.report;
}

}  // namespace hermes
