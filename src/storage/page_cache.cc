#include "storage/page_cache.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace hermes {

PageCache::PageCache(PagedFile* file, std::size_t capacity_pages)
    : file_(file),
      capacity_(std::max<std::size_t>(1, capacity_pages)),
      m_hits_(MetricsRegistry::Global().GetCounter("page_cache.hits")),
      m_misses_(MetricsRegistry::Global().GetCounter("page_cache.misses")),
      m_evictions_(
          MetricsRegistry::Global().GetCounter("page_cache.evictions")),
      m_writebacks_(
          MetricsRegistry::Global().GetCounter("page_cache.writebacks")) {}

Result<Page*> PageCache::Pin(std::uint64_t page_no) {
  MutexLock lock(&mu_);
  auto it = frames_.find(page_no);
  if (it != frames_.end()) {
    Frame* frame = it->second.get();
    ++stats_.hits;
    m_hits_->Increment();
    if (frame->in_lru) {
      lru_.erase(frame->lru_pos);
      frame->in_lru = false;
    }
    ++frame->pins;
    return &frame->page;
  }

  ++stats_.misses;
  m_misses_->Increment();
  if (frames_.size() >= capacity_) {
    HERMES_RETURN_NOT_OK(EvictOne());
  }
  auto frame = std::make_unique<Frame>();
  frame->page_no = page_no;
  frame->pins = 1;
  HERMES_RETURN_NOT_OK(file_->ReadPage(page_no, &frame->page));
  Page* page = &frame->page;
  frames_.emplace(page_no, std::move(frame));
  return page;
}

void PageCache::Unpin(std::uint64_t page_no, bool dirty) {
  MutexLock lock(&mu_);
  auto it = frames_.find(page_no);
  HERMES_CHECK(it != frames_.end());
  Frame* frame = it->second.get();
  HERMES_CHECK(frame->pins > 0);
  frame->dirty = frame->dirty || dirty;
  if (--frame->pins == 0) {
    lru_.push_front(page_no);
    frame->lru_pos = lru_.begin();
    frame->in_lru = true;
  }
}

Status PageCache::EvictOne() {
  if (lru_.empty()) {
    return Status::Internal("page cache exhausted: all pages pinned");
  }
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = frames_.find(victim);
  HERMES_CHECK(it != frames_.end());
  Frame* frame = it->second.get();
  if (frame->dirty) {
    const Status st = file_->WritePage(victim, frame->page);
    if (!st.ok()) {
      // The victim stays resident (still in frames_ with in_lru == true),
      // so its lru_pos must be a valid position again — otherwise the
      // next Pin of this page erases a dangling iterator. Re-queue it at
      // the cold end: a retried eviction picks the same victim first.
      lru_.push_back(victim);
      frame->lru_pos = std::prev(lru_.end());
      return st;
    }
    ++stats_.writebacks;
    m_writebacks_->Increment();
  }
  frames_.erase(it);
  ++stats_.evictions;
  m_evictions_->Increment();
  return Status::OK();
}

Status PageCache::FlushAll() {
  MutexLock lock(&mu_);
  for (auto& [page_no, frame] : frames_) {
    if (frame->dirty) {
      HERMES_RETURN_NOT_OK(file_->WritePage(page_no, frame->page));
      frame->dirty = false;
      ++stats_.writebacks;
      m_writebacks_->Increment();
    }
  }
  return file_->Sync();
}

PageCache::Stats PageCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

std::size_t PageCache::resident() const {
  MutexLock lock(&mu_);
  return frames_.size();
}

void PagedWriter::Append(const void* data, std::size_t size) {
  if (!first_error_.ok()) return;
  const auto* src = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const std::uint64_t page_no = position_ / kPageSize;
    const std::size_t offset = position_ % kPageSize;
    const std::size_t chunk = std::min(size, kPageSize - offset);
    auto page = cache_->Pin(page_no);
    if (!page.ok()) {
      first_error_ = page.status();
      return;
    }
    std::memcpy((*page)->bytes.data() + offset, src, chunk);
    cache_->Unpin(page_no, /*dirty=*/true);
    src += chunk;
    size -= chunk;
    position_ += chunk;
  }
}

Status PagedWriter::Finish() {
  HERMES_RETURN_NOT_OK(first_error_);
  return cache_->FlushAll();
}

bool PagedReader::Read(void* out, std::size_t size) {
  if (position_ + size > limit_) return false;
  auto* dst = static_cast<unsigned char*>(out);
  while (size > 0) {
    const std::uint64_t page_no = position_ / kPageSize;
    const std::size_t offset = position_ % kPageSize;
    const std::size_t chunk = std::min(size, kPageSize - offset);
    auto page = cache_->Pin(page_no);
    if (!page.ok()) return false;
    std::memcpy(dst, (*page)->bytes.data() + offset, chunk);
    cache_->Unpin(page_no, /*dirty=*/false);
    dst += chunk;
    size -= chunk;
    position_ += chunk;
  }
  return true;
}

}  // namespace hermes
