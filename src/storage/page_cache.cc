#include "storage/page_cache.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace hermes {

namespace {

/// Stable mutex names per shard index (the lock-order validator and the
/// abort diagnostics keep the pointer, so these must outlive every cache).
constexpr const char* kShardMutexNames[PageCache::kMaxShards] = {
    "page_cache.s0",  "page_cache.s1",  "page_cache.s2",  "page_cache.s3",
    "page_cache.s4",  "page_cache.s5",  "page_cache.s6",  "page_cache.s7",
    "page_cache.s8",  "page_cache.s9",  "page_cache.s10", "page_cache.s11",
    "page_cache.s12", "page_cache.s13", "page_cache.s14", "page_cache.s15",
};

}  // namespace

std::vector<std::unique_ptr<PageCache::Shard>> PageCache::MakeShards(
    std::size_t capacity, std::size_t num_shards) {
  // Auto-sharding keeps tiny caches (unit tests, the snapshot cache's
  // smallest configurations) on a single shard — exact global LRU — and
  // gives big caches one shard per 8 pages of capacity.
  std::size_t n = num_shards != 0 ? num_shards
                                  : std::max<std::size_t>(1, capacity / 8);
  n = std::min<std::size_t>(std::max<std::size_t>(n, 1), kMaxShards);
  const std::size_t per_shard = std::max<std::size_t>(1, capacity / n);
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards.push_back(std::make_unique<Shard>(
        kShardMutexNames[i],
        lock_order::kRankPageCacheShardBase + static_cast<int>(i),
        per_shard));
  }
  return shards;
}

PageCache::PageCache(PagedFile* file, std::size_t capacity_pages,
                     std::size_t num_shards)
    : file_(file),
      capacity_(std::max<std::size_t>(1, capacity_pages)),
      shards_(MakeShards(capacity_, num_shards)),
      m_hits_(MetricsRegistry::Global().GetCounter("page_cache.hits")),
      m_misses_(MetricsRegistry::Global().GetCounter("page_cache.misses")),
      m_evictions_(
          MetricsRegistry::Global().GetCounter("page_cache.evictions")),
      m_writebacks_(
          MetricsRegistry::Global().GetCounter("page_cache.writebacks")) {}

Result<Page*> PageCache::Pin(std::uint64_t page_no) {
  Shard& shard = ShardFor(page_no);
  for (;;) {
    Frame* victim_frame = nullptr;
    std::uint64_t victim_no = 0;
    Frame* load_frame = nullptr;
    {
      MutexLock lock(&shard.mu);
      for (;;) {
        auto it = shard.frames.find(page_no);
        if (it != shard.frames.end()) {
          Frame* frame = it->second.get();
          if (frame->busy) {
            // Another thread is loading or writing back this frame; its
            // bytes are off-limits until the I/O completes.
            shard.cv.Wait(&shard.mu);
            continue;
          }
          ++shard.stats.hits;
          m_hits_->Increment();
          if (frame->in_lru) {
            shard.lru.erase(frame->lru_pos);
            frame->in_lru = false;
          }
          ++frame->pins;
          return &frame->page;
        }
        if (shard.frames.size() < shard.capacity) break;  // slot free: load
        if (shard.lru.empty()) {
          if (shard.busy_frames > 0) {
            // An in-flight load may fail (freeing its slot) or an
            // in-flight write-back may complete an eviction; wait for a
            // verdict instead of failing a full-but-transient shard.
            shard.cv.Wait(&shard.mu);
            continue;
          }
          return Status::Internal("page cache exhausted: all pages pinned");
        }
        const std::uint64_t victim = shard.lru.back();
        auto vit = shard.frames.find(victim);
        HERMES_CHECK(vit != shard.frames.end());
        Frame* vframe = vit->second.get();
        HERMES_CHECK(!vframe->busy && vframe->pins == 0);
        shard.lru.pop_back();
        vframe->in_lru = false;
        if (!vframe->dirty) {
          shard.frames.erase(vit);
          ++shard.stats.evictions;
          m_evictions_->Increment();
          continue;  // slot freed; re-check for a free slot or a hit
        }
        vframe->busy = true;
        ++shard.busy_frames;
        victim_frame = vframe;
        victim_no = victim;
        break;  // write the victim back outside the lock
      }
      if (victim_frame == nullptr) {
        // Claim the slot with a busy placeholder so concurrent pinners of
        // this page wait for our load instead of loading twice.
        auto frame = std::make_unique<Frame>();
        frame->page_no = page_no;
        frame->pins = 1;
        frame->busy = true;
        load_frame = frame.get();
        shard.frames.emplace(page_no, std::move(frame));
        ++shard.busy_frames;
        ++shard.stats.misses;
        m_misses_->Increment();
      }
    }

    if (victim_frame != nullptr) {
      // Dirty write-back with the shard lock released: busy + pins == 0
      // guarantee no other thread reads or writes the victim's bytes.
      const Status st = file_->WritePage(victim_no, victim_frame->page);
      MutexLock lock(&shard.mu);
      victim_frame->busy = false;
      --shard.busy_frames;
      if (!st.ok()) {
        // The victim stays resident (still in frames, still dirty), so it
        // must be a valid LRU member again — re-queued at the cold end so
        // a retried eviction picks the same victim first.
        shard.lru.push_back(victim_no);
        victim_frame->lru_pos = std::prev(shard.lru.end());
        victim_frame->in_lru = true;
        shard.cv.NotifyAll();
        return st;
      }
      ++shard.stats.writebacks;
      m_writebacks_->Increment();
      shard.frames.erase(victim_no);
      ++shard.stats.evictions;
      m_evictions_->Increment();
      shard.cv.NotifyAll();
      continue;  // retry the pin with a slot free
    }

    // Miss load with the shard lock released; the placeholder's busy flag
    // keeps concurrent pinners out of the half-filled page.
    const Status st = file_->ReadPage(page_no, &load_frame->page);
    MutexLock lock(&shard.mu);
    load_frame->busy = false;
    --shard.busy_frames;
    shard.cv.NotifyAll();
    if (!st.ok()) {
      shard.frames.erase(page_no);
      return st;
    }
    return &load_frame->page;
  }
}

void PageCache::Unpin(std::uint64_t page_no, bool dirty) {
  Shard& shard = ShardFor(page_no);
  MutexLock lock(&shard.mu);
  auto it = shard.frames.find(page_no);
  HERMES_CHECK(it != shard.frames.end());
  Frame* frame = it->second.get();
  HERMES_CHECK(frame->pins > 0);
  frame->dirty = frame->dirty || dirty;
  if (--frame->pins == 0 && !frame->busy) {
    // A busy frame (FlushAll writing it back) rejoins the LRU when its
    // I/O completes, not here — it must not be evictable mid-write.
    shard.lru.push_front(page_no);
    frame->lru_pos = shard.lru.begin();
    frame->in_lru = true;
  }
}

Status PageCache::FlushAll() {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    for (;;) {
      Frame* frame = nullptr;
      std::uint64_t page_no = 0;
      {
        MutexLock lock(&shard.mu);
        for (;;) {
          bool busy_dirty = false;
          for (auto& [no, f] : shard.frames) {
            if (!f->dirty) continue;
            if (f->busy) {
              busy_dirty = true;
              continue;
            }
            frame = f.get();
            page_no = no;
            break;
          }
          if (frame != nullptr || !busy_dirty) break;
          // Every remaining dirty frame has I/O in flight (an eviction
          // write-back); wait for its verdict so the flush covers it.
          shard.cv.Wait(&shard.mu);
        }
        if (frame == nullptr) break;  // shard clean: next shard
        frame->busy = true;
        ++shard.busy_frames;
        // Clear the dirty bit at claim time: a write landing during our
        // I/O re-dirties the frame and the next scan catches it.
        frame->dirty = false;
        if (frame->in_lru) {
          shard.lru.erase(frame->lru_pos);
          frame->in_lru = false;
        }
      }
      const Status st = file_->WritePage(page_no, frame->page);
      MutexLock lock(&shard.mu);
      frame->busy = false;
      --shard.busy_frames;
      if (!st.ok()) {
        frame->dirty = true;
      } else {
        ++shard.stats.writebacks;
        m_writebacks_->Increment();
      }
      if (frame->pins == 0 && !frame->in_lru) {
        shard.lru.push_front(page_no);
        frame->lru_pos = shard.lru.begin();
        frame->in_lru = true;
      }
      shard.cv.NotifyAll();
      if (!st.ok()) return st;
    }
  }
  return file_->Sync();
}

PageCache::Stats PageCache::stats() const {
  Stats total;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.writebacks += shard.stats.writebacks;
  }
  return total;
}

std::size_t PageCache::resident() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    total += shard.frames.size();
  }
  return total;
}

void PagedWriter::Append(const void* data, std::size_t size) {
  if (!first_error_.ok()) return;
  const auto* src = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const std::uint64_t page_no = position_ / kPageSize;
    const std::size_t offset = position_ % kPageSize;
    const std::size_t chunk = std::min(size, kPageSize - offset);
    auto page = cache_->Pin(page_no);
    if (!page.ok()) {
      first_error_ = page.status();
      return;
    }
    std::memcpy((*page)->bytes.data() + offset, src, chunk);
    cache_->Unpin(page_no, /*dirty=*/true);
    src += chunk;
    size -= chunk;
    position_ += chunk;
  }
}

Status PagedWriter::Finish() {
  HERMES_RETURN_NOT_OK(first_error_);
  return cache_->FlushAll();
}

bool PagedReader::Read(void* out, std::size_t size) {
  if (position_ + size > limit_) return false;
  auto* dst = static_cast<unsigned char*>(out);
  while (size > 0) {
    const std::uint64_t page_no = position_ / kPageSize;
    const std::size_t offset = position_ % kPageSize;
    const std::size_t chunk = std::min(size, kPageSize - offset);
    auto page = cache_->Pin(page_no);
    if (!page.ok()) return false;
    std::memcpy(dst, (*page)->bytes.data() + offset, chunk);
    cache_->Unpin(page_no, /*dirty=*/false);
    dst += chunk;
    size -= chunk;
    position_ += chunk;
  }
  return true;
}

}  // namespace hermes
