#ifndef HERMES_STORAGE_PAGED_FILE_H_
#define HERMES_STORAGE_PAGED_FILE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace hermes {

/// Fixed page size used by the storage layer (Neo4j's page cache default).
inline constexpr std::size_t kPageSize = 8192;

/// One 8 KiB page of raw bytes.
struct Page {
  std::array<unsigned char, kPageSize> bytes{};
};

/// A file addressed in fixed-size pages — the unit the PageCache manages.
/// All higher-level store files (snapshots, and any future paged record
/// stores) sit on this abstraction.
class PagedFile {
 public:
  /// Opens (creating if needed) the paged file at `path`.
  [[nodiscard]] static Result<PagedFile> Open(const std::string& path);

  PagedFile(PagedFile&&) = default;
  PagedFile& operator=(PagedFile&&) = default;

  /// Reads page `page_no`. Reading a page past the end yields zeros (the
  /// file grows lazily).
  [[nodiscard]] Status ReadPage(std::uint64_t page_no, Page* page);

  /// Writes page `page_no`, growing the file as needed.
  [[nodiscard]] Status WritePage(std::uint64_t page_no, const Page& page);

  /// Pages currently materialized in the file.
  std::uint64_t NumPages() const { return num_pages_; }

  [[nodiscard]] Status Sync();

  /// Truncates to zero pages.
  [[nodiscard]] Status Reset();

  const std::string& path() const { return path_; }

 private:
  PagedFile(std::string path, std::fstream file, std::uint64_t num_pages)
      : path_(std::move(path)),
        file_(std::move(file)),
        num_pages_(num_pages) {}

  std::string path_;
  std::fstream file_;
  std::uint64_t num_pages_ = 0;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_PAGED_FILE_H_
