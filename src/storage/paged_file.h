#ifndef HERMES_STORAGE_PAGED_FILE_H_
#define HERMES_STORAGE_PAGED_FILE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hermes {

/// Fixed page size used by the storage layer (Neo4j's page cache default).
inline constexpr std::size_t kPageSize = 8192;

/// One 8 KiB page of raw bytes.
struct Page {
  std::array<unsigned char, kPageSize> bytes{};
};

/// A file addressed in fixed-size pages — the unit the PageCache manages.
/// All higher-level store files (snapshots, and any future paged record
/// stores) sit on this abstraction.
///
/// Backed by a raw POSIX fd: page reads/writes are positioned
/// `pread`/`pwrite` calls, which are atomic per call with respect to the
/// file offset, so concurrent page I/O on *different* pages needs no lock
/// here — exactly what the sharded PageCache relies on when it performs
/// misses and writebacks outside its shard locks. `Sync()` issues a real
/// fdatasync/fsync. Only the page-count metadata is mutex-guarded.
class PagedFile {
 public:
  /// Opens (creating if needed) the paged file at `path`.
  [[nodiscard]] static Result<PagedFile> Open(const std::string& path);

  ~PagedFile();
  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  PagedFile(PagedFile&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : path_(std::move(other.path_)),
        fd_(other.fd_),
        num_pages_(other.num_pages_) {
    other.fd_ = -1;
    other.num_pages_ = 0;
  }
  PagedFile& operator=(PagedFile&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;

  /// Reads page `page_no`. Reading a page past the end yields zeros (the
  /// file grows lazily). Safe to call concurrently with other page I/O.
  [[nodiscard]] Status ReadPage(std::uint64_t page_no, Page* page)
      EXCLUDES(meta_mu_);

  /// Writes page `page_no`, growing the file as needed. Safe to call
  /// concurrently with other page I/O on distinct pages.
  [[nodiscard]] Status WritePage(std::uint64_t page_no, const Page& page)
      EXCLUDES(meta_mu_);

  /// Pages currently materialized in the file.
  std::uint64_t NumPages() const EXCLUDES(meta_mu_) {
    MutexLock lock(&meta_mu_);
    return num_pages_;
  }

  /// Forces every written page to stable storage (fdatasync/fsync).
  [[nodiscard]] Status Sync() EXCLUDES(meta_mu_);

  /// Truncates to zero pages.
  [[nodiscard]] Status Reset() EXCLUDES(meta_mu_);

  const std::string& path() const { return path_; }

 private:
  PagedFile(std::string path, int fd, std::uint64_t num_pages)
      : path_(std::move(path)), fd_(fd), num_pages_(num_pages) {}

  // audit:allow(guard, written only at construction and by move-assignment)
  std::string path_;
  // Set at construction/move, before the file is shared; pread/pwrite on
  // the fd are atomic per call, so concurrent page I/O needs no lock.
  // audit:allow(guard, set before sharing; pread/pwrite are atomic per call)
  int fd_ = -1;
  mutable Mutex meta_mu_{"paged_file.mu", lock_order::kRankPagedFile};
  std::uint64_t num_pages_ GUARDED_BY(meta_mu_) = 0;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_PAGED_FILE_H_
