#include "storage/dynamic_store.h"

#include <algorithm>
#include <cstring>

namespace hermes {

RecordId DynamicStore::Put(const std::string& payload) {
  const RecordId head = next_id_;
  std::size_t offset = 0;
  RecordId id = head;
  do {
    Block block;
    const std::size_t chunk =
        std::min(kBlockPayload, payload.size() - offset);
    block.length = static_cast<std::uint8_t>(chunk);
    if (chunk > 0) std::memcpy(block.data.data(), payload.data() + offset, chunk);
    offset += chunk;
    const bool more = offset < payload.size();
    block.next = more ? id + 1 : kInvalidRecord;
    blocks_.Insert(id, block);
    ++id;
  } while (offset < payload.size());
  next_id_ = id;
  return head;
}

Result<std::string> DynamicStore::Get(RecordId head) const {
  std::string out;
  RecordId id = head;
  while (id != kInvalidRecord) {
    const Block* block = blocks_.Find(id);
    if (block == nullptr) return Status::NotFound("dangling dynamic block");
    out.append(block->data.data(), block->length);
    id = block->next;
  }
  return out;
}

Status DynamicStore::Free(RecordId head) {
  RecordId id = head;
  while (id != kInvalidRecord) {
    const Block* block = blocks_.Find(id);
    if (block == nullptr) return Status::NotFound("dangling dynamic block");
    const RecordId next = block->next;
    blocks_.Erase(id);
    id = next;
  }
  return Status::OK();
}

}  // namespace hermes
