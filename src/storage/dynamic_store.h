#ifndef HERMES_STORAGE_DYNAMIC_STORE_H_
#define HERMES_STORAGE_DYNAMIC_STORE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/bptree.h"

namespace hermes {

/// Variable-length payload store built from chained fixed-size blocks —
/// Neo4j's "dynamic store" half of the two-layer property architecture
/// (Section 4): property records hold a fixed-size pointer into this
/// store; the payload spans as many 24-byte blocks as needed.
class DynamicStore {
 public:
  static constexpr std::size_t kBlockPayload = 24;

  /// Stores `payload`, returning the head block id of the chain.
  RecordId Put(const std::string& payload);

  /// Reassembles the payload starting at `head`.
  [[nodiscard]] Result<std::string> Get(RecordId head) const;

  /// Frees the whole chain starting at `head`.
  [[nodiscard]] Status Free(RecordId head);

  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t MemoryBytes() const {
    return blocks_.size() * (sizeof(Block) + sizeof(RecordId));
  }

 private:
  struct Block {
    RecordId next = kInvalidRecord;
    std::uint8_t length = 0;  // bytes used in this block
    std::array<char, kBlockPayload> data{};
  };

  BPlusTree<RecordId, Block, 64> blocks_;
  RecordId next_id_ = 0;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_DYNAMIC_STORE_H_
