#ifndef HERMES_STORAGE_PAGE_CACHE_H_
#define HERMES_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/paged_file.h"

namespace hermes {

/// LRU page cache over a PagedFile — the buffer-management layer between
/// the stores and disk (Neo4j's page cache). Pages are pinned for access;
/// unpinned dirty pages are written back on eviction or on FlushAll().
///
/// Thread-safe: Pin/Unpin/FlushAll may be called concurrently. A pinned
/// page is never evicted, so the Page* returned by Pin() stays valid (and
/// its frame's address stable) until the matching Unpin(); concurrent
/// pinners of the same page share one frame. Byte-range coordination
/// WITHIN a pinned page is the caller's job (record-level locks) — the
/// cache only guarantees frame lifetime and metadata consistency. File
/// I/O currently happens under `mu_` (correctness first; lock-free I/O is
/// future work).
class PageCache {
 public:
  PageCache(PagedFile* file, std::size_t capacity_pages);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins `page_no` and returns a pointer to its in-memory copy, loading
  /// it (or materializing a zero page past EOF) on miss. The pointer
  /// stays valid until Unpin.
  [[nodiscard]] Result<Page*> Pin(std::uint64_t page_no) EXCLUDES(mu_);

  /// Releases a pin; `dirty` marks the page for write-back.
  void Unpin(std::uint64_t page_no, bool dirty) EXCLUDES(mu_);

  /// Writes back every dirty page and syncs the file.
  [[nodiscard]] Status FlushAll() EXCLUDES(mu_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };
  Stats stats() const EXCLUDES(mu_);

  std::size_t capacity() const { return capacity_; }
  std::size_t resident() const EXCLUDES(mu_);

 private:
  struct Frame {
    Page page;
    std::uint64_t page_no = 0;
    int pins = 0;
    bool dirty = false;
    std::list<std::uint64_t>::iterator lru_pos;  // valid when pins == 0
    bool in_lru = false;
  };

  /// Evicts one unpinned page (LRU order); fails when all pages pinned.
  [[nodiscard]] Status EvictOne() REQUIRES(mu_);

  PagedFile* const file_ PT_GUARDED_BY(mu_);
  const std::size_t capacity_;
  mutable Mutex mu_{"page_cache.mu", lock_order::kRankPageCache};
  std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames_
      GUARDED_BY(mu_);
  std::list<std::uint64_t> lru_ GUARDED_BY(mu_);  // front = most recent
  Stats stats_ GUARDED_BY(mu_);

  // Process-wide observability mirrors of stats_ (metric naming scheme in
  // DESIGN.md §7); pointers cached once, registry owns the counters.
  Counter* const m_hits_;
  Counter* const m_misses_;
  Counter* const m_evictions_;
  Counter* const m_writebacks_;
};

/// Sequential byte-stream writer over a PageCache: Append() packs bytes
/// into consecutive pages; Finish() flushes. Used by the snapshot writer
/// so bulk store I/O exercises the buffer layer. Not thread-safe: one
/// stream, one thread (the underlying cache is shared safely).
class PagedWriter {
 public:
  explicit PagedWriter(PageCache* cache) : cache_(cache) {}

  /// Appends raw bytes; errors are sticky and reported by Finish().
  void Append(const void* data, std::size_t size);

  /// Total bytes appended so far.
  std::uint64_t position() const { return position_; }

  /// Flushes and returns the first error encountered (if any).
  [[nodiscard]] Status Finish();

 private:
  PageCache* cache_;
  std::uint64_t position_ = 0;
  Status first_error_;
};

/// Sequential reader counterpart. Not thread-safe (see PagedWriter).
class PagedReader {
 public:
  PagedReader(PageCache* cache, std::uint64_t limit_bytes)
      : cache_(cache), limit_(limit_bytes) {}

  /// Reads exactly `size` bytes; returns false at/past end or on error.
  bool Read(void* out, std::size_t size);

  std::uint64_t position() const { return position_; }

 private:
  PageCache* cache_;
  std::uint64_t position_ = 0;
  std::uint64_t limit_;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_PAGE_CACHE_H_
