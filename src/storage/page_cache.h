#ifndef HERMES_STORAGE_PAGE_CACHE_H_
#define HERMES_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/paged_file.h"

namespace hermes {

/// Sharded LRU page cache over a PagedFile — the buffer-management layer
/// between the stores and disk (Neo4j's page cache). Pages are pinned for
/// access; unpinned dirty pages are written back on eviction or on
/// FlushAll().
///
/// Pages hash to one of N shards (page_no % N), each with its own mutex,
/// LRU list, and capacity slice, so pins on different shards never
/// contend. All file I/O — miss loads and dirty write-backs — happens
/// *outside* the shard lock under a per-frame `busy` flag: a busy frame
/// is being loaded or written back by exactly one thread, concurrent
/// pinners of it wait on the shard's CondVar, and the shard lock itself
/// is never held across a read/write/fsync (PagedFile's pread/pwrite are
/// atomic per call, so shards do parallel I/O safely).
///
/// Thread-safe: Pin/Unpin/FlushAll may be called concurrently. A pinned
/// page is never evicted, so the Page* returned by Pin() stays valid (and
/// its frame's address stable) until the matching Unpin(); concurrent
/// pinners of the same page share one frame. Byte-range coordination
/// WITHIN a pinned page is the caller's job (record-level locks) — the
/// cache only guarantees frame lifetime and metadata consistency.
class PageCache {
 public:
  /// `num_shards` 0 (the default) picks automatically: one shard per 8
  /// pages of capacity, capped at kMaxShards — small caches (unit tests,
  /// tiny snapshot caches) get a single shard and therefore exact global
  /// LRU behavior; large caches shard for concurrency.
  PageCache(PagedFile* file, std::size_t capacity_pages,
            std::size_t num_shards = 0);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Pins `page_no` and returns a pointer to its in-memory copy, loading
  /// it (or materializing a zero page past EOF) on miss. The pointer
  /// stays valid until Unpin.
  [[nodiscard]] Result<Page*> Pin(std::uint64_t page_no);

  /// Releases a pin; `dirty` marks the page for write-back.
  void Unpin(std::uint64_t page_no, bool dirty);

  /// Writes back every dirty page and syncs the file.
  [[nodiscard]] Status FlushAll();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
  };
  /// Aggregated over all shards.
  Stats stats() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t resident() const;

  static constexpr std::size_t kMaxShards = 16;

 private:
  struct Frame {
    Page page;
    std::uint64_t page_no = 0;
    int pins = 0;
    bool dirty = false;
    /// One thread is doing file I/O on this frame with the shard lock
    /// released (miss load or write-back); everyone else keeps out and
    /// waits on the shard CondVar.
    bool busy = false;
    std::list<std::uint64_t>::iterator lru_pos;  // valid when in_lru
    bool in_lru = false;
  };

  /// One cache shard: an independent LRU over its slice of the capacity.
  /// `mu` ranks at kRankPageCacheShardBase + shard index, so the
  /// validator proves no code path ever holds two shards at once.
  struct Shard {
    Shard(const char* mu_name, int rank, std::size_t cap)
        : mu(mu_name, rank), capacity(cap) {}

    mutable Mutex mu;
    CondVar cv;  // busy-frame transitions and freed capacity
    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames
        GUARDED_BY(mu);
    std::list<std::uint64_t> lru GUARDED_BY(mu);  // front = most recent
    Stats stats GUARDED_BY(mu);
    /// Number of frames currently busy (I/O in flight off-lock).
    std::size_t busy_frames GUARDED_BY(mu) = 0;
    const std::size_t capacity;
  };

  Shard& ShardFor(std::uint64_t page_no) const {
    return *shards_[page_no % shards_.size()];
  }

  /// Builds the shard vector (resolving `num_shards` 0 to the automatic
  /// count) with per-shard capacity slices and ranked, named mutexes.
  static std::vector<std::unique_ptr<Shard>> MakeShards(
      std::size_t capacity, std::size_t num_shards);

  // No mutex of its own: all mutable state lives inside the shards, and
  // `file_` is only accessed outside shard locks (pread/pwrite are
  // per-call atomic; see PagedFile).
  PagedFile* const file_;
  const std::size_t capacity_;
  const std::vector<std::unique_ptr<Shard>> shards_;

  // Process-wide observability mirrors of the shard stats (metric naming
  // scheme in DESIGN.md §7); pointers cached once, registry owns the
  // counters.
  Counter* const m_hits_;
  Counter* const m_misses_;
  Counter* const m_evictions_;
  Counter* const m_writebacks_;
};

/// Sequential byte-stream writer over a PageCache: Append() packs bytes
/// into consecutive pages; Finish() flushes. Used by the snapshot writer
/// so bulk store I/O exercises the buffer layer. Not thread-safe: one
/// stream, one thread (the underlying cache is shared safely).
class PagedWriter {
 public:
  explicit PagedWriter(PageCache* cache) : cache_(cache) {}

  /// Appends raw bytes; errors are sticky and reported by Finish().
  void Append(const void* data, std::size_t size);

  /// Total bytes appended so far.
  std::uint64_t position() const { return position_; }

  /// Flushes and returns the first error encountered (if any).
  [[nodiscard]] Status Finish();

 private:
  PageCache* cache_;
  std::uint64_t position_ = 0;
  Status first_error_;
};

/// Sequential reader counterpart. Not thread-safe (see PagedWriter).
class PagedReader {
 public:
  PagedReader(PageCache* cache, std::uint64_t limit_bytes)
      : cache_(cache), limit_(limit_bytes) {}

  /// Reads exactly `size` bytes; returns false at/past end or on error.
  bool Read(void* out, std::size_t size);

  std::uint64_t position() const { return position_; }

 private:
  PageCache* cache_;
  std::uint64_t position_ = 0;
  std::uint64_t limit_;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_PAGE_CACHE_H_
