#ifndef HERMES_STORAGE_RECORDS_H_
#define HERMES_STORAGE_RECORDS_H_

#include <cstdint>

#include "common/types.h"

namespace hermes {

/// Fixed-size record layouts mirroring Neo4j's three-store design
/// (Section 4): node store, relationship store, property store. Keeping
/// node and relationship records fixed-size preserves Neo4j's O(1) record
/// addressing; Hermes swaps the offset computation for a B+Tree lookup
/// because IDs stop being contiguous once data migrates.

/// Availability of a node during the two-step physical migration: marked
/// records enter kUnavailable in the remove step, and queries treat them
/// as absent (Section 3.2).
enum class NodeState : std::uint8_t {
  kAvailable = 0,
  kUnavailable = 1,
};

struct NodeRecord {
  bool in_use = false;
  NodeState state = NodeState::kAvailable;
  /// Head of this node's relationship chain (doubly-linked list model).
  RecordId first_rel = kInvalidRecord;
  /// Head of this node's property chain.
  RecordId first_prop = kInvalidRecord;
  /// Popularity weight (read-request count) — the repartitioner's vertex
  /// weight.
  double weight = 1.0;
};

struct RelationshipRecord {
  bool in_use = false;
  /// Ghost relationships keep the graph structure valid when the other
  /// endpoint lives on a remote partition: they carry no properties but
  /// make adjacency lists fully local (Section 4).
  bool ghost = false;
  std::uint32_t type = 0;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  /// Chain links inside src's relationship list.
  RecordId src_prev = kInvalidRecord;
  RecordId src_next = kInvalidRecord;
  /// Chain links inside dst's relationship list.
  RecordId dst_prev = kInvalidRecord;
  RecordId dst_next = kInvalidRecord;
  RecordId first_prop = kInvalidRecord;

  /// The other endpoint, given one of them.
  VertexId OtherEnd(VertexId self) const { return self == src ? dst : src; }
};

struct PropertyRecord {
  bool in_use = false;
  std::uint32_t key_id = 0;
  /// Small integral values are stored inline; longer payloads live in the
  /// dynamic store (two-layer scheme, Section 4).
  bool inlined = true;
  std::uint64_t inline_value = 0;
  RecordId dynamic_head = kInvalidRecord;
  RecordId next_prop = kInvalidRecord;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_RECORDS_H_
