#include "storage/fd_appender.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hermes {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Result<FdAppender> FdAppender::Open(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open failed for", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::IOError(ErrnoMessage("fstat failed for", path));
    ::close(fd);
    return err;
  }
  return FdAppender(fd, path, static_cast<std::uint64_t>(st.st_size));
}

FdAppender::~FdAppender() {
  if (fd_ >= 0) ::close(fd_);
}

FdAppender::FdAppender(FdAppender&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      size_(other.size_),
      synced_size_(other.synced_size_) {
  other.fd_ = -1;
  other.size_ = 0;
  other.synced_size_ = 0;
}

FdAppender& FdAppender::operator=(FdAppender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    size_ = other.size_;
    synced_size_ = other.synced_size_;
    other.fd_ = -1;
    other.size_ = 0;
    other.synced_size_ = 0;
  }
  return *this;
}

Status FdAppender::Append(const void* data, std::size_t len) {
  if (fd_ < 0) return Status::IOError("FdAppender not open: " + path_);
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("write failed for", path_));
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
    size_ += static_cast<std::uint64_t>(n);
  }
  return Status::OK();
}

Status FdAppender::Sync() {
  if (fd_ < 0) return Status::IOError("FdAppender not open: " + path_);
#if defined(__linux__)
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync failed for", path_));
  }
#else
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed for", path_));
  }
#endif
  synced_size_ = size_;
  return Status::OK();
}

Status FdAppender::Truncate() {
  if (fd_ < 0) return Status::IOError("FdAppender not open: " + path_);
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate failed for", path_));
  }
  size_ = 0;
  synced_size_ = 0;
  // O_APPEND writes always land at the (new) end of file, so no seek is
  // needed; sync the truncation itself so a crash cannot resurrect the
  // old contents.
  return Sync();
}

Status FdAppender::DropUnsynced() {
  if (fd_ < 0) return Status::IOError("FdAppender not open: " + path_);
  if (::ftruncate(fd_, static_cast<off_t>(synced_size_)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate failed for", path_));
  }
  size_ = synced_size_;
  return Status::OK();
}

}  // namespace hermes
