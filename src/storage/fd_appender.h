#ifndef HERMES_STORAGE_FD_APPENDER_H_
#define HERMES_STORAGE_FD_APPENDER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace hermes {

/// Append-only file handle backed by a raw POSIX fd.
///
/// This is the durability primitive under the WAL: unlike the
/// std::ofstream it replaced, Sync() issues a real ::fdatasync/::fsync,
/// so bytes acknowledged as synced survive power loss, not just process
/// death. The appender tracks two watermarks:
///
///   size()        bytes handed to the OS (write(2) returned),
///   synced_size() bytes known forced to stable storage.
///
/// DropUnsynced() truncates the file back to synced_size(); the
/// crash-torture harness uses it to model an OS that lost its buffered
/// (written-but-unsynced) suffix at power-off.
///
/// Not internally synchronized: callers serialize access (the WAL holds
/// its mutex or the group-commit leader token across every call).
class FdAppender {
 public:
  /// Opens (creating if absent) `path` for appending. The initial
  /// synced watermark is the current file size: bytes that survived a
  /// previous session are on disk by definition.
  [[nodiscard]] static Result<FdAppender> Open(const std::string& path);

  FdAppender() = default;
  ~FdAppender();
  FdAppender(const FdAppender&) = delete;
  FdAppender& operator=(const FdAppender&) = delete;
  FdAppender(FdAppender&& other) noexcept;
  FdAppender& operator=(FdAppender&& other) noexcept;

  /// Appends `len` bytes, retrying short writes and EINTR. On failure
  /// the file may hold a prefix of the data (a torn append); the caller
  /// decides whether that poisons the log.
  [[nodiscard]] Status Append(const void* data, std::size_t len);

  /// Forces every appended byte to stable storage (fdatasync on Linux,
  /// fsync elsewhere) and advances synced_size() to size().
  [[nodiscard]] Status Sync();

  /// Truncates the file to zero bytes and syncs the truncation. Both
  /// watermarks reset to 0.
  [[nodiscard]] Status Truncate();

  /// Discards the written-but-unsynced suffix by truncating the file to
  /// synced_size(), simulating an OS buffer lost at power-off. Test-only
  /// semantics; the WAL calls it from a crash-latched failpoint path.
  [[nodiscard]] Status DropUnsynced();

  bool valid() const { return fd_ >= 0; }
  std::uint64_t size() const { return size_; }
  std::uint64_t synced_size() const { return synced_size_; }

 private:
  FdAppender(int fd, std::string path, std::uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size), synced_size_(size) {}

  int fd_ = -1;
  std::string path_;
  std::uint64_t size_ = 0;
  std::uint64_t synced_size_ = 0;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_FD_APPENDER_H_
