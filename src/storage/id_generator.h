#ifndef HERMES_STORAGE_ID_GENERATOR_H_
#define HERMES_STORAGE_ID_GENERATOR_H_

#include <atomic>
#include <cstdint>

#include "common/types.h"

namespace hermes {

/// Monotonically increasing ID generator, namespaced by origin partition.
///
/// Neo4j relies on contiguous, monotonically increasing IDs so inserts
/// always append (Section 5.3.3: "insertions in the B+Tree always happen
/// in the last page"). In a sharded deployment each server must mint
/// globally unique IDs without coordination, so the top 16 bits carry the
/// origin partition and the low 48 bits a local monotonic counter.
///
/// Thread-safe and lock-free: the local counter is a std::atomic, so
/// concurrent Next() calls on one generator never mint duplicate ids.
class IdGenerator {
 public:
  explicit IdGenerator(PartitionId origin, std::uint64_t start = 0)
      : origin_(static_cast<std::uint64_t>(origin) << kShift),
        next_(start) {}

  IdGenerator(const IdGenerator&) = delete;
  IdGenerator& operator=(const IdGenerator&) = delete;

  // Moving is only legal while no other thread uses either generator
  // (it happens during single-threaded store construction/teardown).
  IdGenerator(IdGenerator&& other) noexcept
      : origin_(other.origin_),
        next_(other.next_.load(std::memory_order_relaxed)) {}
  IdGenerator& operator=(IdGenerator&& other) noexcept {
    origin_ = other.origin_;
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Next globally unique id; strictly increasing per generator.
  RecordId Next() {
    return origin_ | next_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advances past `id` if it was minted elsewhere with our origin
  /// (used when ingesting migrated records).
  void ObserveExternal(RecordId id) {
    if (OriginOf(id) == origin()) {
      const std::uint64_t local = LocalOf(id);
      std::uint64_t cur = next_.load(std::memory_order_relaxed);
      while (local >= cur &&
             !next_.compare_exchange_weak(cur, local + 1,
                                          std::memory_order_relaxed)) {
      }
    }
  }

  PartitionId origin() const {
    return static_cast<PartitionId>(origin_ >> kShift);
  }

  static PartitionId OriginOf(RecordId id) {
    return static_cast<PartitionId>(id >> kShift);
  }
  static std::uint64_t LocalOf(RecordId id) { return id & kLocalMask; }

 private:
  static constexpr unsigned kShift = 48;
  static constexpr std::uint64_t kLocalMask = (1ULL << kShift) - 1;

  std::uint64_t origin_;  // constant after construction (moves aside)
  std::atomic<std::uint64_t> next_;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_ID_GENERATOR_H_
