#ifndef HERMES_STORAGE_BPTREE_H_
#define HERMES_STORAGE_BPTREE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace hermes {

/// In-memory B+Tree with linked leaves.
///
/// Hermes replaced Neo4j's offset-based record indexing with a tree-based
/// (B+Tree) scheme because after sharding and migration record IDs are no
/// longer densely allocated (Section 4). Every record store is keyed by
/// this tree.
///
/// `Order` is the maximum number of keys per node; nodes split above it and
/// borrow/merge below Order/2. Leaves form a doubly-linked list for range
/// scans; sequential insertion of monotonically increasing IDs therefore
/// always lands in the rightmost leaf (the property the paper leans on for
/// cheap writes in Section 5.3.3).
template <typename Key, typename Value, std::size_t Order = 64>
class BPlusTree {
  static_assert(Order >= 4, "Order must be at least 4");

  struct Node;  // defined below; Iterator needs the name early

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {
    first_leaf_ = root_.get();
  }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts; returns false (and leaves the tree unchanged) if the key
  /// already exists.
  bool Insert(const Key& key, Value value) {
    return InsertImpl(key, std::move(value), /*overwrite=*/false);
  }

  /// Inserts or overwrites; returns true when a new key was created.
  bool Upsert(const Key& key, Value value) {
    return InsertImpl(key, std::move(value), /*overwrite=*/true);
  }

  const Value* Find(const Key& key) const {
    const Node* leaf = DescendToLeaf(key);
    const std::size_t i = LowerBound(leaf->keys, key);
    if (i < leaf->keys.size() && leaf->keys[i] == key) {
      return &leaf->values[i];
    }
    return nullptr;
  }

  Value* FindMutable(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).Find(key));
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Removes a key; returns false if absent.
  bool Erase(const Key& key) {
    if (!EraseImpl(root_.get(), key)) return false;
    --size_;
    // Shrink the root when an internal root has a single child left.
    while (!root_->leaf && root_->keys.empty()) {
      root_ = std::move(root_->children.front());
    }
    return true;
  }

  /// Forward iterator over (key, value) in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const BPlusTree* tree, const Node* leaf, std::size_t index)
        : tree_(tree), leaf_(leaf), index_(index) {
      Normalize();
    }

    bool operator==(const Iterator& o) const {
      return leaf_ == o.leaf_ && index_ == o.index_;
    }
    bool operator!=(const Iterator& o) const { return !(*this == o); }

    const Key& key() const { return leaf_->keys[index_]; }
    const Value& value() const { return leaf_->values[index_]; }

    std::pair<const Key&, const Value&> operator*() const {
      return {leaf_->keys[index_], leaf_->values[index_]};
    }

    Iterator& operator++() {
      ++index_;
      Normalize();
      return *this;
    }

   private:
    void Normalize() {
      while (leaf_ != nullptr && index_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        index_ = 0;
      }
      if (leaf_ == nullptr) index_ = 0;
    }

    const BPlusTree* tree_ = nullptr;
    const Node* leaf_ = nullptr;
    std::size_t index_ = 0;
  };

  Iterator begin() const { return Iterator(this, first_leaf_, 0); }
  Iterator end() const { return Iterator(this, nullptr, 0); }

  /// First element with key >= `key`.
  Iterator LowerBoundIter(const Key& key) const {
    const Node* leaf = DescendToLeaf(key);
    return Iterator(this, leaf, LowerBound(leaf->keys, key));
  }

  std::size_t Height() const {
    std::size_t h = 1;
    const Node* node = root_.get();
    while (!node->leaf) {
      ++h;
      node = node->children.front().get();
    }
    return h;
  }

  /// Validates all structural invariants; used by the test suite.
  bool CheckInvariants() const {
    std::size_t leaf_depth = 0;
    std::size_t counted = 0;
    if (!CheckNode(root_.get(), 1, &leaf_depth, &counted, nullptr, nullptr)) {
      return false;
    }
    return counted == size_;
  }

 private:
  struct Node {  // NOLINT: definition of the forward declaration above
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    std::vector<Value> values;                    // leaves only
    std::vector<std::unique_ptr<Node>> children;  // internal only
    Node* next = nullptr;  // leaf chain
    Node* prev = nullptr;
  };

  static constexpr std::size_t kMaxKeys = Order;
  static constexpr std::size_t kMinKeys = Order / 2;

  static std::size_t LowerBound(const std::vector<Key>& keys,
                                const Key& key) {
    return static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  // Child index to descend into for `key`.
  static std::size_t ChildIndex(const Node* node, const Key& key) {
    return static_cast<std::size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
  }

  const Node* DescendToLeaf(const Key& key) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    return node;
  }

  bool InsertImpl(const Key& key, Value value, bool overwrite) {
    bool inserted = false;
    auto split = InsertRecursive(root_.get(), key, std::move(value),
                                 overwrite, &inserted);
    if (split.first != nullptr) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split.second);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.first));
      root_ = std::move(new_root);
    }
    if (inserted) ++size_;
    return inserted;
  }

  // Returns (new right sibling, separator key) when `node` split.
  std::pair<std::unique_ptr<Node>, Key> InsertRecursive(Node* node,
                                                        const Key& key,
                                                        Value value,
                                                        bool overwrite,
                                                        bool* inserted) {
    if (node->leaf) {
      const std::size_t i = LowerBound(node->keys, key);
      if (i < node->keys.size() && node->keys[i] == key) {
        if (overwrite) node->values[i] = std::move(value);
        *inserted = false;
        return {nullptr, Key{}};
      }
      node->keys.insert(node->keys.begin() + i, key);
      node->values.insert(node->values.begin() + i, std::move(value));
      *inserted = true;
      if (node->keys.size() <= kMaxKeys) return {nullptr, Key{}};
      return SplitLeaf(node);
    }

    const std::size_t ci = ChildIndex(node, key);
    auto split = InsertRecursive(node->children[ci].get(), key,
                                 std::move(value), overwrite, inserted);
    if (split.first != nullptr) {
      node->keys.insert(node->keys.begin() + ci, split.second);
      node->children.insert(node->children.begin() + ci + 1,
                            std::move(split.first));
      if (node->keys.size() > kMaxKeys) return SplitInternal(node);
    }
    return {nullptr, Key{}};
  }

  std::pair<std::unique_ptr<Node>, Key> SplitLeaf(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    const std::size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(std::make_move_iterator(node->values.begin() + mid),
                         std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    right->prev = node;
    if (right->next != nullptr) right->next->prev = right.get();
    node->next = right.get();
    return {std::move(right), right->keys.front()};
  }

  std::pair<std::unique_ptr<Node>, Key> SplitInternal(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    const std::size_t mid = node->keys.size() / 2;
    const Key separator = node->keys[mid];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    return {std::move(right), separator};
  }

  // Removes `key` under `node`; returns true when removed. Rebalances
  // children on the way out (so `node` itself may be left underfull for
  // its own parent to fix).
  bool EraseImpl(Node* node, const Key& key) {
    if (node->leaf) {
      const std::size_t i = LowerBound(node->keys, key);
      if (i >= node->keys.size() || node->keys[i] != key) return false;
      node->keys.erase(node->keys.begin() + i);
      node->values.erase(node->values.begin() + i);
      return true;
    }
    const std::size_t ci = ChildIndex(node, key);
    Node* child = node->children[ci].get();
    if (!EraseImpl(child, key)) return false;
    if (child->keys.size() < kMinKeys) Rebalance(node, ci);
    return true;
  }

  void Rebalance(Node* parent, std::size_t ci) {
    Node* child = parent->children[ci].get();
    Node* left = ci > 0 ? parent->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->children.size()
                      ? parent->children[ci + 1].get()
                      : nullptr;

    if (left != nullptr && left->keys.size() > kMinKeys) {
      BorrowFromLeft(parent, ci, left, child);
    } else if (right != nullptr && right->keys.size() > kMinKeys) {
      BorrowFromRight(parent, ci, child, right);
    } else if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, ci);
    }
  }

  void BorrowFromLeft(Node* parent, std::size_t ci, Node* left,
                      Node* child) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(),
                           std::move(left->values.back()));
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[ci - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
      parent->keys[ci - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  void BorrowFromRight(Node* parent, std::size_t ci, Node* child,
                       Node* right) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(std::move(right->values.front()));
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[ci] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[ci]);
      parent->keys[ci] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  // Merges children[i+1] into children[i] and drops separator keys[i].
  void MergeChildren(Node* parent, std::size_t i) {
    Node* left = parent->children[i].get();
    Node* right = parent->children[i + 1].get();
    if (left->leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->values.insert(left->values.end(),
                          std::make_move_iterator(right->values.begin()),
                          std::make_move_iterator(right->values.end()));
      left->next = right->next;
      if (right->next != nullptr) right->next->prev = left;
    } else {
      left->keys.push_back(parent->keys[i]);
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->children.insert(
          left->children.end(),
          std::make_move_iterator(right->children.begin()),
          std::make_move_iterator(right->children.end()));
    }
    parent->keys.erase(parent->keys.begin() + i);
    parent->children.erase(parent->children.begin() + i + 1);
  }

  bool CheckNode(const Node* node, std::size_t depth,
                 std::size_t* leaf_depth, std::size_t* counted,
                 const Key* lower, const Key* upper) const {
    const bool is_root = (node == root_.get());
    if (!std::is_sorted(node->keys.begin(), node->keys.end())) return false;
    for (const Key& k : node->keys) {
      if (lower != nullptr && k < *lower) return false;
      if (upper != nullptr && !(k < *upper)) return false;
    }
    if (node->leaf) {
      if (node->keys.size() != node->values.size()) return false;
      if (!is_root && node->keys.size() < kMinKeys) return false;
      if (node->keys.size() > kMaxKeys) return false;
      if (*leaf_depth == 0) *leaf_depth = depth;
      if (*leaf_depth != depth) return false;
      *counted += node->keys.size();
      return true;
    }
    if (node->children.size() != node->keys.size() + 1) return false;
    if (!is_root && node->keys.size() < kMinKeys) return false;
    if (node->keys.size() > kMaxKeys) return false;
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      const Key* lo = (i == 0) ? lower : &node->keys[i - 1];
      const Key* hi = (i == node->keys.size()) ? upper : &node->keys[i];
      if (!CheckNode(node->children[i].get(), depth + 1, leaf_depth, counted,
                     lo, hi)) {
        return false;
      }
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  Node* first_leaf_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_BPTREE_H_
