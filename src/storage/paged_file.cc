#include "storage/paged_file.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"

namespace hermes {

Result<PagedFile> PagedFile::Open(const std::string& path) {
  // Ensure the file exists before opening read/write.
  if (!std::filesystem::exists(path)) {
    std::ofstream create(path, std::ios::binary);
    if (!create) return Status::IOError("cannot create " + path);
  }
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return Status::IOError("cannot open " + path);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(file.tellg());
  return PagedFile(path, std::move(file),
                   (size + kPageSize - 1) / kPageSize);
}

Status PagedFile::ReadPage(std::uint64_t page_no, Page* page) {
  HERMES_FAILPOINT_IOERROR("paged_file.read.io_error");
  if (page_no >= num_pages_) {
    page->bytes.fill(0);
    return Status::OK();
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(page_no * kPageSize));
  file_.read(reinterpret_cast<char*>(page->bytes.data()), kPageSize);
  if (file_.gcount() < static_cast<std::streamsize>(kPageSize)) {
    // Short tail page: zero-fill the remainder.
    std::memset(page->bytes.data() + file_.gcount(), 0,
                kPageSize - static_cast<std::size_t>(file_.gcount()));
    file_.clear();
  }
  return Status::OK();
}

Status PagedFile::WritePage(std::uint64_t page_no, const Page& page) {
  HERMES_FAILPOINT_IOERROR("paged_file.write.io_error");
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(page_no * kPageSize));
  const FailpointHit torn =
      HERMES_FAILPOINT_HIT("paged_file.write.short_write");
  if (torn.fired) {
    // Torn page write: only a prefix of the page reaches the file before
    // the simulated power loss; the crash latch keeps later writes from
    // papering over the damage.
    const std::uint64_t want = torn.arg != 0 ? torn.arg : kPageSize / 2;
    const auto cut = static_cast<std::streamsize>(
        std::min<std::uint64_t>(want, kPageSize - 1));
    file_.write(reinterpret_cast<const char*>(page.bytes.data()), cut);
    file_.flush();
    HERMES_FAILPOINT_LATCH_CRASH("paged_file.write.short_write");
    return Status::IOError("failpoint: paged_file.write.short_write");
  }
  file_.write(reinterpret_cast<const char*>(page.bytes.data()), kPageSize);
  if (!file_) return Status::IOError("page write failed");
  num_pages_ = std::max(num_pages_, page_no + 1);
  return Status::OK();
}

Status PagedFile::Sync() {
  HERMES_FAILPOINT_IOERROR("paged_file.sync.io_error");
  file_.flush();
  if (!file_) return Status::IOError("sync failed");
  return Status::OK();
}

Status PagedFile::Reset() {
  file_.close();
  {
    std::ofstream truncate(path_, std::ios::binary | std::ios::trunc);
    if (!truncate) return Status::IOError("truncate failed");
  }
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  if (!file_) return Status::IOError("reopen failed");
  num_pages_ = 0;
  return Status::OK();
}

}  // namespace hermes
