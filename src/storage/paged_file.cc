#include "storage/paged_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace hermes {

namespace {

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// Full-buffer pwrite with EINTR/short-write retry.
[[nodiscard]] Status PwriteAll(int fd, const void* data, std::size_t len,
                               std::uint64_t offset, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  std::size_t remaining = len;
  auto off = static_cast<off_t>(offset);
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd, p, remaining, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pwrite failed for", path));
    }
    p += n;
    off += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<PagedFile> PagedFile::Open(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::IOError(ErrnoMessage("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::IOError(ErrnoMessage("fstat failed for", path));
    ::close(fd);
    return err;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  return PagedFile(path, fd, (size + kPageSize - 1) / kPageSize);
}

PagedFile::~PagedFile() {
  if (fd_ >= 0) ::close(fd_);
}

PagedFile& PagedFile::operator=(PagedFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    num_pages_ = other.num_pages_;
    other.fd_ = -1;
    other.num_pages_ = 0;
  }
  return *this;
}

Status PagedFile::ReadPage(std::uint64_t page_no, Page* page) {
  HERMES_FAILPOINT_IOERROR("paged_file.read.io_error");
  {
    MutexLock lock(&meta_mu_);
    if (page_no >= num_pages_) {
      page->bytes.fill(0);
      return Status::OK();
    }
  }
  unsigned char* p = page->bytes.data();
  std::size_t remaining = kPageSize;
  auto off = static_cast<off_t>(page_no * kPageSize);
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, p, remaining, off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoMessage("pread failed for", path_));
    }
    if (n == 0) {
      // Short tail page: zero-fill the remainder.
      std::memset(p, 0, remaining);
      break;
    }
    p += n;
    off += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status PagedFile::WritePage(std::uint64_t page_no, const Page& page) {
  HERMES_FAILPOINT_IOERROR("paged_file.write.io_error");
  const std::uint64_t offset = page_no * kPageSize;
  const FailpointHit torn =
      HERMES_FAILPOINT_HIT("paged_file.write.short_write");
  if (torn.fired) {
    // Torn page write: only a prefix of the page reaches the file before
    // the simulated power loss; the crash latch keeps later writes from
    // papering over the damage.
    const std::uint64_t want = torn.arg != 0 ? torn.arg : kPageSize / 2;
    const auto cut = static_cast<std::size_t>(
        std::min<std::uint64_t>(want, kPageSize - 1));
    if (Status st = PwriteAll(fd_, page.bytes.data(), cut, offset, path_);
        !st.ok()) {
      // The tear is the injected failure; a second error writing the
      // prefix leaves an even shorter tear, which recovery must equally
      // survive.
    }
    HERMES_FAILPOINT_LATCH_CRASH("paged_file.write.short_write");
    return Status::IOError("failpoint: paged_file.write.short_write");
  }
  HERMES_RETURN_NOT_OK(
      PwriteAll(fd_, page.bytes.data(), kPageSize, offset, path_));
  MutexLock lock(&meta_mu_);
  num_pages_ = std::max(num_pages_, page_no + 1);
  return Status::OK();
}

Status PagedFile::Sync() {
  HERMES_FAILPOINT_IOERROR("paged_file.sync.io_error");
  if (fd_ < 0) return Status::IOError("sync failed: " + path_ + " not open");
#if defined(__linux__)
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync failed for", path_));
  }
#else
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed for", path_));
  }
#endif
  return Status::OK();
}

Status PagedFile::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate failed for", path_));
  }
  MutexLock lock(&meta_mu_);
  num_pages_ = 0;
  return Status::OK();
}

}  // namespace hermes
