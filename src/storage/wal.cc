#include "storage/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/failpoint.h"

namespace hermes {

namespace {

/// Fixed-width binary header preceding each entry's variable payload.
/// The token fields were added for the exactly-once contract (DESIGN.md
/// §12); changing this struct changes the on-disk format, which is fine
/// because the WAL is truncated at every checkpoint and never read by a
/// binary other than the one that wrote it.
struct EntryHeader {
  std::uint8_t type;
  std::uint64_t lsn;
  std::uint64_t a;
  std::uint64_t b;
  double weight;
  std::uint32_t key;
  std::uint8_t flag;
  std::uint32_t token_src;
  std::uint64_t token_id;
  std::uint32_t payload_size;
};

void PutBytes(std::string* buf, const void* data, std::size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

std::string EncodeEntry(const WalEntry& e) {
  EntryHeader h{};
  h.type = static_cast<std::uint8_t>(e.type);
  h.lsn = e.lsn;
  h.a = e.a;
  h.b = e.b;
  h.weight = e.weight;
  h.key = e.key;
  h.flag = e.flag;
  h.token_src = e.token.src;
  h.token_id = e.token.id;
  h.payload_size = static_cast<std::uint32_t>(e.payload.size());

  std::string body;
  PutBytes(&body, &h, sizeof(h));
  body += e.payload;

  // Frame: [u32 length][u32 crc][body].
  std::string frame;
  const auto length = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = WalCrc32(body.data(), body.size());
  PutBytes(&frame, &length, sizeof(length));
  PutBytes(&frame, &crc, sizeof(crc));
  frame += body;
  return frame;
}

/// A scanned log: the longest valid-record prefix plus its byte length.
/// Anything past `valid_bytes` is a torn or corrupt tail that replay can
/// never reach.
struct ScannedLog {
  std::vector<WalEntry> entries;
  std::uint64_t valid_bytes = 0;
};

[[nodiscard]] Result<ScannedLog> ScanLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read WAL at " + path);

  ScannedLog log;
  for (;;) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!in.read(reinterpret_cast<char*>(&length), sizeof(length))) break;
    if (!in.read(reinterpret_cast<char*>(&crc), sizeof(crc))) break;
    if (length < sizeof(EntryHeader) || length > (1u << 26)) break;
    std::string body(length, '\0');
    if (!in.read(body.data(), length)) break;  // torn tail: stop replay
    if (WalCrc32(body.data(), body.size()) != crc) break;  // corrupt tail

    EntryHeader h;
    std::memcpy(&h, body.data(), sizeof(h));
    if (sizeof(h) + h.payload_size != body.size()) break;
    WalEntry e;
    e.type = static_cast<WalOpType>(h.type);
    e.lsn = h.lsn;
    e.a = h.a;
    e.b = h.b;
    e.weight = h.weight;
    e.key = h.key;
    e.flag = h.flag;
    e.token.src = h.token_src;
    e.token.id = h.token_id;
    e.payload = body.substr(sizeof(h));
    log.entries.push_back(std::move(e));
    log.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  return log;
}

/// How a commit window ended, and what the log must do about it.
enum class CommitOutcome {
  kOk,        // every batched byte is on stable storage
  kRestage,   // nothing reached the file; re-stage the batch and retry
  kPoison,    // the file may hold a partial frame; log dead until reopen
  kTransient, // bytes written but the fsync failed; a later window retries
};

struct CommitResult {
  CommitOutcome outcome;
  Status status;
};

/// One group-commit window: a contiguous write of the batched frames plus
/// one fsync. Called by the window leader with `mu_` released (the leader
/// token grants exclusive file access) or, in per-append-fsync mode, with
/// `mu_` held. Failpoints model the three distinct failure boundaries:
/// before any byte reaches the file (retryable), after bytes reach the OS
/// but before the fsync (power loss drops the buffered suffix), and the
/// fsync call itself failing.
CommitResult CommitBatchIo(FdAppender& file, const std::string& batch) {
  {
    const FailpointHit hit = HERMES_FAILPOINT_HIT("wal.flush.io_error");
    if (hit.fired) {
      return {CommitOutcome::kRestage,
              Status::IOError("failpoint: wal.flush.io_error")};
    }
  }
  if (!batch.empty()) {
    if (Status st = file.Append(batch.data(), batch.size()); !st.ok()) {
      // A failed write(2) may have landed a prefix of the batch; replay
      // would stop at the tear, so nothing after it may ever be appended.
      return {CommitOutcome::kPoison, st};
    }
  }
  {
    const FailpointHit drop = HERMES_FAILPOINT_HIT("wal.os_buffer.drop");
    if (drop.fired) {
      // Power-loss model: the machine dies with the window's bytes still
      // in the OS buffer cache — fsync never returned, so nothing past
      // the previous synced watermark survives. The crash latch kills the
      // "process"; DropUnsynced truncates the file to what a real disk
      // would have kept.
      HERMES_FAILPOINT_LATCH_CRASH("wal.os_buffer.drop");
      if (Status st = file.DropUnsynced(); !st.ok()) {
        return {CommitOutcome::kPoison, st};
      }
      return {CommitOutcome::kPoison,
              Status::IOError("failpoint: wal.os_buffer.drop")};
    }
  }
  {
    const FailpointHit hit = HERMES_FAILPOINT_HIT("wal.sync.io_error");
    if (hit.fired) {
      return {CommitOutcome::kTransient,
              Status::IOError("failpoint: wal.sync.io_error")};
    }
  }
  if (Status st = file.Sync(); !st.ok()) {
    return {CommitOutcome::kTransient, st};
  }
  return {CommitOutcome::kOk, Status::OK()};
}

}  // namespace

std::uint32_t WalCrc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

WriteAheadLog::WriteAheadLog(std::string path, FdAppender file,
                             std::uint64_t next_lsn,
                             const WalGroupCommitOptions& options)
    : path_(std::move(path)),
      file_(std::move(file)),
      options_(options),
      next_lsn_(next_lsn),
      durable_lsn_(next_lsn - 1),
      m_appends_(MetricsRegistry::Global().GetCounter("wal.appends")),
      m_append_bytes_(
          MetricsRegistry::Global().GetCounter("wal.append_bytes")),
      m_syncs_(MetricsRegistry::Global().GetCounter("wal.syncs")) {}

WriteAheadLog::~WriteAheadLog() {
  // A crash-latched failpoint means the "machine" died mid-run: the
  // staged frames never reached the OS and must not be written by the
  // destructor of the dead process.
  if (kFailpointsEnabled && FailpointRegistry::Global().crashed()) return;
  MutexLock lock(&mu_);
  if (!file_.valid() || pending_.empty() || !poison_.ok()) return;
  // audit:allow(blocking, best-effort close-time flush: the log is being
  // destroyed, so nothing can contend for mu_ after this)
  if (Status st = file_.Append(pending_.data(), pending_.size()); !st.ok()) {
    // Best-effort close-time flush: losing appends that were never synced
    // is within the durability contract (Sync() is the boundary).
  }
  pending_.clear();
}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          std::uint64_t min_next_lsn,
                                          const WalGroupCommitOptions& options) {
  // Scan any existing log to find the next LSN.
  std::uint64_t next_lsn = std::max<std::uint64_t>(min_next_lsn, 1);
  {
    auto scanned = ScanLog(path);
    if (scanned.ok()) {
      if (!scanned->entries.empty()) {
        next_lsn = std::max(next_lsn, scanned->entries.back().lsn + 1);
      }
      // A crash mid-append can leave a torn or corrupt frame at the tail.
      // Appending after it would strand every later record beyond bytes
      // replay refuses to cross, so cut the file back to the valid prefix
      // before reopening for append.
      std::error_code ec;
      const std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (!ec && size > scanned->valid_bytes) {
        std::filesystem::resize_file(path, scanned->valid_bytes, ec);
        if (ec) {
          return Status::IOError("cannot truncate torn WAL tail at " + path);
        }
      }
    }
  }
  HERMES_ASSIGN_OR_RETURN(FdAppender file, FdAppender::Open(path));
  return WriteAheadLog(path, std::move(file), next_lsn, options);
}

Result<std::uint64_t> WriteAheadLog::Append(WalEntry entry, bool durable) {
  std::uint64_t lsn = 0;
  bool group_commit = true;
  {
    MutexLock lock(&mu_);
    if (!poison_.ok()) return poison_;
    // Transient failure before anything reaches the file or the LSN
    // counter moves: the entry is simply rejected.
    HERMES_FAILPOINT_IOERROR("wal.append.io_error");
    // Crash before the write: the record is fully absent from the file.
    HERMES_FAILPOINT_CRASH("wal.append.crash");
    entry.lsn = next_lsn_++;
    const std::string frame = EncodeEntry(entry);
    const FailpointHit torn = HERMES_FAILPOINT_HIT("wal.append.short_write");
    if (torn.fired) {
      // Torn write: a prefix of the frame reaches the file and then the
      // process dies. The tear must land at the true tail, so flush the
      // staged frames first; skip all file access if a window leader is
      // mid-flight (the crash latch makes the suffix unreachable anyway,
      // and the leader owns the file while its fsync runs).
      if (!leader_active_) {
        // audit:allow(blocking, crash model: the torn frame must land at
        // the true file tail, which only exists while mu_ freezes staging)
        if (Status staged = file_.Append(pending_.data(), pending_.size());
            staged.ok()) {
          pending_.clear();
          pending_entries_ = 0;
        }
        const std::uint64_t want =
            torn.arg != 0 ? torn.arg : frame.size() / 2;
        const auto cut = static_cast<std::size_t>(
            std::min<std::uint64_t>(want, frame.size() - 1));
        // audit:allow(blocking, same crash-model tear as above)
        if (Status tear = file_.Append(frame.data(), cut); !tear.ok()) {
          // The tear itself is the injected failure; a second error while
          // writing it changes nothing about the poisoned outcome below.
        }
      }
      HERMES_FAILPOINT_LATCH_CRASH("wal.append.short_write");
      // The entry never became part of the log: give its LSN back and
      // poison the log — the file may end in a partial frame, so nothing
      // may be appended until Open() truncates the tail.
      --next_lsn_;
      poison_ = Status::IOError(
          "WAL poisoned by torn append (reopen to truncate the tail)");
      return Status::IOError("failpoint: wal.append.short_write");
    }
    pending_ += frame;
    ++pending_entries_;
    m_appends_->Increment();
    m_append_bytes_->Increment(frame.size());
    lsn = entry.lsn;
    group_commit = options_.enabled;
    if (durable && !group_commit) {
      // Per-append-fsync baseline: one write + one fsync per durable
      // append, fully serialized under mu_.
      // audit:allow(blocking, the per-append-fsync baseline is *defined*
      // as fsync-under-mu_ — the honest comparison point the group-commit
      // bench measures against)
      HERMES_RETURN_NOT_OK(CommitPendingLocked());
      return lsn;
    }
    if (leader_waiting_ &&
        (pending_.size() >= options_.max_window_bytes ||
         pending_entries_ >= options_.max_window_entries)) {
      arrival_cv_.NotifyAll();
    }
  }
  if (durable) {
    HERMES_RETURN_NOT_OK(SyncUntil(lsn));
  }
  return lsn;
}

Status WriteAheadLog::CommitPendingLocked() {
  std::string batch;
  batch.swap(pending_);
  const std::size_t batch_entries = pending_entries_;
  pending_entries_ = 0;
  const std::uint64_t batch_end = next_lsn_ - 1;
  // audit:allow(blocking, REQUIRES(mu_) is this helper's contract: it is
  // the per-append-fsync baseline and the destructor/Reset flush path,
  // both of which must commit under the staging lock by design)
  const CommitResult commit = CommitBatchIo(file_, batch);
  switch (commit.outcome) {
    case CommitOutcome::kOk:
      durable_lsn_ = std::max(durable_lsn_, batch_end);
      ++fsync_count_;
      m_syncs_->Increment();
      return Status::OK();
    case CommitOutcome::kRestage:
      // Nothing reached the file. Put the batch back *in front of* any
      // frames staged meanwhile so the on-disk order stays the LSN order.
      batch += pending_;
      pending_ = std::move(batch);
      pending_entries_ += batch_entries;
      return commit.status;
    case CommitOutcome::kPoison:
      poison_ = commit.status;
      return commit.status;
    case CommitOutcome::kTransient:
      return commit.status;
  }
  return Status::Internal("unreachable commit outcome");
}

Status WriteAheadLog::Sync() {
  std::uint64_t target = 0;
  {
    MutexLock lock(&mu_);
    if (!poison_.ok()) return poison_;
    target = next_lsn_ - 1;
  }
  return SyncUntil(target);
}

Status WriteAheadLog::SyncUntil(std::uint64_t lsn) {
  for (;;) {
    std::string batch;
    std::size_t batch_entries = 0;
    std::uint64_t batch_end = 0;
    FdAppender* file = nullptr;
    {
      MutexLock lock(&mu_);
      if (!poison_.ok()) return poison_;
      if (lsn >= next_lsn_) lsn = next_lsn_ - 1;  // clamp to assigned LSNs
      if (durable_lsn_ >= lsn) return Status::OK();
      if (leader_active_) {
        // Another thread's window is in flight; it covers every LSN
        // assigned before its swap. Wait for its verdict and re-check.
        commit_cv_.Wait(&mu_);
        continue;
      }
      if (!options_.enabled) {
        // Per-append-fsync mode: no leader protocol, no batching across
        // callers — write + fsync while holding mu_.
        // audit:allow(blocking, per-append-fsync baseline, as in Append)
        HERMES_RETURN_NOT_OK(CommitPendingLocked());
        continue;
      }
      leader_active_ = true;
      if (options_.max_window_delay_us > 0) {
        // Linger for more arrivals so sub-threshold windows amortize the
        // fsync better. Appenders notify when a bound is crossed.
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(options_.max_window_delay_us);
        leader_waiting_ = true;
        while (pending_.size() < options_.max_window_bytes &&
               pending_entries_ < options_.max_window_entries) {
          if (arrival_cv_.WaitUntil(&mu_, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
        leader_waiting_ = false;
      }
      batch.swap(pending_);
      batch_entries = pending_entries_;
      pending_entries_ = 0;
      batch_end = next_lsn_ - 1;
      // The leader token makes this thread the only one touching the
      // file until leader_active_ clears, so the pointer may be used
      // with mu_ released.
      file = &file_;
    }

    if (commit_io_hook_for_test_) commit_io_hook_for_test_();
    const CommitResult commit = CommitBatchIo(*file, batch);

    MutexLock lock(&mu_);
    leader_active_ = false;
    commit_cv_.NotifyAll();
    switch (commit.outcome) {
      case CommitOutcome::kOk:
        durable_lsn_ = std::max(durable_lsn_, batch_end);
        ++fsync_count_;
        m_syncs_->Increment();
        if (durable_lsn_ >= lsn) return Status::OK();
        continue;
      case CommitOutcome::kRestage:
        batch += pending_;
        pending_ = std::move(batch);
        pending_entries_ += batch_entries;
        return commit.status;
      case CommitOutcome::kPoison:
        poison_ = commit.status;
        return commit.status;
      case CommitOutcome::kTransient:
        // The batch is in the file but not on disk; waiters re-loop and
        // a later window's fsync can still make it durable.
        return commit.status;
    }
    return Status::Internal("unreachable commit outcome");
  }
}

Result<std::uint64_t> WriteAheadLog::LogCheckpoint() {
  WalEntry marker;
  marker.type = WalOpType::kCheckpoint;
  HERMES_ASSIGN_OR_RETURN(std::uint64_t lsn, Append(marker));
  HERMES_RETURN_NOT_OK(Sync());
  return lsn;
}

Result<std::vector<WalEntry>> WriteAheadLog::ReadAll(
    const std::string& path, bool after_last_checkpoint) {
  HERMES_ASSIGN_OR_RETURN(ScannedLog log, ScanLog(path));
  std::vector<WalEntry> entries = std::move(log.entries);

  if (after_last_checkpoint) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].type == WalOpType::kCheckpoint) start = i + 1;
    }
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(start));
  }
  return entries;
}

Status WriteAheadLog::Reset() {
  std::uint64_t covered = 0;
  FdAppender* file = nullptr;
  {
    MutexLock lock(&mu_);
    if (!poison_.ok()) return poison_;
    while (leader_active_) commit_cv_.Wait(&mu_);
    // Everything assigned so far is covered by the snapshot that
    // justified this Reset, so the staged frames are redundant. Frames
    // staged *during* the off-lock truncate below keep their (higher)
    // LSNs, stay pending, and are NOT covered — hence `covered` is
    // captured here, not after the truncate.
    pending_.clear();
    pending_entries_ = 0;
    covered = next_lsn_ - 1;
    // Take the leader token: exclusive file access with mu_ released.
    // Pre-fix, the ftruncate+fsync ran under mu_ and every concurrent
    // Append() staging in memory stalled behind the disk for the whole
    // checkpoint truncation (WalResetDoesNotBlockStagers regression).
    leader_active_ = true;
    file = &file_;
  }

  if (commit_io_hook_for_test_) commit_io_hook_for_test_();
  Status truncated;
  const FailpointHit hit = HERMES_FAILPOINT_HIT("wal.reset.io_error");
  if (hit.fired) {
    truncated =
        Status::IOError("truncate failed: failpoint wal.reset.io_error");
  } else {
    truncated = file->Truncate();
  }

  MutexLock lock(&mu_);
  leader_active_ = false;
  commit_cv_.NotifyAll();
  if (!truncated.ok()) {
    poison_ = Status::IOError("WAL poisoned by failed Reset (" +
                              truncated.message() +
                              "); reopen the log to recover");
    return poison_;
  }
  durable_lsn_ = std::max(durable_lsn_, covered);
  return Status::OK();
}

}  // namespace hermes
