#include "storage/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/failpoint.h"

namespace hermes {

namespace {

/// Fixed-width binary header preceding each entry's variable payload.
struct EntryHeader {
  std::uint8_t type;
  std::uint64_t lsn;
  std::uint64_t a;
  std::uint64_t b;
  double weight;
  std::uint32_t key;
  std::uint8_t flag;
  std::uint32_t payload_size;
};

void PutBytes(std::string* buf, const void* data, std::size_t size) {
  buf->append(static_cast<const char*>(data), size);
}

std::string EncodeEntry(const WalEntry& e) {
  EntryHeader h{};
  h.type = static_cast<std::uint8_t>(e.type);
  h.lsn = e.lsn;
  h.a = e.a;
  h.b = e.b;
  h.weight = e.weight;
  h.key = e.key;
  h.flag = e.flag;
  h.payload_size = static_cast<std::uint32_t>(e.payload.size());

  std::string body;
  PutBytes(&body, &h, sizeof(h));
  body += e.payload;

  // Frame: [u32 length][u32 crc][body].
  std::string frame;
  const auto length = static_cast<std::uint32_t>(body.size());
  const std::uint32_t crc = WalCrc32(body.data(), body.size());
  PutBytes(&frame, &length, sizeof(length));
  PutBytes(&frame, &crc, sizeof(crc));
  frame += body;
  return frame;
}

/// A scanned log: the longest valid-record prefix plus its byte length.
/// Anything past `valid_bytes` is a torn or corrupt tail that replay can
/// never reach.
struct ScannedLog {
  std::vector<WalEntry> entries;
  std::uint64_t valid_bytes = 0;
};

[[nodiscard]] Result<ScannedLog> ScanLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot read WAL at " + path);

  ScannedLog log;
  for (;;) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!in.read(reinterpret_cast<char*>(&length), sizeof(length))) break;
    if (!in.read(reinterpret_cast<char*>(&crc), sizeof(crc))) break;
    if (length < sizeof(EntryHeader) || length > (1u << 26)) break;
    std::string body(length, '\0');
    if (!in.read(body.data(), length)) break;  // torn tail: stop replay
    if (WalCrc32(body.data(), body.size()) != crc) break;  // corrupt tail

    EntryHeader h;
    std::memcpy(&h, body.data(), sizeof(h));
    if (sizeof(h) + h.payload_size != body.size()) break;
    WalEntry e;
    e.type = static_cast<WalOpType>(h.type);
    e.lsn = h.lsn;
    e.a = h.a;
    e.b = h.b;
    e.weight = h.weight;
    e.key = h.key;
    e.flag = h.flag;
    e.payload = body.substr(sizeof(h));
    log.entries.push_back(std::move(e));
    log.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  return log;
}

}  // namespace

std::uint32_t WalCrc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xffffffffu;
}

WriteAheadLog::WriteAheadLog(std::string path, std::ofstream out,
                             std::uint64_t next_lsn)
    : path_(std::move(path)),
      out_(std::move(out)),
      next_lsn_(next_lsn),
      m_appends_(MetricsRegistry::Global().GetCounter("wal.appends")),
      m_append_bytes_(
          MetricsRegistry::Global().GetCounter("wal.append_bytes")),
      m_syncs_(MetricsRegistry::Global().GetCounter("wal.syncs")) {}

Result<WriteAheadLog> WriteAheadLog::Open(const std::string& path,
                                          std::uint64_t min_next_lsn) {
  // Scan any existing log to find the next LSN.
  std::uint64_t next_lsn = std::max<std::uint64_t>(min_next_lsn, 1);
  {
    auto scanned = ScanLog(path);
    if (scanned.ok()) {
      if (!scanned->entries.empty()) {
        next_lsn = std::max(next_lsn, scanned->entries.back().lsn + 1);
      }
      // A crash mid-append can leave a torn or corrupt frame at the tail.
      // Appending after it would strand every later record beyond bytes
      // replay refuses to cross, so cut the file back to the valid prefix
      // before reopening for append.
      std::error_code ec;
      const std::uintmax_t size = std::filesystem::file_size(path, ec);
      if (!ec && size > scanned->valid_bytes) {
        std::filesystem::resize_file(path, scanned->valid_bytes, ec);
        if (ec) {
          return Status::IOError("cannot truncate torn WAL tail at " + path);
        }
      }
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open WAL at " + path);
  return WriteAheadLog(path, std::move(out), next_lsn);
}

Result<std::uint64_t> WriteAheadLog::Append(WalEntry entry) {
  MutexLock lock(&mu_);
  // Transient failure before anything reaches the file or the LSN
  // counter moves: the entry is simply rejected.
  HERMES_FAILPOINT_IOERROR("wal.append.io_error");
  // Crash before the write: the record is fully absent from the file.
  HERMES_FAILPOINT_CRASH("wal.append.crash");
  entry.lsn = next_lsn_++;
  const std::string frame = EncodeEntry(entry);
  const FailpointHit torn = HERMES_FAILPOINT_HIT("wal.append.short_write");
  if (torn.fired) {
    // Torn write: a prefix of the frame reaches the file and then the
    // process dies. The crash latch guarantees nothing else can be
    // appended after the tear — otherwise later (even synced) records
    // would sit beyond a corrupt frame where replay cannot reach them.
    const std::uint64_t want = torn.arg != 0 ? torn.arg : frame.size() / 2;
    const auto cut = static_cast<std::streamsize>(
        std::min<std::uint64_t>(want, frame.size() - 1));
    out_.write(frame.data(), cut);
    out_.flush();
    HERMES_FAILPOINT_LATCH_CRASH("wal.append.short_write");
    return Status::IOError("failpoint: wal.append.short_write");
  }
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out_) return Status::IOError("WAL append failed");
  m_appends_->Increment();
  m_append_bytes_->Increment(frame.size());
  return entry.lsn;
}

Status WriteAheadLog::Sync() {
  MutexLock lock(&mu_);
  HERMES_FAILPOINT_IOERROR("wal.sync.io_error");
  out_.flush();
  if (!out_) return Status::IOError("WAL sync failed");
  m_syncs_->Increment();
  return Status::OK();
}

Result<std::uint64_t> WriteAheadLog::LogCheckpoint() {
  WalEntry marker;
  marker.type = WalOpType::kCheckpoint;
  HERMES_ASSIGN_OR_RETURN(std::uint64_t lsn, Append(marker));
  HERMES_RETURN_NOT_OK(Sync());
  return lsn;
}

Result<std::vector<WalEntry>> WriteAheadLog::ReadAll(
    const std::string& path, bool after_last_checkpoint) {
  HERMES_ASSIGN_OR_RETURN(ScannedLog log, ScanLog(path));
  std::vector<WalEntry> entries = std::move(log.entries);

  if (after_last_checkpoint) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].type == WalOpType::kCheckpoint) start = i + 1;
    }
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(start));
  }
  return entries;
}

Status WriteAheadLog::Reset() {
  MutexLock lock(&mu_);
  out_.close();
  std::ofstream truncate(path_, std::ios::binary | std::ios::trunc);
  if (!truncate) return Status::IOError("WAL truncate failed");
  truncate.close();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) return Status::IOError("WAL reopen failed");
  return Status::OK();
}

}  // namespace hermes
