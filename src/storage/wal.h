#ifndef HERMES_STORAGE_WAL_H_
#define HERMES_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace hermes {

/// Logical operations recorded in the write-ahead log. Each entry is the
/// redo record for one mutation of a partition's GraphStore.
enum class WalOpType : std::uint8_t {
  kCreateNode = 1,
  kRemoveNode = 2,
  kSetNodeState = 3,
  kAddNodeWeight = 4,
  kAddEdge = 5,
  kRemoveEdge = 6,
  kSetNodeProperty = 7,
  kSetEdgeProperty = 8,
  kCheckpoint = 9,  // snapshot boundary: earlier entries are durable
};

/// One redo record. Fields are interpreted per op type; unused fields stay
/// at their defaults.
struct WalEntry {
  WalOpType type = WalOpType::kCheckpoint;
  std::uint64_t lsn = 0;            // log sequence number, assigned on append
  VertexId a = kInvalidVertex;      // primary vertex
  VertexId b = kInvalidVertex;      // other endpoint (edges)
  double weight = 0.0;              // node weight / weight delta
  std::uint32_t key = 0;            // property key / relationship type
  std::uint8_t flag = 0;            // other_is_local / NodeState
  std::string payload;              // property value

  bool operator==(const WalEntry& other) const {
    return type == other.type && lsn == other.lsn && a == other.a &&
           b == other.b && weight == other.weight && key == other.key &&
           flag == other.flag && payload == other.payload;
  }
};

/// Append-only write-ahead log with CRC-protected, length-prefixed binary
/// records. Mutations are logged before they are applied to the store
/// (WAL rule); recovery replays every complete entry after the last
/// checkpoint and discards a torn tail (crash during append).
///
/// Thread-safe: concurrent Append()s are serialized under `mu_` (LSN
/// assignment and the stream write happen atomically, so frames never
/// interleave). Moving a WriteAheadLog is only legal while no other
/// thread uses it (it happens once, inside Open()).
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log at `path` for appending. LSNs
  /// continue after the highest one found in the existing log, but never
  /// start below `min_next_lsn` — DurableGraphStore passes the snapshot's
  /// covered LSN + 1 so that entries appended after recovery can never
  /// collide with the range the snapshot already covers (a checkpoint
  /// truncates the log, so a freshly scanned file alone would restart
  /// LSNs at 1).
  [[nodiscard]] static Result<WriteAheadLog> Open(const std::string& path,
                                    std::uint64_t min_next_lsn = 1);

  WriteAheadLog(WriteAheadLog&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : path_(std::move(other.path_)),
        out_(std::move(other.out_)),
        next_lsn_(other.next_lsn_),
        m_appends_(other.m_appends_),
        m_append_bytes_(other.m_append_bytes_),
        m_syncs_(other.m_syncs_) {}
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    path_ = std::move(other.path_);
    out_ = std::move(other.out_);
    next_lsn_ = other.next_lsn_;
    m_appends_ = other.m_appends_;
    m_append_bytes_ = other.m_append_bytes_;
    m_syncs_ = other.m_syncs_;
    return *this;
  }

  /// Appends an entry; assigns and returns its LSN.
  [[nodiscard]] Result<std::uint64_t> Append(WalEntry entry) EXCLUDES(mu_);

  /// Forces buffered appends to the OS.
  [[nodiscard]] Status Sync() EXCLUDES(mu_);

  /// Appends a checkpoint marker (call right after a snapshot succeeds).
  [[nodiscard]] Result<std::uint64_t> LogCheckpoint() EXCLUDES(mu_);

  /// Reads all complete entries from a log file, tolerating a torn final
  /// record. Entries before the *last* checkpoint are skipped when
  /// `after_last_checkpoint` is true.
  [[nodiscard]] static Result<std::vector<WalEntry>> ReadAll(
      const std::string& path, bool after_last_checkpoint = false);

  /// Truncates the log (after a snapshot made it redundant).
  [[nodiscard]] Status Reset() EXCLUDES(mu_);

  std::uint64_t next_lsn() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_lsn_;
  }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::ofstream out, std::uint64_t next_lsn);

  // audit:allow(guard, written only at construction and by move-assignment)
  std::string path_;
  mutable Mutex mu_{"wal.mu", lock_order::kRankWal};
  std::ofstream out_ GUARDED_BY(mu_);
  std::uint64_t next_lsn_ GUARDED_BY(mu_) = 1;

  // Observability (all logs share the process-wide counters; DESIGN.md §7).
  Counter* m_appends_ = nullptr;
  Counter* m_append_bytes_ = nullptr;
  Counter* m_syncs_ = nullptr;
};

/// CRC32 (Castagnoli polynomial, bitwise) used by the log format; exposed
/// for tests.
std::uint32_t WalCrc32(const void* data, std::size_t size);

}  // namespace hermes

#endif  // HERMES_STORAGE_WAL_H_
