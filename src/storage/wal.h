#ifndef HERMES_STORAGE_WAL_H_
#define HERMES_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "storage/fd_appender.h"

namespace hermes {

/// Logical operations recorded in the write-ahead log. Each entry is the
/// redo record for one mutation of a partition's GraphStore.
enum class WalOpType : std::uint8_t {
  kCreateNode = 1,
  kRemoveNode = 2,
  kSetNodeState = 3,
  kAddNodeWeight = 4,
  kAddEdge = 5,
  kRemoveEdge = 6,
  kSetNodeProperty = 7,
  kSetEdgeProperty = 8,
  kCheckpoint = 9,  // snapshot boundary: earlier entries are durable
};

/// Idempotency token of the mutation that produced a WAL entry: the
/// (client endpoint, request id) pair the message bus retries under. A
/// zero token (`!valid()`) marks mutations that did not arrive through
/// the bus (store loading, recovery replay, direct API use). Recording
/// the token in the redo record is what makes dedup recovery-safe: a
/// server that crashes between apply and reply rebuilds its dedup table
/// from the scanned log, so a post-recovery retry is answered instead of
/// double-applied (DESIGN.md §12).
struct WalToken {
  std::uint32_t src = 0;  // client endpoint id
  std::uint64_t id = 0;   // bus request id (0 = no token)

  [[nodiscard]] bool valid() const { return id != 0; }
  bool operator==(const WalToken& other) const {
    return src == other.src && id == other.id;
  }
};

/// One redo record. Fields are interpreted per op type; unused fields stay
/// at their defaults.
struct WalEntry {
  WalOpType type = WalOpType::kCheckpoint;
  std::uint64_t lsn = 0;            // log sequence number, assigned on append
  VertexId a = kInvalidVertex;      // primary vertex
  VertexId b = kInvalidVertex;      // other endpoint (edges)
  double weight = 0.0;              // node weight / weight delta
  std::uint32_t key = 0;            // property key / relationship type
  std::uint8_t flag = 0;            // other_is_local / NodeState
  WalToken token;                   // idempotency token (0 = none)
  std::string payload;              // property value

  bool operator==(const WalEntry& other) const {
    return type == other.type && lsn == other.lsn && a == other.a &&
           b == other.b && weight == other.weight && key == other.key &&
           flag == other.flag && token == other.token &&
           payload == other.payload;
  }
};

/// Tuning knobs for the group-commit window (DESIGN.md §"Durability
/// semantics"). A window closes — one contiguous write + one fsync — when
/// any bound is reached: staged bytes, staged entries, or the optional
/// leader linger. With `enabled` false the log falls back to
/// per-append-fsync (each durable append performs its own write+fsync
/// inside the append critical section) — the baseline mode the
/// write_throughput bench compares against.
struct WalGroupCommitOptions {
  bool enabled = true;
  std::size_t max_window_bytes = std::size_t{1} << 20;
  std::size_t max_window_entries = 1024;
  /// How long the commit leader lingers for more arrivals before closing
  /// a sub-threshold window. 0 (default) = close immediately; natural
  /// batching still happens because appenders accumulate while the
  /// previous window's fsync is in flight.
  std::uint32_t max_window_delay_us = 0;
};

/// Append-only write-ahead log with CRC-protected, length-prefixed binary
/// records. Mutations are logged before they are applied to the store
/// (WAL rule); recovery replays every complete entry after the last
/// checkpoint and discards a torn tail (crash during append).
///
/// Durability contract: Append() stages the encoded frame in memory and
/// assigns its LSN; Sync()/SyncUntil() (or `Append(..., durable=true)`)
/// force it to stable storage via a real fsync and return only once
/// `durable_lsn() >= lsn`. Concurrent durable appenders are batched by a
/// group-commit leader: one contiguous write + one fsync per window, every
/// waiter woken with the window's Status (per-waiter propagation — a
/// failed window reports the failure to each caller that depended on it).
///
/// Failure model: a write failure that may have left a partial frame in
/// the file rolls back nothing it cannot prove absent — the log is
/// *poisoned* (every later Append/Sync/Reset returns the sticky poison
/// Status) until reopened, at which point Open() truncates the torn tail.
/// A failed fsync is transient: the bytes are in the file, the window
/// reports the error, and a later window may retry the sync.
///
/// Thread-safe: staging is serialized under `mu_` (LSN assignment and the
/// frame ordering are atomic, so frames never interleave); file I/O is
/// performed outside `mu_` by the single window leader. Moving a
/// WriteAheadLog is only legal while no other thread uses it (it happens
/// once, inside Open()).
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log at `path` for appending. LSNs
  /// continue after the highest one found in the existing log, but never
  /// start below `min_next_lsn` — DurableGraphStore passes the snapshot's
  /// covered LSN + 1 so that entries appended after recovery can never
  /// collide with the range the snapshot already covers (a checkpoint
  /// truncates the log, so a freshly scanned file alone would restart
  /// LSNs at 1).
  [[nodiscard]] static Result<WriteAheadLog> Open(
      const std::string& path, std::uint64_t min_next_lsn = 1,
      const WalGroupCommitOptions& options = {});

  ~WriteAheadLog();
  WriteAheadLog(WriteAheadLog&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
      : path_(std::move(other.path_)),
        file_(std::move(other.file_)),
        options_(other.options_),
        pending_(std::move(other.pending_)),
        pending_entries_(other.pending_entries_),
        next_lsn_(other.next_lsn_),
        durable_lsn_(other.durable_lsn_),
        fsync_count_(other.fsync_count_),
        poison_(std::move(other.poison_)),
        commit_io_hook_for_test_(std::move(other.commit_io_hook_for_test_)),
        m_appends_(other.m_appends_),
        m_append_bytes_(other.m_append_bytes_),
        m_syncs_(other.m_syncs_) {
    other.pending_entries_ = 0;
  }
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    path_ = std::move(other.path_);
    file_ = std::move(other.file_);
    options_ = other.options_;
    pending_ = std::move(other.pending_);
    pending_entries_ = other.pending_entries_;
    next_lsn_ = other.next_lsn_;
    durable_lsn_ = other.durable_lsn_;
    fsync_count_ = other.fsync_count_;
    poison_ = std::move(other.poison_);
    commit_io_hook_for_test_ = std::move(other.commit_io_hook_for_test_);
    m_appends_ = other.m_appends_;
    m_append_bytes_ = other.m_append_bytes_;
    m_syncs_ = other.m_syncs_;
    other.pending_entries_ = 0;
    return *this;
  }

  /// Appends an entry; assigns and returns its LSN. With `durable` true
  /// the call also blocks until the entry is fsynced (joining the current
  /// group-commit window); with `durable` false the frame is staged in
  /// memory and reaches the OS at the next window, Sync(), or clean
  /// close.
  [[nodiscard]] Result<std::uint64_t> Append(WalEntry entry,
                                             bool durable = false)
      EXCLUDES(mu_);

  /// Forces every appended entry to stable storage (fsync), equivalent to
  /// SyncUntil(next_lsn() - 1).
  [[nodiscard]] Status Sync() EXCLUDES(mu_);

  /// Blocks until `durable_lsn() >= lsn` (clamped to the last assigned
  /// LSN). Returns the commit window's Status on failure — each waiter of
  /// a failed window observes that window's error.
  [[nodiscard]] Status SyncUntil(std::uint64_t lsn) EXCLUDES(mu_);

  /// Appends a checkpoint marker (call right after a snapshot succeeds).
  [[nodiscard]] Result<std::uint64_t> LogCheckpoint() EXCLUDES(mu_);

  /// Reads all complete entries from a log file, tolerating a torn final
  /// record. Entries before the *last* checkpoint are skipped when
  /// `after_last_checkpoint` is true.
  [[nodiscard]] static Result<std::vector<WalEntry>> ReadAll(
      const std::string& path, bool after_last_checkpoint = false);

  /// Truncates the log (after a snapshot made it redundant). A Reset that
  /// fails mid-way poisons the log with a Status naming the failed step —
  /// later appends report the cause instead of a generic write error.
  [[nodiscard]] Status Reset() EXCLUDES(mu_);

  /// Test hook: runs at the start of every off-lock I/O section (the
  /// group-commit window in SyncUntil, the truncate in Reset) while the
  /// calling thread holds the leader token but NOT `mu_`. Concurrency
  /// tests park the leader here to prove stagers stay unblocked. Set
  /// before the log is shared between threads.
  void SetCommitIoHookForTest(std::function<void()> hook) {
    commit_io_hook_for_test_ = std::move(hook);
  }

  std::uint64_t next_lsn() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_lsn_;
  }
  /// Highest LSN known forced to stable storage.
  std::uint64_t durable_lsn() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return durable_lsn_;
  }
  /// Number of successful fsync windows since Open (deterministic,
  /// per-log — unlike the process-wide `wal.syncs` counter).
  std::uint64_t fsync_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fsync_count_;
  }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, FdAppender file, std::uint64_t next_lsn,
                const WalGroupCommitOptions& options);

  /// Per-append-fsync mode and Reset/destructor helper: writes + fsyncs
  /// the staged buffer while still holding `mu_`.
  [[nodiscard]] Status CommitPendingLocked() REQUIRES(mu_);

  // audit:allow(guard, written only at construction and by move-assignment)
  std::string path_;
  mutable Mutex mu_{"wal.mu", lock_order::kRankWal};
  /// The group-commit leader accesses `file_` *outside* `mu_` while
  /// `leader_active_` is set — the leader token grants exclusive file
  /// access so staging never blocks behind an fsync.
  FdAppender file_ GUARDED_BY(mu_);
  WalGroupCommitOptions options_ GUARDED_BY(mu_);
  /// Encoded frames accepted but not yet handed to the OS, in LSN order.
  std::string pending_ GUARDED_BY(mu_);
  std::size_t pending_entries_ GUARDED_BY(mu_) = 0;
  std::uint64_t next_lsn_ GUARDED_BY(mu_) = 1;
  /// Highest LSN covered by a successful fsync (or by the snapshot after
  /// Reset).
  std::uint64_t durable_lsn_ GUARDED_BY(mu_) = 0;
  std::uint64_t fsync_count_ GUARDED_BY(mu_) = 0;
  /// True while one thread (the window leader) performs file I/O with
  /// `mu_` released.
  bool leader_active_ GUARDED_BY(mu_) = false;
  /// True while the leader lingers for more arrivals
  /// (max_window_delay_us); Append() notifies `arrival_cv_` when a window
  /// bound is crossed.
  bool leader_waiting_ GUARDED_BY(mu_) = false;
  /// Sticky failure: set when the file may hold a partial frame (torn
  /// append, failed batch write) or a Reset failed. OK when healthy.
  Status poison_ GUARDED_BY(mu_);
  // audit:allow(guard, test hook set before the log is shared; only the
  // leader-token holder invokes it)
  std::function<void()> commit_io_hook_for_test_;
  CondVar commit_cv_;   // leader done: durable_lsn_/poison_ changed
  CondVar arrival_cv_;  // staged bytes/entries crossed a window bound

  // Observability (all logs share the process-wide counters; DESIGN.md §7).
  Counter* m_appends_ = nullptr;
  Counter* m_append_bytes_ = nullptr;
  Counter* m_syncs_ = nullptr;
};

/// CRC32 (Castagnoli polynomial, bitwise) used by the log format; exposed
/// for tests.
std::uint32_t WalCrc32(const void* data, std::size_t size);

}  // namespace hermes

#endif  // HERMES_STORAGE_WAL_H_
