#ifndef HERMES_STORAGE_RECORD_STORE_H_
#define HERMES_STORAGE_RECORD_STORE_H_

#include <cstddef>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/bptree.h"

namespace hermes {

/// A store of fixed-size records keyed by RecordId through a B+Tree index.
/// One instance per record type per partition (node store, relationship
/// store, property store).
template <typename Record>
class RecordStore {
 public:
  /// Creates a record under `id`; fails if the id is taken.
  [[nodiscard]] Status Create(RecordId id, Record record) {
    if (!tree_.Insert(id, std::move(record))) {
      return Status::AlreadyExists("record id already in use");
    }
    return Status::OK();
  }

  /// Copy of the record.
  [[nodiscard]] Result<Record> Get(RecordId id) const {
    const Record* r = tree_.Find(id);
    if (r == nullptr) return Status::NotFound("no such record");
    return *r;
  }

  /// In-place access; nullptr when absent.
  Record* GetMutable(RecordId id) { return tree_.FindMutable(id); }
  const Record* GetPtr(RecordId id) const { return tree_.Find(id); }

  bool Exists(RecordId id) const { return tree_.Contains(id); }

  [[nodiscard]] Status Delete(RecordId id) {
    if (!tree_.Erase(id)) return Status::NotFound("no such record");
    return Status::OK();
  }

  std::size_t size() const { return tree_.size(); }

  /// Approximate resident bytes (records + index keys).
  std::size_t MemoryBytes() const {
    return tree_.size() * (sizeof(Record) + sizeof(RecordId));
  }

  /// Iterates records in id order; `fn(id, record)` returning false stops.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (auto it = tree_.begin(); it != tree_.end(); ++it) {
      if (!fn(it.key(), it.value())) break;
    }
  }

 private:
  BPlusTree<RecordId, Record, 64> tree_;
};

}  // namespace hermes

#endif  // HERMES_STORAGE_RECORD_STORE_H_
