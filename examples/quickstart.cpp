// Quickstart: the Hermes workflow on a toy social graph.
//
//   1. Build a graph (two friend communities bridged by one edge).
//   2. Partition it offline with the multilevel (Metis-equivalent)
//      partitioner.
//   3. Simulate a popularity spike on one community (vertex weights are
//      read counts).
//   4. Run the lightweight repartitioner and watch it restore balance
//      while keeping communities intact.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "graph/graph.h"
#include "partition/aux_data.h"
#include "partition/lightweight.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"

using namespace hermes;

namespace {
void PrintState(const char* label, const Graph& g,
                const PartitionAssignment& asg) {
  const auto weights = PartitionWeights(g, asg);
  std::printf("%-28s edge-cut=%zu  imbalance=%.3f  weights=[", label,
              EdgeCut(g, asg), ImbalanceFactor(g, asg));
  for (std::size_t p = 0; p < weights.size(); ++p) {
    std::printf("%s%.0f", p ? ", " : "", weights[p]);
  }
  std::printf("]\n");
}
}  // namespace

int main() {
  // Two 6-person friend groups with one acquaintance edge between them.
  Graph g(12);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) {
      HERMES_CHECK_OK(g.AddEdge(u, v));
      HERMES_CHECK_OK(g.AddEdge(6 + u, 6 + v));
    }
  }
  HERMES_CHECK_OK(g.AddEdge(5, 6));

  // Offline initial partitioning (the paper uses Metis for this step).
  const PartitionAssignment initial =
      MultilevelPartitioner().Partition(g, /*num_partitions=*/2);
  PrintState("initial (multilevel)", g, initial);

  // One community goes viral: its read counts triple.
  for (VertexId v = 0; v < 6; ++v) g.SetVertexWeight(v, 3.0);
  PrintState("after popularity spike", g, initial);

  // The lightweight repartitioner fixes the imbalance using only its
  // auxiliary data (neighbor counts per partition + partition weights).
  PartitionAssignment asg = initial;
  AuxiliaryData aux(g, asg);
  RepartitionerOptions options;
  options.beta = 1.3;  // allow 30% skew before a partition is overloaded
  options.k = 2;       // migrate at most 2 vertices per partition per stage
  const RepartitionResult result =
      LightweightRepartitioner(options).Run(g, &asg, &aux);

  PrintState("after repartitioning", g, asg);
  std::printf(
      "\nrepartitioner: %zu iterations, converged=%s, %zu vertices "
      "physically migrated\n",
      result.iterations, result.converged ? "yes" : "no",
      result.net_moves.size());
  for (const MigrationRecord& move : result.net_moves) {
    std::printf("  vertex %llu: partition %u -> %u\n",
                static_cast<unsigned long long>(move.vertex), move.from,
                move.to);
  }
  return 0;
}
