// hermes_shell: an interactive (or scripted) console against a live
// Hermes cluster — the closest thing to a psql/cypher-shell for this
// repo. Commands cover the whole public surface: dataset loading,
// queries, writes, repartitioning, migration stats, and durability.
//
//   ./build/examples/hermes_shell                 # interactive
//   echo "load dblp 0.05 4\nstats\nrepartition" | ./build/examples/hermes_shell
//
// Commands:
//   load <twitter|orkut|dblp> [scale] [alpha]   generate + shard a dataset
//   open <edge-list-path> [alpha]               load a SNAP edge list
//   stats                                        cluster-wide statistics
//   neighbors <v>                                adjacency of a vertex
//   traverse <v> <hops>                          k-hop traversal + timing model
//   read <v> <hops> <count>                      run a mini workload
//   skew <partition> <factor> <requests>         skewed trace (heats weights)
//   addedge <u> <v>                              insert a friendship
//   addvertex                                    insert a user
//   repartition                                  run the lightweight repartitioner
//   validate                                     store consistency check
//   help / quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "common/logging.h"
#include "gen/edge_list_io.h"
#include "gen/profiles.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"
#include "workload/driver.h"
#include "workload/trace.h"

using namespace hermes;

namespace {

std::unique_ptr<HermesCluster> g_cluster;

void RequireCluster() {
  if (!g_cluster) std::printf("no cluster loaded — use 'load' or 'open'\n");
}

void MakeCluster(Graph g, PartitionId alpha) {
  const auto asg = MultilevelPartitioner().Partition(g, alpha);
  HermesCluster::Options options;
  options.repartitioner.beta = 1.1;
  options.repartitioner.k_fraction = 0.01;
  g_cluster = std::make_unique<HermesCluster>(std::move(g), asg, options);
  std::printf("cluster up: %zu vertices, %zu edges, %u servers, "
              "edge-cut %.1f%%\n",
              g_cluster->graph().NumVertices(),
              g_cluster->graph().NumEdges(), g_cluster->num_servers(),
              100.0 * EdgeCutFraction(g_cluster->graph(),
                                      g_cluster->assignment()));
}

void CmdStats() {
  RequireCluster();
  if (!g_cluster) return;
  const auto& g = g_cluster->graph();
  const auto& asg = g_cluster->assignment();
  std::printf("vertices=%zu edges=%zu servers=%u\n", g.NumVertices(),
              g.NumEdges(), g_cluster->num_servers());
  std::printf("edge-cut=%.1f%% imbalance=%.3f store-bytes=%zu\n",
              100.0 * EdgeCutFraction(g, asg), ImbalanceFactor(g, asg),
              g_cluster->TotalStoreBytes());
  const auto weights = PartitionWeights(g, asg);
  for (PartitionId p = 0; p < weights.size(); ++p) {
    std::printf("  server %-3u weight=%-10.0f nodes=%-8zu ghosts=%zu\n", p,
                weights[p], g_cluster->store(p)->NumNodes(),
                g_cluster->store(p)->NumGhostRelationships());
  }
}

void CmdTraverse(VertexId v, int hops) {
  RequireCluster();
  if (!g_cluster) return;
  auto run = g_cluster->ExecuteRead(v, hops);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  std::printf("processed=%llu unique=%llu remote-hops=%llu segments:",
              static_cast<unsigned long long>(run->vertices_processed),
              static_cast<unsigned long long>(run->unique_vertices),
              static_cast<unsigned long long>(run->remote_hops));
  for (const auto& [server, visits] : run->segments) {
    std::printf(" s%u:%u", server, visits);
  }
  std::printf("\n");
}

void CmdWorkload(const TraceOptions& topt) {
  const auto trace =
      GenerateTrace(g_cluster->graph(), g_cluster->assignment(), topt);
  const ThroughputReport report = RunWorkload(g_cluster.get(), trace);
  std::printf("reads=%llu writes=%llu failed=%llu throughput=%.0f v/s "
              "remote-hops=%llu\n",
              static_cast<unsigned long long>(report.reads_completed),
              static_cast<unsigned long long>(report.writes_completed),
              static_cast<unsigned long long>(report.failed_ops),
              report.VerticesPerSecond(),
              static_cast<unsigned long long>(report.remote_hops));
  std::printf("imbalance now: %.3f\n",
              ImbalanceFactor(g_cluster->graph(), g_cluster->assignment()));
}

void CmdRepartition() {
  RequireCluster();
  if (!g_cluster) return;
  auto stats = g_cluster->RunLightweightRepartition();
  if (!stats.ok()) {
    std::printf("error: %s\n", stats.status().ToString().c_str());
    return;
  }
  std::printf("iterations=%zu converged=%s moved=%zu rels-touched=%zu\n",
              stats->repartitioner_iterations,
              stats->repartitioner_converged ? "yes" : "no",
              stats->vertices_moved, stats->relationships_touched);
  std::printf("imbalance %.3f -> %.3f, edge-cut %.1f%% -> %.1f%%\n",
              stats->imbalance_before, stats->imbalance_after,
              100.0 * stats->edge_cut_fraction_before,
              100.0 * stats->edge_cut_fraction_after);
  std::printf("aux traffic %zu B, migrated %zu B in %.1f ms (simulated)\n",
              stats->aux_bytes_exchanged, stats->bytes_copied,
              stats->total_time_us / 1000.0);
}

void PrintHelp() {
  std::printf(
      "commands: load <dataset> [scale] [alpha] | open <path> [alpha] |\n"
      "  stats | neighbors <v> | traverse <v> <hops> |\n"
      "  read <v> <hops> <count> | skew <partition> <factor> <requests> |\n"
      "  addedge <u> <v> | addvertex | repartition | validate | quit\n");
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("hermes shell — 'help' for commands\n");
  std::string line;
  while (std::printf("hermes> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "load") {
      std::string name;
      double scale = 0.05;
      unsigned alpha = 8;
      ss >> name >> scale >> alpha;
      auto profile = ProfileByName(name, scale);
      if (!profile.ok()) {
        std::printf("error: %s\n", profile.status().ToString().c_str());
        continue;
      }
      MakeCluster(GenerateDataset(*profile),
                  static_cast<PartitionId>(alpha));
    } else if (cmd == "open") {
      std::string path;
      unsigned alpha = 8;
      ss >> path >> alpha;
      auto g = LoadEdgeList(path);
      if (!g.ok()) {
        std::printf("error: %s\n", g.status().ToString().c_str());
        continue;
      }
      MakeCluster(std::move(*g), static_cast<PartitionId>(alpha));
    } else if (cmd == "stats") {
      CmdStats();
    } else if (cmd == "neighbors") {
      RequireCluster();
      if (!g_cluster) continue;
      VertexId v = 0;
      ss >> v;
      const PartitionId p = v < g_cluster->assignment().size()
                                ? g_cluster->assignment().PartitionOf(v)
                                : kInvalidPartition;
      if (p == kInvalidPartition) {
        std::printf("no such vertex\n");
        continue;
      }
      auto neigh = g_cluster->store(p)->Neighbors(v);
      if (!neigh.ok()) {
        std::printf("error: %s\n", neigh.status().ToString().c_str());
        continue;
      }
      std::printf("server %u, %zu neighbors:", p, neigh->size());
      for (std::size_t i = 0; i < neigh->size() && i < 20; ++i) {
        std::printf(" %llu", static_cast<unsigned long long>((*neigh)[i]));
      }
      std::printf(neigh->size() > 20 ? " ...\n" : "\n");
    } else if (cmd == "traverse") {
      VertexId v = 0;
      int hops = 1;
      ss >> v >> hops;
      CmdTraverse(v, hops);
    } else if (cmd == "read") {
      RequireCluster();
      if (!g_cluster) continue;
      VertexId v = 0;
      int hops = 1;
      std::size_t count = 100;
      ss >> v >> hops >> count;
      TraceOptions topt;
      topt.num_requests = count;
      topt.hops = hops;
      CmdWorkload(topt);
    } else if (cmd == "skew") {
      RequireCluster();
      if (!g_cluster) continue;
      unsigned partition = 0;
      double factor = 2.0;
      std::size_t requests = 1000;
      ss >> partition >> factor >> requests;
      TraceOptions topt;
      topt.num_requests = requests;
      topt.hot_partition = static_cast<PartitionId>(partition);
      topt.skew_factor = factor;
      CmdWorkload(topt);
    } else if (cmd == "addedge") {
      RequireCluster();
      if (!g_cluster) continue;
      VertexId u = 0;
      VertexId v = 0;
      ss >> u >> v;
      // audit:allow(status, the shell reports the outcome to the user)
      const Status st = g_cluster->InsertEdge(u, v);
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "addvertex") {
      RequireCluster();
      if (!g_cluster) continue;
      auto id = g_cluster->InsertVertex();
      if (id.ok()) {
        std::printf("created vertex %llu on server %u\n",
                    static_cast<unsigned long long>(*id),
                    g_cluster->assignment().PartitionOf(*id));
      } else {
        std::printf("error: %s\n", id.status().ToString().c_str());
      }
    } else if (cmd == "repartition") {
      CmdRepartition();
    } else if (cmd == "validate") {
      RequireCluster();
      if (!g_cluster) continue;
      std::printf("%s\n", g_cluster->Validate(1000) ? "OK" : "INCONSISTENT");
    } else {
      std::printf("unknown command '%s' — 'help' for usage\n", cmd.c_str());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
