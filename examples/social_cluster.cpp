// social_cluster: a full distributed deployment in miniature.
//
// Builds a Twitter-like synthetic social network, shards it across 8
// Hermes servers (Neo4j-style stores with ghost relationships), serves a
// skewed 1-hop traversal workload from 32 closed-loop clients on the
// discrete-event cluster simulator, then repartitions on-the-fly and
// shows the throughput recovery — the Section 5.3.1 experiment end to end.
//
// Run: ./build/examples/social_cluster [--scale=0.05] [--alpha=8]

#include <cstdio>
#include <cstring>

#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "common/logging.h"
#include "gen/profiles.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"
#include "workload/driver.h"
#include "workload/trace.h"

using namespace hermes;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  double scale = 0.05;
  PartitionId alpha = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--alpha=", 8) == 0) {
      alpha = static_cast<PartitionId>(atoi(argv[i] + 8));
    }
  }

  std::printf("Generating a Twitter-like graph (scale %.2f)...\n", scale);
  const DatasetProfile profile = TwitterProfile(scale);
  Graph g = GenerateDataset(profile);
  std::printf("  %zu vertices, %zu edges\n", g.NumVertices(), g.NumEdges());

  std::printf("Partitioning across %u servers (multilevel)...\n", alpha);
  const PartitionAssignment initial =
      MultilevelPartitioner().Partition(g, alpha);

  HermesCluster::Options options;
  options.repartitioner.beta = 1.1;
  options.repartitioner.k_fraction = 0.01;
  HermesCluster cluster(std::move(g), initial, options);
  std::printf("  initial edge-cut: %.1f%%, ghosts: ",
              100.0 * EdgeCutFraction(cluster.graph(), cluster.assignment()));
  std::size_t ghosts = 0;
  for (PartitionId p = 0; p < alpha; ++p) {
    ghosts += cluster.store(p)->NumGhostRelationships();
  }
  std::printf("%zu\n", ghosts);

  // Skewed workload: users on server 0 become twice as popular.
  TraceOptions topt;
  topt.num_requests = 4000;
  topt.hops = 1;
  topt.hot_partition = 0;
  topt.skew_factor = 2.0;
  const auto trace =
      GenerateTrace(cluster.graph(), cluster.assignment(), topt);

  std::printf("\nServing %zu skewed 1-hop traversals (32 clients)...\n",
              trace.size());
  const ThroughputReport before = RunWorkload(&cluster, trace);
  std::printf("  throughput: %.0f vertices/s, remote hops: %llu\n",
              before.VerticesPerSecond(),
              static_cast<unsigned long long>(before.remote_hops));
  std::printf("  imbalance factor now: %.3f (reads bumped hot weights)\n",
              ImbalanceFactor(cluster.graph(), cluster.assignment()));

  std::printf("\nRunning the lightweight repartitioner...\n");
  auto stats = cluster.RunLightweightRepartition();
  if (!stats.ok()) {
    std::printf("  repartitioning failed: %s\n",
                stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "  %zu iterations, %zu vertices moved, %zu relationship records "
      "touched\n",
      stats->repartitioner_iterations, stats->vertices_moved,
      stats->relationships_touched);
  std::printf("  imbalance %.3f -> %.3f, edge-cut %.1f%% -> %.1f%%\n",
              stats->imbalance_before, stats->imbalance_after,
              100.0 * stats->edge_cut_fraction_before,
              100.0 * stats->edge_cut_fraction_after);
  std::printf("  migration: %zu bytes copied, %.1f ms simulated\n",
              stats->bytes_copied, stats->total_time_us / 1000.0);
  std::printf("  store consistency check: %s\n",
              cluster.Validate(500) ? "OK" : "FAILED");

  std::printf("\nReplaying the same workload after repartitioning...\n");
  const ThroughputReport after = RunWorkload(&cluster, trace);
  std::printf("  throughput: %.0f vertices/s (%+.1f%%), remote hops: %llu\n",
              after.VerticesPerSecond(),
              100.0 * (after.VerticesPerSecond() /
                           before.VerticesPerSecond() -
                       1.0),
              static_cast<unsigned long long>(after.remote_hops));
  return 0;
}
