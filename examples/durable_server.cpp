// durable_server: the persistence engine under a crash.
//
// Hermes inherits Neo4j's disk-based, transactional persistence. This
// example runs one server's store through a realistic life cycle:
// load -> checkpoint -> more traffic -> crash (no clean shutdown) ->
// recovery from snapshot + write-ahead-log tail.
//
// Run: ./build/examples/durable_server

#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/rng.h"
#include "gen/social_graph.h"
#include "graphdb/durable_store.h"

using namespace hermes;

int main() {
  SetLogLevel(LogLevel::kWarning);
  const std::string dir = "/tmp/hermes_durable_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SocialGraphOptions gopt;
  gopt.num_vertices = 800;
  gopt.seed = 77;
  const Graph g = GenerateSocialGraph(gopt);

  std::size_t edges_before_crash = 0;
  {
    auto opened = DurableGraphStore::Open(0, dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    DurableGraphStore& db = **opened;

    std::printf("Loading %zu users and %zu friendships (all WAL-logged)...\n",
                g.NumVertices(), g.NumEdges());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      HERMES_CHECK_OK(db.CreateNode(v, g.VertexWeight(v)));
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (VertexId w : g.Neighbors(v)) {
        if (w > v) HERMES_CHECK_OK(db.AddEdge(v, w, 0, true).status());
      }
    }
    HERMES_CHECK_OK(db.SetNodeProperty(0, 0, "the-first-user"));

    std::printf("Checkpoint: snapshot written, log truncated.\n");
    if (!db.Checkpoint().ok()) return 1;

    // Post-checkpoint traffic that only the WAL protects.
    Rng rng(5);
    std::size_t added = 0;
    for (int i = 0; i < 200; ++i) {
      const VertexId u = rng.Uniform(g.NumVertices());
      const VertexId v = rng.Uniform(g.NumVertices());
      if (u != v && db.AddEdge(u, v, 1, true).ok()) ++added;
    }
    // The post-crash durability claim below depends on this fsync.
    if (const Status st = db.Sync(); !st.ok()) {
      std::fprintf(stderr, "sync failed: %s\n", st.ToString().c_str());
      return 1;
    }
    edges_before_crash = db.store().NumRelationships();
    std::printf("Post-checkpoint: %zu new friendships (WAL only, next "
                "LSN=%llu)\n",
                added, static_cast<unsigned long long>(db.next_lsn()));
    std::printf("CRASH: process exits without checkpoint or shutdown.\n");
    // db goes out of scope without Checkpoint() — like a kill -9 after
    // the last Sync().
  }

  std::printf("\nRecovering from %s ...\n", dir.c_str());
  auto recovered = DurableGraphStore::Open(0, dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const GraphStore& store = (*recovered)->store();
  std::printf("  nodes: %zu (expected %zu)\n", store.NumNodes(),
              g.NumVertices());
  std::printf("  relationships: %zu (expected %zu)\n",
              store.NumRelationships(), edges_before_crash);
  std::printf("  property check: %s\n",
              store.GetNodeProperty(0, 0).ValueOr("<missing>").c_str());
  std::printf("  chain integrity: %s\n",
              store.CheckChains() ? "OK" : "FAILED");
  const bool ok = store.NumNodes() == g.NumVertices() &&
                  store.NumRelationships() == edges_before_crash &&
                  store.CheckChains();
  std::printf("\n%s\n", ok ? "Recovery complete — no committed write lost."
                           : "RECOVERY MISMATCH");
  return ok ? 0 : 1;
}
