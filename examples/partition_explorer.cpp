// partition_explorer: compare every partitioner in the library on a
// dataset of your choice.
//
//   ./build/examples/partition_explorer --dataset=dblp --alpha=8
//   ./build/examples/partition_explorer --edges=/path/to/snap.txt
//
// Accepts the built-in synthetic profiles (twitter / orkut / dblp) or any
// SNAP-format edge list, and prints edge-cut, balance, and runtime for
// random hashing, the multilevel (Metis-equivalent) partitioner, JA-BE-JA,
// and hash followed by the lightweight repartitioner.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "gen/edge_list_io.h"
#include "gen/profiles.h"
#include "partition/aux_data.h"
#include "partition/hash_partitioner.h"
#include "partition/jabeja.h"
#include "partition/lightweight.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"

using namespace hermes;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Report(const char* name, const Graph& g, const PartitionAssignment& asg,
            double ms) {
  std::printf("%-26s %11.1f%% %11.3f %11.0f ms\n", name,
              100.0 * EdgeCutFraction(g, asg), ImbalanceFactor(g, asg), ms);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string dataset = "dblp";
  std::string edges_path;
  double scale = 0.1;
  PartitionId alpha = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dataset=", 10) == 0) dataset = argv[i] + 10;
    if (std::strncmp(argv[i], "--edges=", 8) == 0) edges_path = argv[i] + 8;
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--alpha=", 8) == 0) {
      alpha = static_cast<PartitionId>(atoi(argv[i] + 8));
    }
  }

  Graph g;
  if (!edges_path.empty()) {
    auto loaded = LoadEdgeList(edges_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", edges_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    g = std::move(*loaded);
    std::printf("Loaded %s\n", edges_path.c_str());
  } else {
    auto profile = ProfileByName(dataset, scale);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    g = GenerateDataset(*profile);
    std::printf("Generated '%s' profile at scale %.2f\n", dataset.c_str(),
                scale);
  }
  std::printf("%zu vertices, %zu edges, %u partitions\n\n", g.NumVertices(),
              g.NumEdges(), alpha);
  std::printf("%-26s %12s %11s %14s\n", "partitioner", "edge-cut",
              "imbalance", "runtime");

  {
    auto t0 = std::chrono::steady_clock::now();
    const auto asg = HashPartitioner(1).Partition(g, alpha);
    Report("random hash", g, asg, MillisSince(t0));
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    const auto asg = MultilevelPartitioner().Partition(g, alpha);
    Report("multilevel (Metis-like)", g, asg, MillisSince(t0));
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    JabejaOptions jopt;
    jopt.rounds = 40;
    const auto asg = JabejaPartitioner(jopt).Partition(g, alpha);
    Report("JA-BE-JA (40 rounds)", g, asg, MillisSince(t0));
  }
  {
    auto t0 = std::chrono::steady_clock::now();
    PartitionAssignment asg = HashPartitioner(1).Partition(g, alpha);
    AuxiliaryData aux(g, asg);
    RepartitionerOptions ropt;
    ropt.k_fraction = 0.01;
    const auto result = LightweightRepartitioner(ropt).Run(g, &asg, &aux);
    char label[64];
    std::snprintf(label, sizeof(label), "hash + lightweight (%zu it)",
                  result.iterations);
    Report(label, g, asg, MillisSince(t0));
  }
  std::printf(
      "\nNote: the lightweight repartitioner is an *incremental* algorithm;\n"
      "starting it from random hashing shows its headroom, but its intended\n"
      "role is maintaining an existing good partitioning (see DESIGN.md).\n");
  return 0;
}
