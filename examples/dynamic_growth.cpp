// dynamic_growth: keeping partitions healthy while the graph evolves.
//
// Social networks grow continuously (new users, new friendships). This
// example streams inserts into a running cluster and compares two
// regimes:
//   * no maintenance - the initial partitioning slowly rots;
//   * periodic lightweight repartitioning - quality tracks the offline
//     optimum at a tiny migration cost.
//
// Run: ./build/examples/dynamic_growth

#include <cstdio>

#include "cluster/hermes_cluster.h"
#include "common/logging.h"
#include "common/rng.h"
#include "gen/social_graph.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"

using namespace hermes;

namespace {

/// Streams `batch` community-biased insertions into the cluster: new
/// users join an existing community (attach to a random vertex and some
/// of its neighbors — triadic closure).
void GrowGraph(HermesCluster* cluster, std::size_t batch, Rng* rng) {
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t n = cluster->graph().NumVertices();
    if (rng->Bernoulli(0.3)) {
      // New user: joins a community via a random sponsor.
      auto id = cluster->InsertVertex();
      if (!id.ok()) continue;
      const VertexId sponsor = rng->Uniform(n);
      // The brand-new vertex cannot already have this edge.
      HERMES_CHECK_OK(cluster->InsertEdge(*id, sponsor));
      const auto neigh = cluster->graph().Neighbors(sponsor);
      if (!neigh.empty()) {
        // audit:allow(status, the random pick may repeat the sponsor edge)
        (void)cluster->InsertEdge(*id, neigh[rng->Uniform(neigh.size())]);
      }
    } else {
      // New friendship: close a wedge (friend-of-friend).
      const VertexId u = rng->Uniform(n);
      const auto neigh = cluster->graph().Neighbors(u);
      if (neigh.empty()) continue;
      const VertexId via = neigh[rng->Uniform(neigh.size())];
      const auto second = cluster->graph().Neighbors(via);
      if (second.empty()) continue;
      // audit:allow(status, wedge closing may pick u itself or an existing edge)
      (void)cluster->InsertEdge(u, second[rng->Uniform(second.size())]);
    }
  }
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  SocialGraphOptions gopt;
  gopt.num_vertices = 3000;
  gopt.community_mixing = 0.1;
  gopt.seed = 21;
  Graph seed_graph = GenerateSocialGraph(gopt);
  const PartitionAssignment initial =
      MultilevelPartitioner().Partition(seed_graph, 8);

  HermesCluster::Options options;
  options.repartitioner.beta = 1.1;
  options.repartitioner.k_fraction = 0.02;
  options.count_reads_in_weights = false;

  Graph copy = seed_graph;
  HermesCluster maintained(std::move(copy), initial, options);
  HermesCluster neglected(std::move(seed_graph), initial, options);

  std::printf("%-8s | %18s | %18s | %s\n", "epoch", "maintained cut",
              "neglected cut", "moved this epoch");
  Rng rng_a(5);
  Rng rng_b(5);
  for (int epoch = 1; epoch <= 6; ++epoch) {
    GrowGraph(&maintained, 600, &rng_a);
    GrowGraph(&neglected, 600, &rng_b);

    auto stats = maintained.RunLightweightRepartition();
    const double cut_a =
        EdgeCutFraction(maintained.graph(), maintained.assignment());
    const double cut_b =
        EdgeCutFraction(neglected.graph(), neglected.assignment());
    std::printf("%-8d | %17.1f%% | %17.1f%% | %zu vertices\n", epoch,
                100.0 * cut_a, 100.0 * cut_b,
                stats.ok() ? stats->vertices_moved : 0);
  }

  std::printf(
      "\nFinal offline rerun for reference: multilevel on the grown graph "
      "cuts %.1f%%\n",
      100.0 * EdgeCutFraction(
                  maintained.graph(),
                  MultilevelPartitioner().Partition(maintained.graph(), 8)));
  std::printf("store consistency: maintained=%s neglected=%s\n",
              maintained.Validate(400) ? "OK" : "FAILED",
              neglected.Validate(400) ? "OK" : "FAILED");
  return 0;
}
