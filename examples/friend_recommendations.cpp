// friend_recommendations: the paper's motivating 2-hop analytical query
// (Section 5.3.2 — "recommendations, e.g., friend, events or ad
// recommendations") written against the declarative traversal API.
//
// For a user u, candidates are friends-of-friends that are not yet
// friends, ranked by the number of mutual friends. The traversal runs
// against the distributed cluster: adjacency fetches are routed to
// whichever server hosts each vertex.
//
// Run: ./build/examples/friend_recommendations

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "cluster/hermes_cluster.h"
#include "common/logging.h"
#include "gen/social_graph.h"
#include "graphdb/traversal.h"
#include "partition/multilevel.h"

using namespace hermes;

int main() {
  SetLogLevel(LogLevel::kWarning);

  SocialGraphOptions gopt;
  gopt.num_vertices = 4000;
  gopt.community_mixing = 0.08;
  gopt.triangle_closure = 0.4;  // social graphs close triangles
  gopt.seed = 31;
  Graph g = GenerateSocialGraph(gopt);
  const auto placement = MultilevelPartitioner().Partition(g, 4);
  HermesCluster cluster(std::move(g), placement);
  const NeighborProvider provider = cluster.MakeNeighborProvider();

  // Pick a reasonably social user.
  VertexId user = 0;
  for (VertexId v = 0; v < cluster.graph().NumVertices(); ++v) {
    if (cluster.graph().Degree(v) >= 8) {
      user = v;
      break;
    }
  }

  // Direct friends (1-hop).
  TraversalDescription one_hop;
  one_hop.max_depth = 1;
  auto friends_result = Traverse(user, one_hop, provider);
  if (!friends_result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 friends_result.status().ToString().c_str());
    return 1;
  }
  std::unordered_set<VertexId> friends;
  for (const TraversalHit& hit : friends_result->hits) {
    if (hit.depth == 1) friends.insert(hit.node);
  }
  std::printf("user %llu has %zu friends\n",
              static_cast<unsigned long long>(user), friends.size());

  // Friends-of-friends with revisit counting: under Uniqueness::kNone a
  // candidate reached through three different friends appears three times
  // — exactly the mutual-friend count we want to rank by.
  TraversalDescription two_hop;
  two_hop.max_depth = 2;
  two_hop.uniqueness = Uniqueness::kNone;
  two_hop.include = [](VertexId, int depth) { return depth == 2; };
  auto fof = Traverse(user, two_hop, provider);
  if (!fof.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 fof.status().ToString().c_str());
    return 1;
  }

  std::unordered_map<VertexId, int> mutual_count;
  for (const TraversalHit& hit : fof->hits) {
    if (hit.node != user && friends.count(hit.node) == 0) {
      ++mutual_count[hit.node];
    }
  }
  std::vector<std::pair<VertexId, int>> ranked(mutual_count.begin(),
                                               mutual_count.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });

  std::printf("processed %llu vertex records (%zu unique hits) — the\n",
              static_cast<unsigned long long>(fof->nodes_processed),
              fof->hits.size());
  std::printf("response/processed gap the paper reports for 2-hop queries.\n");
  std::printf("\ntop friend recommendations:\n");
  for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
    std::printf("  user %-8llu %d mutual friends\n",
                static_cast<unsigned long long>(ranked[i].first),
                ranked[i].second);
  }
  return 0;
}
