#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "graphdb/traversal.h"
#include "partition/hash_partitioner.h"

namespace hermes {
namespace {

/// Star: 0 at the center of 1..4, plus a tail 4-5-6; typed edges.
GraphStore MakeStore() {
  GraphStore store(0);
  for (VertexId v = 0; v <= 6; ++v) EXPECT_OK(store.CreateNode(v));
  EXPECT_OK(store.AddEdge(0, 1, /*type=*/0, true));
  EXPECT_OK(store.AddEdge(0, 2, 0, true));
  EXPECT_OK(store.AddEdge(0, 3, 1, true));  // type 1: "follows"
  EXPECT_OK(store.AddEdge(0, 4, 0, true));
  EXPECT_OK(store.AddEdge(4, 5, 0, true));
  EXPECT_OK(store.AddEdge(5, 6, 0, true));
  return store;
}

NeighborProvider Provider(const GraphStore& store) {
  return [&store](VertexId v, std::optional<std::uint32_t> type) {
    return store.NeighborsByType(v, type);
  };
}

std::vector<VertexId> HitNodes(const TraversalResult& r) {
  std::vector<VertexId> out;
  for (const auto& hit : r.hits) out.push_back(hit.node);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TraversalTest, OneHopReturnsNeighborsAndStart) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 1;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r->nodes_processed, 5u);
}

TEST(TraversalTest, DepthLimitsExpansion) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 2;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));

  d.max_depth = 3;
  r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(TraversalTest, DepthsAreBfsDistances) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 3;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  for (const TraversalHit& hit : r->hits) {
    if (hit.node == 0) EXPECT_EQ(hit.depth, 0);
    if (hit.node == 4) EXPECT_EQ(hit.depth, 1);
    if (hit.node == 5) EXPECT_EQ(hit.depth, 2);
    if (hit.node == 6) EXPECT_EQ(hit.depth, 3);
  }
}

TEST(TraversalTest, RelationshipTypeFilter) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 1;
  d.relationship_type = 1;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 3}));
}

TEST(TraversalTest, IncludeEvaluatorFiltersResults) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 2;
  d.include = [](VertexId v, int depth) { return depth == 2 && v != 0; };
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{5}));
}

TEST(TraversalTest, PruneStopsExpansion) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 3;
  d.prune = [](VertexId v, int) { return v == 4; };  // do not go past 4
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(TraversalTest, MaxResultsShortCircuits) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  d.max_depth = 3;
  d.max_results = 3;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  EXPECT_EQ(r->hits.size(), 3u);
}

TEST(TraversalTest, UniquenessNoneReportsRevisits) {
  // Triangle 0-1-2: at depth 2 under kNone, vertices are reached again.
  GraphStore store(0);
  for (VertexId v = 0; v < 3; ++v) ASSERT_OK(store.CreateNode(v));
  ASSERT_OK(store.AddEdge(0, 1, 0, true));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  ASSERT_OK(store.AddEdge(0, 2, 0, true));

  TraversalDescription d;
  d.max_depth = 2;
  d.uniqueness = Uniqueness::kNone;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  // Hits: 0 (start), 1, 2 (depth 1), then each of 1 and 2 re-reaches the
  // other two: response > unique (the Section 5.3.2 effect).
  EXPECT_GT(r->hits.size(), 3u);
  EXPECT_GT(r->nodes_processed, 3u);

  TraversalDescription unique = d;
  unique.uniqueness = Uniqueness::kNodeGlobal;
  auto ru = Traverse(0, unique, Provider(store));
  ASSERT_OK(ru);
  EXPECT_EQ(ru->hits.size(), 3u);
  EXPECT_LT(ru->hits.size(), r->hits.size());
}

TEST(TraversalTest, MissingStartFails) {
  GraphStore store = MakeStore();
  TraversalDescription d;
  auto r = Traverse(99, d, Provider(store));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(TraversalTest, UnavailableInteriorNodeSkipped) {
  GraphStore store = MakeStore();
  ASSERT_OK(store.SetNodeState(4, NodeState::kUnavailable));
  TraversalDescription d;
  d.max_depth = 2;
  auto r = Traverse(0, d, Provider(store));
  ASSERT_OK(r);
  // 4 is still reported (its id is in 0's local chain) but not expanded,
  // so 5 is unreachable — queries act as if the record is absent.
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(TraversalTest, ClusterProviderCrossesPartitions) {
  Graph g(6);
  for (VertexId v = 0; v + 1 < 6; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  PartitionAssignment asg(6, 3);
  for (VertexId v = 0; v < 6; ++v) {
    asg.Assign(v, static_cast<PartitionId>(v / 2));
  }
  HermesCluster cluster(std::move(g), asg);
  TraversalDescription d;
  d.max_depth = 5;
  auto r = Traverse(0, d, cluster.MakeNeighborProvider());
  ASSERT_OK(r);
  EXPECT_EQ(HitNodes(*r), (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace hermes
