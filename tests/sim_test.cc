#include <vector>

#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace hermes {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30.0, [&order] { order.push_back(3); });
  sim.At(10.0, [&order] { order.push_back(1); });
  sim.At(20.0, [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 30.0);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(5.0, [&order] { order.push_back(1); });
  sim.At(5.0, [&order] { order.push_back(2); });
  sim.At(5.0, [&order] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(10.0, [&sim, &fired_at] {
    sim.After(5.0, [&sim, &fired_at] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(10.0, [&sim, &fired_at] {
    sim.At(3.0, [&sim, &fired_at] { fired_at = sim.Now(); });  // in the past
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimulatorTest, ReentrantSchedulingChains) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) sim.After(1.0, tick);
  };
  sim.At(0.0, tick);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.Now(), 99.0);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.At(10.0, [&fired] { ++fired; });
  sim.At(50.0, [&fired] { ++fired; });
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 20.0);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<double> times;
    for (int i = 0; i < 50; ++i) {
      sim.At(static_cast<double>((i * 37) % 50),
             [&times, &sim] { times.push_back(sim.Now()); });
    }
    sim.Run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NetworkParamsTest, RemoteHopDominatesLocalVisit) {
  // The premise of the whole paper: a remote traversal costs orders of
  // magnitude more than a local visit. Guard the default calibration.
  NetworkParams net;
  EXPECT_GT(net.remote_hop_us, 50.0 * net.local_visit_us);
  EXPECT_GT(net.client_request_us, 0.0);
  EXPECT_GT(net.write_op_us, net.local_visit_us);
}

}  // namespace
}  // namespace hermes
