// Regression tests for the two swallowed-status defects fixed by the
// error-propagation contract (DESIGN.md §10). Both drive a real WAL
// failure through a failpoint and fail against the pre-fix code:
//
//  1. ExecuteRead discarded the DoAddNodeWeight status, so a WAL append
//     failure left the in-memory popularity weight bumped while the
//     durable store missed it — recovery would rebuild a lower weight
//     and every repartition decision would run on phantom load.
//
//  2. A WAL append failure in the middle of a migration chunk's copy
//     step returned early with the vertex replicated on the target
//     while the directory still routed to the source — Validate()
//     stayed false forever.
//
// Failpoints compile to no-ops under the default preset, so these skip
// there and run under asan-ubsan / tsan (HERMES_FAILPOINTS).

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "common/failpoint.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"

namespace hermes {
namespace {

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Graph SmallSocial(std::uint64_t seed = 5) {
  SocialGraphOptions opt;
  opt.num_vertices = 600;
  opt.seed = seed;
  return GenerateSocialGraph(opt);
}

class StatusDisciplineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsEnabled) {
      GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset); run the "
                      "asan-ubsan or tsan preset for fault injection";
    }
    FailpointRegistry::Global().Reset();
  }
  void TearDown() override { FailpointRegistry::Global().Reset(); }
};

TEST_F(StatusDisciplineTest, ReadWeightBumpWalFailureSurfacesAndRollsBack) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster::Options opt;
  opt.durability_dir = FreshDir("status_discipline_read_bump");
  HermesCluster cluster(std::move(g), asg, opt);
  const double before = cluster.graph().VertexWeight(0);

  // Every WAL append fails; the only append a read issues is the
  // popularity-weight bump.
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kEveryK;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("wal.append.io_error", cfg);
  auto run = cluster.ExecuteRead(0, 1);
  FailpointRegistry::Global().Reset();

  // Pre-fix: the bump status was (void)-discarded, the read returned OK,
  // and the in-memory weight diverged from the durable store.
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsIOError()) << run.status().ToString();
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), before);

  // With the fault cleared the read is retryable and the bump lands once.
  ASSERT_OK(cluster.ExecuteRead(0, 1));
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), before + 1.0);
  EXPECT_TRUE(cluster.Validate());
}

TEST_F(StatusDisciplineTest, MidChunkMigrationWalFailureUnwindsCleanly) {
  Graph g = SmallSocial(9);
  const auto initial = HashPartitioner(1).Partition(g, 4);
  // Hotspot partition 0 so the repartitioner has vertices to move.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (initial.PartitionOf(v) == 0) g.AddVertexWeight(v, 2.0);
  }
  HermesCluster::Options opt;
  opt.durability_dir = FreshDir("status_discipline_migration");
  opt.repartitioner.k_fraction = 0.05;
  HermesCluster cluster(std::move(g), initial, opt);

  // The copy step's appends are all target-side: node creates first,
  // then edges. n=2 lets the first replica land and then fails, so the
  // chunk is genuinely half-replicated when the error surfaces.
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 2;
  FailpointRegistry::Global().Arm("wal.append.io_error", cfg);
  auto stats = cluster.RunLightweightRepartition();
  FailpointRegistry::Global().Reset();

  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIOError()) << stats.status().ToString();
  // Pre-fix: the replica stayed on the target with the directory still
  // at the source, so Validate() was false — forever.
  EXPECT_TRUE(cluster.Validate());

  // The unwind restored the pre-chunk state, so a retry succeeds.
  auto retry = cluster.RunLightweightRepartition();
  ASSERT_OK(retry);
  EXPECT_GT(retry->vertices_moved, 0u);
  EXPECT_TRUE(cluster.Validate());
}

}  // namespace
}  // namespace hermes
