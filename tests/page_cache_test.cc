#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/failpoint.h"
#include "common/rng.h"
#include "storage/page_cache.h"
#include "storage/paged_file.h"

namespace hermes {
namespace {

std::string TempFile(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

Page MakePage(unsigned char fill) {
  Page p;
  p.bytes.fill(fill);
  return p;
}

TEST(PagedFileTest, WriteReadRoundTrip) {
  auto file = PagedFile::Open(TempFile("pf_roundtrip.pg"));
  ASSERT_OK(file);
  ASSERT_OK(file->WritePage(0, MakePage(0xAB)));
  ASSERT_OK(file->WritePage(3, MakePage(0xCD)));
  EXPECT_EQ(file->NumPages(), 4u);

  Page p;
  ASSERT_OK(file->ReadPage(0, &p));
  EXPECT_EQ(p.bytes[0], 0xAB);
  EXPECT_EQ(p.bytes[kPageSize - 1], 0xAB);
  ASSERT_OK(file->ReadPage(3, &p));
  EXPECT_EQ(p.bytes[100], 0xCD);
}

TEST(PagedFileTest, ReadPastEndYieldsZeros) {
  auto file = PagedFile::Open(TempFile("pf_zeros.pg"));
  ASSERT_OK(file);
  Page p = MakePage(0xFF);
  ASSERT_OK(file->ReadPage(42, &p));
  for (unsigned char b : p.bytes) ASSERT_EQ(b, 0);
}

TEST(PagedFileTest, PersistsAcrossReopen) {
  const std::string path = TempFile("pf_reopen.pg");
  {
    auto file = PagedFile::Open(path);
    ASSERT_OK(file);
    ASSERT_OK(file->WritePage(1, MakePage(0x5A)));
    ASSERT_OK(file->Sync());
  }
  auto file = PagedFile::Open(path);
  ASSERT_OK(file);
  EXPECT_EQ(file->NumPages(), 2u);
  Page p;
  ASSERT_OK(file->ReadPage(1, &p));
  EXPECT_EQ(p.bytes[17], 0x5A);
}

TEST(PagedFileTest, ResetTruncates) {
  auto file = PagedFile::Open(TempFile("pf_reset.pg"));
  ASSERT_OK(file);
  ASSERT_OK(file->WritePage(5, MakePage(1)));
  ASSERT_OK(file->Reset());
  EXPECT_EQ(file->NumPages(), 0u);
}

TEST(PageCacheTest, HitAfterMiss) {
  auto file = PagedFile::Open(TempFile("pc_hits.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 4);
  auto p = cache.Pin(0);
  ASSERT_OK(p);
  cache.Unpin(0, false);
  ASSERT_OK(cache.Pin(0));
  cache.Unpin(0, false);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PageCacheTest, DirtyPageWrittenBackOnEviction) {
  auto file = PagedFile::Open(TempFile("pc_dirty.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 2);
  {
    auto p = cache.Pin(0);
    ASSERT_OK(p);
    (*p)->bytes[7] = 0x77;
    cache.Unpin(0, true);
  }
  // Touch two more pages: page 0 must be evicted and written back.
  for (std::uint64_t pg : {1u, 2u}) {
    auto p = cache.Pin(pg);
    ASSERT_OK(p);
    cache.Unpin(pg, false);
  }
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_GE(cache.stats().writebacks, 1u);
  Page direct;
  ASSERT_OK(file->ReadPage(0, &direct));
  EXPECT_EQ(direct.bytes[7], 0x77);
}

TEST(PageCacheTest, FailedWritebackKeepsVictimResidentAndEvictable) {
  // Regression: when the eviction write-back failed, EvictOne used to
  // return with the victim still in frames_ and in_lru == true but its
  // lru_pos already erased — the next Pin of that page erased a dangling
  // iterator (UB, caught by ASan). The fix re-queues the victim at the
  // cold end of the LRU before surfacing the error.
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  auto file = PagedFile::Open(TempFile("pc_wb_fail.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 2);
  for (std::uint64_t pg : {0u, 1u}) {
    auto p = cache.Pin(pg);
    ASSERT_OK(p);
    (*p)->bytes[0] = static_cast<unsigned char>(0x50 + pg);
    cache.Unpin(pg, /*dirty=*/true);
  }

  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("paged_file.write.io_error", cfg);
  // Page 0 is the LRU victim; its write-back fails, so the miss fails.
  auto failed = cache.Pin(2);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError());
  EXPECT_EQ(cache.resident(), 2u);

  // Pre-fix this Pin was the UB: a hit on the half-evicted victim.
  auto victim = cache.Pin(0);
  ASSERT_OK(victim);
  EXPECT_EQ((*victim)->bytes[0], 0x50);  // dirty data survived the failure
  cache.Unpin(0, /*dirty=*/true);

  // With the fault cleared, eviction (and its write-back) works again.
  FailpointRegistry::Global().Reset();
  auto ok = cache.Pin(2);
  ASSERT_OK(ok);
  cache.Unpin(2, /*dirty=*/false);
  ASSERT_OK(cache.FlushAll());
  Page direct;
  ASSERT_OK(file->ReadPage(1, &direct));
  EXPECT_EQ(direct.bytes[0], 0x51);
}

TEST(PageCacheTest, PinnedPagesNeverEvicted) {
  auto file = PagedFile::Open(TempFile("pc_pinned.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 2);
  auto a = cache.Pin(0);
  auto b = cache.Pin(1);
  ASSERT_OK(a);
  ASSERT_OK(b);
  // Both frames pinned: a third pin must fail, not evict.
  EXPECT_TRUE(cache.Pin(2).status().IsInternal());
  cache.Unpin(0, false);
  cache.Unpin(1, false);
  EXPECT_OK(cache.Pin(2));
  cache.Unpin(2, false);
}

TEST(PageCacheTest, LruEvictsColdestPage) {
  auto file = PagedFile::Open(TempFile("pc_lru.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 2);
  for (std::uint64_t pg : {0u, 1u}) {
    ASSERT_OK(cache.Pin(pg));
    cache.Unpin(pg, false);
  }
  // Re-touch page 0 so page 1 is the LRU victim.
  ASSERT_OK(cache.Pin(0));
  cache.Unpin(0, false);
  ASSERT_OK(cache.Pin(2));
  cache.Unpin(2, false);
  // Page 0 should still be resident (hit), page 1 should miss.
  const auto hits_before = cache.stats().hits;
  ASSERT_OK(cache.Pin(0));
  cache.Unpin(0, false);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(PageCacheTest, FlushAllPersistsWithoutEviction) {
  auto file = PagedFile::Open(TempFile("pc_flush.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 8);
  auto p = cache.Pin(3);
  ASSERT_OK(p);
  (*p)->bytes[0] = 0x99;
  cache.Unpin(3, true);
  ASSERT_OK(cache.FlushAll());
  Page direct;
  ASSERT_OK(file->ReadPage(3, &direct));
  EXPECT_EQ(direct.bytes[0], 0x99);
}

TEST(PagedStreamTest, WriterReaderRoundTripAcrossPages) {
  auto file = PagedFile::Open(TempFile("ps_roundtrip.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 3);  // smaller than the data: forces eviction
  PagedWriter writer(&cache);

  Rng rng(5);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {  // ~40 KB, 5 pages
    values.push_back(rng.Next());
    writer.Append(&values.back(), sizeof(std::uint64_t));
  }
  ASSERT_OK(writer.Finish());
  EXPECT_EQ(writer.position(), 5000u * sizeof(std::uint64_t));

  PagedReader reader(&cache, writer.position());
  for (std::uint64_t expected : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(reader.Read(&got, sizeof(got)));
    ASSERT_EQ(got, expected);
  }
  std::uint64_t extra;
  EXPECT_FALSE(reader.Read(&extra, sizeof(extra)));  // limit enforced
}

TEST(PagedStreamTest, UnalignedWritesSpanPageBoundaries) {
  auto file = PagedFile::Open(TempFile("ps_unaligned.pg"));
  ASSERT_OK(file);
  PageCache cache(&*file, 2);
  PagedWriter writer(&cache);
  const std::string chunk = "abcdefghijklmnopqrstuvwxy";  // 25 bytes
  for (int i = 0; i < 1000; ++i) writer.Append(chunk.data(), chunk.size());
  ASSERT_OK(writer.Finish());

  PagedReader reader(&cache, writer.position());
  std::string got(chunk.size(), '\0');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reader.Read(got.data(), got.size()));
    ASSERT_EQ(got, chunk);
  }
}

}  // namespace
}  // namespace hermes
