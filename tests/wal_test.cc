#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/wal.h"

namespace hermes {
namespace {

std::string TempLog(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

WalEntry MakeEdgeEntry(VertexId a, VertexId b) {
  WalEntry e;
  e.type = WalOpType::kAddEdge;
  e.a = a;
  e.b = b;
  e.key = 7;
  e.flag = 1;
  return e;
}

TEST(WalTest, AppendAssignsIncreasingLsns) {
  const std::string path = TempLog("wal_lsn.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  auto l1 = wal->Append(MakeEdgeEntry(1, 2));
  auto l2 = wal->Append(MakeEdgeEntry(3, 4));
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_LT(*l1, *l2);
}

TEST(WalTest, RoundTripAllFields) {
  const std::string path = TempLog("wal_roundtrip.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    WalEntry e;
    e.type = WalOpType::kSetNodeProperty;
    e.a = 42;
    e.b = 43;
    e.weight = 2.5;
    e.key = 9;
    e.flag = 1;
    e.payload = "hello \0 world";
    ASSERT_TRUE(wal->Append(e).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  const WalEntry& e = entries->front();
  EXPECT_EQ(e.type, WalOpType::kSetNodeProperty);
  EXPECT_EQ(e.a, 42u);
  EXPECT_EQ(e.b, 43u);
  EXPECT_DOUBLE_EQ(e.weight, 2.5);
  EXPECT_EQ(e.key, 9u);
  EXPECT_EQ(e.flag, 1);
  EXPECT_EQ(e.lsn, 1u);
}

TEST(WalTest, ManyEntriesSurviveReopen) {
  const std::string path = TempLog("wal_reopen.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (VertexId i = 0; i < 100; ++i) {
      ASSERT_TRUE(wal->Append(MakeEdgeEntry(i, i + 1)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Reopen continues the LSN sequence.
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->next_lsn(), 101u);
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 100u);
}

TEST(WalTest, TornTailIsDiscarded) {
  const std::string path = TempLog("wal_torn.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (VertexId i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal->Append(MakeEdgeEntry(i, i + 1)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Simulate a crash mid-append: chop off the last 5 bytes.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::string data(size, '\0');
    in.read(data.data(), static_cast<std::streamsize>(size));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(size - 5));
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 9u);  // the torn 10th entry is dropped
}

TEST(WalTest, CorruptTailIsDiscarded) {
  const std::string path = TempLog("wal_corrupt.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (VertexId i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal->Append(MakeEdgeEntry(i, i + 1)).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  {
    // Flip a byte inside the last record's body.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    f.put('\xff');
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 4u);
}

TEST(WalTest, CheckpointFiltersEarlierEntries) {
  const std::string path = TempLog("wal_checkpoint.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(MakeEdgeEntry(1, 2)).ok());
  ASSERT_TRUE(wal->Append(MakeEdgeEntry(3, 4)).ok());
  ASSERT_TRUE(wal->LogCheckpoint().ok());
  ASSERT_TRUE(wal->Append(MakeEdgeEntry(5, 6)).ok());
  ASSERT_TRUE(wal->Sync().ok());

  auto all = WriteAheadLog::ReadAll(path, false);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);

  auto tail = WriteAheadLog::ReadAll(path, true);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ(tail->front().a, 5u);
}

TEST(WalTest, ResetTruncates) {
  const std::string path = TempLog("wal_reset.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(MakeEdgeEntry(1, 2)).ok());
  ASSERT_TRUE(wal->Reset().ok());
  ASSERT_TRUE(wal->Append(MakeEdgeEntry(9, 10)).ok());
  ASSERT_TRUE(wal->Sync().ok());
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().a, 9u);
}

TEST(WalTest, Crc32KnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (RFC 3720 test vector).
  EXPECT_EQ(WalCrc32("123456789", 9), 0xE3069283u);
  EXPECT_EQ(WalCrc32("", 0), 0u);
}

}  // namespace
}  // namespace hermes
