#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/failpoint.h"
#include "storage/wal.h"

namespace hermes {
namespace {

std::string TempLog(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

WalEntry MakeEdgeEntry(VertexId a, VertexId b) {
  WalEntry e;
  e.type = WalOpType::kAddEdge;
  e.a = a;
  e.b = b;
  e.key = 7;
  e.flag = 1;
  return e;
}

TEST(WalTest, AppendAssignsIncreasingLsns) {
  const std::string path = TempLog("wal_lsn.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  auto l1 = wal->Append(MakeEdgeEntry(1, 2));
  auto l2 = wal->Append(MakeEdgeEntry(3, 4));
  ASSERT_OK(l1);
  ASSERT_OK(l2);
  EXPECT_LT(*l1, *l2);
}

TEST(WalTest, RoundTripAllFields) {
  const std::string path = TempLog("wal_roundtrip.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    WalEntry e;
    e.type = WalOpType::kSetNodeProperty;
    e.a = 42;
    e.b = 43;
    e.weight = 2.5;
    e.key = 9;
    e.flag = 1;
    e.payload = "hello \0 world";
    ASSERT_OK(wal->Append(e));
    ASSERT_OK(wal->Sync());
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 1u);
  const WalEntry& e = entries->front();
  EXPECT_EQ(e.type, WalOpType::kSetNodeProperty);
  EXPECT_EQ(e.a, 42u);
  EXPECT_EQ(e.b, 43u);
  EXPECT_DOUBLE_EQ(e.weight, 2.5);
  EXPECT_EQ(e.key, 9u);
  EXPECT_EQ(e.flag, 1);
  EXPECT_EQ(e.lsn, 1u);
}

TEST(WalTest, ManyEntriesSurviveReopen) {
  const std::string path = TempLog("wal_reopen.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (VertexId i = 0; i < 100; ++i) {
      ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1)));
    }
    ASSERT_OK(wal->Sync());
  }
  // Reopen continues the LSN sequence.
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  EXPECT_EQ(wal->next_lsn(), 101u);
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 100u);
}

TEST(WalTest, TornTailIsDiscarded) {
  const std::string path = TempLog("wal_torn.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (VertexId i = 0; i < 10; ++i) {
      ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1)));
    }
    ASSERT_OK(wal->Sync());
  }
  // Simulate a crash mid-append: chop off the last 5 bytes.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::string data(size, '\0');
    in.read(data.data(), static_cast<std::streamsize>(size));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(size - 5));
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 9u);  // the torn 10th entry is dropped
}

TEST(WalTest, CorruptTailIsDiscarded) {
  const std::string path = TempLog("wal_corrupt.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (VertexId i = 0; i < 5; ++i) {
      ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1)));
    }
    ASSERT_OK(wal->Sync());
  }
  {
    // Flip a byte inside the last record's body.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3, std::ios::end);
    f.put('\xff');
  }
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 4u);
}

TEST(WalTest, CheckpointFiltersEarlierEntries) {
  const std::string path = TempLog("wal_checkpoint.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2)));
  ASSERT_OK(wal->Append(MakeEdgeEntry(3, 4)));
  ASSERT_OK(wal->LogCheckpoint());
  ASSERT_OK(wal->Append(MakeEdgeEntry(5, 6)));
  ASSERT_OK(wal->Sync());

  auto all = WriteAheadLog::ReadAll(path, false);
  ASSERT_OK(all);
  EXPECT_EQ(all->size(), 4u);

  auto tail = WriteAheadLog::ReadAll(path, true);
  ASSERT_OK(tail);
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ(tail->front().a, 5u);
}

TEST(WalTest, ResetTruncates) {
  const std::string path = TempLog("wal_reset.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2)));
  ASSERT_OK(wal->Reset());
  ASSERT_OK(wal->Append(MakeEdgeEntry(9, 10)));
  ASSERT_OK(wal->Sync());
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ(entries->front().a, 9u);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string data(size, '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  return data;
}

void WriteFileBytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// Walks the [u32 length][u32 crc][body] framing and returns the byte
// offset of the end of each record, independent of the reader under test.
std::vector<std::size_t> FrameBoundaries(const std::string& data) {
  std::vector<std::size_t> ends;
  std::size_t off = 0;
  while (off + 8 <= data.size()) {
    std::uint32_t length = 0;
    std::memcpy(&length, data.data() + off, sizeof(length));
    const std::size_t end = off + 8 + length;
    if (end > data.size()) break;
    ends.push_back(end);
    off = end;
  }
  return ends;
}

// Crash-at-every-byte sweep: truncating a multi-record log at any offset
// must recover exactly the longest valid-record prefix — every record
// whose frame fits entirely inside the truncated file, and nothing else.
TEST(WalTest, TruncationSweepRecoversLongestValidPrefix) {
  const std::string path = TempLog("wal_sweep.log");
  constexpr std::size_t kRecords = 5;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (std::size_t i = 0; i < kRecords; ++i) {
      WalEntry e = MakeEdgeEntry(i, i + 1);
      e.payload = std::string(i * 3, static_cast<char>('a' + i));
      ASSERT_OK(wal->Append(e));
    }
    ASSERT_OK(wal->Sync());
  }
  const std::string full = ReadFileBytes(path);
  const std::vector<std::size_t> ends = FrameBoundaries(full);
  ASSERT_EQ(ends.size(), kRecords);

  const std::string cut_path = TempLog("wal_sweep_cut.log");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    WriteFileBytes(cut_path, full.substr(0, len));
    const std::size_t want =
        static_cast<std::size_t>(std::count_if(
            ends.begin(), ends.end(),
            [len](std::size_t end) { return end <= len; }));
    auto entries = WriteAheadLog::ReadAll(cut_path);
    ASSERT_OK(entries) << "truncated at byte " << len;
    ASSERT_EQ(entries->size(), want) << "truncated at byte " << len;
    for (std::size_t i = 0; i < want; ++i) {
      EXPECT_EQ((*entries)[i].a, i) << "truncated at byte " << len;
      EXPECT_EQ((*entries)[i].lsn, i + 1) << "truncated at byte " << len;
    }
  }
}

// A CRC failure in the *middle* of the log must stop replay at the last
// good record before it — never skip the bad record and resume, which
// would replay a sequence the store never produced.
TEST(WalTest, FlippedCrcMidLogStopsReplayAtLastGoodRecord) {
  const std::string path = TempLog("wal_midcrc.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (VertexId i = 0; i < 5; ++i) {
      WalEntry e = MakeEdgeEntry(i, i + 1);
      e.payload = "payload";
      ASSERT_OK(wal->Append(e));
    }
    ASSERT_OK(wal->Sync());
  }
  std::string data = ReadFileBytes(path);
  const std::vector<std::size_t> ends = FrameBoundaries(data);
  ASSERT_EQ(ends.size(), 5u);
  // Flip a body byte inside the third record (frame = 8-byte header + body).
  data[ends[1] + 8] ^= 0x01;
  WriteFileBytes(path, data);

  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ(entries->back().a, 1u);
}

// Open() must cut a torn tail off the file before appending; otherwise
// new (even synced) records land beyond bytes replay refuses to cross
// and are silently lost on the next recovery.
TEST(WalTest, OpenTruncatesTornTailSoLaterAppendsSurvive) {
  const std::string path = TempLog("wal_open_trunc.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    for (VertexId i = 0; i < 3; ++i) {
      ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1)));
    }
    ASSERT_OK(wal->Sync());
  }
  // Crash mid-append: half of a fourth frame reaches the disk.
  std::string data = ReadFileBytes(path);
  const std::size_t intact = data.size();
  WriteFileBytes(path, data + data.substr(0, 11));

  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  EXPECT_EQ(wal->next_lsn(), 4u);
  EXPECT_EQ(std::filesystem::file_size(path), intact);
  ASSERT_OK(wal->Append(MakeEdgeEntry(9, 10)));
  ASSERT_OK(wal->Sync());

  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 4u);
  EXPECT_EQ(entries->back().a, 9u);
  EXPECT_EQ(entries->back().lsn, 4u);
}

TEST(WalTest, Crc32KnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (RFC 3720 test vector).
  EXPECT_EQ(WalCrc32("123456789", 9), 0xE3069283u);
  EXPECT_EQ(WalCrc32("", 0), 0u);
}

// --- durability / group commit -------------------------------------------

TEST(WalTest, SyncBatchesStagedAppendsIntoOneFsync) {
  const std::string path = TempLog("wal_group.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  for (VertexId i = 0; i < 10; ++i) {
    ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1)));
  }
  EXPECT_EQ(wal->durable_lsn(), 0u);  // staged, not yet durable
  const std::uint64_t fsyncs_before = wal->fsync_count();
  ASSERT_OK(wal->Sync());
  EXPECT_EQ(wal->fsync_count(), fsyncs_before + 1);  // one window, one fsync
  EXPECT_EQ(wal->durable_lsn(), 10u);
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 10u);
}

TEST(WalTest, DurableAppendAdvancesDurableLsn) {
  const std::string path = TempLog("wal_durable_append.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  auto lsn = wal->Append(MakeEdgeEntry(1, 2), /*durable=*/true);
  ASSERT_OK(lsn);
  EXPECT_GE(wal->durable_lsn(), *lsn);
  EXPECT_GE(wal->fsync_count(), 1u);
}

TEST(WalTest, PerAppendFsyncModeSyncsEveryDurableAppend) {
  const std::string path = TempLog("wal_perappend.log");
  WalGroupCommitOptions options;
  options.enabled = false;  // the pre-group-commit baseline
  auto wal = WriteAheadLog::Open(path, 1, options);
  ASSERT_OK(wal);
  for (VertexId i = 0; i < 4; ++i) {
    ASSERT_OK(wal->Append(MakeEdgeEntry(i, i + 1), /*durable=*/true));
  }
  EXPECT_EQ(wal->fsync_count(), 4u);  // one fsync per append, no batching
  EXPECT_EQ(wal->durable_lsn(), 4u);
}

// Regression (pre-fix the first expectation fails): a failed append used
// to advance next_lsn_ anyway, so the LSN sequence had a hole and the
// log kept accepting appends beyond a tail of unknown state.
TEST(WalTest, FailedAppendRollsBackLsnAndPoisonsTheLog) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  const std::string path = TempLog("wal_append_rollback.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2)));
    ASSERT_OK(wal->Sync());
    const std::uint64_t lsn_before = wal->next_lsn();

    FailpointConfig cfg;
    cfg.policy = FailpointConfig::Policy::kNthHit;
    cfg.n = 1;
    FailpointRegistry::Global().Arm("wal.append.short_write", cfg);
    auto torn = wal->Append(MakeEdgeEntry(3, 4));
    ASSERT_FALSE(torn.ok());
    FailpointRegistry::Global().Reset();  // release the crash latch

    // The failed append's LSN must not be consumed...
    EXPECT_EQ(wal->next_lsn(), lsn_before);
    // ...and the log is poisoned until reopen: nothing may land after a
    // tail whose on-disk state is unknown.
    auto after = wal->Append(MakeEdgeEntry(5, 6));
    ASSERT_FALSE(after.ok());
    EXPECT_NE(after.status().message().find("poisoned"), std::string::npos);
    EXPECT_FALSE(wal->Sync().ok());
  }
  FailpointRegistry::Global().Reset();
  // Reopen truncates the torn tail and recovers the synced prefix.
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  EXPECT_EQ(wal->next_lsn(), 2u);
  ASSERT_OK(wal->Append(MakeEdgeEntry(7, 8), /*durable=*/true));
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ(entries->back().a, 7u);
}

// Regression (pre-fix this silently returned OK on the next append): a
// Reset() that failed at the truncate step left the file still holding
// the old records while the in-memory log believed it was empty.
TEST(WalTest, FailedResetPoisonsAndNamesTheReset) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  const std::string path = TempLog("wal_reset_fail.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2), /*durable=*/true));

  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("wal.reset.io_error", cfg);
  const Status reset = wal->Reset();
  FailpointRegistry::Global().Reset();
  ASSERT_FALSE(reset.ok());

  // Sticky: every later operation names the failed Reset instead of
  // pretending the log is usable.
  auto after = wal->Append(MakeEdgeEntry(3, 4));
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.status().message().find("Reset"), std::string::npos);
  EXPECT_FALSE(wal->Sync().ok());
}

// Regression for the durability hole itself: pre-fix Sync() was
// ofstream::flush(), which hands bytes to the OS and survives nothing.
// Modeled here: entries synced before a power loss survive it; entries
// merely appended (sitting in OS buffers) do not.
TEST(WalTest, OsBufferDropLosesExactlyTheUnsyncedSuffix) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  const std::string path = TempLog("wal_os_drop.log");
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_OK(wal);
    ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2)));
    ASSERT_OK(wal->Sync());  // entry 1 reaches the platter
    ASSERT_OK(wal->Append(MakeEdgeEntry(3, 4)));  // entry 2 stays buffered

    FailpointConfig cfg;
    cfg.policy = FailpointConfig::Policy::kNthHit;
    cfg.n = 1;
    FailpointRegistry::Global().Arm("wal.os_buffer.drop", cfg);
    EXPECT_FALSE(wal->Sync().ok());  // power loss during the commit window
  }
  FailpointRegistry::Global().Reset();
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  ASSERT_EQ(entries->size(), 1u);  // exactly the fsynced prefix
  EXPECT_EQ(entries->front().a, 1u);

  // Recovery continues cleanly after the synced prefix.
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  EXPECT_EQ(wal->next_lsn(), 2u);
}

// A transient fsync failure (device hiccup, not a crash) must not poison
// the log: the bytes are in the file, and a later window's fsync covers
// them.
TEST(WalTest, TransientFsyncFailureIsRetryable) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  const std::string path = TempLog("wal_transient.log");
  auto wal = WriteAheadLog::Open(path);
  ASSERT_OK(wal);
  ASSERT_OK(wal->Append(MakeEdgeEntry(1, 2)));

  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("wal.sync.io_error", cfg);
  EXPECT_FALSE(wal->Sync().ok());
  FailpointRegistry::Global().Reset();

  ASSERT_OK(wal->Sync());  // retry succeeds; nothing was lost
  EXPECT_EQ(wal->durable_lsn(), 1u);
  auto entries = WriteAheadLog::ReadAll(path);
  ASSERT_OK(entries);
  EXPECT_EQ(entries->size(), 1u);
}

}  // namespace
}  // namespace hermes
