// Property/fuzz battery for the typed wire protocol (DESIGN.md §12).
//
// For every message type: seeded random payloads must survive
// encode → decode → re-encode byte-identically, and every way of
// damaging a valid frame — truncation at any prefix, any single bit
// flip, a wrong CRC, an oversized frame, a hostile element count —
// must surface as a Status, never a crash or out-of-bounds read
// (the asan-ubsan preset is the teeth behind that claim).

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/message.h"
#include "net/wire.h"

namespace hermes {
namespace {

std::string RandomString(Rng* rng, std::size_t max_len) {
  const std::size_t len = rng->Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(256)));
  }
  return s;
}

Status RandomStatus(Rng* rng) {
  const auto code = static_cast<StatusCode>(
      rng->Uniform(static_cast<std::uint64_t>(StatusCode::kNotImplemented) +
                   1));
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, RandomString(rng, 24));
}

double RandomF64(Rng* rng) {
  // Raw bit patterns cover every value class (denormals, infinities,
  // NaNs); PutF64/ReadF64 must round-trip all of them bit-exactly.
  std::uint64_t bits = rng->Next();
  double v = 0.0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<WireProperty> RandomProperties(Rng* rng) {
  std::vector<WireProperty> props(rng->Uniform(4));
  for (auto& p : props) {
    p.key = static_cast<std::uint32_t>(rng->Next());
    p.value = RandomString(rng, 16);
  }
  return props;
}

MessagePayload RandomPayload(MsgType type, Rng* rng) {
  switch (type) {
    case MsgType::kNeighborsRequest: {
      NeighborsRequest m;
      m.vertices.resize(rng->Uniform(8));
      for (auto& v : m.vertices) v = rng->Next();
      m.has_type = rng->Uniform(2) == 1;
      m.type = static_cast<std::uint32_t>(rng->Next());
      return m;
    }
    case MsgType::kNeighborsReply: {
      NeighborsReply m;
      m.status = RandomStatus(rng);
      m.results.resize(rng->Uniform(8));
      for (auto& a : m.results) {
        a.status = RandomStatus(rng);
        a.neighbors.resize(rng->Uniform(8));
        for (auto& n : a.neighbors) n = rng->Next();
      }
      return m;
    }
    case MsgType::kProbeRequest: {
      ProbeRequest m;
      m.mode = static_cast<ProbeRequest::Mode>(rng->Uniform(3));
      m.vertex = rng->Next();
      m.other = rng->Next();
      return m;
    }
    case MsgType::kProbeReply: {
      ProbeReply m;
      m.status = RandomStatus(rng);
      m.truth = rng->Uniform(2) == 1;
      return m;
    }
    case MsgType::kMutateRequest: {
      MutateRequest m;
      m.op = static_cast<MutateRequest::Op>(rng->Uniform(8));
      m.vertex = rng->Next();
      m.other = rng->Next();
      m.type_or_key = static_cast<std::uint32_t>(rng->Next());
      m.node_state = static_cast<WireNodeState>(rng->Uniform(2));
      m.weight = RandomF64(rng);
      m.other_is_local = rng->Uniform(2) == 1;
      m.value = RandomString(rng, 32);
      return m;
    }
    case MsgType::kMutateReply: {
      MutateReply m;
      m.status = RandomStatus(rng);
      m.record_id = rng->Next();
      return m;
    }
    case MsgType::kInstallChunkRequest: {
      InstallChunkRequest m;
      m.nodes.resize(rng->Uniform(4));
      for (auto& n : m.nodes) {
        n.id = rng->Next();
        n.weight = RandomF64(rng);
        n.properties = RandomProperties(rng);
      }
      m.edges.resize(rng->Uniform(4));
      for (auto& e : m.edges) {
        e.v = rng->Next();
        e.other = rng->Next();
        e.type = static_cast<std::uint32_t>(rng->Next());
        e.other_is_local = rng->Uniform(2) == 1;
        e.properties_included = rng->Uniform(2) == 1;
        e.properties = RandomProperties(rng);
      }
      return m;
    }
    case MsgType::kInstallChunkReply: {
      InstallChunkReply m;
      m.status = RandomStatus(rng);
      m.nodes_created = rng->Next();
      m.edges_created = rng->Next();
      return m;
    }
    case MsgType::kExtractRequest: {
      ExtractRequest m;
      m.vertex = rng->Next();
      return m;
    }
    case MsgType::kExtractReply: {
      ExtractReply m;
      m.status = RandomStatus(rng);
      m.id = rng->Next();
      m.weight = RandomF64(rng);
      m.wire_bytes = rng->Next();
      m.properties = RandomProperties(rng);
      m.relationships.resize(rng->Uniform(4));
      for (auto& rel : m.relationships) {
        rel.other = rng->Next();
        rel.type = static_cast<std::uint32_t>(rng->Next());
        rel.properties_included = rng->Uniform(2) == 1;
        rel.properties = RandomProperties(rng);
      }
      return m;
    }
    case MsgType::kAuxExchangeRequest: {
      AuxExchangeRequest m;
      m.entries.resize(rng->Uniform(6));
      for (auto& e : m.entries) {
        e.vertex = rng->Next();
        e.delta = RandomF64(rng);
      }
      return m;
    }
    case MsgType::kAuxExchangeReply: {
      AuxExchangeReply m;
      m.status = RandomStatus(rng);
      m.applied = rng->Next();
      return m;
    }
    case MsgType::kHealthRequest:
      return HealthRequest{};
    case MsgType::kHealthReply: {
      HealthReply m;
      m.status = RandomStatus(rng);
      m.store_bytes = rng->Next();
      m.nodes = rng->Next();
      m.relationships = rng->Next();
      m.ghost_relationships = rng->Next();
      return m;
    }
    case MsgType::kCheckpointRequest:
      return CheckpointRequest{};
    case MsgType::kCheckpointReply: {
      CheckpointReply m;
      m.status = RandomStatus(rng);
      return m;
    }
    case MsgType::kDumpRequest:
      return DumpRequest{};
    case MsgType::kDumpReply: {
      DumpReply m;
      m.status = RandomStatus(rng);
      m.nodes.resize(rng->Uniform(4));
      for (auto& n : m.nodes) {
        n.id = rng->Next();
        n.weight = RandomF64(rng);
      }
      m.rels.resize(rng->Uniform(4));
      for (auto& rel : m.rels) {
        rel.src = rng->Next();
        rel.dst = rng->Next();
        rel.type = static_cast<std::uint32_t>(rng->Next());
        rel.ghost = rng->Uniform(2) == 1;
      }
      return m;
    }
  }
  HERMES_CHECK(false);  // unreachable: every MsgType handled above
  return HealthRequest{};
}

constexpr int kFirstType = 1;
constexpr int kLastType = 18;

Envelope RandomEnvelope(MsgType type, Rng* rng) {
  Envelope env;
  env.request_id = rng->Next();
  env.src = static_cast<EndpointId>(rng->Uniform(64));
  env.dst = static_cast<EndpointId>(rng->Uniform(64));
  env.payload = RandomPayload(type, rng);
  return env;
}

/// Seeds are sharded so ctest runs the fuzz corpus in parallel.
class NetWireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetWireFuzzTest, RoundTripIsByteIdentical) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 64; ++iter) {
    for (int t = kFirstType; t <= kLastType; ++t) {
      const auto type = static_cast<MsgType>(t);
      const Envelope env = RandomEnvelope(type, &rng);
      Result<std::string> frame = EncodeFrame(env);
      ASSERT_OK(frame) << "type " << t;
      Result<Envelope> decoded = DecodeFrame(*frame);
      ASSERT_OK(decoded) << "type " << t;
      EXPECT_EQ(decoded->request_id, env.request_id);
      EXPECT_EQ(decoded->src, env.src);
      EXPECT_EQ(decoded->dst, env.dst);
      ASSERT_EQ(static_cast<int>(decoded->type()), t);
      Result<std::string> again = EncodeFrame(*decoded);
      ASSERT_OK(again);
      EXPECT_EQ(*frame, *again)
          << "re-encode of type " << t << " is not byte-identical";
    }
  }
}

TEST_P(NetWireFuzzTest, TruncationAlwaysReturnsStatus) {
  Rng rng(GetParam() + 1000);
  for (int t = kFirstType; t <= kLastType; ++t) {
    const auto type = static_cast<MsgType>(t);
    Result<std::string> frame = EncodeFrame(RandomEnvelope(type, &rng));
    ASSERT_OK(frame);
    for (std::size_t len = 0; len < frame->size(); ++len) {
      Result<Envelope> decoded =
          DecodeFrame(std::string_view(frame->data(), len));
      EXPECT_FALSE(decoded.ok())
          << "type " << t << " truncated to " << len << " of "
          << frame->size() << " bytes decoded successfully";
    }
  }
}

TEST_P(NetWireFuzzTest, EverySingleBitFlipIsDetected) {
  Rng rng(GetParam() + 2000);
  for (int t = kFirstType; t <= kLastType; ++t) {
    const auto type = static_cast<MsgType>(t);
    Result<std::string> frame = EncodeFrame(RandomEnvelope(type, &rng));
    ASSERT_OK(frame);
    // Length, version, type, and CRC checks together must catch any
    // single-bit corruption anywhere in the frame.
    for (std::size_t byte = 0; byte < frame->size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string damaged = *frame;
        damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
        Result<Envelope> decoded = DecodeFrame(damaged);
        EXPECT_FALSE(decoded.ok())
            << "type " << t << ": flipping bit " << bit << " of byte "
            << byte << " went undetected";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetWireFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(NetWireTest, OversizedEncodeRejected) {
  Envelope env;
  MutateRequest big;
  big.value.assign(kMaxFrameBytes, 'x');
  env.payload = std::move(big);
  Result<std::string> frame = EncodeFrame(env);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsInvalidArgument()) << frame.status().ToString();
}

TEST(NetWireTest, OversizedDecodeRejected) {
  const std::string frame(kMaxFrameBytes + 1, '\0');
  Result<Envelope> decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

/// Builds a frame by hand — correct length prefix and CRC — so the
/// header checks pass and the damage under test is reached.
std::string CraftFrame(std::uint8_t version, std::uint8_t type,
                       std::uint16_t attempt, std::string_view payload) {
  WireWriter body;
  body.PutU8(version);
  body.PutU8(type);
  body.PutU16(attempt);
  body.PutU64(7);  // request_id
  body.PutU32(1);  // src
  body.PutU32(0);  // dst
  body.PutRaw(payload);
  const std::uint32_t crc = Crc32(body.bytes().data(), body.size());
  WireWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(body.size() + 4));
  frame.PutRaw(body.bytes());
  frame.PutU32(crc);
  return frame.TakeBytes();
}

TEST(NetWireTest, HostileElementCountRejectedWithoutAllocation) {
  // A NeighborsRequest claiming 2^32-1 vertices in a tiny frame: the
  // count validator must reject it against the actual remaining bytes
  // instead of reserving gigabytes.
  WireWriter payload;
  payload.PutU32(0xffffffffu);  // vertex count
  const std::string frame = CraftFrame(
      kWireVersion, static_cast<std::uint8_t>(MsgType::kNeighborsRequest), 0,
      payload.bytes());
  Result<Envelope> decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsOutOfRange()) << decoded.status().ToString();
}

TEST(NetWireTest, UnknownVersionRejected) {
  WireWriter payload;  // HealthRequest: empty payload
  const std::string frame = CraftFrame(
      kWireVersion + 1, static_cast<std::uint8_t>(MsgType::kHealthRequest), 0,
      payload.bytes());
  Result<Envelope> decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(NetWireTest, UnknownTypeRejected) {
  WireWriter payload;
  for (const std::uint8_t bad_type :
       {std::uint8_t{0}, std::uint8_t{19}, std::uint8_t{255}}) {
    const std::string frame =
        CraftFrame(kWireVersion, bad_type, 0, payload.bytes());
    Result<Envelope> decoded = DecodeFrame(frame);
    EXPECT_FALSE(decoded.ok()) << "type " << int{bad_type};
  }
}

TEST(NetWireTest, AttemptCounterRoundTrips) {
  // v2 repurposed the v1 reserved u16 as the retry attempt counter; it
  // must survive an encode/decode round trip so servers can log which
  // resend a duplicate frame came from.
  Envelope env;
  env.request_id = 7;
  env.attempt = 0x0102;
  env.src = 1;
  env.dst = 0;
  env.payload = HealthRequest{};
  Result<std::string> frame = EncodeFrame(env);
  ASSERT_OK(frame);
  Result<Envelope> decoded = DecodeFrame(*frame);
  ASSERT_OK(decoded);
  EXPECT_EQ(decoded->attempt, 0x0102);
  EXPECT_EQ(decoded->request_id, 7u);
}

TEST(NetWireTest, PriorVersionFrameRejected) {
  // v1 frames (reserved u16 still zero) must not decode: the attempt
  // field changed the header's meaning, so version 1 is a hard error
  // rather than a silent misread.
  WireWriter payload;
  const std::string frame = CraftFrame(
      1, static_cast<std::uint8_t>(MsgType::kHealthRequest), 0,
      payload.bytes());
  Result<Envelope> decoded = DecodeFrame(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(NetWireTest, TrailingGarbageAfterPayloadRejected) {
  // Extra bytes after a complete payload, re-CRC'd into a "valid" frame:
  // the decoder's exact-consumption check must still reject it.
  WireWriter payload;  // HealthRequest consumes zero bytes
  payload.PutU8(0xab);
  const std::string frame = CraftFrame(
      kWireVersion, static_cast<std::uint8_t>(MsgType::kHealthRequest), 0,
      payload.bytes());
  Result<Envelope> decoded = DecodeFrame(frame);
  EXPECT_FALSE(decoded.ok());
}

TEST(NetWireTest, ReaderPrimitivesRejectHostileInput) {
  {
    // Booleans are strictly 0/1 on the wire.
    const char byte = 2;
    WireReader r(std::string_view(&byte, 1));
    bool b = false;
    EXPECT_TRUE(r.ReadBool(&b).IsInvalidArgument());
  }
  {
    // String length exceeding the buffer.
    WireWriter w;
    w.PutU32(1000);
    w.PutRaw("abc");
    WireReader r(w.bytes());
    std::string s;
    EXPECT_TRUE(r.ReadString(&s).IsOutOfRange());
  }
  {
    // Unknown status code.
    WireWriter w;
    w.PutU8(200);
    w.PutString("boom");
    WireReader r(w.bytes());
    Status st = Status::OK();
    EXPECT_TRUE(ReadStatus(&r, &st).IsInvalidArgument());
  }
  {
    // Reading past the end leaves the cursor untouched.
    WireWriter w;
    w.PutU16(0x1234);
    WireReader r(w.bytes());
    std::uint32_t v32 = 0;
    EXPECT_TRUE(r.ReadU32(&v32).IsOutOfRange());
    std::uint16_t v16 = 0;
    ASSERT_OK(r.ReadU16(&v16));
    EXPECT_EQ(v16, 0x1234);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(NetWireTest, StatusRoundTripsThroughWire) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Status original = RandomStatus(&rng);
    WireWriter w;
    PutStatus(original, &w);
    WireReader r(w.bytes());
    Status decoded = Status::OK();
    ASSERT_OK(ReadStatus(&r, &decoded));
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

}  // namespace
}  // namespace hermes
