// Property-based stress test for the GraphStore: a long random sequence
// of node/edge/property operations (including ghost halves and full
// records) is mirrored into a trivially correct reference model; store
// contents and chain invariants must match throughout.

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/rng.h"
#include "graphdb/graph_store.h"

namespace hermes {
namespace {

struct Reference {
  // node id -> weight; adjacency as sorted sets.
  std::map<VertexId, double> nodes;
  std::map<VertexId, std::set<VertexId>> adjacency;
  std::map<std::pair<VertexId, VertexId>, std::string> edge_prop;

  static std::pair<VertexId, VertexId> Key(VertexId a, VertexId b) {
    return {std::min(a, b), std::max(a, b)};
  }
};

class GraphStoreFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphStoreFuzzTest, MatchesReferenceModel) {
  GraphStore store(0);
  Reference ref;
  Rng rng(GetParam());
  constexpr VertexId kLocalSpace = 60;    // ids 0..59 may be local nodes
  constexpr VertexId kRemoteBase = 1000;  // ids >= 1000 are "remote"

  for (int step = 0; step < 3000; ++step) {
    switch (rng.Uniform(7)) {
      case 0: {  // create node
        const VertexId v = rng.Uniform(kLocalSpace);
        const double w = 1.0 + static_cast<double>(rng.Uniform(5));
        const Status st = store.CreateNode(v, w);
        if (ref.nodes.count(v)) {
          ASSERT_TRUE(st.IsAlreadyExists());
        } else {
          ASSERT_OK(st);
          ref.nodes[v] = w;
        }
        break;
      }
      case 1: {  // add local-local edge
        const VertexId a = rng.Uniform(kLocalSpace);
        const VertexId b = rng.Uniform(kLocalSpace);
        auto st = store.AddEdge(a, b, 0, /*other_is_local=*/true);
        const bool can = a != b && ref.nodes.count(a) && ref.nodes.count(b) &&
                         !ref.adjacency[a].count(b);
        if (can) {
          ASSERT_OK(st);
          ref.adjacency[a].insert(b);
          ref.adjacency[b].insert(a);
        } else {
          ASSERT_FALSE(st.ok());
        }
        break;
      }
      case 2: {  // add half edge to a remote id
        const VertexId a = rng.Uniform(kLocalSpace);
        const VertexId b = kRemoteBase + rng.Uniform(20);
        auto st = store.AddEdge(a, b, 0, /*other_is_local=*/false);
        const bool can = ref.nodes.count(a) && !ref.adjacency[a].count(b);
        if (can) {
          ASSERT_OK(st);
          ref.adjacency[a].insert(b);  // one-sided: b is remote
        } else {
          ASSERT_FALSE(st.ok());
        }
        break;
      }
      case 3: {  // remove edge
        const VertexId a = rng.Uniform(kLocalSpace);
        if (!ref.nodes.count(a) || ref.adjacency[a].empty()) {
          ASSERT_FALSE(store.RemoveEdge(a, 0).ok());
          break;
        }
        auto it = ref.adjacency[a].begin();
        std::advance(it, rng.Uniform(ref.adjacency[a].size()));
        const VertexId b = *it;
        ASSERT_OK(store.RemoveEdge(a, b));
        ref.adjacency[a].erase(b);
        if (b < kRemoteBase) ref.adjacency[b].erase(a);
        ref.edge_prop.erase(Reference::Key(a, b));
        break;
      }
      case 4: {  // remove node
        const VertexId v = rng.Uniform(kLocalSpace);
        const Status st = store.RemoveNode(v);
        if (!ref.nodes.count(v)) {
          ASSERT_TRUE(st.IsNotFound());
          break;
        }
        ASSERT_OK(st);
        // Local neighbors keep a half record toward v (degrade), remote
        // halves disappear. Mirror: v keeps appearing in local neighbors'
        // adjacency (they now see v as remote).
        ref.nodes.erase(v);
        for (VertexId nbr : ref.adjacency[v]) {
          // local neighbor keeps edge; nothing to change in ref.adjacency
          // (nbr's set still holds v). Remote ids have no ref entry.
          (void)nbr;
        }
        ref.adjacency.erase(v);
        break;
      }
      case 5: {  // set edge property on a local-local edge
        const VertexId a = rng.Uniform(kLocalSpace);
        if (!ref.nodes.count(a) || ref.adjacency[a].empty()) break;
        auto it = ref.adjacency[a].begin();
        std::advance(it, rng.Uniform(ref.adjacency[a].size()));
        const VertexId b = *it;
        const std::string value = "v" + std::to_string(step);
        const Status st = store.SetEdgeProperty(a, b, 1, value);
        if (st.ok()) {
          ref.edge_prop[Reference::Key(a, b)] = value;
        } else {
          // Ghost copies refuse properties.
          ASSERT_TRUE(st.IsInvalidArgument()) << st.ToString();
        }
        break;
      }
      case 6: {  // weight bump
        const VertexId v = rng.Uniform(kLocalSpace);
        const Status st = store.AddNodeWeight(v, 1.0);
        if (ref.nodes.count(v)) {
          ASSERT_OK(st);
          ref.nodes[v] += 1.0;
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
        break;
      }
    }

    if (step % 250 == 0) {
      ASSERT_TRUE(store.CheckChains()) << "step " << step;
    }
  }

  // Final full cross-check.
  ASSERT_TRUE(store.CheckChains());
  ASSERT_EQ(store.NumNodes(), ref.nodes.size());
  for (const auto& [v, weight] : ref.nodes) {
    ASSERT_TRUE(store.NodeExists(v));
    EXPECT_DOUBLE_EQ(*store.NodeWeight(v), weight);
    auto neighbors = store.Neighbors(v);
    ASSERT_OK(neighbors);
    std::vector<VertexId> got = *neighbors;
    std::sort(got.begin(), got.end());
    std::vector<VertexId> want(ref.adjacency[v].begin(),
                               ref.adjacency[v].end());
    EXPECT_EQ(got, want) << "vertex " << v;
  }
  for (const auto& [key, value] : ref.edge_prop) {
    const auto [a, b] = key;
    // Property lives on the non-ghost copy; read from the node that still
    // exists locally.
    const VertexId reader = ref.nodes.count(a) ? a : b;
    const VertexId other = reader == a ? b : a;
    if (!ref.nodes.count(reader)) continue;
    auto got = store.GetEdgeProperty(reader, other, 1);
    if (got.ok()) EXPECT_EQ(*got, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphStoreFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

// Focused fuzz over the dynamic property store and id recycling: values
// whose lengths sweep across the 24-byte dynamic-block payload boundary
// (empty, sub-block, exact block, multi-block), overwrites that grow and
// shrink chains, and delete/re-create cycles that recycle node ids — a
// recycled id must never resurrect the previous incarnation's properties.
class PropertyRecycleFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyRecycleFuzzTest, DynamicPropertiesAndIdRecyclingMatchModel) {
  GraphStore store(0);
  Rng rng(GetParam());
  constexpr VertexId kSpace = 24;
  constexpr std::uint32_t kKeys = 4;
  std::map<VertexId, double> weights;
  std::map<VertexId, std::map<std::uint32_t, std::string>> props;

  for (int step = 0; step < 4000; ++step) {
    const VertexId v = rng.Uniform(kSpace);
    switch (rng.Uniform(6)) {
      case 0: {  // create (fresh or recycled id)
        const Status st = store.CreateNode(v, 1.0);
        if (weights.count(v)) {
          ASSERT_TRUE(st.IsAlreadyExists());
        } else {
          ASSERT_OK(st);
          weights[v] = 1.0;
        }
        break;
      }
      case 1: {  // remove: the property chain dies with the node
        const Status st = store.RemoveNode(v);
        if (!weights.count(v)) {
          ASSERT_TRUE(st.IsNotFound());
        } else {
          ASSERT_OK(st);
          weights.erase(v);
          props.erase(v);
        }
        break;
      }
      case 2:
      case 3: {  // set or overwrite a property
        const auto key = static_cast<std::uint32_t>(rng.Uniform(kKeys));
        const std::string value(rng.Uniform(61),
                                static_cast<char>('a' + (step % 26)));
        const Status st = store.SetNodeProperty(v, key, value);
        if (weights.count(v)) {
          ASSERT_OK(st);
          props[v][key] = value;
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
        break;
      }
      case 4: {  // point read
        const auto key = static_cast<std::uint32_t>(rng.Uniform(kKeys));
        auto got = store.GetNodeProperty(v, key);
        const auto it = props.find(v);
        if (it != props.end() && it->second.count(key)) {
          ASSERT_OK(got);
          EXPECT_EQ(*got, it->second.at(key)) << "node " << v;
        } else {
          ASSERT_FALSE(got.ok());
        }
        break;
      }
      case 5: {  // recycle storm: remove + immediate re-create
        if (weights.count(v)) {
          ASSERT_OK(store.RemoveNode(v));
          weights.erase(v);
          props.erase(v);
        }
        ASSERT_OK(store.CreateNode(v, 2.0));
        weights[v] = 2.0;
        for (std::uint32_t key = 0; key < kKeys; ++key) {
          EXPECT_TRUE(store.GetNodeProperty(v, key).status().IsNotFound())
              << "recycled node " << v << " kept property " << key;
        }
        break;
      }
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(store.CheckChains()) << "step " << step;
    }
  }

  // Full cross-check, including the bulk-export path the snapshot writer
  // relies on.
  ASSERT_TRUE(store.CheckChains());
  const auto dump = store.DumpNodes();
  ASSERT_EQ(dump.size(), weights.size());
  for (const auto& nd : dump) {
    ASSERT_TRUE(weights.count(nd.id)) << "node " << nd.id;
    EXPECT_DOUBLE_EQ(nd.weight, weights.at(nd.id));
    std::map<std::uint32_t, std::string> got(nd.properties.begin(),
                                             nd.properties.end());
    const auto it = props.find(nd.id);
    const std::map<std::uint32_t, std::string> want =
        it == props.end() ? std::map<std::uint32_t, std::string>{}
                          : it->second;
    EXPECT_EQ(got, want) << "node " << nd.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyRecycleFuzzTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace hermes
