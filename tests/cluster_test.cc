#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/failpoint.h"
#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"

namespace hermes {
namespace {

Graph TwoCommunities() {
  // Communities {0..4} and {5..9}, near-cliques, one bridge 4-5.
  Graph g(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      EXPECT_OK(g.AddEdge(u, v));
      EXPECT_OK(g.AddEdge(5 + u, 5 + v));
    }
  }
  EXPECT_OK(g.AddEdge(4, 5));
  return g;
}

PartitionAssignment GoodSplit() {
  PartitionAssignment asg(10, 2);
  for (VertexId v = 5; v < 10; ++v) asg.Assign(v, 1);
  return asg;
}

TEST(HermesClusterTest, LoadsStoresConsistently) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  EXPECT_EQ(cluster.num_servers(), 2u);
  EXPECT_EQ(cluster.store(0)->NumNodes(), 5u);
  EXPECT_EQ(cluster.store(1)->NumNodes(), 5u);
  EXPECT_TRUE(cluster.Validate());
  // One cross-partition edge -> one ghost copy somewhere.
  EXPECT_EQ(cluster.store(0)->NumGhostRelationships() +
                cluster.store(1)->NumGhostRelationships(),
            1u);
}

TEST(HermesClusterTest, OneHopTraversalLocalWhenCommunityIntact) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(0, 1);
  ASSERT_OK(run);
  EXPECT_EQ(run->vertices_processed, 5u);  // start + 4 neighbors
  EXPECT_EQ(run->unique_vertices, 5u);
  EXPECT_EQ(run->remote_hops, 0u);
  ASSERT_EQ(run->segments.size(), 1u);
  EXPECT_EQ(run->segments[0].first, 0u);
}

TEST(HermesClusterTest, BorderVertexIncursRemoteHop) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(4, 1);  // neighbor 5 is remote
  ASSERT_OK(run);
  EXPECT_EQ(run->vertices_processed, 6u);
  EXPECT_GE(run->remote_hops, 1u);
}

TEST(HermesClusterTest, TwoHopRevisitsVertices) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(0, 2);
  ASSERT_OK(run);
  // Dense community: 2-hop reprocesses many vertices; response holds each
  // once (Section 5.3.2's response/processed ratio < 1).
  EXPECT_GT(run->vertices_processed, run->unique_vertices);
}

TEST(HermesClusterTest, ReadsBumpStartVertexWeight) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  const double before = cluster.graph().VertexWeight(0);
  ASSERT_OK(cluster.ExecuteRead(0, 1));
  ASSERT_OK(cluster.ExecuteRead(0, 1));
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), before + 2.0);
  EXPECT_DOUBLE_EQ(*cluster.store(0)->NodeWeight(0), before + 2.0);
  EXPECT_DOUBLE_EQ(cluster.aux().PartitionWeight(0), 7.0);
}

TEST(HermesClusterTest, WeightCountingCanBeDisabled) {
  HermesCluster::Options options;
  options.count_reads_in_weights = false;
  HermesCluster cluster(TwoCommunities(), GoodSplit(), options);
  ASSERT_OK(cluster.ExecuteRead(0, 1));
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), 1.0);
}

TEST(HermesClusterTest, InsertVertexPlacesByHash) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto id = cluster.InsertVertex(2.0);
  ASSERT_OK(id);
  EXPECT_EQ(*id, 10u);
  const PartitionId p = cluster.assignment().PartitionOf(*id);
  EXPECT_TRUE(cluster.store(p)->HasNode(*id));
  EXPECT_EQ(cluster.graph().NumVertices(), 11u);
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, InsertEdgeSamePartition) {
  Graph g(4);
  ASSERT_OK(g.AddEdge(0, 1));
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_OK(cluster.InsertEdge(2, 3));
  EXPECT_TRUE(cluster.graph().HasEdge(2, 3));
  EXPECT_FALSE(*cluster.store(1)->EdgeIsGhost(2, 3));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, InsertEdgeAcrossPartitionsCreatesGhost) {
  Graph g(4);
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_OK(cluster.InsertEdge(0, 3));
  EXPECT_TRUE(cluster.graph().HasEdge(0, 3));
  // Real copy follows lower id (0): store 0 real, store 1 ghost.
  EXPECT_FALSE(*cluster.store(0)->EdgeIsGhost(0, 3));
  EXPECT_TRUE(*cluster.store(1)->EdgeIsGhost(3, 0));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, InsertEdgeRollsBackGraphWhenSecondStoreFails) {
  // Regression: a cross-partition InsertEdge used to commit the edge to
  // the in-memory topology before talking to the stores; when the second
  // store's WAL append failed, the graph kept an edge no store hosts and
  // Validate() failed forever. The fix rolls the graph edge back (and
  // removes the first store's half) before surfacing the error.
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "needs HERMES_FAILPOINTS (asan-ubsan / tsan presets)";
  }
  const std::string dir =
      ::testing::TempDir() + "/hermes_insert_rollback";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Graph g(4);
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  HermesCluster::Options opt;
  opt.durability_dir = dir;
  HermesCluster cluster(std::move(g), asg, opt);

  // Cross-partition insert = two WAL appends (one per endpoint store);
  // fail the second one, after the first store already took its half.
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 2;
  FailpointRegistry::Global().Arm("wal.append.io_error", cfg);
  const Status st = cluster.InsertEdge(0, 3);
  FailpointRegistry::Global().Reset();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // Pre-fix: HasEdge was true here and Validate() reported divergence.
  EXPECT_FALSE(cluster.graph().HasEdge(0, 3));
  EXPECT_TRUE(cluster.Validate());

  // The failure was transient; the same insert must succeed afterwards.
  ASSERT_OK(cluster.InsertEdge(0, 3));
  EXPECT_TRUE(cluster.graph().HasEdge(0, 3));
  EXPECT_FALSE(*cluster.store(0)->EdgeIsGhost(0, 3));
  EXPECT_TRUE(*cluster.store(1)->EdgeIsGhost(3, 0));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, DuplicateInsertEdgeFails) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  EXPECT_TRUE(cluster.InsertEdge(0, 1).IsAlreadyExists());
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, RepartitionMovesHotLoadAndKeepsStoresValid) {
  Graph g = TwoCommunities();
  // Hotspot on partition 0.
  for (VertexId v = 0; v < 5; ++v) g.SetVertexWeight(v, 3.0);
  HermesCluster::Options options;
  options.repartitioner.beta = 1.1;
  options.repartitioner.k = 1;
  HermesCluster cluster(std::move(g), GoodSplit(), options);

  auto stats = cluster.RunLightweightRepartition();
  ASSERT_OK(stats);
  EXPECT_TRUE(stats->repartitioner_converged);
  EXPECT_GT(stats->vertices_moved, 0u);
  EXPECT_LT(stats->imbalance_after, stats->imbalance_before);
  EXPECT_TRUE(cluster.Validate());
  EXPECT_TRUE(cluster.store(0)->CheckChains());
  EXPECT_TRUE(cluster.store(1)->CheckChains());
}

TEST(HermesClusterTest, MigrateToAssignmentAppliesOfflinePartitioning) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 500;
  gopt.seed = 3;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = HashPartitioner(1).Partition(g, 4);
  const auto target = MatchLabels(
      initial, MultilevelPartitioner().Partition(g, 4));
  const double target_cut = EdgeCutFraction(g, target);

  HermesCluster cluster(std::move(g), initial);
  auto stats = cluster.MigrateToAssignment(target);
  ASSERT_OK(stats);
  EXPECT_GT(stats->vertices_moved, 0u);
  EXPECT_GT(stats->bytes_copied, 0u);
  EXPECT_GT(stats->total_time_us, stats->copy_time_us);
  EXPECT_NEAR(stats->edge_cut_fraction_after, target_cut, 1e-12);
  EXPECT_TRUE(cluster.assignment() == target);
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, ReadsDuringMigrationSeeConsistentPlacement) {
  // Chunked migration exposes a barrier window between a chunk's copy
  // phase and its commit phase, with no cluster locks held. Inside that
  // window: vertices of the in-flight chunk are Unavailable; every other
  // vertex stays readable; and placement is consistent — a chunk is
  // either entirely pre-move or entirely post-move, never split.
  HermesCluster::Options options;
  options.migration_chunk = 2;
  HermesCluster* live = nullptr;  // set after construction, used in hook

  struct Window {
    std::vector<VertexId> chunk;
    Status chunk_read;         // read starting at a chunk vertex
    Status other_read;         // read starting far from the chunk
    Status chunk_write;        // insert touching a chunk vertex
    Status other_write;        // insert touching no chunk vertex
    PartitionId p1_placement;  // directory placement of vertex 1
  };
  std::vector<Window> windows;
  options.migration_barrier_hook = [&](const std::vector<VertexId>& chunk) {
    Window w;
    w.chunk = chunk;
    const bool first_window = chunk.front() < 5;
    w.chunk_read = live->ExecuteRead(chunk.front(), 1).status();
    w.other_read = live->ExecuteRead(first_window ? 9 : 0, 1).status();
    // Writes observe the same unavailable-record semantics as reads: an
    // edge accepted here would land on the chunk's already-snapshotted
    // source records and be destroyed by the commit step (regression:
    // GraphStore::AddEdge used to admit unavailable endpoints).
    w.chunk_write = live->InsertEdge(first_window ? 1 : 7,  // in chunk
                                     first_window ? 9 : 0);
    w.other_write = first_window ? live->InsertEdge(0, 9)
                                 : live->InsertEdge(3, 9);
    w.p1_placement = live->assignment().PartitionOf(1);
    windows.push_back(std::move(w));
  };

  HermesCluster cluster(TwoCommunities(), GoodSplit(), options);
  live = &cluster;
  // Move 1, 2 to partition 1 and 7 to partition 0: chunk size 2 splits
  // this into chunks {1, 2} and {7}, so the second window observes the
  // first chunk's already-committed placement.
  PartitionAssignment target = GoodSplit();
  target.Assign(1, 1);
  target.Assign(2, 1);
  target.Assign(7, 0);
  auto stats = cluster.MigrateToAssignment(target);
  ASSERT_OK(stats);
  EXPECT_EQ(stats->chunks, 2u);

  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].chunk, (std::vector<VertexId>{1, 2}));
  EXPECT_TRUE(windows[0].chunk_read.IsUnavailable())
      << windows[0].chunk_read.ToString();
  EXPECT_OK(windows[0].other_read)
      << windows[0].other_read.ToString();
  EXPECT_EQ(windows[0].p1_placement, 0u);  // chunk 1 not yet committed

  for (const Window& w : windows) {
    EXPECT_TRUE(w.chunk_write.IsUnavailable()) << w.chunk_write.ToString();
    EXPECT_OK(w.other_write);
  }
  // The rejected writes left no trace; the accepted ones survived the
  // rest of the migration.
  EXPECT_FALSE(cluster.graph().HasEdge(1, 9));
  EXPECT_FALSE(cluster.graph().HasEdge(7, 0));
  EXPECT_TRUE(cluster.graph().HasEdge(0, 9));
  EXPECT_TRUE(cluster.graph().HasEdge(3, 9));
  // Once the chunk commits, the previously rejected edge is accepted.
  EXPECT_OK(cluster.InsertEdge(1, 9));

  EXPECT_EQ(windows[1].chunk, (std::vector<VertexId>{7}));
  EXPECT_TRUE(windows[1].chunk_read.IsUnavailable())
      << windows[1].chunk_read.ToString();
  EXPECT_OK(windows[1].other_read)
      << windows[1].other_read.ToString();
  EXPECT_EQ(windows[1].p1_placement, 1u);  // chunk 1 fully committed

  // After the last chunk commits there is no residual unavailability.
  for (VertexId v : {1u, 2u, 7u}) {
    EXPECT_OK(cluster.ExecuteRead(v, 1)) << "vertex " << v;
  }
  EXPECT_TRUE(cluster.assignment() == target);
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, MigrationPreservesProperties) {
  Graph g(3);
  ASSERT_OK(g.AddEdge(0, 1));
  ASSERT_OK(g.AddEdge(1, 2));
  PartitionAssignment asg(3, 2);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_OK(cluster.store(0)->SetNodeProperty(1, 0, "profile-blob"));

  PartitionAssignment target(3, 2);
  target.Assign(1, 1);
  ASSERT_OK(cluster.MigrateToAssignment(target));
  EXPECT_EQ(*cluster.store(1)->GetNodeProperty(1, 0), "profile-blob");
  EXPECT_FALSE(cluster.store(0)->NodeExists(1));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, MigrationShapeMismatchRejected) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  PartitionAssignment wrong(10, 4);
  EXPECT_TRUE(
      cluster.MigrateToAssignment(wrong).status().IsInvalidArgument());
}

TEST(HermesClusterTest, RepeatedRepartitionIsStable) {
  Graph g = TwoCommunities();
  for (VertexId v = 0; v < 5; ++v) g.SetVertexWeight(v, 3.0);
  HermesCluster::Options options;
  options.repartitioner.k = 1;
  HermesCluster cluster(std::move(g), GoodSplit(), options);
  ASSERT_OK(cluster.RunLightweightRepartition());
  auto second = cluster.RunLightweightRepartition();
  ASSERT_OK(second);
  EXPECT_EQ(second->vertices_moved, 0u);  // already converged
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, ValidateDetectsNothingOnLargerGraph) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 1000;
  gopt.seed = 9;
  Graph g = GenerateSocialGraph(gopt);
  const auto asg = HashPartitioner(3).Partition(g, 8);
  HermesCluster cluster(std::move(g), asg);
  EXPECT_TRUE(cluster.Validate(200));
  EXPECT_GT(cluster.TotalStoreBytes(), 0u);
}

}  // namespace
}  // namespace hermes
