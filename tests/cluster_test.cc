#include <algorithm>

#include <gtest/gtest.h>

#include "cluster/hermes_cluster.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"

namespace hermes {
namespace {

Graph TwoCommunities() {
  // Communities {0..4} and {5..9}, near-cliques, one bridge 4-5.
  Graph g(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      EXPECT_TRUE(g.AddEdge(u, v).ok());
      EXPECT_TRUE(g.AddEdge(5 + u, 5 + v).ok());
    }
  }
  EXPECT_TRUE(g.AddEdge(4, 5).ok());
  return g;
}

PartitionAssignment GoodSplit() {
  PartitionAssignment asg(10, 2);
  for (VertexId v = 5; v < 10; ++v) asg.Assign(v, 1);
  return asg;
}

TEST(HermesClusterTest, LoadsStoresConsistently) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  EXPECT_EQ(cluster.num_servers(), 2u);
  EXPECT_EQ(cluster.store(0)->NumNodes(), 5u);
  EXPECT_EQ(cluster.store(1)->NumNodes(), 5u);
  EXPECT_TRUE(cluster.Validate());
  // One cross-partition edge -> one ghost copy somewhere.
  EXPECT_EQ(cluster.store(0)->NumGhostRelationships() +
                cluster.store(1)->NumGhostRelationships(),
            1u);
}

TEST(HermesClusterTest, OneHopTraversalLocalWhenCommunityIntact) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(0, 1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->vertices_processed, 5u);  // start + 4 neighbors
  EXPECT_EQ(run->unique_vertices, 5u);
  EXPECT_EQ(run->remote_hops, 0u);
  ASSERT_EQ(run->segments.size(), 1u);
  EXPECT_EQ(run->segments[0].first, 0u);
}

TEST(HermesClusterTest, BorderVertexIncursRemoteHop) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(4, 1);  // neighbor 5 is remote
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->vertices_processed, 6u);
  EXPECT_GE(run->remote_hops, 1u);
}

TEST(HermesClusterTest, TwoHopRevisitsVertices) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto run = cluster.ExecuteRead(0, 2);
  ASSERT_TRUE(run.ok());
  // Dense community: 2-hop reprocesses many vertices; response holds each
  // once (Section 5.3.2's response/processed ratio < 1).
  EXPECT_GT(run->vertices_processed, run->unique_vertices);
}

TEST(HermesClusterTest, ReadsBumpStartVertexWeight) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  const double before = cluster.graph().VertexWeight(0);
  ASSERT_TRUE(cluster.ExecuteRead(0, 1).ok());
  ASSERT_TRUE(cluster.ExecuteRead(0, 1).ok());
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), before + 2.0);
  EXPECT_DOUBLE_EQ(*cluster.store(0)->NodeWeight(0), before + 2.0);
  EXPECT_DOUBLE_EQ(cluster.aux().PartitionWeight(0), 7.0);
}

TEST(HermesClusterTest, WeightCountingCanBeDisabled) {
  HermesCluster::Options options;
  options.count_reads_in_weights = false;
  HermesCluster cluster(TwoCommunities(), GoodSplit(), options);
  ASSERT_TRUE(cluster.ExecuteRead(0, 1).ok());
  EXPECT_DOUBLE_EQ(cluster.graph().VertexWeight(0), 1.0);
}

TEST(HermesClusterTest, InsertVertexPlacesByHash) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  auto id = cluster.InsertVertex(2.0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 10u);
  const PartitionId p = cluster.assignment().PartitionOf(*id);
  EXPECT_TRUE(cluster.store(p)->HasNode(*id));
  EXPECT_EQ(cluster.graph().NumVertices(), 11u);
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, InsertEdgeSamePartition) {
  Graph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_TRUE(cluster.InsertEdge(2, 3).ok());
  EXPECT_TRUE(cluster.graph().HasEdge(2, 3));
  EXPECT_FALSE(*cluster.store(1)->EdgeIsGhost(2, 3));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, InsertEdgeAcrossPartitionsCreatesGhost) {
  Graph g(4);
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_TRUE(cluster.InsertEdge(0, 3).ok());
  EXPECT_TRUE(cluster.graph().HasEdge(0, 3));
  // Real copy follows lower id (0): store 0 real, store 1 ghost.
  EXPECT_FALSE(*cluster.store(0)->EdgeIsGhost(0, 3));
  EXPECT_TRUE(*cluster.store(1)->EdgeIsGhost(3, 0));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, DuplicateInsertEdgeFails) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  EXPECT_TRUE(cluster.InsertEdge(0, 1).IsAlreadyExists());
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, RepartitionMovesHotLoadAndKeepsStoresValid) {
  Graph g = TwoCommunities();
  // Hotspot on partition 0.
  for (VertexId v = 0; v < 5; ++v) g.SetVertexWeight(v, 3.0);
  HermesCluster::Options options;
  options.repartitioner.beta = 1.1;
  options.repartitioner.k = 1;
  HermesCluster cluster(std::move(g), GoodSplit(), options);

  auto stats = cluster.RunLightweightRepartition();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->repartitioner_converged);
  EXPECT_GT(stats->vertices_moved, 0u);
  EXPECT_LT(stats->imbalance_after, stats->imbalance_before);
  EXPECT_TRUE(cluster.Validate());
  EXPECT_TRUE(cluster.store(0)->CheckChains());
  EXPECT_TRUE(cluster.store(1)->CheckChains());
}

TEST(HermesClusterTest, MigrateToAssignmentAppliesOfflinePartitioning) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 500;
  gopt.seed = 3;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = HashPartitioner(1).Partition(g, 4);
  const auto target = MatchLabels(
      initial, MultilevelPartitioner().Partition(g, 4));
  const double target_cut = EdgeCutFraction(g, target);

  HermesCluster cluster(std::move(g), initial);
  auto stats = cluster.MigrateToAssignment(target);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->vertices_moved, 0u);
  EXPECT_GT(stats->bytes_copied, 0u);
  EXPECT_GT(stats->total_time_us, stats->copy_time_us);
  EXPECT_NEAR(stats->edge_cut_fraction_after, target_cut, 1e-12);
  EXPECT_TRUE(cluster.assignment() == target);
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, MigrationPreservesProperties) {
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  PartitionAssignment asg(3, 2);
  HermesCluster cluster(std::move(g), asg);
  ASSERT_TRUE(cluster.store(0)->SetNodeProperty(1, 0, "profile-blob").ok());

  PartitionAssignment target(3, 2);
  target.Assign(1, 1);
  ASSERT_TRUE(cluster.MigrateToAssignment(target).ok());
  EXPECT_EQ(*cluster.store(1)->GetNodeProperty(1, 0), "profile-blob");
  EXPECT_FALSE(cluster.store(0)->NodeExists(1));
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, MigrationShapeMismatchRejected) {
  HermesCluster cluster(TwoCommunities(), GoodSplit());
  PartitionAssignment wrong(10, 4);
  EXPECT_TRUE(
      cluster.MigrateToAssignment(wrong).status().IsInvalidArgument());
}

TEST(HermesClusterTest, RepeatedRepartitionIsStable) {
  Graph g = TwoCommunities();
  for (VertexId v = 0; v < 5; ++v) g.SetVertexWeight(v, 3.0);
  HermesCluster::Options options;
  options.repartitioner.k = 1;
  HermesCluster cluster(std::move(g), GoodSplit(), options);
  ASSERT_TRUE(cluster.RunLightweightRepartition().ok());
  auto second = cluster.RunLightweightRepartition();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->vertices_moved, 0u);  // already converged
  EXPECT_TRUE(cluster.Validate());
}

TEST(HermesClusterTest, ValidateDetectsNothingOnLargerGraph) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 1000;
  gopt.seed = 9;
  Graph g = GenerateSocialGraph(gopt);
  const auto asg = HashPartitioner(3).Partition(g, 8);
  HermesCluster cluster(std::move(g), asg);
  EXPECT_TRUE(cluster.Validate(200));
  EXPECT_GT(cluster.TotalStoreBytes(), 0u);
}

}  // namespace
}  // namespace hermes
