// Concurrency tests for the sharded HermesCluster locking scheme: real
// reader/writer threads interleaved with live chunked migration. Under
// the old whole-cluster mutex these tests passed trivially (everything
// serialized); the point of running them under the tsan preset — which
// also enables the runtime lock-order validator — is to prove the
// shared-directory + per-partition scheme keeps them passing without
// that serialization.
//
// Determinism note: thread interleavings are inherently nondeterministic,
// so these tests assert invariants (every status is one of the documented
// outcomes, Validate() holds at every quiesce point) rather than exact
// counts.

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"

namespace hermes {
namespace {

Graph MediumSocial(std::uint64_t seed) {
  SocialGraphOptions opt;
  opt.num_vertices = 600;
  opt.seed = seed;
  return GenerateSocialGraph(opt);
}

struct ReadTally {
  std::uint64_t ok = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t other = 0;  // must stay zero
};

// Issues `count` two-hop reads from deterministic pseudo-random starts.
ReadTally ReaderLoop(HermesCluster* cluster, std::uint64_t seed,
                     std::size_t count, VertexId id_space) {
  std::mt19937_64 rng(seed);
  ReadTally tally;
  for (std::size_t i = 0; i < count; ++i) {
    const VertexId start = static_cast<VertexId>(rng() % id_space);
    const Status st = cluster->ExecuteRead(start, 2).status();
    if (st.ok()) {
      ++tally.ok;
    } else if (st.IsUnavailable()) {
      ++tally.unavailable;  // legal mid-migration outcome
    } else {
      ++tally.other;
      ADD_FAILURE() << "unexpected read status: " << st.ToString();
    }
  }
  return tally;
}

TEST(ClusterConcurrencyTest, ReadersWritersAndRepartitionInterleave) {
  HermesCluster::Options options;
  options.migration_chunk = 16;  // many barrier windows per repartition
  HermesCluster cluster(MediumSocial(31),
                        HashPartitioner(1).Partition(MediumSocial(31), 4),
                        options);
  const VertexId id_space = cluster.graph().NumVertices();
  ASSERT_TRUE(cluster.Validate());

  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kReadsPerThread = 250;
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kWritesPerThread = 120;

  std::vector<ReadTally> tallies(kReaders);
  std::atomic<std::uint64_t> writes_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      tallies[r] = ReaderLoop(&cluster, 1000 + r, kReadsPerThread, id_space);
    });
  }
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(2000 + w);
      for (std::size_t i = 0; i < kWritesPerThread; ++i) {
        const VertexId u = static_cast<VertexId>(rng() % id_space);
        const VertexId v = static_cast<VertexId>(rng() % id_space);
        if (u == v) continue;
        const Status st = cluster.InsertEdge(u, v);
        if (st.ok()) {
          writes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Duplicate edges, record-lock timeouts, and endpoints caught
          // mid-migration (unavailable-record semantics apply to writes
          // as well as reads) are expected under contention; anything
          // else is a bug.
          EXPECT_TRUE(st.IsAlreadyExists() || st.IsTimedOut() ||
                      st.IsUnavailable())
              << st.ToString();
        }
      }
    });
  }

  // Live repartitions on the main thread, concurrent with all of the
  // above. Hash partitioning of a community graph leaves plenty of
  // cross-partition edges, so at least the first run migrates vertices
  // while the readers and writers are mid-flight.
  std::size_t migrated = 0;
  for (int round = 0; round < 3; ++round) {
    auto stats = cluster.RunLightweightRepartition();
    ASSERT_OK(stats);
    migrated += stats->vertices_moved;
    // Quiesce point for the directory (not the workload): Validate takes
    // the directory exclusively, so it serializes against every in-flight
    // read/write and must observe a consistent cluster.
    EXPECT_TRUE(cluster.Validate());
  }
  EXPECT_GT(migrated, 0u);

  for (auto& t : threads) t.join();

  std::uint64_t reads_ok = 0;
  for (const ReadTally& t : tallies) {
    reads_ok += t.ok;
    EXPECT_EQ(t.other, 0u);
  }
  EXPECT_GT(reads_ok, 0u);
  EXPECT_GT(writes_ok.load(), 0u);
  // Final quiesce: everything joined, the cluster must be exactly
  // consistent (graph view == union of stores, aux == rebuild).
  EXPECT_TRUE(cluster.Validate());
}

TEST(ClusterConcurrencyTest, ReadersWritersMigrationUnderMessageFaults) {
  // Same interleaving as above, but the in-process transport injects
  // duplicated and reordered frames on a seeded cadence (DESIGN.md §12).
  // Server-side request dedup and request-id reply matching must keep
  // every outcome inside the documented set and the cluster exactly
  // consistent at each quiesce point — a double-applied mutation or a
  // mispaired reply would surface in Validate() or as an `other` status.
  HermesCluster::Options options;
  options.migration_chunk = 16;
  options.transport.duplicate_every_n = 7;
  options.transport.reorder_every_n = 11;
  options.transport.fault_seed = 3;
  HermesCluster cluster(MediumSocial(41),
                        HashPartitioner(1).Partition(MediumSocial(41), 4),
                        options);
  const VertexId id_space = cluster.graph().NumVertices();
  ASSERT_TRUE(cluster.Validate());

  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kReadsPerThread = 150;
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kWritesPerThread = 80;

  std::vector<ReadTally> tallies(kReaders);
  std::atomic<std::uint64_t> writes_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      tallies[r] = ReaderLoop(&cluster, 3000 + r, kReadsPerThread, id_space);
    });
  }
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(4000 + w);
      for (std::size_t i = 0; i < kWritesPerThread; ++i) {
        const VertexId u = static_cast<VertexId>(rng() % id_space);
        const VertexId v = static_cast<VertexId>(rng() % id_space);
        if (u == v) continue;
        const Status st = cluster.InsertEdge(u, v);
        if (st.ok()) {
          writes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_TRUE(st.IsAlreadyExists() || st.IsTimedOut() ||
                      st.IsUnavailable())
              << st.ToString();
        }
      }
    });
  }

  std::size_t migrated = 0;
  for (int round = 0; round < 2; ++round) {
    auto stats = cluster.RunLightweightRepartition();
    ASSERT_OK(stats);
    migrated += stats->vertices_moved;
    EXPECT_TRUE(cluster.Validate());
  }
  EXPECT_GT(migrated, 0u);

  for (auto& t : threads) t.join();

  std::uint64_t reads_ok = 0;
  for (const ReadTally& t : tallies) {
    reads_ok += t.ok;
    EXPECT_EQ(t.other, 0u);
  }
  EXPECT_GT(reads_ok, 0u);
  EXPECT_GT(writes_ok.load(), 0u);
  EXPECT_TRUE(cluster.Validate());
}

TEST(ClusterConcurrencyTest, ReadersWritersMigrationUnderReplyLoss) {
  // The exactly-once contract under concurrency: the transport silently
  // drops a cadence of the frames addressed to the client bus — lost
  // REPLIES, the nastiest fault class, because the server has already
  // applied the mutation when the loss happens. The bus's same-token
  // retries plus server-side reply replay must make every healed write
  // exactly-once, including the InstallChunk/AuxExchange traffic of two
  // live migration rounds: one double-applied chunk or edge half would
  // fail Validate() at the next quiesce point.
  HermesCluster::Options options;
  options.migration_chunk = 16;
  // Every 37th bus-bound frame vanishes. Each loss costs its call one
  // 50ms reply timeout, so the rate is tuned to exercise hundreds of
  // retries across the run without stretching wall time: Validate()
  // alone issues thousands of probes, which is also why the quiesce
  // checks below sample rather than sweep.
  options.transport.drop_every_n = 37;
  options.transport.drop_dst = 4;  // the bus endpoint (4 partitions)
  options.transport.fault_seed = 5;
  options.bus.call_timeout_us = 50'000;  // lost replies heal fast
  options.bus.retry_backoff_us = 500;
  // Six attempts: at a 1/37 drop rate with jittered backoff, the chance
  // of one call losing every reply is vanishing, so the suite stays
  // deterministic-in-practice while every retry path gets traffic.
  options.bus.max_attempts = 6;
  HermesCluster cluster(MediumSocial(43),
                        HashPartitioner(1).Partition(MediumSocial(43), 4),
                        options);
  const VertexId id_space = cluster.graph().NumVertices();
  ASSERT_TRUE(cluster.Validate(64, 1));

  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kReadsPerThread = 120;
  constexpr std::size_t kWriters = 2;
  constexpr std::size_t kWritesPerThread = 60;

  std::vector<ReadTally> tallies(kReaders);
  std::atomic<std::uint64_t> writes_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kWriters);
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      tallies[r] = ReaderLoop(&cluster, 5000 + r, kReadsPerThread, id_space);
    });
  }
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(6000 + w);
      for (std::size_t i = 0; i < kWritesPerThread; ++i) {
        const VertexId u = static_cast<VertexId>(rng() % id_space);
        const VertexId v = static_cast<VertexId>(rng() % id_space);
        if (u == v) continue;
        const Status st = cluster.InsertEdge(u, v);
        if (st.ok()) {
          writes_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          EXPECT_TRUE(st.IsAlreadyExists() || st.IsTimedOut() ||
                      st.IsUnavailable())
              << st.ToString();
        }
      }
    });
  }

  std::size_t migrated = 0;
  for (int round = 0; round < 2; ++round) {
    auto stats = cluster.RunLightweightRepartition();
    ASSERT_OK(stats);
    migrated += stats->vertices_moved;
    EXPECT_TRUE(cluster.Validate(64, static_cast<std::uint64_t>(round) + 2));
  }
  EXPECT_GT(migrated, 0u);

  for (auto& t : threads) t.join();

  std::uint64_t reads_ok = 0;
  for (const ReadTally& t : tallies) {
    reads_ok += t.ok;
    EXPECT_EQ(t.other, 0u);
  }
  EXPECT_GT(reads_ok, 0u);
  // With retries healing the losses, the overwhelming majority of writes
  // must land (a lost reply is no longer a lost write).
  EXPECT_GT(writes_ok.load(), 0u);
  EXPECT_TRUE(cluster.Validate(128, 99));
}

TEST(ClusterConcurrencyTest, ConcurrentInsertVertexKeepsIdSpaceDense) {
  // InsertVertex takes the directory exclusively (it grows every
  // directory-shaped structure); concurrent inserters plus readers
  // exercise the writer-preference path of the shared mutex.
  HermesCluster cluster(MediumSocial(37),
                        HashPartitioner(1).Partition(MediumSocial(37), 4));
  const VertexId base = cluster.graph().NumVertices();

  constexpr std::size_t kInserters = 3;
  constexpr std::size_t kPerThread = 40;
  std::vector<std::vector<VertexId>> ids(kInserters);
  std::vector<std::thread> threads;
  ReadTally reads;
  threads.emplace_back(
      [&] { reads = ReaderLoop(&cluster, 77, 200, base); });
  for (std::size_t t = 0; t < kInserters; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        auto id = cluster.InsertVertex(1.0);
        ASSERT_OK(id);
        ids[t].push_back(*id);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every id unique, the id space dense: exactly base..base+N-1 handed out.
  std::vector<char> seen(kInserters * kPerThread, 0);
  for (const auto& per_thread : ids) {
    for (VertexId id : per_thread) {
      ASSERT_GE(id, base);
      ASSERT_LT(id, base + seen.size());
      EXPECT_EQ(seen[id - base], 0) << "duplicate vertex id " << id;
      seen[id - base] = 1;
    }
  }
  EXPECT_EQ(reads.other, 0u);
  EXPECT_TRUE(cluster.Validate());
}

}  // namespace
}  // namespace hermes
