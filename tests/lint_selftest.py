#!/usr/bin/env python3
"""Self-test for tools/lint.py; runs as the `lint_selftest` ctest.

Builds throwaway fixture repos in a temp directory and asserts that the
lint flags known-bad trees and passes known-good ones. The fixtures pin
the regressions that motivated rule changes:

  * CMake source-listing must match on the **src-relative path** — a
    `.cc` sitting in the wrong directory while a same-named entry exists
    in another module's list used to pass via the bare-name fallback.
  * The determinism rules must fire on every banned construct inside
    src/sim and src/partition (std::random_device, rand(), wall/steady
    clocks, std::unordered_*, pointer-keyed map/set) and stay quiet
    outside those modules and on `lint:allow(determinism)` lines.
  * The failpoint rules must flag HERMES_FAILPOINT* macros outside the
    storage stack, an option(HERMES_FAILPOINTS) that defaults ON, and a
    non-sanitizer preset enabling HERMES_FAILPOINTS — and stay quiet on
    sites inside src/storage//src/graphdb/ and on sanitizer presets.
  * Real sleeps (sleep_for/sleep_until) in src/ must be flagged outside
    the cluster's opt-in hop-latency model (hermes_cluster.cc).
  * Write-path streams in src/storage/ must be flagged
    (std::ofstream/std::fstream can never fsync) while read-only
    std::ifstream and ofstreams outside the storage layer stay quiet.
  * Request-id minting outside src/net/ must be flagged (a retry loop
    with fresh ids defeats the (src, request_id) dedup) while the
    server's reply echo and Options::first_request_id stay quiet.

Usage: tests/lint_selftest.py [repo_root]   (exit 0 = all cases pass)
"""

import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
LINT = REPO_ROOT / "tools" / "lint.py"

FAILURES = []


def run_lint(root):
    proc = subprocess.run([sys.executable, str(LINT), str(root)],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def guard_header(rel_to_src, body=""):
    guard = "HERMES_" + rel_to_src.replace("/", "_").replace(".", "_").upper() + "_"
    return f"#ifndef {guard}\n#define {guard}\n{body}\n#endif  // {guard}\n"


def check(name, condition, detail=""):
    if condition:
        print(f"  ok: {name}")
    else:
        print(f"  FAIL: {name}\n{detail}")
        FAILURES.append(name)


def case_clean_tree_passes():
    print("case: clean tree passes")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt", "add_library(x STATIC common/a.cc)\n")
        write(root, "src/common/a.cc", "int a() { return 1; }\n")
        write(root, "src/common/a.h", guard_header("common/a.h", "int a();"))
        code, out = run_lint(root)
        check("clean tree exits 0", code == 0, out)


def case_wrong_directory_cc_is_flagged():
    """Regression: `cc.name in listed` used to let a file in the wrong
    directory (or covered only by a stale same-named entry) pass."""
    print("case: wrong-directory .cc no longer passes via bare-name match")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        # CMake lists common/a.cc, but the file actually lives in
        # src/storage/. The basename matches; the src-relative path does
        # not — this must be a finding.
        write(root, "src/CMakeLists.txt", "add_library(x STATIC common/a.cc)\n")
        write(root, "src/storage/a.cc", "int a() { return 1; }\n")
        code, out = run_lint(root)
        check("wrong-directory .cc exits 1", code == 1, out)
        check("finding names the unlisted path",
              "src/storage/a.cc: not listed" in out, out)


def case_determinism_rules_fire():
    print("case: determinism rules fire in src/sim and src/partition")
    bad = """
#include <chrono>
#include <random>
#include <unordered_map>
inline unsigned Seed() { return std::random_device{}(); }
inline int Legacy() { return rand(); }
inline long Wall() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
inline std::unordered_map<int, int> table;
inline std::map<int*, int> by_pointer;
"""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt", "\n")
        write(root, "src/sim/bad.h", guard_header("sim/bad.h", bad))
        code, out = run_lint(root)
        check("nondeterministic sim header exits 1", code == 1, out)
        for needle in ("std::random_device", "rand()/srand()",
                       "wall/steady clock", "std::unordered_*",
                       "pointer-keyed map/set"):
            check(f"flags {needle!r}", needle in out, out)


def case_determinism_scope_and_suppression():
    print("case: determinism rules respect module scope and the allow marker")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt", "\n")
        # Same banned tokens, but in src/graphdb — out of scope.
        write(root, "src/graphdb/ok.h", guard_header(
            "graphdb/ok.h",
            "#include <unordered_map>\ninline std::unordered_map<int,int> m;"))
        # In scope, but with an audited suppression on the line.
        write(root, "src/partition/audited.h", guard_header(
            "partition/audited.h",
            "#include <unordered_map>\n"
            "inline std::unordered_map<int, int> members_only;  "
            "// lint:allow(determinism) membership checks only, never iterated"))
        code, out = run_lint(root)
        check("out-of-scope and suppressed uses exit 0", code == 0, out)


def case_failpoint_containment():
    print("case: HERMES_FAILPOINT macros are flagged outside the storage stack")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt",
              "add_library(x STATIC partition/bad.cc storage/ok.cc)\n")
        write(root, "src/partition/bad.cc",
              "int f() {\n  HERMES_FAILPOINT_IOERROR(\"partition.oops\");\n"
              "  return 0;\n}\n")
        write(root, "src/storage/ok.cc",
              "int g() {\n  HERMES_FAILPOINT_IOERROR(\"storage.fine\");\n"
              "  return 0;\n}\n")
        code, out = run_lint(root)
        check("out-of-stack failpoint exits 1", code == 1, out)
        check("finding names the macro and file",
              "src/partition/bad.cc" in out and "HERMES_FAILPOINT" in out, out)
        check("in-stack site is not flagged", "storage/ok.cc" not in out, out)


def case_failpoints_must_stay_out_of_release():
    print("case: HERMES_FAILPOINTS must default OFF and stay out of "
          "non-sanitizer presets")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt", "\n")
        write(root, "CMakeLists.txt",
              'option(HERMES_FAILPOINTS "fault injection" ON)\n')
        write(root, "CMakePresets.json", """\
{
  "version": 3,
  "configurePresets": [
    {"name": "release",
     "cacheVariables": {"HERMES_FAILPOINTS": "ON"}},
    {"name": "asan-ubsan",
     "cacheVariables": {"HERMES_FAILPOINTS": "ON"}}
  ]
}
""")
        code, out = run_lint(root)
        check("failpoints-on-by-default exits 1", code == 1, out)
        check("flags the ON option default", "must default" in out, out)
        check("flags the release preset", "'release'" in out, out)
        check("sanitizer preset is not flagged", "'asan-ubsan'" not in out, out)


def case_real_sleeps_are_contained():
    """Sleeps in src/ are banned outside the cluster's opt-in hop-latency
    model (Options::read_hop_latency_us in src/cluster/hermes_cluster.cc)."""
    print("case: real sleeps are flagged outside the cluster latency model")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt",
              "add_library(x STATIC storage/s.cc cluster/hermes_cluster.cc)\n")
        write(root, "src/storage/s.cc",
              "void s() { std::this_thread::sleep_for(d); }\n")
        write(root, "src/cluster/hermes_cluster.cc",
              "void h() { std::this_thread::sleep_until(t); }\n")
        code, out = run_lint(root)
        check("sleep_for outside allowlist is a finding",
              code != 0 and "storage/s.cc" in out and "sleep_for" in out, out)
        check("allowlisted cluster sleep is quiet",
              "hermes_cluster.cc" not in out, out)


def case_storage_write_streams_are_banned():
    """The WAL durability hole shipped because std::ofstream::flush()
    looks like a sync; the rule pins every storage write path to the fd
    appender, whose Sync() is a real fsync."""
    print("case: std::ofstream in src/storage/ is flagged; ifstream and "
          "non-storage ofstreams are not")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt",
              "add_library(x STATIC storage/bad.cc storage/scan.cc "
              "sim/report.cc)\n")
        write(root, "src/storage/bad.cc",
              "#include <fstream>\n"
              "void w() { std::ofstream out(\"wal.log\"); out << 1; }\n")
        write(root, "src/storage/scan.cc",
              "#include <fstream>\n"
              "int r() { std::ifstream in(\"wal.log\"); return in.get(); }\n")
        write(root, "src/sim/report.cc",
              "#include <fstream>\n"
              "void dump() { std::ofstream out(\"report.json\"); }\n")
        code, out = run_lint(root)
        check("storage ofstream exits 1",
              code == 1 and "storage/bad.cc" in out, out)
        check("finding points at the fd appender",
              "fd_appender" in out, out)
        check("read-only ifstream in storage is quiet",
              "storage/scan.cc" not in out, out)
        check("ofstream outside src/storage/ is quiet",
              "sim/report.cc" not in out, out)


def case_request_id_minting_is_banned_outside_net():
    """Exactly-once regression guard: a retry loop that mints a fresh
    request id per attempt defeats the server's (src, request_id) dedup,
    so outside src/net/ the lint bans request-id assignment/increment
    while keeping the two legitimate shapes (echo + first_request_id)."""
    print("case: request-id minting is flagged outside src/net/")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        write(root, "src/CMakeLists.txt",
              "add_library(x STATIC cluster/bad.cc server/echo.cc "
              "net/bus.cc)\n")
        # A caller-side retry loop minting a new token per attempt —
        # exactly the bug class the rule exists for.
        write(root, "src/cluster/bad.cc",
              "void retry() {\n"
              "  for (int a = 0; a < 3; ++a) {\n"
              "    env.request_id = next_id++;\n"
              "    Send(env);\n"
              "  }\n"
              "}\n")
        # Echoing the incoming token into the reply is the server's job
        # and must stay quiet.
        write(root, "src/server/echo.cc",
              "void reply_to(const Envelope* env) {\n"
              "  reply.request_id = env->request_id;\n"
              "  options.bus.first_request_id = 7;\n"
              "}\n")
        # The bus itself owns minting.
        write(root, "src/net/bus.cc",
              "void mint() { request.request_id = next_request_id_++; }\n")
        code, out = run_lint(root)
        check("caller-side mint exits 1",
              code == 1 and "cluster/bad.cc" in out, out)
        check("finding names the idempotency token",
              "idempotency token" in out, out)
        check("server echo + first_request_id stay quiet",
              "server/echo.cc" not in out, out)
        check("the bus itself stays quiet", "net/bus.cc" not in out, out)


def case_repo_itself_is_clean():
    print("case: the repo itself lints clean")
    code, out = run_lint(REPO_ROOT)
    check("repo exits 0", code == 0, out)


def main():
    for case in (case_clean_tree_passes,
                 case_wrong_directory_cc_is_flagged,
                 case_determinism_rules_fire,
                 case_determinism_scope_and_suppression,
                 case_failpoint_containment,
                 case_failpoints_must_stay_out_of_release,
                 case_real_sleeps_are_contained,
                 case_storage_write_streams_are_banned,
                 case_request_id_minting_is_banned_outside_net,
                 case_repo_itself_is_clean):
        case()
    if FAILURES:
        print(f"lint_selftest: {len(FAILURES)} case(s) FAILED: {FAILURES}")
        return 1
    print("lint_selftest: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
