#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"
#include "partition/streaming.h"

namespace hermes {
namespace {

Graph Community(std::uint64_t seed = 1, std::size_t n = 3000) {
  SocialGraphOptions opt;
  opt.num_vertices = n;
  opt.community_mixing = 0.1;
  opt.seed = seed;
  return GenerateSocialGraph(opt);
}

std::vector<std::size_t> Counts(const PartitionAssignment& asg) {
  std::vector<std::size_t> counts(asg.num_partitions(), 0);
  for (VertexId v = 0; v < asg.size(); ++v) ++counts[asg.PartitionOf(v)];
  return counts;
}

TEST(LdgTest, AssignsEverythingWithinCapacity) {
  Graph g = Community();
  LdgOptions opt;
  opt.capacity_slack = 1.05;
  const auto asg = LdgPartitioner(opt).Partition(g, 8);
  ASSERT_EQ(asg.size(), g.NumVertices());
  const auto counts = Counts(asg);
  const double cap = 1.05 * 3000.0 / 8.0;
  for (std::size_t c : counts) {
    EXPECT_LE(static_cast<double>(c), cap + 1.0);
  }
}

TEST(LdgTest, BeatsRandomOnCommunityGraphs) {
  Graph g = Community(2);
  const double ldg_cut = EdgeCutFraction(g, LdgPartitioner().Partition(g, 8));
  const double random_cut =
      EdgeCutFraction(g, HashPartitioner(1).Partition(g, 8));
  EXPECT_LT(ldg_cut, 0.8 * random_cut);
}

TEST(LdgTest, DeterministicBySeed) {
  Graph g = Community(3, 1000);
  const auto a = LdgPartitioner().Partition(g, 4);
  const auto b = LdgPartitioner().Partition(g, 4);
  EXPECT_TRUE(a == b);
}

TEST(LdgTest, TightCapacityStillAssignsAll) {
  Graph g = Community(4, 1000);
  LdgOptions opt;
  opt.capacity_slack = 1.0;  // exact capacity
  const auto asg = LdgPartitioner(opt).Partition(g, 7);  // n % alpha != 0
  const auto counts = Counts(asg);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  EXPECT_EQ(total, g.NumVertices());
}

TEST(FennelTest, RespectsNuSlack) {
  Graph g = Community(5);
  FennelOptions opt;
  opt.nu = 1.1;
  const auto asg = FennelPartitioner(opt).Partition(g, 8);
  const auto counts = Counts(asg);
  const double cap = 1.1 * 3000.0 / 8.0;
  for (std::size_t c : counts) {
    EXPECT_LE(static_cast<double>(c), cap + 1.0);
  }
}

TEST(FennelTest, BeatsLdgOrComparable) {
  // FENNEL's superlinear penalty usually yields cuts at least as good as
  // LDG on community graphs (its claim in [33]); allow a small margin.
  Graph g = Community(6);
  const double fennel_cut =
      EdgeCutFraction(g, FennelPartitioner().Partition(g, 8));
  const double ldg_cut =
      EdgeCutFraction(g, LdgPartitioner().Partition(g, 8));
  EXPECT_LT(fennel_cut, ldg_cut * 1.25);
}

TEST(FennelTest, BeatsRandom) {
  Graph g = Community(7);
  const double fennel_cut =
      EdgeCutFraction(g, FennelPartitioner().Partition(g, 8));
  const double random_cut =
      EdgeCutFraction(g, HashPartitioner(1).Partition(g, 8));
  EXPECT_LT(fennel_cut, 0.8 * random_cut);
}

TEST(FennelTest, DeterministicBySeed) {
  Graph g = Community(8, 1000);
  const auto a = FennelPartitioner().Partition(g, 4);
  const auto b = FennelPartitioner().Partition(g, 4);
  EXPECT_TRUE(a == b);
}

// Sweep: both streaming partitioners stay valid across alpha values.
class StreamingSweep : public ::testing::TestWithParam<PartitionId> {};

TEST_P(StreamingSweep, ValidAssignments) {
  const PartitionId alpha = GetParam();
  Graph g = Community(9, 2000);
  for (const PartitionAssignment& asg :
       {LdgPartitioner().Partition(g, alpha),
        FennelPartitioner().Partition(g, alpha)}) {
    ASSERT_EQ(asg.size(), g.NumVertices());
    for (VertexId v = 0; v < asg.size(); ++v) {
      ASSERT_LT(asg.PartitionOf(v), alpha);
    }
    // Vertex-count balance within the declared slack (plus rounding).
    EXPECT_LT(ImbalanceFactor(g, asg), 1.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, StreamingSweep,
                         ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace hermes
