// Tests for the runtime lock-order validator (src/common/lock_order.*).
//
// The validator is compiled in only under HERMES_DEBUG_LOCK_ORDER (the
// asan-ubsan and tsan presets enable it); in release builds the hooks
// are no-ops and the death tests GTEST_SKIP so the suite stays green in
// every preset. The deliberate-inversion test checks the acceptance
// criterion verbatim: the abort message names both lock stacks — the
// acquiring thread's held stack and the stack recorded when the
// opposite acquisition order was first observed.

#include "common/lock_order.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/status.h"
#include "common/thread_annotations.h"
#include "txn/lock_manager.h"

namespace hermes {
namespace {

using std::chrono::milliseconds;

TEST(LockOrderTest, MutexCarriesNameAndRank) {
  Mutex mu("test.named.mu", lock_order::kRankPagedFile);
  EXPECT_STREQ(mu.name(), "test.named.mu");
  EXPECT_EQ(mu.rank(), lock_order::kRankPagedFile);

  Mutex plain;
  EXPECT_STREQ(plain.name(), "<unranked>");
  EXPECT_EQ(plain.rank(), lock_order::kRankUnranked);
}

TEST(LockOrderTest, RankedAcquisitionInDeclaredOrderSucceeds) {
  lock_order::ResetGraphForTest();
  Mutex outer("test.order.outer", 11);
  Mutex middle("test.order.middle", 21);
  Mutex inner("test.order.inner", 31);

  outer.Lock();
  middle.Lock();
  inner.Lock();
#ifdef HERMES_DEBUG_LOCK_ORDER
  EXPECT_EQ(lock_order::HeldCount(), 3u);
#else
  EXPECT_EQ(lock_order::HeldCount(), 0u);
#endif
  // Out-of-LIFO release order is legal; only acquisition order is ranked.
  middle.Unlock();
  outer.Unlock();
  inner.Unlock();
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

TEST(LockOrderTest, UnrankedMutexIsInvisibleToTheValidator) {
  Mutex plain;
  plain.Lock();
  EXPECT_EQ(lock_order::HeldCount(), 0u);
  plain.Unlock();
}

TEST(LockOrderTest, TryLockTracksOnlySuccessfulAcquisitions) {
  lock_order::ResetGraphForTest();
  Mutex mu("test.trylock.mu", 12);
  mu.Lock();
  std::thread contender([&] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_EQ(lock_order::HeldCount(), 0u);  // failed try must not track
  });
  contender.join();
  mu.Unlock();

  ASSERT_TRUE(mu.TryLock());
#ifdef HERMES_DEBUG_LOCK_ORDER
  EXPECT_EQ(lock_order::HeldCount(), 1u);
#endif
  mu.Unlock();
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

#ifdef HERMES_DEBUG_LOCK_ORDER

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, DeliberateInversionAbortsWithBothStacks) {
  lock_order::ResetGraphForTest();
  Mutex outer("test.death.outer", 13);
  Mutex inner("test.death.inner", 23);

  // Seed the acquired-before graph with the legal order outer -> inner.
  outer.Lock();
  inner.Lock();
  inner.Unlock();
  outer.Unlock();

  // The reverse order must abort, printing the acquiring thread's held
  // stack (inner) and the recorded stack of the first observation
  // (outer). Matched in two death assertions because the message spans
  // lines.
  EXPECT_DEATH(
      {
        inner.Lock();
        outer.Lock();
      },
      "inversion acquiring test\\.death\\.outer");
  EXPECT_DEATH(
      {
        inner.Lock();
        outer.Lock();
      },
      "this thread holds: test\\.death\\.inner\\(rank 23\\)");
  EXPECT_DEATH(
      {
        inner.Lock();
        outer.Lock();
      },
      "opposite order first seen holding: test\\.death\\.outer\\(rank 13\\)");
}

TEST(LockOrderDeathTest, RankOrderViolationAbortsWithHeldStack) {
  lock_order::ResetGraphForTest();
  Mutex low("test.rank.low", 14);
  Mutex high("test.rank.high", 24);
  EXPECT_DEATH(
      {
        high.Lock();
        low.Lock();
      },
      "rank-order violation acquiring test\\.rank\\.low \\(rank 14\\)");
}

TEST(LockOrderDeathTest, EqualRankPairAborts) {
  lock_order::ResetGraphForTest();
  Mutex a("test.equal.a", 16);
  Mutex b("test.equal.b", 16);
  EXPECT_DEATH(
      {
        a.Lock();
        b.Lock();
      },
      "rank-order violation acquiring test\\.equal\\.b");
}

TEST(LockOrderDeathTest, SelfRelockAborts) {
  lock_order::ResetGraphForTest();
  Mutex mu("test.relock.mu", 17);
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();
      },
      "self-relock \\(non-recursive mutex\\) acquiring test\\.relock\\.mu");
}

#else  // !HERMES_DEBUG_LOCK_ORDER

TEST(LockOrderDeathTest, SkippedWithoutValidator) {
  GTEST_SKIP() << "HERMES_DEBUG_LOCK_ORDER is off in this preset; the "
                  "asan-ubsan and tsan presets exercise the death tests";
}

#endif  // HERMES_DEBUG_LOCK_ORDER

// --- LockManager timeout paths under the validator -----------------------
// LockManager::mu_ is ranked (kRankLockManager); its CondVar::WaitUntil
// releases and reacquires the annotated mutex through the instrumented
// lock()/unlock() path, so every timeout and handoff below runs through
// the validator's push/pop. These run in every preset; under the
// sanitizer presets they double as validator soak tests.

TEST(LockOrderLockManagerTest, TimeoutPathBalancesHeldStack) {
  LockManager locks(milliseconds(30));
  ASSERT_OK(locks.AcquireExclusive(1, 0xA));
  Status s;
  std::thread blocked([&] {
    s = locks.AcquireExclusive(2, 0xA);
    EXPECT_EQ(lock_order::HeldCount(), 0u);  // wait churn must balance
  });
  blocked.join();
  EXPECT_TRUE(s.IsTimedOut());
  locks.Release(1, 0xA);
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

TEST(LockOrderLockManagerTest, TimeoutUnderOuterClusterRankLock) {
  // HermesCluster acquires record locks while holding the directory lock
  // (shared); the declared order cluster.dir (kRankCluster) ->
  // lock_manager (kRankLockManager) must hold through both the success
  // and the timeout path.
  lock_order::ResetGraphForTest();
  Mutex outer("test.cluster_like.mu", lock_order::kRankCluster);
  LockManager locks(milliseconds(25));
  ASSERT_OK(locks.AcquireExclusive(7, 42));

  outer.Lock();
  Status s = locks.AcquireExclusive(8, 42);  // waits under outer, times out
  EXPECT_TRUE(s.IsTimedOut());
  EXPECT_OK(locks.AcquireShared(7, 42));  // re-entrant success path
  outer.Unlock();
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

TEST(LockOrderLockManagerTest, HandoffBeforeTimeoutReacquiresCleanly) {
  LockManager locks(milliseconds(500));
  ASSERT_OK(locks.AcquireExclusive(1, 0xF));
  Status s;
  std::thread waiter([&] { s = locks.AcquireExclusive(2, 0xF); });
  std::this_thread::sleep_for(milliseconds(30));
  locks.Release(1, 0xF);
  waiter.join();
  EXPECT_OK(s);
  locks.Release(2, 0xF);
  EXPECT_EQ(locks.NumLockedKeys(), 0u);
  EXPECT_EQ(lock_order::HeldCount(), 0u);
}

}  // namespace
}  // namespace hermes
