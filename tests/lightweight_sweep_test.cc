// Parameterized invariant sweeps for the lightweight repartitioner across
// (alpha, beta, k-fraction): for every configuration the run must
// converge, never worsen the edge-cut, respect the balance constraint
// whenever it is satisfiable, keep auxiliary data consistent, and be
// deterministic.

#include <tuple>

#include <gtest/gtest.h>

#include "gen/social_graph.h"
#include "partition/aux_data.h"
#include "partition/hash_partitioner.h"
#include "partition/lightweight.h"
#include "partition/metrics.h"

namespace hermes {
namespace {

using SweepParam = std::tuple<PartitionId, double, double>;

class LightweightSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  Graph MakeGraph() const {
    SocialGraphOptions opt;
    opt.num_vertices = 2500;
    opt.community_mixing = 0.15;
    opt.seed = 97;
    return GenerateSocialGraph(opt);
  }
};

TEST_P(LightweightSweepTest, ConvergesWithInvariants) {
  const auto [alpha, beta, k_fraction] = GetParam();
  Graph g = MakeGraph();
  PartitionAssignment asg = HashPartitioner(3).Partition(g, alpha);
  AuxiliaryData aux(g, asg);

  RepartitionerOptions opt;
  opt.beta = beta;
  opt.k_fraction = k_fraction;
  const double cut_before = EdgeCutFraction(g, asg);
  const RepartitionResult result =
      LightweightRepartitioner(opt).Run(g, &asg, &aux);

  EXPECT_TRUE(result.converged);
  // Convergence must come from quiescence/zero-move detection, not from
  // slamming into the max_iterations safety bound. The tightest configs
  // (k_fraction 0.002 -> k = 5 on 2500 vertices) legitimately need most
  // of the budget: since candidate truncation became total-ordered
  // (gain desc, vertex id asc) the iteration count is identical across
  // standard libraries, so this bound no longer needs slack for
  // implementation-defined nth_element tie-breaks.
  EXPECT_LT(result.iterations, opt.max_iterations);
  // Edge-cut never ends worse than it started.
  EXPECT_LE(EdgeCutFraction(g, asg), cut_before + 1e-12);
  // Balance: hash starts balanced, so the constraint is satisfiable and
  // the final state must respect it.
  EXPECT_LE(ImbalanceFactor(g, asg), beta + 1e-9);
  // Bookkeeping invariants.
  EXPECT_EQ(result.net_moves.size(),
            VerticesMoved(HashPartitioner(3).Partition(g, alpha), asg));
  EXPECT_GT(result.aux_bytes_exchanged, 0u);
  // Auxiliary data still matches a rebuild.
  const AuxiliaryData rebuilt(g, asg);
  for (PartitionId p = 0; p < alpha; ++p) {
    ASSERT_NEAR(aux.PartitionWeight(p), rebuilt.PartitionWeight(p), 1e-6);
  }
}

TEST_P(LightweightSweepTest, DeterministicAcrossRuns) {
  const auto [alpha, beta, k_fraction] = GetParam();
  auto run_once = [&, alpha = alpha, beta = beta,
                   k_fraction = k_fraction] {
    Graph g = MakeGraph();
    PartitionAssignment asg = HashPartitioner(3).Partition(g, alpha);
    AuxiliaryData aux(g, asg);
    RepartitionerOptions opt;
    opt.beta = beta;
    opt.k_fraction = k_fraction;
    LightweightRepartitioner(opt).Run(g, &asg, &aux);
    return asg;
  };
  EXPECT_TRUE(run_once() == run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LightweightSweepTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u),
                       ::testing::Values(1.05, 1.1, 1.3),
                       ::testing::Values(0.002, 0.01, 0.05)));

class HotspotSweepTest : public ::testing::TestWithParam<PartitionId> {};

TEST_P(HotspotSweepTest, RebalancesWhateverPartitionHeatsUp) {
  const PartitionId hot = GetParam();
  SocialGraphOptions gopt;
  gopt.num_vertices = 2000;
  gopt.seed = 55;
  Graph g = GenerateSocialGraph(gopt);
  PartitionAssignment asg = HashPartitioner(9).Partition(g, 4);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (asg.PartitionOf(v) == hot) g.AddVertexWeight(v, 1.5);
  }
  AuxiliaryData aux(g, asg);
  ASSERT_GT(aux.Imbalance(hot), 1.1);

  RepartitionerOptions opt;
  opt.beta = 1.1;
  opt.k_fraction = 0.02;
  const RepartitionResult result =
      LightweightRepartitioner(opt).Run(g, &asg, &aux);
  EXPECT_TRUE(result.converged) << "hot partition " << hot;
  EXPECT_LE(ImbalanceFactor(g, asg), 1.1 + 1e-9) << "hot partition " << hot;
}

// The direction rules are ID-based; rebalancing must work regardless of
// whether the hot partition has the lowest, middle, or highest ID.
INSTANTIATE_TEST_SUITE_P(HotPartitions, HotspotSweepTest,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(LightweightParallelTest, ParallelScanMatchesSerial) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 4000;
  gopt.seed = 123;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = HashPartitioner(2).Partition(g, 8);

  auto run_with_threads = [&](std::size_t threads) {
    PartitionAssignment asg = initial;
    AuxiliaryData aux(g, asg);
    RepartitionerOptions opt;
    opt.k_fraction = 0.01;
    opt.num_threads = threads;
    LightweightRepartitioner(opt).Run(g, &asg, &aux);
    return asg;
  };

  const auto serial = run_with_threads(0);
  const auto parallel2 = run_with_threads(2);
  const auto parallel4 = run_with_threads(4);
  EXPECT_TRUE(serial == parallel2);
  EXPECT_TRUE(serial == parallel4);
}

}  // namespace
}  // namespace hermes
