#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace hermes {
namespace {

// --- Status -------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_OK(st);
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing record 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing record 42");
  EXPECT_EQ(st.ToString(), "NotFound: missing record 42");
}

TEST(StatusTest, AllFactoryFunctionsSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Aborted("abc");
  Status b = a;  // shared state
  EXPECT_TRUE(b.IsAborted());
  EXPECT_EQ(b.message(), "abc");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    HERMES_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

// --- Result -------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_OK(r);
  EXPECT_EQ(*r, 7);
  EXPECT_OK(r.status());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = []() -> Result<int> { return 5; };
  auto fail = []() -> Result<int> { return Status::Aborted("x"); };
  auto chain = [&](bool ok_path) -> Result<int> {
    HERMES_ASSIGN_OR_RETURN(int v, ok_path ? produce() : fail());
    return v * 2;
  };
  EXPECT_EQ(*chain(true), 10);
  EXPECT_TRUE(chain(false).status().IsAborted());
}

// --- Rng ----------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleIsInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, PowerLawRespectsMinimum) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.PowerLaw(2.5, 3.0), 3.0);
  }
}

TEST(RngTest, PowerLawMeanMatchesTheory) {
  // For exponent a > 2, mean = x_min * (a-1)/(a-2).
  Rng rng(19);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.PowerLaw(3.0, 1.0);
  EXPECT_NEAR(sum / trials, 2.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleFromCumulativeRespectsWeights) {
  Rng rng(29);
  // Weights 1, 3 -> second picked ~75%.
  std::vector<double> cum{1.0, 4.0};
  int second = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (SampleFromCumulative(cum, &rng) == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / trials, 0.75, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, TracksMinMaxMean) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(HistogramTest, QuantileIsMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double val = h.Quantile(q);
    EXPECT_GE(val, prev);
    prev = val;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantileApproximatesMedian) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  const double median = h.Quantile(0.5);
  // Bucketed estimate: allow a factor-2 band.
  EXPECT_GT(median, 2500.0);
  EXPECT_LT(median, 10000.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  b.Add(9.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.Mean(), 5.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace hermes
