#include <gtest/gtest.h>

#include "test_util.h"

#include "common/rng.h"
#include "gen/social_graph.h"
#include "graph/graph.h"
#include "partition/assignment.h"
#include "partition/aux_data.h"
#include "partition/hash_partitioner.h"

namespace hermes {
namespace {

bool AuxMatchesRebuild(const Graph& g, const PartitionAssignment& asg,
                       const AuxiliaryData& aux) {
  const AuxiliaryData fresh(g, asg);
  if (fresh.num_partitions() != aux.num_partitions()) return false;
  if (fresh.num_vertices() != aux.num_vertices()) return false;
  for (PartitionId p = 0; p < aux.num_partitions(); ++p) {
    if (std::abs(fresh.PartitionWeight(p) - aux.PartitionWeight(p)) > 1e-9) {
      return false;
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (PartitionId p = 0; p < aux.num_partitions(); ++p) {
      if (fresh.NeighborCount(v, p) != aux.NeighborCount(v, p)) return false;
    }
  }
  return true;
}

TEST(AuxDataTest, BuildCountsNeighborsPerPartition) {
  Graph g(4);
  ASSERT_OK(g.AddEdge(0, 1));
  ASSERT_OK(g.AddEdge(0, 2));
  ASSERT_OK(g.AddEdge(0, 3));
  PartitionAssignment asg(4, 2);
  asg.Assign(2, 1);
  asg.Assign(3, 1);
  AuxiliaryData aux(g, asg);
  EXPECT_EQ(aux.NeighborCount(0, 0), 1u);  // neighbor 1
  EXPECT_EQ(aux.NeighborCount(0, 1), 2u);  // neighbors 2, 3
  EXPECT_EQ(aux.NeighborCount(1, 0), 1u);
  EXPECT_EQ(aux.NeighborCount(1, 1), 0u);
}

TEST(AuxDataTest, BuildSumsWeights) {
  Graph g(4);
  g.SetVertexWeight(0, 3.0);
  PartitionAssignment asg(4, 2);
  asg.Assign(3, 1);
  AuxiliaryData aux(g, asg);
  EXPECT_DOUBLE_EQ(aux.PartitionWeight(0), 5.0);
  EXPECT_DOUBLE_EQ(aux.PartitionWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(aux.TotalWeight(), 6.0);
  EXPECT_DOUBLE_EQ(aux.AverageWeight(), 3.0);
  EXPECT_DOUBLE_EQ(aux.Imbalance(0), 5.0 / 3.0);
}

TEST(AuxDataTest, OnEdgeAddedUpdatesBothEndpoints) {
  Graph g(3);
  PartitionAssignment asg(3, 2);
  asg.Assign(2, 1);
  AuxiliaryData aux(g, asg);
  ASSERT_OK(g.AddEdge(0, 2));
  aux.OnEdgeAdded(0, 2, asg);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
  EXPECT_EQ(aux.NeighborCount(0, 1), 1u);
  EXPECT_EQ(aux.NeighborCount(2, 0), 1u);
}

TEST(AuxDataTest, OnEdgeRemovedReverses) {
  Graph g(3);
  ASSERT_OK(g.AddEdge(0, 1));
  PartitionAssignment asg(3, 2);
  AuxiliaryData aux(g, asg);
  ASSERT_OK(g.RemoveEdge(0, 1));
  aux.OnEdgeRemoved(0, 1, asg);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
}

TEST(AuxDataTest, SelfLoopCountsOnce) {
  // Regression: OnEdgeAdded(v, v) used to bump the counter for both
  // "endpoints", double-counting the single neighbor-list entry a
  // self-loop would contribute and desyncing aux from a rebuild.
  Graph g(3);
  PartitionAssignment asg(3, 2);
  asg.Assign(2, 1);
  AuxiliaryData aux(g, asg);
  ASSERT_EQ(aux.NeighborCount(2, 1), 0u);

  aux.OnEdgeAdded(2, 2, asg);
  EXPECT_EQ(aux.NeighborCount(2, 1), 1u);  // exactly one, not two
  EXPECT_EQ(aux.NeighborCount(2, 0), 0u);
  EXPECT_EQ(aux.NeighborCount(0, 0), 0u);  // other vertices untouched
}

TEST(AuxDataTest, SelfLoopRemovalRestoresCounts) {
  Graph g(3);
  ASSERT_OK(g.AddEdge(0, 2));
  PartitionAssignment asg(3, 2);
  asg.Assign(2, 1);
  AuxiliaryData aux(g, asg);

  aux.OnEdgeAdded(2, 2, asg);
  aux.OnEdgeRemoved(2, 2, asg);
  // Add/remove of a self-loop must be a no-op; the pre-existing edge's
  // counts survive intact (a rebuild of the loop-free graph agrees).
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
  EXPECT_EQ(aux.NeighborCount(2, 0), 1u);
  EXPECT_EQ(aux.NeighborCount(0, 1), 1u);
}

TEST(AuxDataTest, OnVertexAddedExtends) {
  Graph g(2);
  PartitionAssignment asg(2, 2);
  AuxiliaryData aux(g, asg);
  g.AddVertex(2.0);
  asg.AddVertex(1);
  aux.OnVertexAdded(1, 2.0);
  EXPECT_EQ(aux.num_vertices(), 3u);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
}

TEST(AuxDataTest, OnVertexWeightChanged) {
  Graph g(2);
  PartitionAssignment asg(2, 2);
  asg.Assign(1, 1);
  AuxiliaryData aux(g, asg);
  g.AddVertexWeight(1, 4.0);
  aux.OnVertexWeightChanged(1, 4.0, asg);
  EXPECT_DOUBLE_EQ(aux.PartitionWeight(1), 5.0);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
}

TEST(AuxDataTest, OnVertexMigratedShiftsNeighborCounts) {
  Graph g(3);
  ASSERT_OK(g.AddEdge(0, 1));
  ASSERT_OK(g.AddEdge(1, 2));
  PartitionAssignment asg(3, 2);
  AuxiliaryData aux(g, asg);
  // Move vertex 1 to partition 1.
  aux.OnVertexMigrated(g, 1, 0, 1);
  asg.Assign(1, 1);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
  EXPECT_EQ(aux.NeighborCount(0, 0), 0u);
  EXPECT_EQ(aux.NeighborCount(0, 1), 1u);
}

TEST(AuxDataTest, MigrateToSamePartitionIsNoop) {
  Graph g(2);
  ASSERT_OK(g.AddEdge(0, 1));
  PartitionAssignment asg(2, 2);
  AuxiliaryData aux(g, asg);
  aux.OnVertexMigrated(g, 0, 0, 0);
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
}

TEST(AuxDataTest, MemoryIsLinearInVerticesTimesPartitions) {
  // Theorem 2: aux data is n*alpha neighbor counters plus alpha weights —
  // amortized n + Theta(alpha) integers per partition.
  Graph g(1000);
  PartitionAssignment asg(1000, 16);
  AuxiliaryData aux(g, asg);
  EXPECT_EQ(aux.MemoryBytes(),
            1000u * 16u * sizeof(std::uint32_t) + 16u * sizeof(double));
}

// Property test: a random interleaving of every mutation hook stays
// consistent with a from-scratch rebuild.
class AuxDataFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuxDataFuzzTest, IncrementalMatchesRebuild) {
  SocialGraphOptions opt;
  opt.num_vertices = 300;
  opt.seed = GetParam();
  Graph g = GenerateSocialGraph(opt);
  PartitionAssignment asg = HashPartitioner(GetParam()).Partition(g, 4);
  AuxiliaryData aux(g, asg);
  Rng rng(GetParam() * 31 + 7);

  for (int step = 0; step < 400; ++step) {
    switch (rng.Uniform(5)) {
      case 0: {  // add edge
        const VertexId u = rng.Uniform(g.NumVertices());
        const VertexId v = rng.Uniform(g.NumVertices());
        if (g.AddEdge(u, v).ok()) aux.OnEdgeAdded(u, v, asg);
        break;
      }
      case 1: {  // remove edge
        const VertexId u = rng.Uniform(g.NumVertices());
        const auto neigh = g.Neighbors(u);
        if (!neigh.empty()) {
          const VertexId v = neigh[rng.Uniform(neigh.size())];
          ASSERT_OK(g.RemoveEdge(u, v));
          aux.OnEdgeRemoved(u, v, asg);
        }
        break;
      }
      case 2: {  // weight bump (a read)
        const VertexId v = rng.Uniform(g.NumVertices());
        g.AddVertexWeight(v, 1.0);
        aux.OnVertexWeightChanged(v, 1.0, asg);
        break;
      }
      case 3: {  // new vertex
        const auto p = static_cast<PartitionId>(rng.Uniform(4));
        g.AddVertex();
        asg.AddVertex(p);
        aux.OnVertexAdded(p, 1.0);
        break;
      }
      case 4: {  // migration
        const VertexId v = rng.Uniform(g.NumVertices());
        const auto to = static_cast<PartitionId>(rng.Uniform(4));
        const PartitionId from = asg.PartitionOf(v);
        if (from != to) {
          aux.OnVertexMigrated(g, v, from, to);
          asg.Assign(v, to);
        }
        break;
      }
    }
  }
  EXPECT_TRUE(AuxMatchesRebuild(g, asg, aux));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuxDataFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace hermes
