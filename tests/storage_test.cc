#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "storage/dynamic_store.h"
#include "storage/id_generator.h"
#include "storage/record_store.h"
#include "storage/records.h"

namespace hermes {
namespace {

// --- RecordStore ------------------------------------------------------------

TEST(RecordStoreTest, CreateGetDelete) {
  RecordStore<NodeRecord> store;
  NodeRecord rec;
  rec.in_use = true;
  rec.weight = 3.0;
  ASSERT_OK(store.Create(10, rec));
  EXPECT_TRUE(store.Exists(10));
  auto got = store.Get(10);
  ASSERT_OK(got);
  EXPECT_DOUBLE_EQ(got->weight, 3.0);
  ASSERT_OK(store.Delete(10));
  EXPECT_FALSE(store.Exists(10));
  EXPECT_TRUE(store.Get(10).status().IsNotFound());
}

TEST(RecordStoreTest, DuplicateCreateRejected) {
  RecordStore<NodeRecord> store;
  ASSERT_OK(store.Create(1, NodeRecord{}));
  EXPECT_TRUE(store.Create(1, NodeRecord{}).IsAlreadyExists());
}

TEST(RecordStoreTest, GetMutableUpdatesInPlace) {
  RecordStore<NodeRecord> store;
  ASSERT_OK(store.Create(5, NodeRecord{}));
  store.GetMutable(5)->weight = 42.0;
  EXPECT_DOUBLE_EQ(store.Get(5)->weight, 42.0);
  EXPECT_EQ(store.GetMutable(999), nullptr);
}

TEST(RecordStoreTest, ForEachVisitsInIdOrder) {
  RecordStore<RelationshipRecord> store;
  for (RecordId id : {30, 10, 20}) {
    ASSERT_OK(store.Create(id, RelationshipRecord{}));
  }
  std::vector<RecordId> seen;
  store.ForEach([&seen](RecordId id, const RelationshipRecord&) {
    seen.push_back(id);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<RecordId>{10, 20, 30}));
}

TEST(RecordStoreTest, ForEachEarlyStop) {
  RecordStore<NodeRecord> store;
  for (RecordId id = 0; id < 10; ++id) {
    ASSERT_OK(store.Create(id, NodeRecord{}));
  }
  int visited = 0;
  store.ForEach([&visited](RecordId, const NodeRecord&) {
    return ++visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(RecordStoreTest, MemoryAccountingGrows) {
  RecordStore<NodeRecord> store;
  const std::size_t empty = store.MemoryBytes();
  for (RecordId id = 0; id < 100; ++id) {
    ASSERT_OK(store.Create(id, NodeRecord{}));
  }
  EXPECT_GT(store.MemoryBytes(), empty);
  EXPECT_EQ(store.size(), 100u);
}

// --- DynamicStore ------------------------------------------------------------

TEST(DynamicStoreTest, ShortStringRoundTrip) {
  DynamicStore store;
  const RecordId head = store.Put("hello");
  auto got = store.Get(head);
  ASSERT_OK(got);
  EXPECT_EQ(*got, "hello");
  EXPECT_EQ(store.num_blocks(), 1u);
}

TEST(DynamicStoreTest, EmptyString) {
  DynamicStore store;
  const RecordId head = store.Put("");
  auto got = store.Get(head);
  ASSERT_OK(got);
  EXPECT_EQ(*got, "");
}

TEST(DynamicStoreTest, LongStringSpansBlocks) {
  DynamicStore store;
  const std::string payload(100, 'x');
  const RecordId head = store.Put(payload);
  // ceil(100 / 24) = 5 blocks.
  EXPECT_EQ(store.num_blocks(), 5u);
  EXPECT_EQ(*store.Get(head), payload);
}

TEST(DynamicStoreTest, ExactBlockBoundary) {
  DynamicStore store;
  const std::string payload(DynamicStore::kBlockPayload, 'y');
  const RecordId head = store.Put(payload);
  EXPECT_EQ(store.num_blocks(), 1u);
  EXPECT_EQ(*store.Get(head), payload);
}

TEST(DynamicStoreTest, FreeReleasesChain) {
  DynamicStore store;
  const RecordId a = store.Put(std::string(60, 'a'));
  const RecordId b = store.Put("short");
  ASSERT_OK(store.Free(a));
  EXPECT_EQ(store.num_blocks(), 1u);
  EXPECT_TRUE(store.Get(a).status().IsNotFound());
  EXPECT_EQ(*store.Get(b), "short");
}

TEST(DynamicStoreTest, BinaryPayloadWithNulBytes) {
  DynamicStore store;
  std::string payload = "abc";
  payload.push_back('\0');
  payload += "def";
  const RecordId head = store.Put(payload);
  EXPECT_EQ(*store.Get(head), payload);
}

TEST(DynamicStoreTest, ManyInterleavedChains) {
  DynamicStore store;
  std::vector<std::pair<RecordId, std::string>> entries;
  for (int i = 0; i < 50; ++i) {
    const std::string payload(static_cast<std::size_t>(i * 7 % 90), 'a' + i % 26);
    entries.emplace_back(store.Put(payload), payload);
  }
  for (const auto& [head, payload] : entries) {
    EXPECT_EQ(*store.Get(head), payload);
  }
}

// --- IdGenerator ------------------------------------------------------------

TEST(IdGeneratorTest, MonotonicallyIncreasing) {
  IdGenerator gen(0);
  RecordId prev = gen.Next();
  for (int i = 0; i < 1000; ++i) {
    const RecordId id = gen.Next();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(IdGeneratorTest, OriginEncodedInHighBits) {
  IdGenerator gen(7);
  const RecordId id = gen.Next();
  EXPECT_EQ(IdGenerator::OriginOf(id), 7u);
  EXPECT_EQ(IdGenerator::LocalOf(id), 0u);
  EXPECT_EQ(gen.origin(), 7u);
}

TEST(IdGeneratorTest, DifferentOriginsNeverCollide) {
  IdGenerator a(1);
  IdGenerator b(2);
  std::set<RecordId> ids;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ids.insert(a.Next()).second);
    EXPECT_TRUE(ids.insert(b.Next()).second);
  }
}

TEST(IdGeneratorTest, ObserveExternalAdvancesCounter) {
  IdGenerator gen(3);
  IdGenerator source(3, 100);
  const RecordId foreign = source.Next();  // local counter 100
  gen.ObserveExternal(foreign);
  EXPECT_GT(IdGenerator::LocalOf(gen.Next()), 100u);
}

TEST(IdGeneratorTest, ObserveExternalIgnoresOtherOrigins) {
  IdGenerator gen(3);
  IdGenerator other(9, 5000);
  gen.ObserveExternal(other.Next());
  EXPECT_EQ(IdGenerator::LocalOf(gen.Next()), 0u);
}

}  // namespace
}  // namespace hermes
