// End-to-end scenarios combining generators, initial partitioning, the
// distributed store, the workload driver, and the lightweight
// repartitioner — miniature versions of the paper's Section 5 experiments.

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "gen/profiles.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hermes {
namespace {

TEST(IntegrationTest, SkewedWorkloadTriggersAndBenefitsFromRepartitioning) {
  // Miniature Fig. 9 pipeline: Metis initial placement; skewed trace makes
  // one partition hot; the lightweight repartitioner restores balance and
  // the post-repartition throughput beats the skewed state.
  SocialGraphOptions gopt;
  gopt.num_vertices = 3000;
  gopt.community_mixing = 0.12;
  gopt.seed = 42;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = MultilevelPartitioner().Partition(g, 8);

  HermesCluster::Options copt;
  copt.repartitioner.beta = 1.1;
  copt.repartitioner.k_fraction = 0.01;
  // Paper regime: server CPU (record visits) dominates per-query cost, so
  // a hot server saturates and load balance governs throughput.
  copt.net.local_visit_us = 4.0;
  copt.net.client_request_us = 40.0;
  HermesCluster cluster(std::move(g), initial, copt);

  // Phase 1: skewed reads heat partition 0 (weights accumulate). A strong
  // skew makes the hot server the clear bottleneck.
  TraceOptions skew;
  skew.num_requests = 8000;
  skew.hot_partition = 0;
  skew.skew_factor = 4.0;
  skew.seed = 7;
  const auto trace =
      GenerateTrace(cluster.graph(), cluster.assignment(), skew);
  const ThroughputReport during_skew = RunWorkload(&cluster, trace);
  EXPECT_GT(during_skew.reads_completed, 0u);
  EXPECT_GT(ImbalanceFactor(cluster.graph(), cluster.assignment()), 1.1);

  // Phase 2: repartition.
  auto stats = cluster.RunLightweightRepartition();
  ASSERT_OK(stats);
  EXPECT_TRUE(stats->repartitioner_converged);
  EXPECT_GT(stats->vertices_moved, 0u);
  EXPECT_LE(stats->imbalance_after, 1.1 + 1e-6);
  EXPECT_TRUE(cluster.Validate(400));

  // Phase 3: replay the same skewed trace; throughput improves because the
  // hot partition was rebalanced.
  const ThroughputReport after = RunWorkload(&cluster, trace);
  EXPECT_GT(after.VerticesPerSecond(),
            during_skew.VerticesPerSecond());
}

TEST(IntegrationTest, LightweightMigratesFarLessThanRerunningMetis) {
  // Miniature Fig. 8: after a workload shift, compare migration volume of
  // the lightweight repartitioner vs. applying a fresh Metis run.
  SocialGraphOptions gopt;
  gopt.num_vertices = 3000;
  gopt.community_mixing = 0.12;
  gopt.seed = 43;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = MultilevelPartitioner().Partition(g, 8);

  // Apply the skew directly to the weights.
  Graph skewed = g;
  for (VertexId v = 0; v < skewed.NumVertices(); ++v) {
    if (initial.PartitionOf(v) == 0) skewed.AddVertexWeight(v, 1.0);
  }

  // Lightweight path.
  PartitionAssignment lw_asg = initial;
  AuxiliaryData aux(skewed, lw_asg);
  RepartitionerOptions ropt;
  ropt.k_fraction = 0.01;
  const RepartitionResult lw =
      LightweightRepartitioner(ropt).Run(skewed, &lw_asg, &aux);
  EXPECT_TRUE(lw.converged);

  // Metis-from-scratch path (labels matched to be fair).
  MultilevelOptions mopt;
  mopt.seed = 77;
  const auto metis_new = MatchLabels(
      initial, MultilevelPartitioner(mopt).Partition(skewed, 8));

  const std::size_t lw_moves = VerticesMoved(initial, lw_asg);
  const std::size_t metis_moves = VerticesMoved(initial, metis_new);
  EXPECT_LT(5 * lw_moves, metis_moves);

  const std::size_t lw_rels = RelationshipsTouched(skewed, initial, lw_asg);
  const std::size_t metis_rels =
      RelationshipsTouched(skewed, initial, metis_new);
  EXPECT_LT(lw_rels, metis_rels);
}

TEST(IntegrationTest, WriteHeavyWorkloadKeepsQualityAfterRepartition) {
  // Miniature Fig. 10: insert-heavy traffic, then repartition; partition
  // quality (edge-cut) stays near the offline baseline.
  SocialGraphOptions gopt;
  gopt.num_vertices = 2000;
  gopt.community_mixing = 0.1;
  gopt.seed = 44;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = MultilevelPartitioner().Partition(g, 4);
  HermesCluster::Options copt;
  copt.repartitioner.k_fraction = 0.02;
  HermesCluster cluster(std::move(g), initial, copt);

  TraceOptions writes;
  writes.num_requests = 2000;
  writes.write_fraction = 0.3;
  writes.seed = 9;
  const auto trace =
      GenerateTrace(cluster.graph(), cluster.assignment(), writes);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  EXPECT_GT(report.writes_completed, 0u);
  ASSERT_OK(cluster.RunLightweightRepartition());
  EXPECT_TRUE(cluster.Validate(300));

  const double cut_now =
      EdgeCutFraction(cluster.graph(), cluster.assignment());
  const auto fresh_metis =
      MultilevelPartitioner().Partition(cluster.graph(), 4);
  const double cut_metis = EdgeCutFraction(cluster.graph(), fresh_metis);
  EXPECT_LT(cut_now, cut_metis + 0.15);  // stays in the same quality band
}

TEST(IntegrationTest, DatasetProfilesDriveFullPipeline) {
  for (const DatasetProfile& profile : AllProfiles(0.03)) {
    Graph g = GenerateDataset(profile);
    const auto asg = HashPartitioner(1).Partition(g, 4);
    HermesCluster cluster(std::move(g), asg);
    TraceOptions topt;
    topt.num_requests = 300;
    const auto trace =
        GenerateTrace(cluster.graph(), cluster.assignment(), topt);
    const ThroughputReport report = RunWorkload(&cluster, trace);
    EXPECT_GT(report.vertices_processed, 0u) << profile.name;
    auto stats = cluster.RunLightweightRepartition();
    ASSERT_OK(stats) << profile.name;
    EXPECT_TRUE(cluster.Validate(150)) << profile.name;
  }
}

TEST(IntegrationTest, GhostDisciplineSurvivesManyEpochs) {
  // Stress the migration machinery: alternate skew between partitions and
  // repartition repeatedly; store invariants must hold throughout.
  SocialGraphOptions gopt;
  gopt.num_vertices = 800;
  gopt.seed = 45;
  Graph g = GenerateSocialGraph(gopt);
  const auto initial = HashPartitioner(1).Partition(g, 4);
  HermesCluster::Options copt;
  copt.repartitioner.k_fraction = 0.05;
  HermesCluster cluster(std::move(g), initial, copt);

  for (int epoch = 0; epoch < 4; ++epoch) {
    TraceOptions topt;
    topt.num_requests = 800;
    topt.hot_partition = static_cast<PartitionId>(epoch % 4);
    topt.skew_factor = 3.0;
    topt.seed = 100 + epoch;
    const auto trace =
        GenerateTrace(cluster.graph(), cluster.assignment(), topt);
    RunWorkload(&cluster, trace);
    ASSERT_OK(cluster.RunLightweightRepartition()) << epoch;
    ASSERT_TRUE(cluster.Validate()) << "epoch " << epoch;
    for (PartitionId p = 0; p < 4; ++p) {
      ASSERT_TRUE(cluster.store(p)->CheckChains()) << "epoch " << epoch;
    }
  }
}

}  // namespace
}  // namespace hermes
