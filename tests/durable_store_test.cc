#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

#include "graphdb/durable_store.h"

namespace hermes {
namespace {

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void PopulateSmall(DurableGraphStore* db) {
  ASSERT_OK(db->CreateNode(1, 2.0));
  ASSERT_OK(db->CreateNode(2));
  ASSERT_OK(db->CreateNode(3));
  ASSERT_OK(db->AddEdge(1, 2, 5, true));
  ASSERT_OK(db->AddEdge(2, 99, 0, false));  // ghost-capable half
  ASSERT_OK(db->SetNodeProperty(1, 0, "alice"));
  ASSERT_OK(db->SetEdgeProperty(1, 2, 1, "friends-since-2009"));
  ASSERT_OK(db->Sync());
}

void ExpectSmallContent(const GraphStore& store,
                        double node1_weight = 2.0) {
  EXPECT_TRUE(store.HasNode(1));
  EXPECT_TRUE(store.HasNode(2));
  EXPECT_TRUE(store.HasNode(3));
  EXPECT_DOUBLE_EQ(*store.NodeWeight(1), node1_weight);
  EXPECT_EQ(*store.GetNodeProperty(1, 0), "alice");
  EXPECT_EQ(*store.GetEdgeProperty(2, 1, 1), "friends-since-2009");
  auto neigh = store.Neighbors(2);
  ASSERT_OK(neigh);
  EXPECT_EQ(neigh->size(), 2u);  // node 1 and remote 99
  EXPECT_TRUE(store.CheckChains());
}

TEST(DurableStoreTest, RecoversFromWalOnly) {
  const std::string dir = FreshDir("hermes_wal_only");
  {
    auto db = DurableGraphStore::Open(0, dir);
    ASSERT_OK(db);
    PopulateSmall(db->get());
    // No checkpoint: recovery must come entirely from the log.
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  ExpectSmallContent((*db)->store());
}

TEST(DurableStoreTest, RecoversFromSnapshotAfterCheckpoint) {
  const std::string dir = FreshDir("hermes_snapshot");
  {
    auto db = DurableGraphStore::Open(0, dir);
    ASSERT_OK(db);
    PopulateSmall(db->get());
    ASSERT_OK((*db)->Checkpoint());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  ExpectSmallContent((*db)->store());
  // The log was truncated by the checkpoint.
  auto tail = WriteAheadLog::ReadAll(dir + "/wal.log", true);
  ASSERT_OK(tail);
  EXPECT_TRUE(tail->empty());
}

TEST(DurableStoreTest, SnapshotPlusTailReplay) {
  const std::string dir = FreshDir("hermes_mixed");
  {
    auto db = DurableGraphStore::Open(0, dir);
    ASSERT_OK(db);
    PopulateSmall(db->get());
    ASSERT_OK((*db)->Checkpoint());
    // Post-checkpoint mutations live only in the log.
    ASSERT_OK((*db)->CreateNode(4));
    ASSERT_OK((*db)->AddEdge(3, 4, 0, true));
    ASSERT_OK((*db)->AddNodeWeight(1, 5.0));
    ASSERT_OK((*db)->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  const GraphStore& store = (*db)->store();
  ExpectSmallContent(store, /*node1_weight=*/7.0);
  EXPECT_TRUE(store.HasNode(4));
  auto neigh = store.Neighbors(3);
  ASSERT_OK(neigh);
  EXPECT_EQ(neigh->size(), 1u);
}

TEST(DurableStoreTest, DeletesSurviveRecovery) {
  const std::string dir = FreshDir("hermes_deletes");
  {
    auto db = DurableGraphStore::Open(0, dir);
    ASSERT_OK(db);
    PopulateSmall(db->get());
    ASSERT_OK((*db)->RemoveEdge(1, 2));
    ASSERT_OK((*db)->SetNodeState(3, NodeState::kUnavailable));
    ASSERT_OK((*db)->RemoveNode(3));
    ASSERT_OK((*db)->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  const GraphStore& store = (*db)->store();
  EXPECT_FALSE(store.NodeExists(3));
  EXPECT_TRUE(store.FindEdge(1, 2).status().IsNotFound());
  EXPECT_TRUE(store.CheckChains());
}

TEST(DurableStoreTest, GhostFlagsSurviveSnapshotRoundTrip) {
  GraphStore store(2);
  ASSERT_OK(store.CreateNode(10));
  ASSERT_OK(store.CreateNode(20));
  ASSERT_OK(store.AddEdge(10, 20, 0, true));
  ASSERT_OK(store.AddEdge(10, 500, 0, false));  // real half (10<500)
  ASSERT_OK(store.AddEdge(20, 3, 0, false));    // ghost half (20>3)

  const std::string path = ::testing::TempDir() + "/hermes_ghosts.snap";
  ASSERT_OK(DurableGraphStore::WriteSnapshot(store, path));
  GraphStore restored(2);
  ASSERT_OK(DurableGraphStore::LoadSnapshot(path, &restored));

  EXPECT_FALSE(*restored.EdgeIsGhost(10, 20));
  EXPECT_FALSE(*restored.EdgeIsGhost(10, 500));
  EXPECT_TRUE(*restored.EdgeIsGhost(20, 3));
  EXPECT_EQ(restored.NumRelationships(), store.NumRelationships());
  EXPECT_TRUE(restored.CheckChains());
  std::remove(path.c_str());
}

TEST(DurableStoreTest, UnavailableStateSurvivesSnapshot) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.SetNodeState(1, NodeState::kUnavailable));
  const std::string path = ::testing::TempDir() + "/hermes_state.snap";
  ASSERT_OK(DurableGraphStore::WriteSnapshot(store, path));
  GraphStore restored(0);
  ASSERT_OK(DurableGraphStore::LoadSnapshot(path, &restored));
  EXPECT_TRUE(restored.NodeExists(1));
  EXPECT_FALSE(restored.HasNode(1));
  std::remove(path.c_str());
}

TEST(DurableStoreTest, TornLogTailLosesOnlyUnsyncedSuffix) {
  const std::string dir = FreshDir("hermes_torn");
  {
    auto db = DurableGraphStore::Open(0, dir);
    ASSERT_OK(db);
    ASSERT_OK((*db)->CreateNode(1));
    ASSERT_OK((*db)->CreateNode(2));
    ASSERT_OK((*db)->AddEdge(1, 2, 0, true));
    ASSERT_OK((*db)->Sync());
  }
  // Crash simulation: truncate the final bytes of the log.
  {
    const std::string wal = dir + "/wal.log";
    const auto size = std::filesystem::file_size(wal);
    std::filesystem::resize_file(wal, size - 4);
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  const GraphStore& store = (*db)->store();
  // Nodes (earlier records) recovered; the torn edge append is lost.
  EXPECT_TRUE(store.HasNode(1));
  EXPECT_TRUE(store.HasNode(2));
  EXPECT_TRUE(store.FindEdge(1, 2).status().IsNotFound());
}

// Replay used to tolerate *any* AlreadyExists from the store, which let a
// log that disagrees with the snapshot (a diverged replica, a corrupted
// entry, an LSN-accounting bug) recover silently into the wrong state.
// Now a duplicate create is tolerated only when the entry's payload is
// already reflected verbatim.
TEST(DurableStoreTest, ReplayRejectsDuplicateCreateWithDivergentPayload) {
  const std::string dir = FreshDir("hermes_replay_divergent");
  {
    GraphStore store(0);
    ASSERT_OK(store.CreateNode(1, 1.0));
    ASSERT_TRUE(DurableGraphStore::WriteSnapshot(store, dir + "/snapshot.bin",
                                                 /*covered_lsn=*/0)
                    .ok());
  }
  {
    auto wal = WriteAheadLog::Open(dir + "/wal.log");
    ASSERT_OK(wal);
    WalEntry e;
    e.type = WalOpType::kCreateNode;
    e.a = 1;
    e.weight = 2.0;  // disagrees with the snapshot's weight 1.0
    ASSERT_OK(wal->Append(e));
    ASSERT_OK(wal->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST(DurableStoreTest, ReplayToleratesDuplicateCreateWithMatchingPayload) {
  const std::string dir = FreshDir("hermes_replay_matching");
  {
    GraphStore store(0);
    ASSERT_OK(store.CreateNode(1, 1.0));
    ASSERT_TRUE(DurableGraphStore::WriteSnapshot(store, dir + "/snapshot.bin",
                                                 /*covered_lsn=*/0)
                    .ok());
  }
  {
    auto wal = WriteAheadLog::Open(dir + "/wal.log");
    ASSERT_OK(wal);
    WalEntry e;
    e.type = WalOpType::kCreateNode;
    e.a = 1;
    e.weight = 1.0;  // same create the snapshot already contains
    ASSERT_OK(wal->Append(e));
    ASSERT_OK(wal->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  EXPECT_DOUBLE_EQ(*(*db)->store().NodeWeight(1), 1.0);
}

TEST(DurableStoreTest, ReplayToleratesEdgeAlreadyInSnapshot) {
  const std::string dir = FreshDir("hermes_replay_edge_dup");
  {
    GraphStore store(0);
    ASSERT_OK(store.CreateNode(1));
    ASSERT_OK(store.CreateNode(2));
    ASSERT_OK(store.AddEdge(1, 2, 7, true));
    ASSERT_TRUE(DurableGraphStore::WriteSnapshot(store, dir + "/snapshot.bin",
                                                 /*covered_lsn=*/0)
                    .ok());
  }
  {
    auto wal = WriteAheadLog::Open(dir + "/wal.log");
    ASSERT_OK(wal);
    WalEntry e;
    e.type = WalOpType::kAddEdge;
    e.a = 1;
    e.b = 2;
    e.key = 7;
    e.flag = 1;
    ASSERT_OK(wal->Append(e));
    ASSERT_OK(wal->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  EXPECT_OK((*db)->store().FindEdge(1, 2));
}

TEST(DurableStoreTest, ReplayRejectsEdgeWithMissingEndpoint) {
  const std::string dir = FreshDir("hermes_replay_edge_bad");
  {
    GraphStore store(0);
    ASSERT_OK(store.CreateNode(1));
    ASSERT_TRUE(DurableGraphStore::WriteSnapshot(store, dir + "/snapshot.bin",
                                                 /*covered_lsn=*/0)
                    .ok());
  }
  {
    auto wal = WriteAheadLog::Open(dir + "/wal.log");
    ASSERT_OK(wal);
    WalEntry e;
    e.type = WalOpType::kAddEdge;
    e.a = 1;
    e.b = 3;  // endpoint 3 exists nowhere
    e.flag = 1;
    ASSERT_OK(wal->Append(e));
    ASSERT_OK(wal->Sync());
  }
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST(DurableStoreTest, OpenOnEmptyDirectoryIsFreshStore) {
  const std::string dir = FreshDir("hermes_fresh");
  auto db = DurableGraphStore::Open(3, dir);
  ASSERT_OK(db);
  EXPECT_EQ((*db)->store().NumNodes(), 0u);
  EXPECT_EQ((*db)->store().partition_id(), 3u);
}

TEST(DurableStoreTest, RepeatedCheckpointsStayConsistent) {
  const std::string dir = FreshDir("hermes_repeat");
  auto db = DurableGraphStore::Open(0, dir);
  ASSERT_OK(db);
  for (VertexId v = 0; v < 50; ++v) {
    ASSERT_OK((*db)->CreateNode(v));
    if (v > 0) {
      ASSERT_OK((*db)->AddEdge(v - 1, v, 0, true));
    }
    if (v % 10 == 9) {
      ASSERT_OK((*db)->Checkpoint());
    }
  }
  ASSERT_OK((*db)->Sync());
  db->reset();  // close

  auto reopened = DurableGraphStore::Open(0, dir);
  ASSERT_OK(reopened);
  EXPECT_EQ((*reopened)->store().NumNodes(), 50u);
  EXPECT_EQ((*reopened)->store().NumRelationships(), 49u);
  EXPECT_TRUE((*reopened)->store().CheckChains());
}

}  // namespace
}  // namespace hermes
