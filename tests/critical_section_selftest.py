#!/usr/bin/env python3
"""Self-test for tools/critical_section_audit.py; runs as the
`critical_section_selftest` ctest.

Builds throwaway fixture repos in a temp directory and asserts that both
audit passes flag known-bad trees, stay quiet on known-good ones, and
honor the audit:allow(blocking, ...) suppression contract:

  * Pass A must flag a declared-blocking method call, a raw syscall, and
    a sleep inside a critical section — and accept the same work after an
    early Unlock(), outside any lock scope, or after the RAII guard's
    block closed.
  * REQUIRES(mu_) on a function (declaration or definition) makes the
    whole body a critical section.
  * A condvar wait is legal for the mutex it releases but a
    foreign-condvar finding for every other held lock.
  * A reasoned marker suppresses exactly its finding and is counted in
    the --json summary (including a reason wrapped across `//` lines
    above a wrapped statement); a reason-less marker is itself a finding.
  * Pass B flags a function doing blocking work that the contract file
    does not declare, and a contract entry naming a method that no
    longer exists.

Usage: tests/critical_section_selftest.py [repo_root]  (exit 0 = all pass)
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
AUDIT = REPO_ROOT / "tools" / "critical_section_audit.py"

FAILURES = []


def run_audit(root, json_path=None):
    cmd = [sys.executable, str(AUDIT), str(root)]
    if json_path:
        cmd += ["--json", str(json_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def contract(root, blocking=None, conditional=None, free_functions=None,
             exempt_files=None):
    write(root, "tools/blocking_calls.json", json.dumps({
        "schema": 1,
        "blocking": blocking or {},
        "conditional": conditional or {},
        "free_functions": free_functions or [],
        "exempt_files": exempt_files or [],
    }))


def check(name, condition, detail=""):
    if condition:
        print(f"  ok: {name}")
    else:
        print(f"  FAIL: {name}\n{detail}")
        FAILURES.append(name)


# A log class every fixture reuses: one declared-blocking method
# (Append), one mutex, one condvar.
LOG_CLASS = """\
class Log {
 public:
  [[nodiscard]] Status Stage(int x) EXCLUDES(mu_);
  [[nodiscard]] Status Flush() EXCLUDES(mu_);
 private:
  [[nodiscard]] Status CommitLocked() REQUIRES(mu_);
  mutable Mutex mu_;
  mutable Mutex side_mu_;
  CondVar cv_;
  FdAppender file_;
};
"""

CONTRACT_FD = {"FdAppender": ["Append", "Sync"]}


def case_clean_scope_passes():
    print("case: lock scope with staging only, I/O after release, passes")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["Flush"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Stage(int x) {
  MutexLock lock(&mu_);
  staged_ += x;  // pure memory work under the lock
  return Status::OK();
}
Status Log::Flush() {
  {
    MutexLock lock(&mu_);
    staged_ = 0;
  }
  return file_.Append(nullptr, 0);  // guard's block closed: off-lock
}
""")
        code, out = run_audit(root)
        check("clean scope exits 0", code == 0, out)


def case_blocking_call_under_lock_is_flagged():
    print("case: declared-blocking call under a RAII guard is flagged")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["Flush"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  MutexLock lock(&mu_);
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("blocking-under-lock exits 1", code == 1, out)
        check("finding names the call and the lock",
              "FdAppender::Append" in out and "mu_" in out, out)


def case_primitives_under_lock_are_flagged():
    print("case: raw syscall and sleep under a lock are flagged")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={"Log": ["Flush", "Nap"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  MutexLock lock(&mu_);
  ::fsync(fd_);
  return Status::OK();
}
Status Log::Nap() {
  MutexLock lock(&mu_);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return Status::OK();
}
""")
        code, out = run_audit(root)
        check("primitives exit 1", code == 1, out)
        check("raw syscall flagged", "raw syscall" in out, out)
        check("sleep flagged", "sleep" in out, out)


def case_early_unlock_then_io_passes():
    print("case: explicit Unlock() before the I/O passes")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["Flush"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  mu_.Lock();
  staged_ = 0;
  mu_.Unlock();
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("early unlock exits 0", code == 0, out)


def case_requires_body_is_a_lock_scope():
    print("case: REQUIRES(mu_) on the declaration makes the body a scope")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["CommitLocked"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        # The out-of-line body carries no REQUIRES of its own: the scope
        # must come from the in-class declaration.
        write(root, "src/storage/log.cc", """\
Status Log::CommitLocked() {
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("REQUIRES body exits 1", code == 1, out)
        check("finding shows the REQUIRES hold",
              "[REQUIRES]" in out, out)


def case_condvar_waits():
    print("case: own-condvar wait passes, foreign-condvar wait is flagged")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={"Log": ["Stage", "Flush"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Stage(int x) {
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);  // releases the only held lock: legal
  return Status::OK();
}
Status Log::Flush() {
  MutexLock side(&side_mu_);
  MutexLock lock(&mu_);
  while (busy_) cv_.Wait(&mu_);  // parks while side_mu_ stays held
  return Status::OK();
}
""")
        code, out = run_audit(root)
        check("foreign condvar exits 1", code == 1, out)
        check("only the foreign hold is flagged",
              "side_mu_" in out and out.count("[foreign-condvar]") == 1, out)


def case_markers_suppress_and_are_counted():
    print("case: reasoned markers suppress and are counted in --json")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["Flush", "Stage"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  MutexLock lock(&mu_);
  // audit:allow(blocking, single-line reason: close-time flush)
  return file_.Append(nullptr, 0);
}
Status Log::Stage(int x) {
  MutexLock lock(&mu_);
  // audit:allow(blocking, a reason wrapped across comment lines must
  // still suppress the wrapped statement below)
  HERMES_RETURN_NOT_OK(
      file_.Append(nullptr, 0));
  return Status::OK();
}
""")
        json_path = root / "audit.json"
        code, out = run_audit(root, json_path)
        check("suppressed tree exits 0", code == 0, out)
        summary = json.loads(json_path.read_text())
        check("both markers counted",
              summary["suppressions"]["blocking"] == 2, summary)
        check("both markers applied",
              summary["suppressions"]["applied"] == 2, summary)


def case_reasonless_marker_is_a_finding():
    print("case: a reason-less marker is itself a finding")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking={**CONTRACT_FD, "Log": ["Flush"]})
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  MutexLock lock(&mu_);
  // audit:allow(blocking)
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("reasonless marker exits 1", code == 1, out)
        check("marker finding emitted", "without a reason" in out, out)


def case_contract_drift_is_flagged():
    print("case: undeclared blocking work and stale entries are drift")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        # Trip both directions: Flush() does blocking work but is not
        # declared, and the contract names a method nobody defines.
        contract(root, blocking=CONTRACT_FD)
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("drift exits 1", code == 1, out)
        check("drift names the undeclared function",
              "contract-drift" in out and "Log::Flush" in out, out)


def case_exempt_files_are_skipped():
    print("case: exempt_files are not audited")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        contract(root, blocking=CONTRACT_FD,
                 exempt_files=["src/storage/log.cc"])
        write(root, "src/storage/log.h", LOG_CLASS)
        write(root, "src/storage/log.cc", """\
Status Log::Flush() {
  MutexLock lock(&mu_);
  return file_.Append(nullptr, 0);
}
""")
        code, out = run_audit(root)
        check("exempt file exits 0", code == 0, out)


def case_repo_itself_is_clean():
    print("case: this repository audits clean")
    json_path = Path(tempfile.mkdtemp()) / "audit.json"
    code, out = run_audit(REPO_ROOT, json_path)
    check("repo exits 0", code == 0, out)
    summary = json.loads(json_path.read_text())
    check("repo has zero unsuppressed findings",
          summary["findings_total"] == 0, summary)
    check("every repo suppression is reasoned and applied",
          summary["suppressions"]["applied"]
          == summary["suppressions"]["blocking"] > 0, summary)


def main():
    for case in (case_clean_scope_passes,
                 case_blocking_call_under_lock_is_flagged,
                 case_primitives_under_lock_are_flagged,
                 case_early_unlock_then_io_passes,
                 case_requires_body_is_a_lock_scope,
                 case_condvar_waits,
                 case_markers_suppress_and_are_counted,
                 case_reasonless_marker_is_a_finding,
                 case_contract_drift_is_flagged,
                 case_exempt_files_are_skipped,
                 case_repo_itself_is_clean):
        case()
    if FAILURES:
        print(f"critical_section_selftest: {len(FAILURES)} failure(s): "
              f"{', '.join(FAILURES)}")
        return 1
    print("critical_section_selftest: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
