// Cross-module edge cases and failure-injection scenarios that the
// per-module suites do not cover.

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "graphdb/graph_store.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/lightweight.h"
#include "partition/metrics.h"
#include "partition/multilevel.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hermes {
namespace {

TEST(EdgeCases, ClusterReadOutOfRangeFails) {
  Graph g(4);
  HermesCluster cluster(std::move(g), PartitionAssignment(4, 2));
  EXPECT_TRUE(cluster.ExecuteRead(99, 1).status().IsOutOfRange());
}

TEST(EdgeCases, ClusterReadOfUnavailableVertexFails) {
  Graph g(4);
  ASSERT_OK(g.AddEdge(0, 1));
  HermesCluster cluster(std::move(g), PartitionAssignment(4, 2));
  ASSERT_OK(cluster.store(0)->SetNodeState(1, NodeState::kUnavailable));
  EXPECT_TRUE(cluster.ExecuteRead(1, 1).status().IsUnavailable());
  // Traversals through the unavailable vertex skip it.
  auto run = cluster.ExecuteRead(0, 2);
  ASSERT_OK(run);
  EXPECT_EQ(run->unique_vertices, 2u);  // 0 and the id of 1 (not expanded)
}

TEST(EdgeCases, NeighborProviderOutOfRange) {
  Graph g(2);
  HermesCluster cluster(std::move(g), PartitionAssignment(2, 2));
  const auto provider = cluster.MakeNeighborProvider();
  EXPECT_TRUE(provider(77, std::nullopt).status().IsOutOfRange());
}

TEST(EdgeCases, ZeroHopReadTouchesOnlyTheStart) {
  Graph g(4);
  ASSERT_OK(g.AddEdge(0, 1));
  HermesCluster cluster(std::move(g), PartitionAssignment(4, 2));
  auto run = cluster.ExecuteRead(0, 0);
  ASSERT_OK(run);
  EXPECT_EQ(run->vertices_processed, 1u);
  EXPECT_EQ(run->remote_hops, 0u);
}

TEST(EdgeCases, DriverCountsDuplicateEdgeInsertsAsFailed) {
  Graph g(10);
  for (VertexId v = 0; v + 1 < 10; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  const auto asg = HashPartitioner(1).Partition(g, 2);
  HermesCluster cluster(std::move(g), asg);

  std::vector<Operation> trace;
  Operation dup;
  dup.type = Operation::Type::kInsertEdge;
  dup.start = 0;
  dup.other = 1;  // already present
  trace.push_back(dup);
  trace.push_back(dup);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  EXPECT_EQ(report.failed_ops, 2u);
  EXPECT_EQ(report.writes_completed, 0u);
}

TEST(EdgeCases, EmptyTraceFinishesInstantly) {
  Graph g(4);
  HermesCluster cluster(std::move(g), PartitionAssignment(4, 2));
  const ThroughputReport report = RunWorkload(&cluster, {});
  EXPECT_EQ(report.reads_completed, 0u);
  EXPECT_DOUBLE_EQ(report.duration_us, 0.0);
}

TEST(EdgeCases, TraceVertexInsertShare) {
  Graph g(100);
  const auto asg = HashPartitioner(1).Partition(g, 2);
  TraceOptions topt;
  topt.num_requests = 10000;
  topt.write_fraction = 1.0;
  topt.vertex_insert_share = 0.5;
  const auto trace = GenerateTrace(g, asg, topt);
  std::size_t vertex_inserts = 0;
  for (const Operation& op : trace) {
    EXPECT_NE(static_cast<int>(op.type),
              static_cast<int>(Operation::Type::kRead));
    if (op.type == Operation::Type::kInsertVertex) ++vertex_inserts;
  }
  EXPECT_NEAR(static_cast<double>(vertex_inserts) / trace.size(), 0.5, 0.03);
}

TEST(EdgeCases, MultilevelAlphaLargerThanGraph) {
  Graph g(5);
  for (VertexId v = 0; v + 1 < 5; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  const auto asg = MultilevelPartitioner().Partition(g, 16);
  ASSERT_EQ(asg.size(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_LT(asg.PartitionOf(v), 16u);
}

TEST(EdgeCases, MultilevelOnDisconnectedGraph) {
  // Two components of very different sizes.
  Graph g(60);
  for (VertexId v = 0; v + 1 < 40; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  for (VertexId v = 40; v + 1 < 60; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  const auto asg = MultilevelPartitioner().Partition(g, 4);
  EXPECT_LE(ImbalanceFactor(g, asg), 1.3);
}

TEST(EdgeCases, RepartitionerOnEmptyAndTinyGraphs) {
  Graph empty;
  PartitionAssignment asg0(0, 2);
  AuxiliaryData aux0(empty, asg0);
  const auto r0 = LightweightRepartitioner(RepartitionerOptions{})
                      .Run(empty, &asg0, &aux0);
  EXPECT_TRUE(r0.converged);
  EXPECT_EQ(r0.total_logical_moves, 0u);

  Graph one(1);
  PartitionAssignment asg1(1, 4);
  AuxiliaryData aux1(one, asg1);
  const auto r1 = LightweightRepartitioner(RepartitionerOptions{})
                      .Run(one, &asg1, &aux1);
  EXPECT_TRUE(r1.converged);
  EXPECT_EQ(asg1.PartitionOf(0), 0u);
}

TEST(EdgeCases, RepartitionerSinglePartitionIsNoop) {
  SocialGraphOptions opt;
  opt.num_vertices = 200;
  opt.seed = 1;
  Graph g = GenerateSocialGraph(opt);
  PartitionAssignment asg(g.NumVertices(), 1);
  AuxiliaryData aux(g, asg);
  const auto r =
      LightweightRepartitioner(RepartitionerOptions{}).Run(g, &asg, &aux);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.total_logical_moves, 0u);
}

TEST(EdgeCases, MigrateWholePartitionAway) {
  // Every vertex of partition 0 moves: partition 0's store must end empty
  // and the others consistent.
  Graph g(8);
  for (VertexId v = 0; v + 1 < 8; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  PartitionAssignment initial(8, 2);
  for (VertexId v = 4; v < 8; ++v) initial.Assign(v, 1);
  HermesCluster cluster(std::move(g), initial);

  PartitionAssignment everyone_on_1(8, 2, 1);
  ASSERT_OK(cluster.MigrateToAssignment(everyone_on_1));
  EXPECT_EQ(cluster.store(0)->NumNodes(), 0u);
  EXPECT_EQ(cluster.store(0)->NumRelationships(), 0u);
  EXPECT_EQ(cluster.store(1)->NumNodes(), 8u);
  EXPECT_TRUE(cluster.Validate());
}

TEST(EdgeCases, ChainedMigrationsAcrossThreePartitions) {
  // Move a vertex 0 -> 1 -> 2 across epochs; ghosts must stay coherent.
  Graph g(6);
  ASSERT_OK(g.AddEdge(0, 1));
  ASSERT_OK(g.AddEdge(0, 3));
  ASSERT_OK(g.AddEdge(0, 5));
  PartitionAssignment initial(6, 3);
  for (VertexId v = 2; v < 4; ++v) initial.Assign(v, 1);
  for (VertexId v = 4; v < 6; ++v) initial.Assign(v, 2);
  HermesCluster cluster(std::move(g), initial);

  PartitionAssignment step1 = cluster.assignment();
  step1.Assign(0, 1);
  ASSERT_OK(cluster.MigrateToAssignment(step1));
  ASSERT_TRUE(cluster.Validate());

  PartitionAssignment step2 = cluster.assignment();
  step2.Assign(0, 2);
  ASSERT_OK(cluster.MigrateToAssignment(step2));
  ASSERT_TRUE(cluster.Validate());
  // 0 now co-located with 5: that edge must be a full record.
  EXPECT_FALSE(*cluster.store(2)->EdgeIsGhost(0, 5));
  EXPECT_FALSE(*cluster.store(2)->EdgeIsGhost(5, 0));
}

TEST(EdgeCases, LabelMatchingWithDifferentPartitionCounts) {
  PartitionAssignment before(4, 2);
  PartitionAssignment after(4, 4);
  for (VertexId v = 0; v < 4; ++v) {
    after.Assign(v, static_cast<PartitionId>(v));
  }
  const auto matched = MatchLabels(before, after);
  EXPECT_EQ(matched.size(), 4u);
  EXPECT_EQ(matched.num_partitions(), 4u);
}

TEST(EdgeCases, SelfInsertEdgeRejectedThroughCluster) {
  Graph g(4);
  HermesCluster cluster(std::move(g), PartitionAssignment(4, 2));
  EXPECT_FALSE(cluster.InsertEdge(1, 1).ok());
  EXPECT_TRUE(cluster.InsertEdge(0, 9).IsOutOfRange());
  EXPECT_TRUE(cluster.Validate());
}

}  // namespace
}  // namespace hermes
