#include <cmath>
#include <utility>

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "gen/social_graph.h"
#include "partition/hash_partitioner.h"
#include "partition/multilevel.h"
#include "workload/driver.h"
#include "workload/trace.h"

namespace hermes {
namespace {

Graph SmallSocial(std::uint64_t seed = 1, std::size_t n = 1500) {
  SocialGraphOptions opt;
  opt.num_vertices = n;
  opt.community_mixing = 0.1;
  opt.seed = seed;
  return GenerateSocialGraph(opt);
}

TEST(TraceTest, GeneratesRequestedCount) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  TraceOptions opt;
  opt.num_requests = 500;
  const auto trace = GenerateTrace(g, asg, opt);
  EXPECT_EQ(trace.size(), 500u);
  for (const Operation& op : trace) {
    EXPECT_EQ(op.type, Operation::Type::kRead);
    EXPECT_LT(op.start, g.NumVertices());
    EXPECT_EQ(op.hops, 1);
  }
}

TEST(TraceTest, DeterministicBySeed) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  TraceOptions opt;
  opt.num_requests = 200;
  const auto a = GenerateTrace(g, asg, opt);
  const auto b = GenerateTrace(g, asg, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(static_cast<int>(a[i].type), static_cast<int>(b[i].type));
  }
}

TEST(TraceTest, SkewDoublesHotPartitionSelection) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  TraceOptions opt;
  opt.num_requests = 40000;
  opt.hot_partition = 0;
  opt.skew_factor = 2.0;
  const auto trace = GenerateTrace(g, asg, opt);

  std::size_t hot = 0;
  for (const Operation& op : trace) {
    if (asg.PartitionOf(op.start) == 0) ++hot;
  }
  // Hot partition holds ~1/4 of vertices with double weight: expected
  // share 2/(2+3) = 0.4.
  const double share = static_cast<double>(hot) / trace.size();
  EXPECT_NEAR(share, 0.4, 0.04);
}

TEST(TraceTest, WriteMixProportions) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  TraceOptions opt;
  opt.num_requests = 20000;
  opt.write_fraction = 0.3;
  const auto trace = GenerateTrace(g, asg, opt);
  std::size_t writes = 0;
  for (const Operation& op : trace) {
    if (op.type != Operation::Type::kRead) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / trace.size(), 0.3, 0.02);
}

TEST(DriverTest, CompletesAllReads) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  TraceOptions topt;
  topt.num_requests = 300;
  const auto trace = GenerateTrace(cluster.graph(), cluster.assignment(), topt);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  EXPECT_EQ(report.reads_completed + report.failed_ops, 300u);
  EXPECT_GT(report.vertices_processed, 300u);
  EXPECT_GT(report.duration_us, 0.0);
  EXPECT_GT(report.VerticesPerSecond(), 0.0);
}

TEST(DriverTest, OneHopResponseProcessedRatioIsOne) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  TraceOptions topt;
  topt.num_requests = 200;
  topt.hops = 1;
  const auto trace = GenerateTrace(cluster.graph(), cluster.assignment(), topt);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  // 1-hop: neighbors are distinct, so response == processed
  // (Section 5.3.2 reports ratio 1 for 1-hop).
  EXPECT_DOUBLE_EQ(report.ResponseProcessedRatio(), 1.0);
}

TEST(DriverTest, TwoHopRatioBelowOne) {
  Graph g = SmallSocial();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  TraceOptions topt;
  topt.num_requests = 200;
  topt.hops = 2;
  const auto trace = GenerateTrace(cluster.graph(), cluster.assignment(), topt);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  EXPECT_LT(report.ResponseProcessedRatio(), 0.9);
}

TEST(DriverTest, BetterPartitioningYieldsHigherThroughput) {
  // The paper's central claim at miniature scale: Metis-quality placement
  // beats random hashing on 1-hop traversals.
  Graph g = SmallSocial(7, 2000);
  const auto random_asg = HashPartitioner(1).Partition(g, 8);
  const auto metis_asg = MultilevelPartitioner().Partition(g, 8);

  TraceOptions topt;
  topt.num_requests = 1500;

  Graph g1 = g;
  HermesCluster random_cluster(std::move(g1), random_asg);
  const auto trace1 = GenerateTrace(random_cluster.graph(),
                                    random_cluster.assignment(), topt);
  const ThroughputReport random_report =
      RunWorkload(&random_cluster, trace1);

  HermesCluster metis_cluster(std::move(g), metis_asg);
  const auto trace2 = GenerateTrace(metis_cluster.graph(),
                                    metis_cluster.assignment(), topt);
  const ThroughputReport metis_report = RunWorkload(&metis_cluster, trace2);

  EXPECT_LT(metis_report.remote_hops, random_report.remote_hops / 2);
  EXPECT_GT(metis_report.VerticesPerSecond(),
            1.3 * random_report.VerticesPerSecond());
}

TEST(DriverTest, WritesExecuteAndGrowTheGraph) {
  Graph g = SmallSocial();
  const std::size_t n_before = g.NumVertices();
  const std::size_t m_before = g.NumEdges();
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  TraceOptions topt;
  topt.num_requests = 500;
  topt.write_fraction = 0.5;
  const auto trace = GenerateTrace(cluster.graph(), cluster.assignment(), topt);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  EXPECT_GT(report.writes_completed, 100u);
  EXPECT_GE(cluster.graph().NumVertices(), n_before);
  EXPECT_GT(cluster.graph().NumEdges(), m_before);
  EXPECT_TRUE(cluster.Validate(200));
}

TEST(DriverTest, DeterministicSimulation) {
  auto run_once = [] {
    Graph g = SmallSocial(3, 800);
    const auto asg = HashPartitioner(1).Partition(g, 4);
    HermesCluster cluster(std::move(g), asg);
    TraceOptions topt;
    topt.num_requests = 400;
    topt.write_fraction = 0.2;
    const auto trace =
        GenerateTrace(cluster.graph(), cluster.assignment(), topt);
    return RunWorkload(&cluster, trace);
  };
  const ThroughputReport a = run_once();
  const ThroughputReport b = run_once();
  EXPECT_DOUBLE_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.vertices_processed, b.vertices_processed);
  EXPECT_EQ(a.writes_completed, b.writes_completed);
}

TEST(DriverTest, DeterministicAcrossRepartitionerThreads) {
  // The cluster's repartitioner may shard its gain scan over a thread
  // pool; the simulated workload before and after a repartition must be
  // bit-identical regardless of that thread count.
  auto run_once = [](std::size_t threads) {
    Graph g = SmallSocial(17, 1200);
    const auto asg = HashPartitioner(1).Partition(g, 4);
    HermesCluster::Options copt;
    copt.repartitioner.num_threads = threads;
    HermesCluster cluster(std::move(g), asg, copt);
    TraceOptions topt;
    topt.num_requests = 600;
    topt.hot_partition = 0;
    topt.skew_factor = 2.0;
    const auto trace =
        GenerateTrace(cluster.graph(), cluster.assignment(), topt);
    ThroughputReport before = RunWorkload(&cluster, trace);
    EXPECT_OK(cluster.RunLightweightRepartition());
    ThroughputReport after = RunWorkload(&cluster, trace);
    return std::pair<ThroughputReport, ThroughputReport>(before, after);
  };
  const auto serial = run_once(1);
  const auto threaded = run_once(4);
  for (const auto& [a, b] : {std::pair(serial.first, threaded.first),
                             std::pair(serial.second, threaded.second)}) {
    EXPECT_DOUBLE_EQ(a.duration_us, b.duration_us);
    EXPECT_EQ(a.vertices_processed, b.vertices_processed);
    EXPECT_EQ(a.remote_hops, b.remote_hops);
    EXPECT_DOUBLE_EQ(a.max_queue_delay_us, b.max_queue_delay_us);
    EXPECT_EQ(a.peak_pending_events, b.peak_pending_events);
    ASSERT_EQ(a.server_busy_us.size(), b.server_busy_us.size());
    for (std::size_t p = 0; p < a.server_busy_us.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.server_busy_us[p], b.server_busy_us[p]);
    }
  }
}

TEST(DriverTest, EmptyTraceYieldsFiniteZeroReport) {
  // Edge case: zero requests means duration 0; the derived rates must
  // come out 0, never inf or NaN.
  Graph g = SmallSocial(5, 300);
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  const ThroughputReport report = RunWorkload(&cluster, {});
  EXPECT_DOUBLE_EQ(report.duration_us, 0.0);
  EXPECT_EQ(report.vertices_processed, 0u);
  EXPECT_DOUBLE_EQ(report.VerticesPerSecond(), 0.0);
  EXPECT_DOUBLE_EQ(report.MeanUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(report.ResponseProcessedRatio(), 0.0);
  EXPECT_TRUE(std::isfinite(report.VerticesPerSecond()));
  EXPECT_TRUE(std::isfinite(report.MeanUtilization()));
}

TEST(DriverTest, UtilizationAndQueueStatsPopulated) {
  Graph g = SmallSocial(9, 1000);
  const auto asg = HashPartitioner(1).Partition(g, 4);
  HermesCluster cluster(std::move(g), asg);
  TraceOptions topt;
  topt.num_requests = 800;
  const auto trace = GenerateTrace(cluster.graph(), cluster.assignment(), topt);
  const ThroughputReport report = RunWorkload(&cluster, trace);
  ASSERT_EQ(report.server_busy_us.size(), cluster.num_servers());
  const double util = report.MeanUtilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
  for (SimTime busy : report.server_busy_us) {
    EXPECT_GE(busy, 0.0);
    EXPECT_LE(busy, report.duration_us);
  }
  EXPECT_GE(report.max_queue_delay_us, 0.0);
  EXPECT_GT(report.peak_pending_events, 0u);
}

TEST(DriverTest, MoreClientsFinishSoonerUnderLightLoad) {
  Graph g = SmallSocial(11, 1000);
  const auto asg = HashPartitioner(1).Partition(g, 8);
  TraceOptions topt;
  topt.num_requests = 600;

  Graph g1 = g;
  HermesCluster c1(std::move(g1), asg);
  const auto trace1 = GenerateTrace(c1.graph(), c1.assignment(), topt);
  DriverOptions one_client;
  one_client.num_clients = 1;
  const auto serial = RunWorkload(&c1, trace1, one_client);

  HermesCluster c2(std::move(g), asg);
  const auto trace2 = GenerateTrace(c2.graph(), c2.assignment(), topt);
  DriverOptions many;
  many.num_clients = 32;
  const auto parallel = RunWorkload(&c2, trace2, many);

  EXPECT_LT(parallel.duration_us, serial.duration_us);
}

}  // namespace
}  // namespace hermes
