#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "gen/social_graph.h"
#include "graph/graph.h"
#include "partition/jabeja.h"
#include "partition/metrics.h"

namespace hermes {
namespace {

std::vector<std::size_t> ColorCounts(const PartitionAssignment& asg) {
  std::vector<std::size_t> counts(asg.num_partitions(), 0);
  for (VertexId v = 0; v < asg.size(); ++v) ++counts[asg.PartitionOf(v)];
  return counts;
}

TEST(JabejaTest, InitialColoringIsCountBalanced) {
  Graph g(1000);
  JabejaOptions opt;
  opt.rounds = 0;
  const auto asg = JabejaPartitioner(opt).Partition(g, 4);
  for (std::size_t c : ColorCounts(asg)) EXPECT_EQ(c, 250u);
}

TEST(JabejaTest, SwapsPreserveColorCounts) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 2000;
  gopt.seed = 1;
  Graph g = GenerateSocialGraph(gopt);
  JabejaOptions opt;
  opt.rounds = 40;
  const auto asg = JabejaPartitioner(opt).Partition(g, 4);
  // Vertex-count balance is exact by construction (swap-only moves).
  for (std::size_t c : ColorCounts(asg)) EXPECT_EQ(c, 500u);
}

TEST(JabejaTest, ImprovesEdgeCutOverRandom) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 3000;
  gopt.community_mixing = 0.1;
  gopt.seed = 2;
  Graph g = GenerateSocialGraph(gopt);

  JabejaOptions no_search;
  no_search.rounds = 0;
  const double random_cut =
      EdgeCutFraction(g, JabejaPartitioner(no_search).Partition(g, 4));

  JabejaOptions opt;
  opt.rounds = 60;
  const double refined_cut =
      EdgeCutFraction(g, JabejaPartitioner(opt).Partition(g, 4));
  EXPECT_LT(refined_cut, 0.8 * random_cut);
}

TEST(JabejaTest, CannotRebalanceWeightSkew) {
  // The Hermes paper's critique (Section 6): JA-BE-JA assumes fixed
  // uniform weights; swaps preserve vertex counts, so popularity skew
  // stays unresolved.
  Graph g(100);
  for (VertexId v = 0; v + 1 < 100; ++v) ASSERT_OK(g.AddEdge(v, v + 1));
  for (VertexId v = 0; v < 10; ++v) g.SetVertexWeight(v, 50.0);

  JabejaOptions opt;
  opt.rounds = 30;
  opt.seed = 3;
  const auto asg = JabejaPartitioner(opt).Partition(g, 2);
  const auto counts = ColorCounts(asg);
  EXPECT_EQ(counts[0], 50u);
  EXPECT_EQ(counts[1], 50u);
  // Weight imbalance remains possible and is not corrected by design —
  // the hot vertices all carry weight 50 and land wherever the cut puts
  // them. (No assertion on imbalance value; the point is counts stay
  // fixed regardless of weights.)
}

TEST(JabejaTest, ImproveKeepsExistingCounts) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 1000;
  gopt.seed = 4;
  Graph g = GenerateSocialGraph(gopt);
  PartitionAssignment asg(g.NumVertices(), 2);
  for (VertexId v = 0; v < 300; ++v) asg.Assign(v, 1);
  const auto before = ColorCounts(asg);
  JabejaOptions opt;
  opt.rounds = 10;
  JabejaPartitioner(opt).Improve(g, &asg);
  EXPECT_EQ(ColorCounts(asg), before);
}

TEST(JabejaTest, DeterministicBySeed) {
  SocialGraphOptions gopt;
  gopt.num_vertices = 800;
  gopt.seed = 5;
  Graph g = GenerateSocialGraph(gopt);
  JabejaOptions opt;
  opt.rounds = 20;
  opt.seed = 77;
  const auto a = JabejaPartitioner(opt).Partition(g, 4);
  const auto b = JabejaPartitioner(opt).Partition(g, 4);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace hermes
