#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "graphdb/graph_store.h"

namespace hermes {
namespace {

std::vector<VertexId> SortedNeighbors(const GraphStore& store, VertexId v) {
  auto n = store.Neighbors(v);
  EXPECT_OK(n);
  std::vector<VertexId> out = n.ok() ? *n : std::vector<VertexId>{};
  std::sort(out.begin(), out.end());
  return out;
}

TEST(GraphStoreTest, CreateAndQueryNodes) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1, 2.5));
  EXPECT_TRUE(store.HasNode(1));
  EXPECT_FALSE(store.HasNode(2));
  EXPECT_DOUBLE_EQ(*store.NodeWeight(1), 2.5);
  EXPECT_EQ(store.NumNodes(), 1u);
}

TEST(GraphStoreTest, DuplicateNodeRejected) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  EXPECT_TRUE(store.CreateNode(1).IsAlreadyExists());
}

TEST(GraphStoreTest, WeightAccumulates) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1, 1.0));
  ASSERT_OK(store.AddNodeWeight(1, 4.0));
  EXPECT_DOUBLE_EQ(*store.NodeWeight(1), 5.0);
  EXPECT_TRUE(store.AddNodeWeight(9, 1.0).IsNotFound());
}

TEST(GraphStoreTest, LocalEdgeVisibleFromBothChains) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.CreateNode(2));
  auto rel = store.AddEdge(1, 2, 0, /*other_is_local=*/true);
  ASSERT_OK(rel);
  EXPECT_EQ(SortedNeighbors(store, 1), std::vector<VertexId>{2});
  EXPECT_EQ(SortedNeighbors(store, 2), std::vector<VertexId>{1});
  EXPECT_EQ(store.NumRelationships(), 1u);  // single shared record
  EXPECT_FALSE(*store.EdgeIsGhost(1, 2));
  EXPECT_TRUE(store.CheckChains());
}

TEST(GraphStoreTest, HalfEdgeGhostRule) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(5));
  // Remote endpoint 9 > 5: the real copy follows the lower id, so the
  // local copy (with endpoint 5) is real.
  ASSERT_OK(store.AddEdge(5, 9, 0, false));
  EXPECT_FALSE(*store.EdgeIsGhost(5, 9));

  ASSERT_OK(store.CreateNode(20));
  // Remote endpoint 3 < 20: local copy is the ghost.
  ASSERT_OK(store.AddEdge(20, 3, 0, false));
  EXPECT_TRUE(*store.EdgeIsGhost(20, 3));
  EXPECT_EQ(store.NumGhostRelationships(), 1u);
}

TEST(GraphStoreTest, GhostKeepsAdjacencyLocal) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.AddEdge(1, 100, 0, false));
  ASSERT_OK(store.AddEdge(1, 200, 0, false));
  EXPECT_EQ(SortedNeighbors(store, 1), (std::vector<VertexId>{100, 200}));
  EXPECT_EQ(*store.DegreeOf(1), 2u);
}

TEST(GraphStoreTest, DuplicateEdgeRejected) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.CreateNode(2));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  EXPECT_TRUE(store.AddEdge(1, 2, 0, true).status().IsAlreadyExists());
  EXPECT_TRUE(store.AddEdge(2, 1, 0, true).status().IsAlreadyExists());
}

TEST(GraphStoreTest, SelfLoopRejected) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  EXPECT_TRUE(store.AddEdge(1, 1, 0, true).status().IsInvalidArgument());
}

TEST(GraphStoreTest, RemoveEdgeFixesChains) {
  GraphStore store(0);
  for (VertexId v = 1; v <= 4; ++v) ASSERT_OK(store.CreateNode(v));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  ASSERT_OK(store.AddEdge(1, 3, 0, true));
  ASSERT_OK(store.AddEdge(1, 4, 0, true));
  ASSERT_OK(store.RemoveEdge(1, 3));
  EXPECT_EQ(SortedNeighbors(store, 1), (std::vector<VertexId>{2, 4}));
  EXPECT_TRUE(SortedNeighbors(store, 3).empty());
  EXPECT_TRUE(store.CheckChains());
  EXPECT_TRUE(store.RemoveEdge(1, 3).IsNotFound());
}

TEST(GraphStoreTest, ChainSurvivesMiddleAndHeadRemoval) {
  GraphStore store(0);
  for (VertexId v = 0; v < 6; ++v) ASSERT_OK(store.CreateNode(v));
  for (VertexId v = 1; v < 6; ++v) {
    ASSERT_OK(store.AddEdge(0, v, 0, true));
  }
  // Chain head is the most recently added (5); remove head, middle, tail.
  ASSERT_OK(store.RemoveEdge(0, 5));
  ASSERT_OK(store.RemoveEdge(0, 3));
  ASSERT_OK(store.RemoveEdge(0, 1));
  EXPECT_EQ(SortedNeighbors(store, 0), (std::vector<VertexId>{2, 4}));
  EXPECT_TRUE(store.CheckChains());
}

TEST(GraphStoreTest, NodeProperties) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.SetNodeProperty(1, 0, "alice"));
  ASSERT_OK(store.SetNodeProperty(1, 1, "springfield"));
  EXPECT_EQ(*store.GetNodeProperty(1, 0), "alice");
  EXPECT_EQ(*store.GetNodeProperty(1, 1), "springfield");
  EXPECT_TRUE(store.GetNodeProperty(1, 2).status().IsNotFound());
  // Overwrite.
  ASSERT_OK(store.SetNodeProperty(1, 0, "bob"));
  EXPECT_EQ(*store.GetNodeProperty(1, 0), "bob");
}

TEST(GraphStoreTest, LongPropertyValueUsesDynamicStore) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  const std::string big(500, 'p');
  ASSERT_OK(store.SetNodeProperty(1, 7, big));
  EXPECT_EQ(*store.GetNodeProperty(1, 7), big);
}

TEST(GraphStoreTest, EdgePropertiesOnRealCopyOnly) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.CreateNode(2));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  ASSERT_OK(store.SetEdgeProperty(1, 2, 0, "since-2009"));
  EXPECT_EQ(*store.GetEdgeProperty(2, 1, 0), "since-2009");

  // Ghost copy refuses writes.
  ASSERT_OK(store.CreateNode(20));
  ASSERT_OK(store.AddEdge(20, 3, 0, false));  // ghost (3 < 20)
  EXPECT_TRUE(store.SetEdgeProperty(20, 3, 0, "x").IsInvalidArgument());
  EXPECT_TRUE(store.GetEdgeProperty(20, 3, 0).status().IsUnavailable());
}

TEST(GraphStoreTest, UnavailableNodeHiddenFromQueries) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.CreateNode(2));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  ASSERT_OK(store.SetNodeState(1, NodeState::kUnavailable));
  EXPECT_FALSE(store.HasNode(1));
  EXPECT_TRUE(store.NodeExists(1));
  EXPECT_TRUE(store.Neighbors(1).status().IsUnavailable());
  // Node 2 still sees the edge (structure stays valid until removal).
  EXPECT_EQ(SortedNeighbors(store, 2), std::vector<VertexId>{1});
}

TEST(GraphStoreTest, ExtractNodeCarriesEverything) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1, 3.0));
  ASSERT_OK(store.CreateNode(2));
  ASSERT_OK(store.SetNodeProperty(1, 0, "alice"));
  ASSERT_OK(store.AddEdge(1, 2, 5, true));
  ASSERT_OK(store.SetEdgeProperty(1, 2, 1, "friend"));
  ASSERT_OK(store.AddEdge(1, 99, 0, false));  // real half (1 < 99)

  auto snap = store.ExtractNode(1);
  ASSERT_OK(snap);
  EXPECT_EQ(snap->id, 1u);
  EXPECT_DOUBLE_EQ(snap->weight, 3.0);
  ASSERT_EQ(snap->properties.size(), 1u);
  EXPECT_EQ(snap->properties[0].second, "alice");
  ASSERT_EQ(snap->relationships.size(), 2u);
  EXPECT_GT(snap->WireBytes(), 0u);
}

TEST(GraphStoreTest, MigrationExtractIngestAcrossStores) {
  GraphStore a(0);
  GraphStore b(1);
  ASSERT_OK(a.CreateNode(1));
  ASSERT_OK(a.CreateNode(2));
  ASSERT_OK(a.AddEdge(1, 2, 0, true));
  ASSERT_OK(a.SetEdgeProperty(1, 2, 0, "props"));

  // Move node 2 from store a to store b.
  auto snap = a.ExtractNode(2);
  ASSERT_OK(snap);
  ASSERT_OK(b.IngestNodeWith(*snap, [](VertexId) { return false; }));
  ASSERT_OK(a.SetNodeState(2, NodeState::kUnavailable));
  ASSERT_OK(a.RemoveNode(2));

  // Store a keeps a half record for node 1 (real: 1 < 2).
  EXPECT_EQ(SortedNeighbors(a, 1), std::vector<VertexId>{2});
  EXPECT_FALSE(*a.EdgeIsGhost(1, 2));
  EXPECT_EQ(*a.GetEdgeProperty(1, 2, 0), "props");
  // Store b holds the ghost half for node 2.
  EXPECT_EQ(SortedNeighbors(b, 2), std::vector<VertexId>{1});
  EXPECT_TRUE(*b.EdgeIsGhost(2, 1));
  EXPECT_TRUE(a.CheckChains());
  EXPECT_TRUE(b.CheckChains());
}

TEST(GraphStoreTest, IngestMergesWithExistingHalfRecord) {
  GraphStore b(1);
  ASSERT_OK(b.CreateNode(1));
  ASSERT_OK(b.AddEdge(1, 2, 0, false));  // 2 remote; real copy (1<2)
  ASSERT_OK(b.SetEdgeProperty(1, 2, 0, "kept"));

  // Node 2 arrives: its snapshot says the edge's properties live with 1.
  NodeSnapshot snap;
  snap.id = 2;
  snap.weight = 1.0;
  NodeSnapshot::Relationship rel;
  rel.other = 1;
  rel.properties_included = false;  // node 2's old copy was the ghost
  snap.relationships.push_back(rel);
  ASSERT_OK(b.IngestNodeWith(snap, [](VertexId) { return true; }));

  // Single full record now serves both chains, properties preserved.
  EXPECT_EQ(b.NumRelationships(), 1u);
  EXPECT_FALSE(*b.EdgeIsGhost(1, 2));
  EXPECT_FALSE(*b.EdgeIsGhost(2, 1));
  EXPECT_EQ(*b.GetEdgeProperty(2, 1, 0), "kept");
  EXPECT_TRUE(b.CheckChains());
}

TEST(GraphStoreTest, RemoveNodeDeletesHalfRecords) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.AddEdge(1, 50, 0, false));
  ASSERT_OK(store.AddEdge(1, 60, 0, false));
  ASSERT_OK(store.RemoveNode(1));
  EXPECT_EQ(store.NumNodes(), 0u);
  EXPECT_EQ(store.NumRelationships(), 0u);
}

TEST(GraphStoreTest, RemoveNodeDegradesSharedRecordsToGhostRule) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.CreateNode(2));
  ASSERT_OK(store.AddEdge(1, 2, 0, true));
  ASSERT_OK(store.SetEdgeProperty(1, 2, 0, "payload"));

  // Remove node 2 (migrating away); node 1 keeps the edge. Since 1 < 2 the
  // surviving copy is real and keeps properties.
  ASSERT_OK(store.RemoveNode(2));
  EXPECT_EQ(SortedNeighbors(store, 1), std::vector<VertexId>{2});
  EXPECT_FALSE(*store.EdgeIsGhost(1, 2));
  EXPECT_EQ(*store.GetEdgeProperty(1, 2, 0), "payload");

  // Symmetric case: removing the lower endpoint drops the properties.
  GraphStore store2(0);
  ASSERT_OK(store2.CreateNode(1));
  ASSERT_OK(store2.CreateNode(2));
  ASSERT_OK(store2.AddEdge(1, 2, 0, true));
  ASSERT_OK(store2.SetEdgeProperty(1, 2, 0, "payload"));
  ASSERT_OK(store2.RemoveNode(1));
  EXPECT_TRUE(*store2.EdgeIsGhost(2, 1));
  EXPECT_TRUE(store2.GetEdgeProperty(2, 1, 0).status().IsUnavailable());
}

TEST(GraphStoreTest, NodeIdsListsLiveNodes) {
  GraphStore store(0);
  for (VertexId v : {5, 1, 9}) ASSERT_OK(store.CreateNode(v));
  ASSERT_OK(store.RemoveNode(1));
  EXPECT_EQ(store.NodeIds(), (std::vector<VertexId>{5, 9}));
}

TEST(GraphStoreTest, MemoryBytesGrowsWithContent) {
  GraphStore store(0);
  const std::size_t empty = store.MemoryBytes();
  ASSERT_OK(store.CreateNode(1));
  ASSERT_OK(store.SetNodeProperty(1, 0, std::string(200, 'z')));
  EXPECT_GT(store.MemoryBytes(), empty);
}

TEST(GraphStoreTest, EdgeToMissingLocalEndpointFails) {
  GraphStore store(0);
  ASSERT_OK(store.CreateNode(1));
  EXPECT_TRUE(store.AddEdge(1, 2, 0, true).status().IsNotFound());
  EXPECT_TRUE(store.AddEdge(3, 1, 0, true).status().IsNotFound());
}

}  // namespace
}  // namespace hermes
