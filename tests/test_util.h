#ifndef HERMES_TESTS_TEST_UTIL_H_
#define HERMES_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

/// Shared status assertions for the test suite.
///
/// ASSERT_OK/EXPECT_OK accept either a Status or a Result<T> and print
/// the failing expression together with the status code and message —
/// unlike ASSERT_TRUE(x.ok()), which reports only "false". Both support
/// the usual gtest stream suffix: ASSERT_OK(st) << "context";

namespace hermes::test {

inline const Status& ToStatus(const Status& s) { return s; }

template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

template <typename T>
::testing::AssertionResult IsOkPredicate(const char* expr_text, const T& v) {
  const Status& st = ToStatus(v);
  if (st.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << expr_text << " returned " << st.ToString();
}

}  // namespace hermes::test

#define ASSERT_OK(expr) \
  ASSERT_PRED_FORMAT1(::hermes::test::IsOkPredicate, (expr))
#define EXPECT_OK(expr) \
  EXPECT_PRED_FORMAT1(::hermes::test::IsOkPredicate, (expr))

#endif  // HERMES_TESTS_TEST_UTIL_H_
