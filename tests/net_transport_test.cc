// Message-delivery semantics of the in-process transport + bus +
// partition-server stack (DESIGN.md §12): request/reply matching under
// concurrency, bounded-inbox backpressure, duplicate suppression,
// reorder tolerance, injected send/drop faults surfacing as retryable
// Status (never a hang), and shutdown failing pending calls promptly.
//
// Suite names carry "NetTransport" so the tsan CI job's -R regex picks
// them up.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

#include "cluster/hermes_cluster.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "graphdb/graph_store.h"
#include "net/bus.h"
#include "net/inproc_transport.h"
#include "net/message.h"

namespace hermes {
namespace {

std::uint64_t CounterValue(const std::string& name) {
  const auto snap = MetricsRegistry::Global().Snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// One partition server (endpoint 0) plus a client bus (endpoint 1),
/// with the shutdown ordering the cluster guarantees in production:
/// bus first, then transport (joining dispatchers), then the server.
struct Rig {
  explicit Rig(InProcTransport::Options topt = {},
               MessageBus::Options bopt = {},
               PartitionServer::Options sopt = {})
      : transport(topt) {
    auto opened = PartitionServer::Open(0, 0, &transport, std::move(sopt));
    HERMES_CHECK(opened.ok());
    server = std::move(*opened);
    bus = std::make_unique<MessageBus>(&transport, 1, bopt);
    HERMES_CHECK(bus->Start().ok());
  }
  ~Rig() {
    bus->Shutdown();
    transport.Shutdown();
  }

  Result<Envelope> Call(MessagePayload payload) {
    Envelope req;
    req.payload = std::move(payload);
    return bus->Call(0, std::move(req));
  }

  InProcTransport transport;
  std::unique_ptr<PartitionServer> server;
  std::unique_ptr<MessageBus> bus;
};

TEST(NetTransportTest, CallReplyBasic) {
  Rig rig;
  MutateRequest create;
  create.op = MutateRequest::Op::kCreateNode;
  create.vertex = 7;
  create.weight = 2.0;
  auto created = rig.Call(create);
  ASSERT_OK(created);
  const auto* mrep = std::get_if<MutateReply>(&created->payload);
  ASSERT_NE(mrep, nullptr);
  ASSERT_OK(mrep->status);

  ProbeRequest probe;
  probe.mode = ProbeRequest::Mode::kHasNode;
  probe.vertex = 7;
  auto probed = rig.Call(probe);
  ASSERT_OK(probed);
  const auto* prep = std::get_if<ProbeReply>(&probed->payload);
  ASSERT_NE(prep, nullptr);
  ASSERT_OK(prep->status);
  EXPECT_TRUE(prep->truth);

  auto health = rig.Call(HealthRequest{});
  ASSERT_OK(health);
  const auto* hrep = std::get_if<HealthReply>(&health->payload);
  ASSERT_NE(hrep, nullptr);
  EXPECT_EQ(hrep->nodes, 1u);
}

TEST(NetTransportTest, ConcurrentCallsMatchRequestToReply) {
  Rig rig;
  constexpr int kThreads = 4;
  constexpr int kVerticesPerThread = 25;
  // Seed one node per (thread, i) pair.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kVerticesPerThread; ++i) {
      MutateRequest create;
      create.op = MutateRequest::Op::kCreateNode;
      create.vertex = static_cast<VertexId>(t * 1000 + i);
      create.weight = 1.0 + t;
      auto r = rig.Call(create);
      ASSERT_OK(r);
    }
  }
  // Concurrent extracts: each reply must carry exactly the vertex that
  // was asked for — a mispaired reply would show a different id.
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rig, &mismatches, t] {
      for (int i = 0; i < kVerticesPerThread; ++i) {
        const auto v = static_cast<VertexId>(t * 1000 + i);
        ExtractRequest req;
        req.vertex = v;
        auto r = rig.Call(req);
        if (!r.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const auto* rep = std::get_if<ExtractReply>(&r->payload);
        if (rep == nullptr || !rep->status.ok() || rep->id != v) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(NetTransportTest, BackpressureSurfacesTimedOut) {
  InProcTransport::Options opt;
  opt.inbox_capacity = 1;
  opt.send_timeout_us = 100'000;
  InProcTransport transport(opt);
  std::atomic<bool> release{false};
  // A handler that parks the dispatch thread keeps the single-slot
  // inbox full, so a further Send must give up with kTimedOut instead
  // of blocking forever.
  ASSERT_OK(transport.OpenEndpoint(5, [&release](std::string) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  ASSERT_OK(transport.Send(5, "frame-1"));  // parked in the handler
  // The dispatcher may not have popped frame-1 yet, so frame-2 either
  // queues immediately or waits for the pop; both are accepted.
  ASSERT_OK(transport.Send(5, "frame-2"));
  const Status st = transport.Send(5, "frame-3");
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  release.store(true);
  transport.Shutdown();
}

TEST(NetTransportTest, OpenEndpointRejectsBadIds) {
  InProcTransport transport({});
  EXPECT_TRUE(transport.OpenEndpoint(1000, [](std::string) {})
                  .IsInvalidArgument());
  ASSERT_OK(transport.OpenEndpoint(3, [](std::string) {}));
  EXPECT_TRUE(transport.OpenEndpoint(3, [](std::string) {})
                  .IsAlreadyExists());
  EXPECT_TRUE(transport.Send(4, "frame").IsNotFound());
  transport.Shutdown();
  EXPECT_TRUE(transport.Send(3, "frame").IsUnavailable());
}

TEST(NetTransportTest, DuplicatedFramesAreNotReapplied) {
  InProcTransport::Options topt;
  topt.duplicate_every_n = 2;  // every 2nd accepted frame delivered twice
  const std::uint64_t dup_before = CounterValue("msg.duplicated");
  const std::uint64_t dedup_before = CounterValue("server.duplicate_requests");
  {
    Rig rig(topt);
    MutateRequest create;
    create.op = MutateRequest::Op::kCreateNode;
    create.vertex = 1;
    create.weight = 1.0;
    ASSERT_OK(rig.Call(create));
    constexpr int kBumps = 20;
    for (int i = 0; i < kBumps; ++i) {
      MutateRequest bump;
      bump.op = MutateRequest::Op::kAddNodeWeight;
      bump.vertex = 1;
      bump.weight = 1.0;
      auto r = rig.Call(bump);
      ASSERT_OK(r);
      ASSERT_OK(std::get<MutateReply>(r->payload).status);
    }
    // The transport manufactured duplicates, the server suppressed every
    // one of them: the weight reflects each bump exactly once.
    ExtractRequest req;
    req.vertex = 1;
    auto r = rig.Call(req);
    ASSERT_OK(r);
    const auto& rep = std::get<ExtractReply>(r->payload);
    ASSERT_OK(rep.status);
    EXPECT_DOUBLE_EQ(rep.weight, 1.0 + kBumps);
  }
  EXPECT_GT(CounterValue("msg.duplicated"), dup_before);
  EXPECT_GT(CounterValue("server.duplicate_requests"), dedup_before);
}

TEST(NetTransportTest, ReorderedFramesStillMatchReplies) {
  InProcTransport::Options topt;
  topt.reorder_every_n = 3;
  topt.fault_seed = 1;
  Rig rig(topt);
  for (int i = 0; i < 30; ++i) {
    MutateRequest create;
    create.op = MutateRequest::Op::kCreateNode;
    create.vertex = static_cast<VertexId>(i);
    create.weight = 1.0;
    ASSERT_OK(rig.Call(create));
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&rig, &mismatches, t] {
      for (int i = 0; i < 10; ++i) {
        const auto v = static_cast<VertexId>(t * 10 + i);
        ExtractRequest req;
        req.vertex = v;
        auto r = rig.Call(req);
        if (!r.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const auto* rep = std::get_if<ExtractReply>(&r->payload);
        if (rep == nullptr || !rep->status.ok() || rep->id != v) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(NetTransportTest, ShutdownFailsPendingCallsPromptly) {
  InProcTransport transport({});
  // A sink endpoint that never replies: calls to it stay pending until
  // the bus shuts down.
  ASSERT_OK(transport.OpenEndpoint(5, [](std::string) {}));
  MessageBus::Options bopt;
  bopt.call_timeout_us = 60'000'000;
  MessageBus bus(&transport, 6, bopt);
  ASSERT_OK(bus.Start());
  std::atomic<bool> returned{false};
  std::thread caller([&bus, &returned] {
    Envelope req;
    req.payload = HealthRequest{};
    auto r = bus.Call(5, std::move(req));
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  bus.Shutdown();
  caller.join();
  EXPECT_TRUE(returned.load());
  transport.Shutdown();
}

TEST(NetTransportFaultTest, SendIoErrorSurfacesAsStatus) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset); run the "
                    "asan-ubsan or tsan preset";
  }
  // One attempt: this test pins how a send fault SURFACES; the healing
  // retry path has its own tests below.
  MessageBus::Options bopt;
  bopt.max_attempts = 1;
  Rig rig({}, bopt);
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.send.io_error", cfg);
  auto r = rig.Call(HealthRequest{});
  FailpointRegistry::Global().Reset();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
  // The fault was transient; the very next call goes through.
  ASSERT_OK(rig.Call(HealthRequest{}));
}

TEST(NetTransportFaultTest, DroppedRequestSurfacesRetryableTimeout) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset)";
  }
  MessageBus::Options bopt;
  bopt.call_timeout_us = 100'000;
  bopt.max_attempts = 1;  // pin the surfaced status, not the healing
  Rig rig({}, bopt);
  const std::uint64_t timeouts_before = CounterValue("msg.timeouts");
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.recv.drop", cfg);
  auto r = rig.Call(HealthRequest{});
  FailpointRegistry::Global().Reset();
  // The frame vanished in flight: the call must come back (no hang) as
  // retryable kUnavailable, and the retry must succeed.
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_GT(CounterValue("msg.timeouts"), timeouts_before);
  ASSERT_OK(rig.Call(HealthRequest{}));
}

std::string FreshDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Spin-waits (bounded) until `name` exceeds `prev` — used to quiesce on
/// server-side effects of frames whose replies never reached the bus.
void AwaitCounterAbove(const std::string& name, std::uint64_t prev) {
  for (int i = 0; i < 5000 && CounterValue(name) <= prev; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(CounterValue(name), prev) << name;
}

MutateRequest MakeCreate(VertexId v, double weight) {
  MutateRequest m;
  m.op = MutateRequest::Op::kCreateNode;
  m.vertex = v;
  m.weight = weight;
  return m;
}

MutateRequest MakeBump(VertexId v, double delta) {
  MutateRequest m;
  m.op = MutateRequest::Op::kAddNodeWeight;
  m.vertex = v;
  m.weight = delta;
  return m;
}

double ExtractWeight(Rig* rig, VertexId v) {
  ExtractRequest req;
  req.vertex = v;
  auto r = rig->Call(req);
  EXPECT_OK(r);
  if (!r.ok()) return -1.0;
  const auto& rep = std::get<ExtractReply>(r->payload);
  EXPECT_OK(rep.status);
  return rep.weight;
}

// The headline exactly-once regression (fails pre-fix): the server
// applies a mutation but its reply vanishes in flight. Pre-fix the
// duplicate path suppressed the re-apply but sent NOTHING, so the
// same-token resend timed out forever — the at-most-once hole. Post-fix
// the cached reply is replayed and the call succeeds with the mutation
// applied exactly once. The transport drop knob makes this run in every
// preset, failpoints or not.
TEST(NetTransportRetryTest, ReplyLossIsHealedBySameTokenRetry) {
  InProcTransport::Options topt;
  topt.drop_every_n = 2;  // with fault_seed 1: every odd arrival at the
  topt.drop_dst = 1;      // bus endpoint vanishes — every first reply
  topt.fault_seed = 1;    // lost, every retried reply delivered
  MessageBus::Options bopt;
  bopt.call_timeout_us = 50'000;
  bopt.retry_backoff_us = 500;
  const std::uint64_t retries_before = CounterValue("msg.retries");
  const std::uint64_t dedup_before = CounterValue("msg.dedup_hits");
  Rig rig(topt, bopt);

  auto created = rig.Call(MakeCreate(1, 2.0));
  ASSERT_OK(created);
  ASSERT_OK(std::get<MutateReply>(created->payload).status);
  auto bumped = rig.Call(MakeBump(1, 0.5));
  ASSERT_OK(bumped);
  ASSERT_OK(std::get<MutateReply>(bumped->payload).status);
  // Both mutations lost their first reply and were resent under the same
  // token; the weight arithmetic proves each applied exactly once.
  EXPECT_DOUBLE_EQ(ExtractWeight(&rig, 1), 2.5);
  EXPECT_GT(CounterValue("msg.retries"), retries_before);
  EXPECT_GT(CounterValue("msg.dedup_hits"), dedup_before);
}

TEST(NetTransportRetryTest, ExhaustedRetriesStillApplyExactlyOnce) {
  InProcTransport::Options topt;
  topt.drop_every_n = 1;  // EVERY reply to the bus vanishes
  topt.drop_dst = 1;
  MessageBus::Options bopt;
  bopt.call_timeout_us = 30'000;
  bopt.retry_backoff_us = 500;
  bopt.max_attempts = 2;
  const std::uint64_t dedup_before = CounterValue("msg.dedup_hits");
  Rig rig(topt, bopt);
  // Seed the node out of band so the only bus traffic is the mutation
  // under test (store_for_test is the sanctioned seeding path).
  ASSERT_OK(rig.server->store_for_test()->CreateNode(9, 1.0));

  auto r = rig.Call(MakeBump(9, 0.5));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  // The second attempt dedup-hit the first apply; once it has been
  // processed the rig is quiescent and the store must show ONE apply
  // even though the client never heard back.
  AwaitCounterAbove("msg.dedup_hits", dedup_before);
  auto weight = rig.server->store_for_test()->NodeWeight(9);
  ASSERT_OK(weight);
  EXPECT_DOUBLE_EQ(*weight, 1.5);
}

// Regression for the eviction bug (fails pre-fix): the old fixed 4096
// FIFO forgot a token after 4096 later mutations, so a straggling resend
// re-applied it. Options::dedup_window now sizes the window; with one
// larger than the flood the early token must survive and its resend must
// dedup-hit instead of double-applying.
TEST(NetTransportRetryTest, DedupWindowFromOptionsSurvivesOverflowOfOldDefault) {
  constexpr std::size_t kOldFixedWindow = 4096;
  constexpr std::size_t kFlood = kOldFixedWindow + 400;
  PartitionServer::Options sopt;
  sopt.dedup_window = kFlood + 600;  // dominates everything in flight
  InProcTransport transport({});
  auto opened = PartitionServer::Open(0, 0, &transport, std::move(sopt));
  ASSERT_OK(opened);
  auto server = std::move(*opened);

  // Raw client endpoint 1: crafts frames directly so the same token can
  // be resent byte-for-byte, bypassing the bus's own dedup of ids.
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::uint64_t, Envelope> replies;
  ASSERT_OK(transport.OpenEndpoint(1, [&](std::string frame) {
    auto env = DecodeFrame(frame);
    if (!env.ok()) return;
    std::lock_guard<std::mutex> lock(mu);
    replies[env->request_id] = std::move(*env);
    cv.notify_all();
  }));
  auto send = [&](std::uint64_t id, MessagePayload payload) {
    Envelope env;
    env.request_id = id;
    env.src = 1;
    env.dst = 0;
    env.payload = std::move(payload);
    auto frame = EncodeFrame(env);
    ASSERT_OK(frame);
    ASSERT_OK(transport.Send(0, std::move(*frame)));
  };
  auto wait_for = [&](std::uint64_t id) -> Envelope {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return replies.count(id) != 0; });
    return replies[id];
  };

  send(1, MakeCreate(1, 1.0));
  send(2, MakeBump(1, 1.0));  // the token under test
  send(3, MakeCreate(2, 1.0));
  wait_for(3);
  const std::uint64_t dedup_before = CounterValue("msg.dedup_hits");
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    send(4 + i, MakeBump(2, 1.0));
  }
  wait_for(3 + kFlood);
  // The straggling resend of token 2, byte-identical. Pre-fix the window
  // had evicted it and the bump re-applied.
  send(2, MakeBump(1, 1.0));
  ExtractRequest ex;
  ex.vertex = 1;
  send(4 + kFlood, ex);
  const Envelope extracted = wait_for(4 + kFlood);
  const auto& rep = std::get<ExtractReply>(extracted.payload);
  ASSERT_OK(rep.status);
  EXPECT_DOUBLE_EQ(rep.weight, 2.0);  // one create + exactly one bump
  EXPECT_GT(CounterValue("msg.dedup_hits"), dedup_before);
  transport.Shutdown();
}

// Recovery-safe dedup (fails pre-fix): the server crashes after applying
// a mutation and durably logging its token, but before the reply reached
// the client. The reopened server must answer the client's same-token
// retry from recovered dedup state — synthesized reply, no double-apply.
TEST(NetTransportRecoveryTest, RecoveredTokenAnsweredAfterCrashBetweenApplyAndReply) {
  const std::string dir = FreshDir("net_recovered_token");
  PartitionServer::Options sopt;
  sopt.durability_dir = dir;
  const std::uint64_t bump_token = 2;  // ids mint from 1: create=1, bump=2
  MutateRequest bump = MakeBump(1, 0.5);
  {
    InProcTransport::Options topt;
    topt.drop_every_n = 2;  // fault_seed 0: arrival 2 at the bus — the
    topt.drop_dst = 1;      // bump's reply — vanishes
    MessageBus::Options bopt;
    bopt.call_timeout_us = 50'000;
    bopt.max_attempts = 1;  // the client "crashes with the server":
                            // no in-session retry, the loss surfaces
    const std::uint64_t dropped_before = CounterValue("msg.dropped");
    Rig rig(topt, bopt, sopt);
    auto created = rig.Call(MakeCreate(1, 2.0));
    ASSERT_OK(created);
    ASSERT_OK(std::get<MutateReply>(created->payload).status);
    auto bumped = rig.Call(bump);
    ASSERT_FALSE(bumped.ok());
    EXPECT_TRUE(bumped.status().IsUnavailable()) << bumped.status().ToString();
    // The drop fires AFTER the server applied and WAL-logged the token,
    // so once it is counted the crash point is exactly apply-then-no-reply.
    AwaitCounterAbove("msg.dropped", dropped_before);
  }  // "crash": no checkpoint; the WAL keeps the mutations and tokens

  InProcTransport transport({});
  auto reopened = PartitionServer::Open(0, 0, &transport, std::move(sopt));
  ASSERT_OK(reopened);
  auto server = std::move(*reopened);
  // Recovery surfaced the token, and the cluster-level contract
  // (first_request_id above every recovered token) depends on this.
  EXPECT_EQ(server->max_recovered_token_id(), bump_token);
  MessageBus::Options bopt;
  bopt.first_request_id = bump_token;  // the client retries ITS token
  MessageBus bus(&transport, 1, bopt);
  ASSERT_OK(bus.Start());
  Envelope retry;
  retry.payload = bump;
  auto r = bus.Call(0, std::move(retry));
  ASSERT_OK(r);
  ASSERT_OK(std::get<MutateReply>(r->payload).status);
  Envelope ex;
  ExtractRequest ex_req;
  ex_req.vertex = 1;
  ex.payload = ex_req;
  auto extracted = bus.Call(0, std::move(ex));
  ASSERT_OK(extracted);
  const auto& rep = std::get<ExtractReply>(extracted->payload);
  ASSERT_OK(rep.status);
  EXPECT_DOUBLE_EQ(rep.weight, 2.5);  // applied once, across the crash
  bus.Shutdown();
  transport.Shutdown();
}

TEST(NetTransportFaultTest, TransientSendErrorIsHealedByRetry) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset)";
  }
  MessageBus::Options bopt;
  bopt.retry_backoff_us = 500;
  Rig rig({}, bopt);
  const std::uint64_t retries_before = CounterValue("msg.retries");
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.send.io_error", cfg);
  auto r = rig.Call(MakeCreate(3, 1.5));
  FailpointRegistry::Global().Reset();
  // The first send failed outright; the same-token resend healed it.
  ASSERT_OK(r);
  ASSERT_OK(std::get<MutateReply>(r->payload).status);
  EXPECT_GT(CounterValue("msg.retries"), retries_before);
  EXPECT_DOUBLE_EQ(ExtractWeight(&rig, 3), 1.5);
}

TEST(NetTransportFaultTest, DroppedRequestIsHealedByRetry) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset)";
  }
  MessageBus::Options bopt;
  bopt.call_timeout_us = 50'000;
  bopt.retry_backoff_us = 500;
  Rig rig({}, bopt);
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.recv.drop", cfg);
  auto r = rig.Call(MakeCreate(4, 2.25));
  FailpointRegistry::Global().Reset();
  // The REQUEST vanished: the server first saw the token on the resend
  // and applied exactly once.
  ASSERT_OK(r);
  ASSERT_OK(std::get<MutateReply>(r->payload).status);
  EXPECT_DOUBLE_EQ(ExtractWeight(&rig, 4), 2.25);
}

Graph TwoTriangles() {
  Graph g(6);
  EXPECT_OK(g.AddEdge(0, 1));
  EXPECT_OK(g.AddEdge(1, 2));
  EXPECT_OK(g.AddEdge(0, 2));
  EXPECT_OK(g.AddEdge(3, 4));
  EXPECT_OK(g.AddEdge(4, 5));
  EXPECT_OK(g.AddEdge(3, 5));
  EXPECT_OK(g.AddEdge(2, 3));  // bridge
  return g;
}

PartitionAssignment SplitAtBridge() {
  PartitionAssignment asg(6, 2);
  for (VertexId v = 3; v < 6; ++v) asg.Assign(v, 1);
  return asg;
}

TEST(NetTransportClusterTest, ClusterSurvivesDuplicateAndReorderFaults) {
  HermesCluster::Options opt;
  opt.transport.duplicate_every_n = 3;
  opt.transport.reorder_every_n = 5;
  opt.transport.fault_seed = 2;
  HermesCluster cluster(TwoTriangles(), SplitAtBridge(), opt);
  // Reads and writes keep succeeding and the duplicate suppression
  // keeps the stores exactly consistent with the logical directory.
  for (VertexId v = 0; v < 6; ++v) {
    ASSERT_OK(cluster.ExecuteRead(v, 1));
  }
  auto added = cluster.InsertVertex();
  ASSERT_OK(added);
  ASSERT_OK(cluster.InsertEdge(*added, 0));
  EXPECT_TRUE(cluster.Validate());
}

TEST(NetTransportClusterTest, ClusterReadSurfacesRetryableDeliveryFault) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset)";
  }
  HermesCluster::Options opt;
  opt.bus.call_timeout_us = 100'000;
  opt.bus.max_attempts = 1;  // pin the surfaced status, not the healing
  HermesCluster cluster(TwoTriangles(), SplitAtBridge(), opt);
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.recv.drop", cfg);
  auto run = cluster.ExecuteRead(0, 1);
  FailpointRegistry::Global().Reset();
  // The dropped frame must surface as a retryable error, not corrupt
  // anything: the retry succeeds and the cluster still validates.
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsUnavailable() || run.status().IsIOError())
      << run.status().ToString();
  ASSERT_OK(cluster.ExecuteRead(0, 1));
  EXPECT_TRUE(cluster.Validate());
}

TEST(NetTransportClusterTest, ClusterWriteSurfacesInjectedSendError) {
  if (!kFailpointsEnabled) {
    GTEST_SKIP() << "HERMES_FAILPOINTS is off (default preset)";
  }
  HermesCluster cluster(TwoTriangles(), SplitAtBridge());
  FailpointConfig cfg;
  cfg.policy = FailpointConfig::Policy::kNthHit;
  cfg.n = 1;
  FailpointRegistry::Global().Arm("msg.send.io_error", cfg);
  auto added = cluster.InsertVertex();
  FailpointRegistry::Global().Reset();
  // InsertVertex's store write hits the injected send fault; whatever
  // the outcome, the directory and the stores must stay in agreement.
  if (!added.ok()) {
    EXPECT_TRUE(added.status().IsIOError() ||
                added.status().IsUnavailable())
        << added.status().ToString();
  }
  EXPECT_TRUE(cluster.Validate());
}

}  // namespace
}  // namespace hermes
